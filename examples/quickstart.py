#!/usr/bin/env python3
"""Quickstart: simulate a tiny program on every multithreading model.

Run with::

    python examples/quickstart.py

This walks the full pipeline in ~40 lines: write a kernel in the
assembly syntax, (optionally) run it through the Section 5.1 grouping
post-processor, and execute it on machines with different context-switch
models, comparing how well each hides the 200-cycle memory latency.
"""

from repro.isa import assemble, disassemble
from repro.compiler import group_program
from repro.machine import MachineConfig, Simulator, SwitchModel

# A thread that sums a shared vector: one load per element, back to back
# with its use — the worst case for switch-on-load.
KERNEL = """
        li   r8, 0          ; index
        li   r9, 64         ; length
        li   r10, 0         ; accumulator
    loop:
        add  r11, r8, r0
        lws  r12, 0(r11)    ; shared load (switch point under SOL)
        add  r10, r10, r12
        addi r8, r8, 1
        bne  r8, r9, loop
        sws  r10, 64(r0)    ; publish the result
        halt
"""


def simulate(program, model, threads=8):
    config = MachineConfig(
        model=model,
        num_processors=1,
        threads_per_processor=threads,
        latency=0 if model is SwitchModel.IDEAL else 200,
    )
    shared = list(range(64)) + [0] * 8
    # Every thread runs the same code here; they race to sum the vector
    # and the last store wins — fine for a timing demo.
    sim = Simulator(program, config, shared, [{} for _ in range(threads)])
    return sim.run()


def main():
    original = assemble(KERNEL, "sum64")
    grouped = group_program(original)

    print("Grouped inner loop (note the explicit switch):\n")
    print(disassemble(grouped))

    print(f"{'model':22s} {'wall cycles':>12s} {'mean run':>9s} {'switches':>9s}")
    for model in SwitchModel:
        code = grouped if model.wants_grouped_code else original
        result = simulate(code, model)
        assert result.shared[64] == sum(range(64))
        stats = result.stats
        print(
            f"{model.value:22s} {result.wall_cycles:12d} "
            f"{stats.mean_run_length:9.1f} {stats.switches:9d}"
        )


if __name__ == "__main__":
    main()
