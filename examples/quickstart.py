#!/usr/bin/env python3
"""Quickstart: the programmatic API on a real application.

Run with::

    python examples/quickstart.py

Everything goes through the :mod:`repro.api` facade — no internal
imports.  We take ``sor`` (the paper's worst case for switch-on-load:
back-to-back stencil loads give 1–2 cycle run lengths) and ask every
switch model to hide a 200-cycle memory latency, first one run at a
time with :func:`repro.simulate`, then as a parallel, cached sweep with
:func:`repro.sweep`.
"""

import repro

PROCESSORS = 2
LEVEL = 4
SCALE = "tiny"


def main():
    print(f"applications: {', '.join(repro.list_apps())}")
    print(f"switch models: {', '.join(repro.list_models())}")
    print()

    # Single-configuration entry point: one blessed call, one result.
    baseline = repro.simulate(
        "sor", model="ideal", processors=1, level=1, scale=SCALE
    )
    t1 = baseline.wall_cycles
    print(f"sor zero-latency single-processor time: {t1} cycles\n")

    # The same question for every model, as a sweep.  `workers=2` fans
    # the simulations out over worker processes; results come back in
    # input order and are identical to a serial run.
    specs = [
        repro.RunSpec.create(
            "sor", model=model, processors=PROCESSORS, level=LEVEL, scale=SCALE
        )
        for model in repro.list_models()
        if model != "ideal"
    ]
    results = repro.sweep(specs, workers=2)

    print(f"{'model':22s} {'wall cycles':>12s} {'efficiency':>10s} "
          f"{'mean run':>9s} {'switches':>9s}")
    for spec, result in zip(specs, results):
        stats = result.stats
        print(
            f"{spec.model:22s} {result.wall_cycles:12d} "
            f"{result.efficiency(t1):10.2f} "
            f"{stats.mean_run_length:9.1f} {stats.switches:9d}"
        )

    # Results are plain data: round-trip one through JSON.
    wire = results[0].to_dict()
    restored = repro.SimulationResult.from_dict(wire)
    assert restored.wall_cycles == results[0].wall_cycles
    print("\nSimulationResult.to_dict()/from_dict() round-trips cleanly;")
    print("pass cache='~/.cache/repro' to simulate()/sweep() to persist runs.")


if __name__ == "__main__":
    main()
