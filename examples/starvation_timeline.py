#!/usr/bin/env python3
"""Visualize the Section 6.2 starvation anomaly as a processor timeline.

Run with::

    python examples/starvation_timeline.py

Renders ASCII Gantt charts of which thread occupied each processor over
time, for ugray under conditional-switch:

* with the forced-switch interval **off**, a thread riding long
  cache-hit runs monopolises its processor while a sibling holds the
  row-queue lock everyone else spins on — the run is cut off by a cycle
  budget because it never finishes;
* with the paper's 200-cycle interval, the rows show fine-grained
  interleaving and the run completes.
"""

from repro.apps import UgrayApp
from repro.compiler import prepare_for_model
from repro.machine import MachineConfig, SwitchModel, SimulationTimeout
from repro.runtime import make_simulator
from repro.tools import render_timeline, timeline_summary

SIZE = {"width": 8, "height": 6, "grid": 4, "spheres": 6, "steps": 8}


def run_with_interval(interval: int, budget: int):
    spec = UgrayApp()
    app = spec.build(6, **SIZE)
    program = prepare_for_model(app.program, SwitchModel.CONDITIONAL_SWITCH)
    config = MachineConfig(
        model=SwitchModel.CONDITIONAL_SWITCH,
        num_processors=2,
        threads_per_processor=3,
        latency=200,
        forced_switch_interval=interval,
        record_timeline=True,
        max_cycles=budget,
    )
    sim = make_simulator(app, config, program=program)
    outcome = "completed"
    try:
        sim.run()
    except SimulationTimeout:
        outcome = f"LIVELOCK (cut off at {budget} cycles)"
    return sim, outcome


def main():
    budget = 60_000
    for interval, label in ((0, "forced interval OFF"), (200, "forced interval 200")):
        sim, outcome = run_with_interval(interval, budget)
        print(f"=== {label}: {outcome} ===")
        print(render_timeline(sim.timeline, 2, width=72, until=budget))
        shares = timeline_summary(sim.timeline, 2)
        for pid, per_thread in shares.items():
            top = sorted(per_thread.items(), key=lambda kv: -kv[1])[:3]
            pretty = ", ".join(f"t{tid}:{cycles}" for tid, cycles in top)
            print(f"  P{pid} busiest threads: {pretty}")
        print()


if __name__ == "__main__":
    main()
