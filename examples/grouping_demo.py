#!/usr/bin/env python3
"""Figure 4, live: watch the post-processor group the sor inner loop.

Run with::

    python examples/grouping_demo.py

Prints the paper's Figure 4 — the five-point stencil's loads before and
after grouping — then measures what the transformation buys: run-length
distributions and wall time under switch-on-load vs explicit-switch.
"""

from repro.apps import SorApp
from repro.compiler import build_blocks, group_block, prepare_for_model
from repro.isa.opcodes import Op
from repro.machine import MachineConfig, SwitchModel
from repro.runtime import run_app


def show_transformation(app):
    blocks = build_blocks(app.program)
    stencil = max(
        blocks, key=lambda blk: sum(1 for i in blk.instructions if i.op is Op.LWS)
    )
    before = [ins.to_asm() for ins in stencil.instructions]
    after = [ins.to_asm() for ins in group_block(stencil.instructions)]
    width = max(len(line) for line in before) + 6
    print(f"{'(a) original order':<{width}}(b) grouped + explicit switch")
    print("-" * (width + 30))
    for i in range(max(len(before), len(after))):
        left = before[i] if i < len(before) else ""
        right = after[i] if i < len(after) else ""
        print(f"{left:<{width}}{right}")
    print()


def measure(app, model):
    program = prepare_for_model(app.program, model)
    config = MachineConfig(
        model=model, num_processors=2, threads_per_processor=4, latency=200
    )
    return run_app(app, config, program=program)


def main():
    app = SorApp().build(8, n=24, iterations=3)
    show_transformation(app)

    bins = [1, 2, 5, 10, 100]
    print(f"{'model':<18s}{'wall':>10s}{'mean run':>10s}  run-length distribution")
    for model in (SwitchModel.SWITCH_ON_LOAD, SwitchModel.EXPLICIT_SWITCH):
        result = measure(app, model)
        stats = result.stats
        dist = stats.run_length_fractions(bins)
        pretty = "  ".join(f"{k}:{v:.0%}" for k, v in dist.items())
        print(
            f"{model.value:<18s}{result.wall_cycles:>10d}"
            f"{stats.mean_run_length:>10.1f}  {pretty}"
        )
    print(
        "\nGrouping turned the 1-2 cycle runs between the stencil's five"
        "\nback-to-back loads into a single long run per grid point —"
        "\nthe paper's central result."
    )


if __name__ == "__main__":
    main()
