#!/usr/bin/env python3
"""Write your own parallel application against the public API.

Run with::

    python examples/custom_application.py

Builds a parallel histogram kernel from scratch with the
:class:`~repro.isa.builder.ProgramBuilder` DSL and the runtime's
synchronisation macros, runs it on a multithreaded machine under three
switch models, and verifies the result against numpy.
"""

import numpy as np

from repro.compiler import prepare_for_model
from repro.isa.builder import ProgramBuilder
from repro.isa.registers import NTHREADS_REG, TID_REG
from repro.machine import MachineConfig, Simulator, SwitchModel
from repro.runtime import SharedLayout, emit_barrier, BARRIER_WORDS

VALUES = 512
BUCKETS = 16


def build_histogram(nthreads: int, rng):
    """Each thread histograms a strided slice of a shared value array
    with Fetch-and-Add increments, then thread 0 checks in a final
    reduction phase after a barrier."""
    values = rng.integers(0, BUCKETS, size=VALUES)

    layout = SharedLayout()
    data = layout.alloc("data", VALUES, values.tolist())
    hist = layout.alloc("hist", BUCKETS)
    total = layout.word("total")
    barrier = layout.alloc("barrier", BARRIER_WORDS)

    b = ProgramBuilder()
    datar = b.int_reg()
    histr = b.int_reg()
    bar = b.int_reg()
    one = b.int_reg()
    b.li(datar, data)
    b.li(histr, hist)
    b.li(bar, barrier)
    b.li(one, 1)

    i = b.int_reg()
    addr = b.int_reg()
    bucket = b.int_reg()
    scratch = b.int_reg()
    b.mov(i, TID_REG)
    loop = b.fresh("scan")
    done = b.fresh("done")
    limit = b.int_reg()
    b.li(limit, VALUES)
    b.label(loop)
    b.bge(i, limit, done)
    b.add(addr, datar, i)
    b.lws(bucket, addr, 0)  # shared load of the value
    b.add(addr, histr, bucket)
    b.faa(scratch, addr, 0, one)  # atomic histogram increment
    b.add(i, i, NTHREADS_REG)
    b.j(loop)
    b.label(done)

    emit_barrier(b, bar, NTHREADS_REG)
    # Thread 0 folds the histogram into a checksum.
    with b.if_cmp("eq", TID_REG, "r0"):
        acc = b.int_reg()
        cell = b.int_reg()
        b.li(acc, 0)
        k = b.int_reg()
        with b.for_range(k, 0, BUCKETS):
            b.add(cell, histr, k)
            b.lws(bucket, cell, 0)
            b.add(acc, acc, bucket)
        b.sws(acc, "r0", total)
    b.halt()

    expected = np.bincount(values, minlength=BUCKETS)
    return b.build("histogram"), layout, hist, total, expected


def main():
    rng = np.random.default_rng(5)
    threads_per_proc = 4
    processors = 2
    nthreads = processors * threads_per_proc
    program, layout, hist, total, expected = build_histogram(nthreads, rng)

    for model in (
        SwitchModel.SWITCH_ON_LOAD,
        SwitchModel.EXPLICIT_SWITCH,
        SwitchModel.CONDITIONAL_SWITCH,
    ):
        code = prepare_for_model(program, model)
        config = MachineConfig(
            model=model,
            num_processors=processors,
            threads_per_processor=threads_per_proc,
            latency=200,
        )
        sim = Simulator(
            code,
            config,
            layout.build_image(),
            [{TID_REG: t, NTHREADS_REG: nthreads} for t in range(nthreads)],
        )
        result = sim.run()
        got = result.shared[hist : hist + BUCKETS]
        assert got == expected.tolist(), f"histogram wrong under {model}"
        assert result.shared[total] == VALUES
        print(
            f"{model.value:20s} wall={result.wall_cycles:7d} cycles, "
            f"histogram verified against numpy"
        )


if __name__ == "__main__":
    main()
