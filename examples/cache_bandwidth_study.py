#!/usr/bin/env python3
"""Section 6 in miniature: caching, bandwidth, and the critical-section
problem.

Run with::

    python examples/cache_bandwidth_study.py

Part 1 compares the explicit-switch (uncached) and conditional-switch
(cached) machines on two contrasting applications: sor, whose stencil
reuses neighbours heavily, and mp3d, whose scattered particle records
cache poorly — the paper's bandwidth story.

Part 2 reproduces the Section 6.2 anomaly: under conditional-switch,
long cache-hit runs starve lock holders (ugray's work-queue lock) unless
the forced-switch interval caps them.
"""

from repro.apps import get_app
from repro.compiler import prepare_for_model
from repro.machine import MachineConfig, SwitchModel
from repro.runtime import run_app

SIZES = {
    "sor": {"n": 24, "iterations": 3},
    "mp3d": {"particles": 192, "steps": 3, "cells": 4},
    "ugray": {"width": 12, "height": 8, "grid": 5, "spheres": 10, "steps": 12},
}


def run(name, model, **config_extra):
    spec = get_app(name)
    app = spec.build(8, **SIZES[name])
    program = prepare_for_model(app.program, model)
    config = MachineConfig(
        model=model,
        num_processors=2,
        threads_per_processor=4,
        latency=200,
        **config_extra,
    )
    return run_app(app, config, program=program)


def part1():
    print("Part 1: what a cache buys (and when it doesn't)\n")
    header = (
        f"{'app':6s} {'machine':20s} {'wall':>8s} {'hit rate':>9s} "
        f"{'bits/cycle':>11s}"
    )
    print(header)
    for name in ("sor", "mp3d"):
        for model in (SwitchModel.EXPLICIT_SWITCH, SwitchModel.CONDITIONAL_SWITCH):
            result = run(name, model)
            stats = result.stats
            print(
                f"{name:6s} {model.value:20s} {result.wall_cycles:8d} "
                f"{stats.hit_rate:9.0%} {stats.bandwidth_bits_per_cycle():11.2f}"
            )
        print()
    print(
        "sor's stencil caches well (hit rate >90%) and its bandwidth\n"
        "drops; mp3d's scattered, rewritten records defeat the cache —\n"
        "the paper's 'benefits little from caching'.\n"
    )


def part2():
    print("Part 2: the Section 6.2 critical-section fix\n")
    print(f"{'forced interval':>15s} {'wall cycles':>12s} {'forced switches':>16s}")
    for interval in (800, 400, 200, 100):
        result = run(
            "ugray",
            SwitchModel.CONDITIONAL_SWITCH,
            forced_switch_interval=interval,
        )
        print(
            f"{interval:>15d} {result.wall_cycles:>12d} "
            f"{result.stats.forced_switches:>16d}"
        )
    print(
        "\nWith a large interval, threads riding long cache-hit runs hold\n"
        "the processor while siblings queue on the row lock; capping the\n"
        "run (the paper uses 200 cycles) restores progress."
    )


if __name__ == "__main__":
    part1()
    part2()
