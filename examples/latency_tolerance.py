#!/usr/bin/env python3
"""How many threads does it take to hide a given latency?

Run with::

    python examples/latency_tolerance.py

Sweeps the multithreading level for the water application at several
round-trip latencies under three switch models, printing the efficiency
surface.  The paper's rule of thumb falls out: the threads needed scale
like ``latency / mean_run_length + 1``, so grouping (which raises the
mean run length) divides the required thread count.
"""

from repro.apps import WaterApp
from repro.compiler import prepare_for_model
from repro.machine import MachineConfig, SwitchModel
from repro.runtime import run_app

LEVELS = (1, 2, 4, 8, 12)
LATENCIES = (100, 200, 400)
SIZE = {"molecules": 24, "iterations": 2}


def baseline_cycles() -> int:
    app = WaterApp().build(1, **SIZE)
    return run_app(app, MachineConfig(model=SwitchModel.IDEAL)).wall_cycles


def main():
    t1 = baseline_cycles()
    spec = WaterApp()
    for model in (
        SwitchModel.SWITCH_ON_LOAD,
        SwitchModel.EXPLICIT_SWITCH,
        SwitchModel.CONDITIONAL_SWITCH,
    ):
        print(f"\n{model.value} — efficiency (P=2)")
        print("  latency " + "".join(f"{f'M={m}':>8s}" for m in LEVELS))
        for latency in LATENCIES:
            cells = []
            mean_run = None
            for level in LEVELS:
                app = spec.build(2 * level, **SIZE)
                program = prepare_for_model(app.program, model)
                config = MachineConfig(
                    model=model,
                    num_processors=2,
                    threads_per_processor=level,
                    latency=latency,
                )
                result = run_app(app, config, program=program)
                cells.append(result.efficiency(t1))
                mean_run = result.stats.mean_run_length
            row = "".join(f"{value:8.2f}" for value in cells)
            print(f"  {latency:7d} {row}   (mean run ~{mean_run:.0f})")


if __name__ == "__main__":
    main()
