"""Register naming and layout."""

import pytest

from repro.isa.registers import (
    NUM_INT_REGS,
    NUM_REGS,
    reg_index,
    reg_name,
    is_fp_reg,
    TID_REG,
    NTHREADS_REG,
    ARGS_REG,
    SP_REG,
    LINK_REG,
)


def test_integer_registers_map_to_low_slots():
    assert reg_index("r0") == 0
    assert reg_index("r31") == 31


def test_fp_registers_map_to_high_slots():
    assert reg_index("f0") == NUM_INT_REGS
    assert reg_index("f31") == NUM_REGS - 1


def test_aliases():
    assert reg_index("zero") == 0
    assert reg_index("tid") == TID_REG == 4
    assert reg_index("ntid") == NTHREADS_REG == 5
    assert reg_index("args") == ARGS_REG == 6
    assert reg_index("sp") == SP_REG == 29
    assert reg_index("ra") == LINK_REG == 31


def test_integers_pass_through():
    assert reg_index(17) == 17
    assert reg_index(63) == 63


def test_case_insensitive():
    assert reg_index("R7") == 7
    assert reg_index("F3") == 35


@pytest.mark.parametrize("bad", ["r32", "f32", "x1", "", "r-1", "r", 64, -1])
def test_rejects_bad_names(bad):
    with pytest.raises(ValueError):
        reg_index(bad)


def test_round_trip_all_slots():
    for slot in range(NUM_REGS):
        assert reg_index(reg_name(slot)) == slot


def test_reg_name_bounds():
    with pytest.raises(ValueError):
        reg_name(64)
    with pytest.raises(ValueError):
        reg_name(-1)


def test_is_fp_reg():
    assert not is_fp_reg(31)
    assert is_fp_reg(32)
