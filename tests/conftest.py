"""Shared test helpers."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import pytest

from repro.isa import assemble, Program
from repro.machine import MachineConfig, SwitchModel, Simulator, SimulationResult


def run_asm(
    asm: str,
    shared: Optional[List] = None,
    model: SwitchModel = SwitchModel.IDEAL,
    processors: int = 1,
    threads: int = 1,
    latency: int = 200,
    local_size: int = 64,
    regs: Optional[Sequence[Dict[int, object]]] = None,
    tracer=None,
    **config_extra,
) -> SimulationResult:
    """Assemble and simulate a snippet; returns the SimulationResult."""
    program = assemble(asm)
    return run_program(
        program,
        shared=shared,
        model=model,
        processors=processors,
        threads=threads,
        latency=latency,
        local_size=local_size,
        regs=regs,
        tracer=tracer,
        **config_extra,
    )


def run_program(
    program: Program,
    shared: Optional[List] = None,
    model: SwitchModel = SwitchModel.IDEAL,
    processors: int = 1,
    threads: int = 1,
    latency: int = 200,
    local_size: int = 64,
    regs: Optional[Sequence[Dict[int, object]]] = None,
    tracer=None,
    **config_extra,
) -> SimulationResult:
    if model is SwitchModel.IDEAL:
        latency = 0
    config_extra.setdefault("max_cycles", 50_000_000)
    config = MachineConfig(
        model=model,
        num_processors=processors,
        threads_per_processor=threads,
        latency=latency,
        **config_extra,
    )
    total = config.total_threads
    thread_regs = list(regs) if regs is not None else [{} for _ in range(total)]
    for tid, reg_map in enumerate(thread_regs):
        reg_map.setdefault(4, tid)
        reg_map.setdefault(5, total)
    sim = Simulator(
        program,
        config,
        list(shared) if shared is not None else [0] * 64,
        thread_regs,
        local_size=local_size,
        tracer=tracer,
    )
    return sim.run()


@pytest.fixture
def tiny_shared() -> List:
    return list(range(16)) + [0] * 48


ALL_MODELS = list(SwitchModel)
NONIDEAL_MODELS = [m for m in SwitchModel if m is not SwitchModel.IDEAL]
