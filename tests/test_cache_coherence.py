"""Cache-system integration: coherence, MSHR merging, write combining."""

import pytest

from repro.machine import SwitchModel
from repro.machine.network import MsgKind
from conftest import run_asm


def test_producer_consumer_through_cache():
    """A consumer spinning on a cached flag must observe the producer's
    store (invalidation reaches every cached copy)."""
    asm = """
        bne  r4, r0, consumer
        li   r1, 7
        sws  r1, 8(r0)      ; payload
        li   r1, 1
        sws  r1, 9(r0)      ; flag (same line: write-combined)
        halt
    consumer:
        lws  r2, 9(r0)
        beq  r2, r0, consumer
        lws  r3, 8(r0)
        swl  r3, 0(r0)
        halt
    """
    result = run_asm(
        asm, model=SwitchModel.CONDITIONAL_SWITCH, processors=2, latency=200
    )
    assert result.threads[1].local[0] == 7


def test_mshr_merges_same_line_loads():
    """Grouped loads to one line issue a single line fill."""
    asm = """
        lws r1, 0(r0)
        lws r2, 1(r0)
        lws r3, 2(r0)
        switch
        add r6, r1, r2
        add r6, r6, r3
        swl r6, 0(r0)
        halt
    """
    result = run_asm(
        asm,
        shared=[10, 20, 30] + [0] * 13,
        model=SwitchModel.CONDITIONAL_SWITCH,
        latency=200,
    )
    stats = result.stats
    assert stats.msg_counts[MsgKind.LINE_READ] == 1
    assert stats.cache_merged == 2
    assert result.threads[0].local[0] == 60
    # All three were in flight together: roughly one round trip total.
    assert result.wall_cycles < 280


def test_merged_load_waits_for_fill():
    """A merged load is not magically faster than the fill it joins."""
    asm = """
        lws r1, 0(r0)
        lws r2, 1(r0)
        switch
        add r3, r1, r2
        halt
    """
    result = run_asm(
        asm, shared=[5, 6] + [0] * 14, model=SwitchModel.CONDITIONAL_SWITCH,
        latency=200,
    )
    assert result.wall_cycles >= 200


def test_write_combining_accounting():
    """A burst of stores into one line counts one full write-through and
    cheap combined messages for the rest."""
    body = "\n".join(f"sws r1, {i}(r0)" for i in range(6))
    asm = f"li r1, 3\n{body}\nhalt\n"
    result = run_asm(asm, model=SwitchModel.CONDITIONAL_SWITCH, latency=200)
    stats = result.stats
    assert stats.msg_counts[MsgKind.WRITE_THROUGH] == 1
    assert stats.msg_counts[MsgKind.WRITE_COMBINED] == 5
    assert all(value == 3 for value in result.shared[0:6])


def test_write_combining_breaks_across_lines():
    asm = """
        li  r1, 3
        sws r1, 0(r0)
        sws r1, 9(r0)   ; different 8-word line
        halt
    """
    result = run_asm(asm, model=SwitchModel.CONDITIONAL_SWITCH, latency=200)
    assert result.stats.msg_counts[MsgKind.WRITE_THROUGH] == 2
    assert result.stats.msg_counts[MsgKind.WRITE_COMBINED] == 0


def test_own_store_visible_to_own_load():
    asm = """
        lws r1, 0(r0)       ; fill the line
        switch
        li  r2, 42
        sws r2, 0(r0)
        lws r3, 0(r0)       ; must see 42, cached or not
        switch
        swl r3, 0(r0)
        halt
    """
    result = run_asm(asm, model=SwitchModel.CONDITIONAL_SWITCH, latency=200)
    assert result.threads[0].local[0] == 42


def test_own_faa_visible_to_own_load():
    asm = """
        lws r1, 0(r0)
        switch
        li  r2, 5
        faa r3, 0(r0), r2
        switch
        lws r4, 0(r0)
        switch
        swl r4, 0(r0)
        halt
    """
    result = run_asm(
        asm, shared=[100] + [0] * 15, model=SwitchModel.CONDITIONAL_SWITCH,
        latency=200,
    )
    assert result.threads[0].local[0] == 105


def test_invalidation_generates_messages():
    asm = """
        bne  r4, r0, reader
    writerloop:
        li   r1, 1
        sws  r1, 0(r0)
        lws  r2, 20(r0)     ; wait for reader to confirm
        beq  r2, r0, writerloop
        halt
    reader:
        lws  r3, 0(r0)      ; caches the line
        beq  r3, r0, reader
        li   r3, 1
        sws  r3, 20(r0)
        halt
    """
    result = run_asm(
        asm, model=SwitchModel.CONDITIONAL_SWITCH, processors=2, latency=200
    )
    assert result.stats.msg_counts[MsgKind.INVALIDATE] > 0


def test_directory_invariants_after_app_run():
    from repro.apps import get_app
    from repro.compiler import prepare_for_model
    from repro.harness.sizes import SCALES
    from repro.machine import MachineConfig
    from repro.runtime import make_simulator

    spec = get_app("sor")
    app = spec.build(4, **SCALES["tiny"]["sor"])
    program = prepare_for_model(app.program, SwitchModel.CONDITIONAL_SWITCH)
    config = MachineConfig(
        model=SwitchModel.CONDITIONAL_SWITCH,
        num_processors=2,
        threads_per_processor=2,
        latency=200,
    )
    sim = make_simulator(app, config, program=program)
    sim.run()
    sim.directory.check_invariants()


def test_eviction_drops_directory_entry():
    # Touch more lines than one set can hold; the victim's directory
    # entry must be dropped so later writes do not invalidate a ghost.
    from repro.machine import MachineConfig, Simulator
    from repro.isa import assemble
    from repro.machine.config import CacheConfig

    # 1-set, 1-way, 4-word lines: every new line evicts the previous.
    loads = "\n".join(f"lws r1, {i * 4}(r0)\nswitch" for i in range(4))
    program = assemble(loads + "\nhalt\n")
    config = MachineConfig(
        model=SwitchModel.CONDITIONAL_SWITCH,
        latency=200,
        cache=CacheConfig(num_sets=1, assoc=1, line_words=4),
    )
    sim = Simulator(program, config, [0] * 32, [{}])
    sim.run()
    sim.directory.check_invariants()
    total_lines = sum(
        len(sim.directory.sharers_of(line)) for line in range(8)
    )
    assert total_lines <= 1  # only the resident line is registered
