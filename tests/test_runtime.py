"""Runtime layer: layout allocator, sync primitives, loader."""

import pytest

from repro.isa.builder import ProgramBuilder
from repro.isa.registers import TID_REG, NTHREADS_REG, ARGS_REG
from repro.machine import MachineConfig, SwitchModel, Simulator
from repro.runtime import (
    SharedLayout,
    emit_lock_acquire,
    emit_lock_release,
    emit_barrier,
    emit_counter_next,
    make_simulator,
    run_app,
    LOCK_WORDS,
    BARRIER_WORDS,
)
from repro.apps.base import BuiltApp
from conftest import run_program, NONIDEAL_MODELS


# -- layout ---------------------------------------------------------------------


def test_layout_alignment_and_sizes():
    layout = SharedLayout(align=8)
    a = layout.alloc("a", 3)
    c = layout.alloc("b", 5)
    assert a == 0
    assert c == 8  # aligned up
    assert layout.total_words == 13
    assert layout.size_of("a") == 3


def test_layout_duplicate_name():
    layout = SharedLayout()
    layout.alloc("x", 1)
    with pytest.raises(ValueError, match="twice"):
        layout.alloc("x", 1)


def test_layout_init_values_and_image():
    layout = SharedLayout()
    base = layout.alloc("arr", 4, [7, 8])
    word = layout.word("w", 42)
    image = layout.build_image(pad=2)
    assert image[base : base + 2] == [7, 8]
    assert image[word] == 42
    assert len(image) == layout.total_words + 2


def test_layout_poke_and_slice():
    layout = SharedLayout()
    base = layout.alloc("arr", 4)
    layout.poke(base + 2, 99)
    image = layout.build_image()
    assert layout.region_slice(image, "arr") == [0, 0, 99, 0]
    with pytest.raises(ValueError):
        layout.poke(100, 1)


def test_layout_rejects_oversized_init():
    layout = SharedLayout()
    with pytest.raises(ValueError):
        layout.alloc("a", 2, [1, 2, 3])


# -- synchronisation ------------------------------------------------------------


def _mutex_program():
    """Each thread does 8 lock-protected increments of a shared word."""
    layout = SharedLayout()
    lock = layout.alloc("lock", LOCK_WORDS)
    counter = layout.word("counter")
    b = ProgramBuilder()
    lockr = b.int_reg()
    b.li(lockr, lock)
    i = b.int_reg()
    val = b.int_reg()
    with b.for_range(i, 0, 8):
        ticket = emit_lock_acquire(b, lockr)
        b.lws(val, "r0", counter)
        b.addi(val, val, 1)
        b.sws(val, "r0", counter)
        emit_lock_release(b, lockr, ticket)
    b.halt()
    return b.build("mutex"), layout, counter


@pytest.mark.parametrize(
    "model",
    [
        SwitchModel.SWITCH_ON_LOAD,
        SwitchModel.EXPLICIT_SWITCH,
        SwitchModel.CONDITIONAL_SWITCH,
        SwitchModel.SWITCH_ON_MISS,
    ],
)
def test_lock_gives_mutual_exclusion(model):
    from repro.compiler import prepare_for_model

    program, layout, counter = _mutex_program()
    code = prepare_for_model(program, model)
    result = run_program(
        code, shared=layout.build_image(), processors=2, threads=3, model=model
    )
    assert result.shared[counter] == 8 * 6  # no lost increments


def test_barrier_separates_phases():
    layout = SharedLayout()
    bar = layout.alloc("bar", BARRIER_WORDS)
    before = layout.word("before")
    wrong = layout.word("wrong")
    b = ProgramBuilder()
    barr = b.int_reg()
    b.li(barr, bar)
    one = b.int_reg()
    b.li(one, 1)
    seen = b.int_reg()
    # phase 1: everyone bumps `before`; barrier; phase 2: check that
    # `before` equals nthreads (all phase-1 stores visible).
    b.faa(seen, "r0", before, one)
    emit_barrier(b, barr, NTHREADS_REG)
    b.lws(seen, "r0", before)
    with b.if_cmp("ne", seen, NTHREADS_REG):
        b.sws(one, "r0", wrong)
    b.halt()
    program = b.build("barrier-test")
    result = run_program(
        program,
        shared=layout.build_image(),
        processors=3,
        threads=2,
        model=SwitchModel.SWITCH_ON_LOAD,
    )
    assert result.shared[wrong] == 0
    assert result.shared[before] == 6


def test_barrier_is_reusable():
    layout = SharedLayout()
    bar = layout.alloc("bar", BARRIER_WORDS)
    b = ProgramBuilder()
    barr = b.int_reg()
    b.li(barr, bar)
    i = b.int_reg()
    with b.for_range(i, 0, 5):
        emit_barrier(b, barr, NTHREADS_REG)
    b.halt()
    result = run_program(
        b.build(), shared=layout.build_image(), threads=4,
        model=SwitchModel.SWITCH_ON_LOAD,
    )
    assert all(t.halted for t in result.threads)


def test_counter_distributes_uniquely():
    layout = SharedLayout()
    ctr = layout.word("ctr")
    out = layout.alloc("out", 64)
    b = ProgramBuilder()
    ctrr = b.int_reg()
    outr = b.int_reg()
    one = b.int_reg()
    item = b.int_reg()
    addr = b.int_reg()
    b.li(ctrr, ctr)
    b.li(outr, out)
    b.li(one, 1)
    i = b.int_reg()
    with b.for_range(i, 0, 4):
        emit_counter_next(b, ctrr, item)
        b.add(addr, outr, item)
        b.sws(one, addr, 0)
    b.halt()
    result = run_program(
        b.build(), shared=layout.build_image(), processors=2, threads=2,
        model=SwitchModel.SWITCH_ON_LOAD,
    )
    claimed = result.shared[out : out + 16]
    assert claimed == [1] * 16  # every item claimed exactly once


# -- loader ----------------------------------------------------------------------


def _trivial_app(nthreads: int) -> BuiltApp:
    b = ProgramBuilder()
    b.sws(TID_REG, NTHREADS_REG, 0)  # shared[nthreads + tid... ] no: base=r5
    b.halt()
    # store tid at shared[nthreads]? keep it simple: program above stores
    # tid at address r5 (= nthreads). Use check=None.
    return BuiltApp(
        name="trivial",
        program=b.build(),
        shared=[0] * 64,
        nthreads=nthreads,
        args_base=7,
    )


def test_loader_sets_convention_registers():
    app = _trivial_app(4)
    sim = make_simulator(app, MachineConfig(num_processors=2, threads_per_processor=2))
    assert [t.regs[TID_REG] for t in sim.threads] == [0, 1, 2, 3]
    assert all(t.regs[NTHREADS_REG] == 4 for t in sim.threads)
    assert all(t.regs[ARGS_REG] == 7 for t in sim.threads)


def test_loader_rejects_thread_mismatch():
    app = _trivial_app(4)
    with pytest.raises(ValueError, match="built for 4 threads"):
        make_simulator(app, MachineConfig(num_processors=3, threads_per_processor=1))


def test_run_app_invokes_check():
    app = _trivial_app(1)
    failures = []

    def check(memory):
        failures.append(True)
        raise AssertionError("boom")

    app.check = check
    with pytest.raises(AssertionError, match="boom"):
        run_app(app, MachineConfig())
    assert failures
