"""Application correctness and characteristic memory behaviour.

Correctness: every application verifies its final memory against a
Python/numpy oracle, on every switch model and on several machine shapes
— this is the end-to-end proof that the grouping pass and every machine
model preserve program semantics.

Behaviour: each application must show the memory-access character the
paper reports for it (Table 2 / Sections 5-6).
"""

import pytest

from repro.apps import ALL_APPS, get_app, app_names
from repro.compiler import prepare_for_model, grouping_report
from repro.harness.sizes import SCALES
from repro.machine import MachineConfig, SwitchModel
from repro.runtime import run_app

TINY = SCALES["tiny"]

CORE_MODELS = [
    SwitchModel.IDEAL,
    SwitchModel.SWITCH_ON_LOAD,
    SwitchModel.EXPLICIT_SWITCH,
    SwitchModel.CONDITIONAL_SWITCH,
]
EXTRA_MODELS = [
    SwitchModel.SWITCH_ON_USE,
    SwitchModel.SWITCH_ON_MISS,
    SwitchModel.SWITCH_ON_USE_MISS,
    SwitchModel.SWITCH_EVERY_CYCLE,
]


def run_tiny(name, model, processors=2, threads=2, **extra):
    spec = get_app(name)
    app = spec.build(processors * threads, **TINY[name])
    program = prepare_for_model(app.program, model)
    config = MachineConfig(
        model=model,
        num_processors=processors,
        threads_per_processor=threads,
        latency=0 if model is SwitchModel.IDEAL else 200,
        max_cycles=300_000_000,
        **extra,
    )
    return run_app(app, config, program=program)


@pytest.mark.parametrize("name", app_names())
@pytest.mark.parametrize("model", CORE_MODELS, ids=lambda m: m.value)
def test_app_correct_under_core_models(name, model):
    run_tiny(name, model)  # run_app raises on a wrong result


@pytest.mark.parametrize("name", app_names())
@pytest.mark.parametrize("model", EXTRA_MODELS, ids=lambda m: m.value)
def test_app_correct_under_extra_models(name, model):
    run_tiny(name, model)


@pytest.mark.parametrize("name", app_names())
def test_app_correct_single_thread(name):
    run_tiny(name, SwitchModel.SWITCH_ON_LOAD, processors=1, threads=1)


@pytest.mark.parametrize("name", app_names())
def test_app_correct_odd_thread_count(name):
    run_tiny(name, SwitchModel.EXPLICIT_SWITCH, processors=3, threads=1)


@pytest.mark.parametrize("name", app_names())
def test_app_correct_with_interblock_oracle(name):
    run_tiny(name, SwitchModel.EXPLICIT_SWITCH, interblock_oracle=True)


def test_registry():
    assert app_names() == [
        "sieve", "blkmat", "sor", "ugray", "water", "locus", "mp3d"
    ]
    assert get_app("sor").name == "sor"
    with pytest.raises(KeyError, match="unknown application"):
        get_app("doom")


def test_build_default_scaling():
    spec = get_app("sieve")
    app = spec.build_default(2, scale=0.5)
    assert app.meta["limit"] == spec.default_size["limit"] * 0.5


# -- characteristic behaviour (paper Table 2 / Sections 5-6) -------------------


def test_sor_has_dominant_short_runs_under_sol():
    result = run_tiny("sor", SwitchModel.SWITCH_ON_LOAD)
    fractions = result.stats.run_length_fractions([1, 2, 5, 10, 100])
    assert fractions["1"] + fractions["2"] > 0.5  # paper: 39% + 39%


def test_sor_grouping_eliminates_short_runs():
    result = run_tiny("sor", SwitchModel.EXPLICIT_SWITCH)
    fractions = result.stats.run_length_fractions([1, 2, 5, 10, 100])
    assert fractions["1"] + fractions["2"] < 0.05
    assert result.stats.grouping_factor() > 3.0  # five-load stencil groups


def test_sor_static_group_of_five():
    spec = get_app("sor")
    app = spec.build(1, **TINY["sor"])
    report = grouping_report(app.program)
    # 5 stencil loads + barrier traffic; far fewer groups than loads.
    assert report.grouping_factor >= 1.9


def test_blkmat_has_long_runs():
    result = run_tiny("blkmat", SwitchModel.SWITCH_ON_LOAD)
    assert result.stats.mean_run_length > 50  # "exceptionally high"


def test_sieve_runs_are_constant():
    result = run_tiny("sieve", SwitchModel.SWITCH_ON_LOAD)
    fractions = result.stats.run_length_fractions([1, 2, 5, 10, 100])
    assert fractions["11-100"] > 0.7  # one narrow band dominates


def test_grouping_reduces_switches():
    """Explicit-switch must context switch much less than switch-on-load
    (the paper: 50-80% fewer switches) on the groupable applications."""
    for name in ("sor", "water", "mp3d"):
        sol = run_tiny(name, SwitchModel.SWITCH_ON_LOAD)
        grouped = run_tiny(name, SwitchModel.EXPLICIT_SWITCH)
        assert grouped.stats.switches < 0.75 * sol.stats.switches, name


def test_mp3d_caches_poorly_sor_caches_well():
    mp3d = run_tiny("mp3d", SwitchModel.CONDITIONAL_SWITCH)
    sor = run_tiny("sor", SwitchModel.CONDITIONAL_SWITCH)
    assert sor.stats.hit_rate > 0.8
    assert mp3d.stats.hit_rate < sor.stats.hit_rate - 0.3


def test_ugray_uses_critical_sections():
    result = run_tiny("ugray", SwitchModel.SWITCH_ON_LOAD)
    assert result.stats.sync_msgs > 0  # lock-protected row counter


def test_water_loads_group_pairwise():
    result = run_tiny("water", SwitchModel.EXPLICIT_SWITCH)
    assert result.stats.grouping_factor() > 1.4  # coordinate pairs group


def test_locus_gains_little_from_intra_block_grouping():
    spec = get_app("locus")
    app = spec.build(1, **TINY["locus"])
    report = grouping_report(app.program)
    assert report.grouping_factor < 1.6  # paper: 1.05


def test_no_implicit_use_switches_in_grouped_apps():
    """The grouping pass must place a SWITCH before every use — an
    implicit use-switch under EXPLICIT_SWITCH means it missed one."""
    for name in app_names():
        result = run_tiny(name, SwitchModel.EXPLICIT_SWITCH)
        assert result.stats.implicit_use_switches == 0, name


def test_apps_scale_parameters():
    # A couple of non-default sizes per app still verify.
    cases = {
        "sieve": {"limit": 900},
        "blkmat": {"n": 12, "block": 4},
        "sor": {"n": 6, "iterations": 1},
        "ugray": {"width": 4, "height": 4, "grid": 4, "spheres": 3, "steps": 6},
        "water": {"molecules": 7, "iterations": 1},
        "locus": {"width": 8, "height": 6, "wires": 5},
        "mp3d": {"particles": 24, "steps": 1, "cells": 3},
    }
    for name, size in cases.items():
        spec = get_app(name)
        app = spec.build(2, **size)
        program = prepare_for_model(app.program, SwitchModel.EXPLICIT_SWITCH)
        run_app(
            app,
            MachineConfig(
                model=SwitchModel.EXPLICIT_SWITCH,
                num_processors=2,
                threads_per_processor=1,
                max_cycles=300_000_000,
            ),
            program=program,
        )
