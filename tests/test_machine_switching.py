"""Model-specific context-switch behaviour and timing."""

import pytest

from repro.machine import MachineConfig, SwitchModel
from conftest import run_asm

LOAD_HALT = """
    lws r1, 0(r0)
    halt
"""

TWO_LOADS = """
    lws r1, 0(r0)
    lws r2, 1(r0)
    add r3, r1, r2
    swl r3, 0(r0)
    halt
"""

GROUPED_TWO_LOADS = """
    lws r1, 0(r0)
    lws r2, 1(r0)
    switch
    add r3, r1, r2
    swl r3, 0(r0)
    halt
"""


def test_switch_on_load_waits_full_latency():
    result = run_asm(LOAD_HALT, model=SwitchModel.SWITCH_ON_LOAD, latency=200)
    # load issues at cycle 0; its round trip completes at cycle 200.
    assert result.wall_cycles == 200
    assert result.stats.switches == 1


def test_switch_on_load_serialises_loads():
    result = run_asm(TWO_LOADS, model=SwitchModel.SWITCH_ON_LOAD, latency=200)
    # Each load waits its own round trip: > 400 cycles.
    assert result.wall_cycles > 400
    assert result.stats.switches == 2


def test_explicit_switch_overlaps_grouped_loads():
    result = run_asm(GROUPED_TWO_LOADS, model=SwitchModel.EXPLICIT_SWITCH, latency=200)
    # Both loads in flight together: one wait of ~200, not two.
    assert 200 <= result.wall_cycles < 240
    assert result.stats.switches == 1


def test_explicit_switch_without_switch_falls_back_to_use():
    result = run_asm(TWO_LOADS, model=SwitchModel.EXPLICIT_SWITCH, latency=200)
    # The add uses r1 while in flight: an implicit use-switch is recorded.
    assert result.stats.implicit_use_switches >= 1


def test_switch_on_use_waits_at_first_use():
    result = run_asm(TWO_LOADS, model=SwitchModel.SWITCH_ON_USE, latency=200)
    # Loads overlap (split-phase): wall well under two round trips.
    assert result.wall_cycles < 300
    assert result.stats.implicit_use_switches == 0
    assert result.stats.switches == 1


def test_shared_stores_never_switch():
    result = run_asm(
        """
        li  r1, 9
        sws r1, 0(r0)
        sws r1, 1(r0)
        sws r1, 2(r0)
        halt
        """,
        model=SwitchModel.SWITCH_ON_LOAD,
        latency=200,
    )
    assert result.stats.switches == 0
    assert result.wall_cycles == 4
    assert result.shared[0:3] == [9, 9, 9]


def test_conditional_switch_skips_on_hit():
    asm = """
        lws r1, 0(r0)
        switch
        lws r2, 0(r0)
        switch
        add r3, r1, r2
        halt
    """
    result = run_asm(asm, model=SwitchModel.CONDITIONAL_SWITCH, latency=200)
    # First load misses (switch taken), second hits the fetched line
    # (switch skipped).
    assert result.stats.cache_misses == 1
    assert result.stats.cache_hits == 1
    assert result.stats.switches == 1
    assert result.stats.skipped_switches == 1


def test_conditional_switch_forced_interval():
    # A long cache-hit loop must be broken by the forced switch.
    asm = """
        lws  r1, 0(r0)
        switch
        li   r2, 200
    loop:
        lws  r3, 0(r0)
        switch
        addi r2, r2, -1
        bne  r2, r0, loop
        halt
    """
    result = run_asm(
        asm,
        model=SwitchModel.CONDITIONAL_SWITCH,
        latency=200,
        forced_switch_interval=100,
    )
    assert result.stats.forced_switches > 0


def test_switch_on_miss_charges_flush_cost():
    flushes = {}
    for cost in (0, 8):
        result = run_asm(
            TWO_LOADS,
            model=SwitchModel.SWITCH_ON_MISS,
            latency=200,
            switch_cost=cost,
            threads=2,
        )
        flushes[cost] = result.stats.switch_overhead_cycles
    assert flushes[0] == 0
    assert flushes[8] > 0


def test_switch_every_cycle_rotates_each_instruction():
    result = run_asm(
        """
        li r1, 1
        li r2, 2
        li r3, 3
        halt
        """,
        model=SwitchModel.SWITCH_EVERY_CYCLE,
    )
    # Every instruction ends a run.
    assert result.stats.switches >= 3
    assert result.stats.mean_run_length == pytest.approx(1.0)


def test_round_robin_is_fair():
    # Two threads ping-pong on shared loads; their halt times interleave.
    asm = """
        li  r9, 8
    loop:
        lws r1, 0(r0)
        addi r9, r9, -1
        bne r9, r0, loop
        halt
    """
    result = run_asm(asm, model=SwitchModel.SWITCH_ON_LOAD, threads=4, latency=200)
    halts = sorted(t.halt_time for t in result.threads)
    assert halts[-1] - halts[0] < 100  # all finish within a whisker


def test_multithreading_hides_latency():
    asm = """
        li  r9, 32
    loop:
        lws r1, 0(r0)
        add r2, r1, r1
        add r2, r1, r1
        add r2, r1, r1
        addi r9, r9, -1
        bne r9, r0, loop
        halt
    """
    walls = {}
    for threads in (1, 8):
        result = run_asm(
            asm, model=SwitchModel.SWITCH_ON_LOAD, threads=threads, latency=200
        )
        walls[threads] = result.wall_cycles
    # Eight threads do eight times the work in much less than 8x the time
    # of one thread (latency overlap).
    assert walls[8] < walls[1] * 2


def test_run_lengths_partition_busy_cycles():
    result = run_asm(TWO_LOADS, model=SwitchModel.SWITCH_ON_LOAD, latency=200)
    stats = result.stats
    recorded = sum(length * count for length, count in stats.run_lengths.items())
    assert recorded == stats.busy_cycles


def test_ideal_never_switches(tiny_shared):
    result = run_asm(TWO_LOADS, model=SwitchModel.IDEAL, shared=tiny_shared)
    assert result.stats.switches == 0
    assert result.threads[0].local[0] == tiny_shared[0] + tiny_shared[1]
