"""The load-grouping scheduler (Section 5.1)."""

from repro.isa import assemble, Op
from repro.compiler import group_block, group_program, GroupingReport
from repro.compiler.passes import strip_switches, prepare_for_model, grouping_report
from repro.machine.models import SwitchModel
from conftest import run_program

SOR_STYLE = """
    lws  f2, 0(r9)
    fadd f7, f2, f2
    lws  f3, 1(r9)
    fadd f7, f7, f3
    lws  f4, 2(r9)
    fadd f7, f7, f4
    sws  f7, 3(r9)
    halt
"""


def asm_block(asm: str):
    """Assemble a snippet and return its body without the final HALT."""
    if "halt" not in asm:
        asm = asm + "\nhalt\n"
    return assemble(asm).instructions[:-1]


def ops(instrs):
    return [ins.op for ins in instrs]


def test_independent_loads_form_one_group():
    report = GroupingReport()
    scheduled = group_block(asm_block(SOR_STYLE), report)
    sequence = ops(scheduled)
    # Three loads first, one SWITCH, then the arithmetic, then the store.
    assert sequence[:4] == [Op.LWS, Op.LWS, Op.LWS, Op.SWITCH]
    assert report.groups == 1
    assert report.shared_loads == 3
    assert report.grouping_factor == 3.0


def test_dependent_loads_stay_separate():
    block = asm_block(
        """
        lws r1, 0(r9)
        lws r2, 0(r1)
        halt
        """.replace("halt", "nop")
    )
    report = GroupingReport()
    scheduled = group_block(block, report)
    # Pointer chase: address of the second load depends on the first.
    assert report.groups == 2
    assert ops(scheduled).count(Op.SWITCH) == 2


def test_store_blocks_group_growth():
    block = asm_block(
        """
        lws r1, 0(r9)
        sws r1, 1(r9)
        lws r2, 2(r9)
        nop
        """
    )
    report = GroupingReport()
    group_block(block, report)
    # The store conflicts with the later load (pessimistic aliasing), so
    # the loads cannot merge into one group.
    assert report.groups == 2


def test_faa_forms_its_own_group():
    block = asm_block(
        """
        lws r1, 0(r9)
        faa r2, 1(r9), r3
        lws r4, 2(r9)
        nop
        """
    )
    report = GroupingReport()
    group_block(block, report)
    assert report.groups == 3


def test_address_arithmetic_hoisted_to_enable_grouping():
    block = asm_block(
        """
        lws  r1, 0(r9)
        addi r8, r9, 16
        lws  r2, 0(r8)
        nop
        """
    )
    report = GroupingReport()
    scheduled = group_block(block, report)
    sequence = ops(scheduled)
    # The addi is load-enabling: it is hoisted into the group region so
    # both loads issue before the single SWITCH.
    assert report.groups == 1
    assert sequence.index(Op.SWITCH) > max(
        i for i, op in enumerate(sequence) if op is Op.LWS
    )
    assert sequence.count(Op.SWITCH) == 1


def test_terminator_stays_last():
    block = assemble(
        """
    top:
        lws r1, 0(r9)
        bne r1, r0, top
        halt
        """
    ).instructions[:2]
    scheduled = group_block(block)
    assert scheduled[-1].op is Op.BNE


def test_block_without_loads_unchanged():
    block = asm_block("add r1, r2, r3\nswl r1, 0(r9)\nnop")
    scheduled = group_block(block)
    assert ops(scheduled) == ops(block)


def test_spin_loads_keep_sync_mark_on_switch():
    block = asm_block("lws r1, 0(r9) ; sync\nnop")
    scheduled = group_block(block)
    switch = [ins for ins in scheduled if ins.op is Op.SWITCH][0]
    assert switch.sync


def test_grouping_preserves_semantics_sor_style():
    program = assemble(SOR_STYLE)
    grouped = group_program(program)
    shared = [2.0, 3.0, 4.0, 0.0] + [0.0] * 12
    regs = [{9: 0}]
    plain = run_program(program, shared=list(shared), regs=[dict(r) for r in regs])
    fancy = run_program(grouped, shared=list(shared), regs=[dict(r) for r in regs])
    assert plain.shared == fancy.shared


def test_group_program_reports_and_names():
    program = assemble(SOR_STYLE)
    grouped = group_program(program)
    assert grouped.name.endswith("+grouped")
    report = grouping_report(program)
    assert report.groups == grouped.switch_count()


def test_strip_switches():
    program = assemble(SOR_STYLE)
    grouped = group_program(program)
    stripped = strip_switches(grouped)
    assert stripped.switch_count() == 0
    assert stripped.shared_load_count() == grouped.shared_load_count()


def test_strip_switches_suffix_rename_and_legacy_alias():
    from repro.compiler import LEGACY_STRIPPED_SUFFIX, STRIPPED_SUFFIX

    assert STRIPPED_SUFFIX == "-noswitch"
    assert LEGACY_STRIPPED_SUFFIX == "-switch"  # the pre-rename spelling
    program = assemble(SOR_STYLE)
    stripped = strip_switches(group_program(program))
    assert stripped.name.endswith(STRIPPED_SUFFIX)
    legacy = strip_switches(group_program(program),
                            name_suffix=LEGACY_STRIPPED_SUFFIX)
    assert legacy.name.endswith("-switch")


def test_suffix_rename_left_cache_keys_unchanged():
    """Program names are cosmetic: neither the spec key nor the machine
    config key may move when the stripped-code suffix changes.  These
    hashes were recorded *before* the rename."""
    from repro.engine import RunSpec
    from repro.machine import MachineConfig, SwitchModel

    spec = RunSpec(app="sieve", model="switch-on-use", processors=2,
                   level=4, scale="tiny")
    assert spec.key() == "225330b90f6c27ab2d4cd00c77c47b0b"
    config = MachineConfig(model=SwitchModel.SWITCH_ON_USE,
                           num_processors=2, threads_per_processor=4)
    assert config.config_key() == "252b9b54c2dd8277"


def test_prepare_for_model_mapping():
    program = assemble(SOR_STYLE)
    assert prepare_for_model(program, SwitchModel.SWITCH_ON_LOAD) is program
    assert prepare_for_model(program, SwitchModel.SWITCH_ON_MISS) is program
    grouped = prepare_for_model(program, SwitchModel.EXPLICIT_SWITCH)
    assert grouped.switch_count() > 0
    use_code = prepare_for_model(program, SwitchModel.SWITCH_ON_USE)
    assert use_code.switch_count() == 0


def test_grouping_across_blocks_does_not_happen():
    # Intra-block only: loads in different blocks stay in different groups.
    program = assemble(
        """
        lws r1, 0(r9)
        beq r1, r0, other
        lws r2, 1(r9)
    other:
        halt
        """
    )
    grouped = group_program(program)
    assert grouped.switch_count() == 2


def test_grouping_is_deterministic():
    program = assemble(SOR_STYLE)
    a = group_program(program)
    b = group_program(program)
    assert [i.to_asm() for i in a] == [i.to_asm() for i in b]
