"""Per-opcode semantics of the burst interpreter (IDEAL machine)."""

import pytest

from repro.machine.processor import ExecutionError
from conftest import run_asm


def _local(asm: str, shared=None, regs=None):
    result = run_asm(asm, shared=shared, regs=regs)
    return result.threads[0].local


def test_integer_arithmetic():
    local = _local(
        """
        li   r1, 7
        li   r2, -3
        add  r3, r1, r2
        swl r3, 0(r0)
        sub  r3, r1, r2
        swl r3, 1(r0)
        mul  r3, r1, r2
        swl r3, 2(r0)
        halt
        """
    )
    assert local[:3] == [4, 10, -21]


@pytest.mark.parametrize(
    "a, b, quotient, remainder",
    [(7, 2, 3, 1), (-7, 2, -3, -1), (7, -2, -3, 1), (-7, -2, 3, -1)],
)
def test_division_truncates_toward_zero(a, b, quotient, remainder):
    local = _local(
        f"""
        li  r1, {a}
        li  r2, {b}
        div r3, r1, r2
        swl r3, 0(r0)
        rem r3, r1, r2
        swl r3, 1(r0)
        halt
        """
    )
    assert local[:2] == [quotient, remainder]


def test_divide_by_zero_faults():
    with pytest.raises(ExecutionError, match="divide by zero"):
        run_asm("li r1, 1\nli r2, 0\ndiv r3, r1, r2\nhalt\n")


def test_logic_and_shifts():
    local = _local(
        """
        li   r1, 12
        li   r2, 10
        and  r3, r1, r2
        swl r3, 0(r0)
        or   r3, r1, r2
        swl r3, 1(r0)
        xor  r3, r1, r2
        swl r3, 2(r0)
        slli r3, r1, 2
        swl r3, 3(r0)
        srli r3, r1, 1
        swl r3, 4(r0)
        halt
        """
    )
    assert local[:5] == [8, 14, 6, 48, 6]


def test_comparisons():
    local = _local(
        """
        li  r1, 3
        li  r2, 5
        slt r3, r1, r2
        swl r3, 0(r0)
        sle r3, r2, r2
        swl r3, 1(r0)
        seq r3, r1, r2
        swl r3, 2(r0)
        sne r3, r1, r2
        swl r3, 3(r0)
        slti r3, r1, 4
        swl r3, 4(r0)
        halt
        """
    )
    assert local[:5] == [1, 1, 0, 1, 1]


def test_float_ops():
    local = _local(
        """
        fli  f1, 2.5
        fli  f2, 4.0
        fadd f3, f1, f2
        swl f3, 0(r0)
        fsub f3, f1, f2
        swl f3, 1(r0)
        fmul f3, f1, f2
        swl f3, 2(r0)
        fdiv f3, f2, f1
        swl f3, 3(r0)
        fneg f3, f1
        swl f3, 4(r0)
        fabs f3, f3
        swl f3, 5(r0)
        fsqrt f3, f2
        swl f3, 6(r0)
        halt
        """
    )
    assert local[:7] == [6.5, -1.5, 10.0, 1.6, -2.5, 2.5, 2.0]


def test_conversions():
    local = _local(
        """
        li    r1, 7
        cvtif f1, r1
        swl f1, 0(r0)
        fli   f2, -2.9
        cvtfi r2, f2
        swl r2, 1(r0)
        halt
        """
    )
    assert local[0] == 7.0
    assert local[1] == -2  # truncation toward zero


def test_float_compares_produce_ints():
    local = _local(
        """
        fli  f1, 1.5
        fli  f2, 2.5
        fslt r1, f1, f2
        swl r1, 0(r0)
        fsle r1, f2, f1
        swl r1, 1(r0)
        fseq r1, f1, f1
        swl r1, 2(r0)
        halt
        """
    )
    assert local[:3] == [1, 0, 1]


def test_branches():
    local = _local(
        """
        li   r1, 5
        li   r2, 5
        beq  r1, r2, eq_taken
        swl r1, 7(r0)
    eq_taken:
        li   r3, 1
        swl r3, 0(r0)
        bgt  r1, r2, not_taken
        li   r3, 2
        swl r3, 1(r0)
    not_taken:
        halt
        """
    )
    assert local[0] == 1
    assert local[1] == 2
    assert local[7] == 0  # skipped store


def test_jal_and_jr():
    local = _local(
        """
        jal  sub
        swl r2, 0(r0)
        halt
    sub:
        li   r2, 99
        jr   ra
        """
    )
    assert local[0] == 99


def test_r0_is_immutable():
    local = _local(
        """
        li  r0, 42
        addi r0, r0, 1
        swl r0, 0(r0)
        halt
        """
    )
    assert local[0] == 0


def test_local_memory_doubles():
    local = _local(
        """
        li  r2, 3
        li  r3, 4
        sdl r2, 0(r0)
        ldl r6, 0(r0)
        swl r6, 8(r0)
        swl r7, 9(r0)
        halt
        """
    )
    assert local[0:2] == [3, 4]
    assert local[8:10] == [3, 4]


def test_shared_memory_and_faa(tiny_shared):
    result = run_asm(
        """
        li  r1, 5
        lws r2, 2(r0)
        sws r2, 20(r0)
        lds r8, 4(r0)
        sds r8, 30(r0)
        faa r3, 10(r0), r1
        faa r4, 10(r0), r1
        swl r3, 0(r0)
        swl r4, 1(r0)
        halt
        """,
        shared=tiny_shared,
    )
    assert result.shared[20] == 2
    assert result.shared[30:32] == [4, 5]
    assert result.shared[10] == 10 + 5 + 5
    assert result.threads[0].local[0] == 10  # first FAA sees old value
    assert result.threads[0].local[1] == 15


def test_nop_and_switch_are_neutral(tiny_shared):
    result = run_asm("nop\nswitch\nhalt\n", shared=tiny_shared)
    assert result.wall_cycles == 2  # nop + switch each cost one cycle


def test_instruction_costs_accumulate():
    result = run_asm("li r1, 2\nli r2, 3\nmul r3, r1, r2\nhalt\n")
    # li + li + mul(12) = 14 cycles
    assert result.wall_cycles == 14
