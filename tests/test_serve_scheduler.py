"""Scheduler-level serve tests: admission, singleflight, journal, drain."""

import threading
import time

import pytest

from repro.engine import Engine, RunSpec
from repro.serve import (
    AdmissionError,
    JobJournal,
    JobScheduler,
    JobState,
    job_id_for,
    specs_from_payload,
)


def _spec(app="sieve", **kwargs):
    kwargs.setdefault("model", "switch-on-load")
    kwargs.setdefault("processors", 2)
    kwargs.setdefault("level", 2)
    kwargs.setdefault("scale", "tiny")
    return RunSpec(app=app, **kwargs)


class GatedEngine:
    """Engine stand-in whose run_many blocks on a gate — makes queue
    states deterministic for admission-control tests."""

    def __init__(self):
        self.gate = threading.Event()
        self.calls = 0

    def run_many(self, specs, on_error="record", progress=None, timeout=False):
        self.calls += 1
        assert self.gate.wait(30.0), "test forgot to open the gate"
        results = []
        for spec in specs:
            if progress is not None:
                progress({"label": spec.label(), "source": "run",
                          "elapsed": 0.0, "done": 0, "total": len(specs)})
            results.append(_FakeResult())
        return results

    def failure(self, key):
        return None

    def report(self):
        return {name: 0 for name in
                ("executed", "cached", "memo_hits", "failed", "deduped",
                 "simulated_cycles")}

    def close(self):
        pass


class _FakeResult:
    def to_dict(self):
        return {"wall_cycles": 1, "stats": {}, "config": {}}


@pytest.fixture
def gated():
    engine = GatedEngine()
    scheduler = JobScheduler(engine, max_queue_depth=1,
                             max_inflight_bytes=1000)
    yield engine, scheduler
    engine.gate.set()
    scheduler.stop(drain=True, timeout=10.0)


def test_job_id_is_content_derived_and_order_insensitive():
    a, b = _spec("sieve").key(), _spec("sor").key()
    assert job_id_for([a, b]) == job_id_for([b, a])
    assert job_id_for([a]) != job_id_for([b])
    assert job_id_for([a]).startswith("j")


def test_queue_full_rejects_with_retry_after(gated):
    engine, scheduler = gated
    running, _ = scheduler.submit([_spec("sieve")])   # picked up, blocked
    time.sleep(0.05)                                  # worker pops it
    queued, _ = scheduler.submit([_spec("sor")])      # fills depth-1 queue
    with pytest.raises(AdmissionError) as excinfo:
        scheduler.submit([_spec("blkmat")])
    assert excinfo.value.status == 429
    assert excinfo.value.retry_after >= 1
    assert scheduler.metrics.counter("serve.jobs.rejected").value == 1
    engine.gate.set()
    assert running.wait(10.0) and queued.wait(10.0)


def test_byte_budget_rejects(gated):
    engine, scheduler = gated
    with pytest.raises(AdmissionError) as excinfo:
        scheduler.submit([_spec()], nbytes=2000)
    assert excinfo.value.status == 429
    assert "byte budget" in str(excinfo.value)


def test_coalescing_attaches_even_when_queue_full(gated):
    engine, scheduler = gated
    job, coalesced = scheduler.submit([_spec("sieve")])
    time.sleep(0.05)
    scheduler.submit([_spec("sor")])  # queue now full
    again, coalesced_again = scheduler.submit([_spec("sieve")])
    assert not coalesced and coalesced_again
    assert again is job
    assert job.clients == 2
    assert scheduler.metrics.counter("serve.jobs.coalesced").value == 1
    engine.gate.set()


def test_draining_rejects_with_503(gated):
    engine, scheduler = gated
    engine.gate.set()
    scheduler.drain(timeout=10.0)
    with pytest.raises(AdmissionError) as excinfo:
        scheduler.submit([_spec()])
    assert excinfo.value.status == 503


def test_drain_settles_running_and_queued_jobs(gated):
    engine, scheduler = gated
    first, _ = scheduler.submit([_spec("sieve")])
    time.sleep(0.05)
    second, _ = scheduler.submit([_spec("sor")])
    done = []
    drainer = threading.Thread(
        target=lambda: done.append(scheduler.drain(timeout=20.0))
    )
    drainer.start()
    engine.gate.set()
    drainer.join(timeout=20.0)
    assert done == [True]
    assert first.state is JobState.DONE and second.state is JobState.DONE
    assert engine.calls == 2


def test_failed_spec_fails_job_with_error_payload(tmp_path):
    scheduler = JobScheduler(Engine(workers=1))
    spec = _spec(overrides=(("max_cycles", 100),))  # guaranteed timeout
    job, _ = scheduler.submit([spec])
    assert job.wait(60.0)
    assert job.state is JobState.FAILED
    assert job.error["type"] == "SimulationTimeout"
    assert scheduler.metrics.counter("serve.jobs.failed").value == 1
    # A failed job is not a singleflight target: resubmission replaces it.
    retry, coalesced = scheduler.submit([spec])
    assert not coalesced
    assert retry.wait(60.0) and retry.state is JobState.FAILED
    scheduler.stop()


def test_progress_counters_track_resolved_specs():
    scheduler = JobScheduler(Engine(workers=1))
    specs = [_spec("sieve"), _spec("sor")]
    job, _ = scheduler.submit(specs)
    assert job.wait(120.0)
    assert job.state is JobState.DONE
    assert job.done == 2 and job.total == 2
    assert job.last_label in {spec.label() for spec in specs}
    assert scheduler.metrics.counter("serve.specs.resolved").value == 2
    assert len(job.results) == 2
    scheduler.stop()


def test_journal_round_trip_and_torn_tail(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = JobJournal(path)
    from repro.serve.jobs import Job

    job = Job([_spec("sieve"), _spec("sor")])
    journal.record_submit(job)
    job.mark_done([{}, {}])
    journal.record_finish(job)
    journal.close()
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"event": "submit", "job": "jdead", "specs": [{"ap')
    records = JobJournal(path).load()
    assert len(records) == 1
    assert records[0]["job"] == job.job_id
    assert records[0]["state"] == "done"
    assert [spec.key() for spec in records[0]["specs"]] == job.keys


def test_recover_reserves_from_cache_without_recompute(tmp_path):
    cache = tmp_path / "cache"
    journal = tmp_path / "journal.jsonl"
    spec = _spec("sieve")

    first = JobScheduler(Engine(workers=1, cache=str(cache)), journal=journal)
    job, _ = first.submit([spec])
    assert job.wait(60.0) and job.state is JobState.DONE
    original = job.results
    assert first.engine.report()["executed"] == 1
    first.stop()

    second = JobScheduler(Engine(workers=1, cache=str(cache)), journal=journal)
    assert second.recover() == 1
    restored = second.get(job.job_id)
    assert restored is not None and restored is not job
    assert restored.wait(60.0)
    assert restored.state is JobState.DONE
    assert restored.results == original          # byte-identical payloads
    report = second.engine.report()
    assert report["executed"] == 0               # nothing recomputed
    assert report["cached"] == 1
    assert second.metrics.counter("serve.jobs.recovered").value == 1
    second.stop()


def test_specs_from_payload_forms():
    spec = _spec("sieve")
    # Exact to_dict round-trip form.
    [parsed] = specs_from_payload({"spec": spec.to_dict()})
    assert parsed.key() == spec.key()  # latency resolves; content key equal
    # Curl-friendly kwargs form, including a faults mapping.
    [kw] = specs_from_payload(
        {"specs": [{"app": "sieve", "model": "eswitch", "level": 4,
                    "scale": "tiny",
                    "faults": {"latency_model": "uniform", "jitter": 50,
                               "seed": 1}}]}
    )
    assert kw.model == "explicit-switch"
    faults = dict(kw.overrides)["faults"]
    assert faults.latency_model == "uniform" and faults.jitter == 50


@pytest.mark.parametrize(
    "payload",
    [
        [],
        {},
        {"specs": []},
        {"specs": "sieve"},
        {"spec": {"app": "sieve", "model": "not-a-model"}},
        {"spec": {"model": "eswitch"}},
        {"specs": [17]},
    ],
)
def test_specs_from_payload_rejects_malformed(payload):
    with pytest.raises(ValueError):
        specs_from_payload(payload)
