"""Mutation self-test: every lint rule must fire on seeded corruption."""

import random

import pytest

from repro.compiler.passes import prepare_for_model
from repro.lint import RULES, lint_pair
from repro.lint.mutations import (
    MUTATIONS,
    SelfTestError,
    build_sync_victim,
    build_victim,
    run_selftest,
)
from repro.machine.models import SwitchModel


def test_every_rule_has_a_mutation():
    assert set(MUTATIONS) == set(RULES)


@pytest.mark.parametrize("victim", [build_victim, build_sync_victim])
@pytest.mark.parametrize("model", list(SwitchModel))
def test_victims_lint_fully_clean(victim, model):
    program = victim()
    report = lint_pair(program, prepare_for_model(program, model), model)
    assert report.diagnostics == [], report.render()


@pytest.mark.parametrize("seed", range(4))
def test_selftest_proves_every_rule_live(seed):
    summary = run_selftest(seed=seed)
    assert summary["seed"] == seed
    assert summary["rules_proven"] == len(RULES)
    assert set(summary["diagnostics"]) == set(RULES)
    assert all(count >= 1 for count in summary["diagnostics"].values())


@pytest.mark.parametrize("rule_id", sorted(MUTATIONS))
def test_each_mutation_fires_exactly_its_rule(rule_id):
    report = MUTATIONS[rule_id](random.Random(1))
    assert report.by_rule(rule_id), report.render()


def test_selftest_error_is_an_assertion():
    # CI treats SelfTestError like any failed assertion.
    assert issubclass(SelfTestError, AssertionError)
