"""ProgramBuilder DSL: emitters, control flow, register allocation."""

import pytest

from repro.isa import Op, ProgramBuilder, BuilderError
from conftest import run_program


def test_generated_emitters():
    b = ProgramBuilder()
    b.add("r1", "r2", "r3")
    b.lws("f1", "r2", 4)
    b.sws("f1", "r2", 8)
    b.faa("r1", "r2", 0, "r3")
    b.halt()
    program = b.build()
    assert [ins.op for ins in program] == [Op.ADD, Op.LWS, Op.SWS, Op.FAA, Op.HALT]
    assert program[1].imm == 4
    assert program[2].rs2 == 33  # f1 is the stored value


def test_unknown_mnemonic_raises_attribute_error():
    b = ProgramBuilder()
    with pytest.raises(AttributeError):
        b.frobnicate()


def test_for_range_counts():
    b = ProgramBuilder()
    i = b.int_reg()
    total = b.int_reg()
    b.li(total, 0)
    with b.for_range(i, 0, 7):
        b.add(total, total, i)
    b.swl(total, "r0", 0)
    b.halt()
    result = run_program(b.build())
    assert result.threads[0].local[0] == sum(range(7))


def test_for_range_negative_step():
    b = ProgramBuilder()
    i = b.int_reg()
    total = b.int_reg()
    b.li(total, 0)
    with b.for_range(i, 5, 0, step=-1):
        b.addi(total, total, 1)
    b.swl(total, "r0", 0)
    b.halt()
    result = run_program(b.build())
    assert result.threads[0].local[0] == 5


def test_for_range_register_bounds():
    b = ProgramBuilder()
    i = b.int_reg()
    lo = b.int_reg()
    hi = b.int_reg()
    total = b.int_reg()
    b.li(lo, 3)
    b.li(hi, 9)
    b.li(total, 0)
    with b.for_range(i, lo, hi, start_is_reg=True, stop_is_reg=True):
        b.addi(total, total, 1)
    b.swl(total, "r0", 0)
    b.halt()
    result = run_program(b.build())
    assert result.threads[0].local[0] == 6


def test_for_range_zero_step_rejected():
    b = ProgramBuilder()
    i = b.int_reg()
    with pytest.raises(BuilderError):
        with b.for_range(i, 0, 3, step=0):
            pass


def test_if_cmp_both_ways():
    for a, expected in ((1, 10), (5, 0)):
        b = ProgramBuilder()
        x = b.int_reg()
        y = b.int_reg()
        out = b.int_reg()
        b.li(x, a)
        b.li(y, 3)
        b.li(out, 0)
        with b.if_cmp("lt", x, y):
            b.li(out, 10)
        b.swl(out, "r0", 0)
        b.halt()
        result = run_program(b.build())
        assert result.threads[0].local[0] == expected


def test_if_else():
    for a, expected in ((2, 1), (7, 2)):
        b = ProgramBuilder()
        x = b.int_reg()
        limit = b.int_reg()
        out = b.int_reg()
        b.li(x, a)
        b.li(limit, 5)
        with b.if_else("lt", x, limit) as arm:
            b.li(out, 1)
            with arm.otherwise():
                b.li(out, 2)
        b.swl(out, "r0", 0)
        b.halt()
        result = run_program(b.build())
        assert result.threads[0].local[0] == expected


def test_while_cmp():
    b = ProgramBuilder()
    x = b.int_reg()
    limit = b.int_reg()
    b.li(x, 0)
    b.li(limit, 4)
    with b.while_cmp("lt", x, limit):
        b.addi(x, x, 1)
    b.swl(x, "r0", 0)
    b.halt()
    result = run_program(b.build())
    assert result.threads[0].local[0] == 4


def test_register_allocator_exhaustion():
    b = ProgramBuilder()
    with pytest.raises(BuilderError, match="out of integer registers"):
        for _ in range(100):
            b.int_reg()


def test_double_release_rejected():
    b = ProgramBuilder()
    slot = b.int_reg()
    b.release(slot)
    with pytest.raises(BuilderError, match="released twice"):
        b.release(slot)


def test_pair_allocation_is_consecutive():
    b = ProgramBuilder()
    b.int_reg()  # perturb the pool
    lo, hi = b.int_pair()
    assert hi == lo + 1
    flo, fhi = b.fp_pair()
    assert fhi == flo + 1 and flo >= 32


def test_release_and_reuse():
    b = ProgramBuilder()
    slot = b.int_reg()
    b.release(slot)
    assert b.int_reg() == slot  # LIFO reuse


def test_duplicate_label_rejected():
    b = ProgramBuilder()
    b.label("x")
    with pytest.raises(BuilderError, match="duplicate"):
        b.label("x")


def test_fresh_labels_unique():
    b = ProgramBuilder()
    names = {b.fresh("L") for _ in range(100)}
    assert len(names) == 100


def test_switch_takes_no_operands():
    b = ProgramBuilder()
    with pytest.raises(BuilderError):
        b.switch("r1")
