"""Engine resilience: per-run deadlines, pool restarts, cache quarantine."""

import multiprocessing
import os
import signal
import sys
import time

import pytest

from repro.engine import Engine, ResultCache, RunSpec
from repro.engine import executor as executor_module
from repro.machine.simulator import SimulationTimeout

_REAL_EXECUTE = executor_module.execute_spec

_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not _FORK, reason="patched workers require fork inheritance"
)

#: Sleep injected per app by the patched executors below.  The patched
#: functions are module-level so worker processes (forked before the
#: sweep, inheriting the monkeypatch and this module in sys.modules)
#: unpickle them by reference.
_SLEEPS = {"sieve": 2.5, "sor": 0.5}

#: Marker-file path for the one-shot worker killer (set by the test
#: before the pool forks; inherited by the children).
_KILL_MARKER = ""


def _sleepy_execute(spec, include_shared=False):
    time.sleep(_SLEEPS.get(spec.app, 0.0))
    return _REAL_EXECUTE(spec, include_shared)


def _killer_execute(spec, include_shared=False):
    if spec.app == "sor" and not os.path.exists(_KILL_MARKER):
        with open(_KILL_MARKER, "w", encoding="utf-8"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return _REAL_EXECUTE(spec, include_shared)


def _spec(app, **kwargs):
    kwargs.setdefault("model", "switch-on-load")
    kwargs.setdefault("processors", 2)
    kwargs.setdefault("level", 2)
    kwargs.setdefault("scale", "tiny")
    return RunSpec(app=app, **kwargs)


# -- per-run timeout semantics ------------------------------------------------------


@needs_fork
def test_timeout_is_a_per_run_deadline(monkeypatch):
    """Each future's budget runs from *its own* submission: a fast run
    that landed within its deadline is kept even though it is collected
    after a slow earlier run burned the collection clock."""
    monkeypatch.setattr(executor_module, "execute_spec", _sleepy_execute)
    slow, fast = _spec("sieve"), _spec("sor")
    with Engine(workers=2, timeout=1.5) as engine:
        results = engine.run_many([slow, fast], on_error="record")
        assert results[0] is None  # 2.5s sleep > 1.5s budget
        assert results[1] is not None  # landed at ~0.6s, kept at collection
        with pytest.raises(Exception, match="per-run timeout"):
            engine.run(slow)


@needs_fork
def test_timeout_failure_names_the_spec(monkeypatch):
    monkeypatch.setattr(executor_module, "execute_spec", _sleepy_execute)
    slow = _spec("sieve")
    with Engine(workers=2, timeout=0.5) as engine:
        engine.run_many([slow, _spec("sor")], on_error="record")
        with pytest.raises(Exception, match=r"sieve/switch-on-load"):
            engine.run(slow)


# -- surviving worker death ---------------------------------------------------------


@needs_fork
def test_sweep_survives_worker_killed_mid_flight(tmp_path, monkeypatch):
    """SIGKILLing a worker mid-sweep must not lose any run: unresolved
    specs are resubmitted to a fresh pool and the sweep completes with
    full, input-ordered results."""
    monkeypatch.setattr(executor_module, "execute_spec", _killer_execute)
    monkeypatch.setattr(
        sys.modules[__name__], "_KILL_MARKER", str(tmp_path / "killed")
    )
    specs = [_spec("sieve"), _spec("sor"), _spec("blkmat")]
    with Engine(workers=1) as serial_engine:
        expected = [r.wall_cycles for r in serial_engine.run_many(specs)]
    with Engine(workers=2) as engine:
        results = engine.run_many(specs)
        assert os.path.exists(_KILL_MARKER)  # the kill really happened
        assert [r.wall_cycles for r in results] == expected
        assert engine.report()["failed"] == 0


def test_serial_drain_after_pool_declared_broken():
    """Once the pool is marked broken, sweeps run serially and still
    complete."""
    specs = [_spec("sieve"), _spec("sor")]
    with Engine(workers=2) as engine:
        engine._pool_broken = True
        results = engine.run_many(specs)
        assert all(r is not None for r in results)


# -- cache quarantine ---------------------------------------------------------------


def test_corrupt_cache_entry_is_quarantined_and_rerun(tmp_path):
    spec = _spec("sieve")
    cache = ResultCache(tmp_path, version="v1")
    with Engine(cache=cache) as engine:
        first = engine.run(spec)
    entry = cache._path(spec.key())
    assert entry.exists()
    entry.write_text('{"truncated": ')  # simulate a torn/corrupted write

    fresh_cache = ResultCache(tmp_path, version="v1")
    with Engine(cache=fresh_cache) as engine:
        again = engine.run(spec)  # corrupt entry reads as a miss -> re-run
        report = engine.report()
        summary = engine.summary_line()
    assert again.wall_cycles == first.wall_cycles
    assert fresh_cache.quarantined == 1
    assert report["quarantined"] == 1
    assert "quarantined" in summary
    # The corrupt bytes were moved aside for diagnosis, not destroyed.
    quarantined = list(fresh_cache.quarantine_dir.glob("v1-*.json"))
    assert len(quarantined) == 1
    assert quarantined[0].read_text() == '{"truncated": '
    # The re-run repaired the entry in place.
    assert ResultCache(tmp_path, version="v1").get(spec.key()) is not None


def test_quarantine_counts_accumulate(tmp_path):
    cache = ResultCache(tmp_path, version="v1")
    cache._bucket.mkdir(parents=True)
    for name in ("a", "b"):
        cache._path(name).write_text("not json")
    assert cache.get("a") is None
    assert cache.get("b") is None
    assert cache.get("missing") is None  # plain miss, not quarantined
    assert cache.quarantined == 2
    assert cache.misses == 3


# -- timeout diagnostics ------------------------------------------------------------


def test_simulation_timeout_message_carries_machine_context():
    spec = _spec("sieve", overrides=(("max_cycles", 50),))
    with Engine() as engine:
        with pytest.raises(SimulationTimeout) as info:
            engine.run(spec)
    message = str(info.value)
    # Engine prefixes the spec label; the simulator appends its shape.
    assert "sieve/switch-on-load" in message
    assert "model=switch-on-load" in message
    assert "P=2" in message and "M=2" in message
