"""End-to-end span-tracing tests across serve → engine → worker, plus
the satellite behaviours that ride on the span histograms: the p95
Retry-After estimate, the process-level /metrics gauges, and torn-tail
tolerance of the report CLIs."""

import json
import os

import pytest

import repro
from repro.engine.executor import Engine
from repro.engine.spec import RunSpec
from repro.obs import cli as obs_cli
from repro.obs.spans import (
    STAGE_FLOOR,
    STAGE_HISTOGRAM,
    NullSpanRecorder,
    SpanRecorder,
    read_spans_jsonl,
)
from repro.serve import Client, ReproServer, ServerConfig
from repro.serve.scheduler import JobScheduler

TINY = {"app": "sieve", "model": "eswitch", "processors": 2, "level": 2,
        "scale": "tiny"}
TINY2 = {"app": "sieve", "model": "sol", "processors": 2, "level": 2,
         "scale": "tiny"}


@pytest.fixture
def traced_server(tmp_path):
    config = ServerConfig(
        port=0, quiet=True, workers=2, cache_dir=tmp_path / "cache",
        spans=True,
    )
    with ReproServer(config) as running:
        yield running


# -- one trace across every process boundary ------------------------------------


def test_served_job_yields_one_span_tree_across_processes(traced_server):
    recorder = SpanRecorder()
    client = Client(traced_server.url, spans=recorder)
    accepted = client.submit([TINY, TINY2])
    assert "trace" in accepted
    client.result(accepted, timeout=120.0)
    traced_server.shutdown()

    trace_id = accepted["trace"]
    [client_span] = recorder.spans()
    assert client_span.name == "client-submit"
    assert client_span.trace_id == trace_id  # server joined the client's trace

    log = traced_server.config.resolved_spans()
    spans = [s for s in read_spans_jsonl(log) if s.trace_id == trace_id]
    names = {span.name for span in spans}
    assert {"http", "admit", "queue-wait", "execute", "cache-lookup",
            "dispatch", "simulate", "deserialize", "serialize"} <= names
    assert all(span.status == "ok" for span in spans)

    # the span tree is connected: every parent is either another span of
    # the trace or the client's span
    ids = {span.span_id for span in spans} | {client_span.span_id}
    assert all(span.parent_id in ids for span in spans)


def test_worker_side_simulate_span_carries_request_trace_id(traced_server):
    client = Client(traced_server.url)
    accepted = client.submit([TINY, TINY2])  # 2 pending specs -> pool path
    client.result(accepted, timeout=120.0)
    traced_server.shutdown()

    spans = read_spans_jsonl(traced_server.config.resolved_spans())
    simulate = [s for s in spans if s.name == "simulate"]
    assert len(simulate) == 2
    assert {s.trace_id for s in simulate} == {accepted["trace"]}
    workers = {s.attributes["worker"] for s in simulate}
    assert workers  # every simulate span records the pid that ran it
    if traced_server.engine._pool is not None:  # pool really engaged
        assert os.getpid() not in workers


def test_coalesced_submission_records_instant_coalesce_span(traced_server):
    first = Client(traced_server.url)
    second = Client(traced_server.url)
    accepted = first.submit([TINY, TINY2])
    again = second.submit([TINY, TINY2])
    assert again["job"] == accepted["job"]
    first.result(accepted, timeout=120.0)
    traced_server.shutdown()

    spans = read_spans_jsonl(traced_server.config.resolved_spans())
    [coalesce] = [s for s in spans if s.name == "coalesce"]
    # the coalesce span lives on the second request's trace, not the
    # admitting job's
    assert coalesce.trace_id == again["trace"] != accepted["trace"]


def test_failed_job_marks_execute_span_status(tmp_path):
    recorder = SpanRecorder()
    engine = Engine(cache=None, spans=recorder)
    scheduler = JobScheduler(engine, spans=recorder)
    spec = RunSpec.create(**{**TINY, "model": "explicit-switch",
                             "timeout": None})
    job, _ = scheduler.submit([spec], timeout=1e-9)  # impossible deadline
    assert job.wait(60.0)
    scheduler.stop()
    assert job.error is not None
    statuses = {s.name: s.status for s in recorder.spans()}
    assert statuses["serialize"] == "error"  # failure surfaced collecting


# -- Retry-After: p95 of the execute histogram ----------------------------------


def _record_execute(recorder, seconds):
    span = recorder.start("execute", start=0.0)
    span.end = seconds
    recorder.record(span)


def test_retry_after_uses_execute_p95_when_histogram_populated():
    recorder = SpanRecorder()
    engine = Engine(cache=None)
    scheduler = JobScheduler(engine, spans=recorder)
    try:
        _record_execute(recorder, 1.0)
        _record_execute(recorder, 7.5)
        scheduler._elapsed.append(1.0)  # the mean path would say 1s
        assert scheduler._retry_after() == 8  # p95 upper estimate wins
    finally:
        scheduler.stop()


def test_retry_after_falls_back_to_mean_without_span_data():
    engine = Engine(cache=None)
    scheduler = JobScheduler(engine)  # spans off: histogram never exists
    try:
        scheduler._elapsed.extend([2.0, 4.0])
        assert scheduler._retry_after() == 3
    finally:
        scheduler.stop()


def test_retry_after_falls_back_to_mean_while_histogram_empty():
    recorder = SpanRecorder()
    engine = Engine(cache=None)
    scheduler = JobScheduler(engine, spans=recorder)
    try:
        # the family exists (registered lazily on first record) but holds
        # no execute observations yet
        scheduler._elapsed.extend([2.0, 4.0])
        assert scheduler._retry_after() == 3
    finally:
        scheduler.stop()


# -- /metrics satellites --------------------------------------------------------


def test_metrics_exports_stage_histograms_and_process_gauges(traced_server):
    client = Client(traced_server.url)
    client.result(client.submit(TINY), timeout=120.0)
    text = client.metrics()
    assert 'serve_stage_seconds_bucket{stage="execute",le="' in text
    assert 'serve_stage_seconds_count{stage="execute"} 1' in text
    assert 'serve_stage_seconds_bucket{stage="simulate",le="' in text
    assert "# TYPE process_uptime_seconds gauge" in text
    assert "# TYPE repro_build_info gauge" in text
    assert f'version="{repro.__version__}"' in text
    assert 'backend="' in text
    # one TYPE header for the whole labelled family
    assert text.count("# TYPE serve_stage_seconds histogram") == 1


def test_process_gauges_present_even_with_spans_off(tmp_path):
    config = ServerConfig(port=0, quiet=True, cache_dir=tmp_path / "cache")
    with ReproServer(config) as server:
        text = Client(server.url).metrics()
    assert "process_uptime_seconds" in text
    assert "repro_build_info" in text
    assert "serve_stage_seconds" not in text  # spans off: no stage series


def test_health_reports_span_recorder_counts(traced_server):
    client = Client(traced_server.url)
    client.result(client.submit(TINY), timeout=120.0)
    health = client.health()
    assert health["spans"]["recorded"] > 0
    assert health["spans"]["dropped"] == 0


# -- report CLIs tolerate torn tails --------------------------------------------


def test_repro_trace_spans_tolerates_torn_tail(tmp_path, capsys):
    config = ServerConfig(
        port=0, quiet=True, cache_dir=tmp_path / "cache", spans=True
    )
    with ReproServer(config) as server:
        client = Client(server.url)
        client.result(client.submit(TINY), timeout=120.0)
    log = config.resolved_spans()
    with open(log, "a", encoding="utf-8") as handle:
        handle.write('{"trace": "feedface", "name": "torn')  # no newline
    merged = tmp_path / "merged.json"
    code = obs_cli.main([
        "spans", str(log), "--tree", "--chrome", str(merged),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "execute" in out and "torn" not in out
    document = json.loads(merged.read_text())
    assert document["traceEvents"]


def test_repro_trace_report_tolerates_torn_tail_and_prints_quantiles(
    tmp_path, capsys
):
    runlog = tmp_path / "runlog.jsonl"
    entries = [
        {"ts": 1.0, "spec": "a", "source": "run", "elapsed": 0.25,
         "worker": 1, "wall_cycles": 10},
        {"ts": 2.0, "spec": "b", "source": "run", "elapsed": 1.5,
         "worker": 1, "wall_cycles": 20},
    ]
    with open(runlog, "w", encoding="utf-8") as handle:
        for entry in entries:
            handle.write(json.dumps(entry) + "\n")
        handle.write('{"ts": 3.0, "spec": "torn')
    assert obs_cli.main(["report", str(runlog)]) == 0
    out = capsys.readouterr().out
    assert "2 entries" in out
    assert "elapsed p50/p95/p99" in out


# -- disabled-recording byte identity -------------------------------------------


def test_disabled_recorder_results_byte_identical(tmp_path):
    spec = RunSpec.create("sieve", model="explicit-switch", processors=2,
                          level=2, scale="tiny")
    with Engine(cache=None) as plain:
        baseline = plain.run(spec)
    with Engine(cache=None, spans=NullSpanRecorder()) as disabled:
        quiet = disabled.run(spec)
    with Engine(cache=None, spans=SpanRecorder()) as recording:
        traced = recording.run(spec)
    base = json.dumps(baseline.to_dict(), sort_keys=True)
    assert json.dumps(quiet.to_dict(), sort_keys=True) == base
    # recording changes observability, never results
    assert json.dumps(traced.to_dict(), sort_keys=True) == base


def test_cached_payloads_never_carry_spans(tmp_path):
    spec = RunSpec.create("sieve", model="explicit-switch", processors=2,
                          level=2, scale="tiny")
    with Engine(cache=tmp_path / "cache", spans=SpanRecorder()) as engine:
        engine.run(spec)
        key = engine._effective(spec).key()
        payload = engine.cache.get(key)
    assert payload is not None and "spans" not in payload
