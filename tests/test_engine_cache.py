"""On-disk result cache: hits, misses, invalidation, engine integration."""

import json

from repro.engine import Engine, ResultCache, RunSpec, code_version
from repro.engine.cache import default_cache_dir


def _spec():
    return RunSpec(app="sieve", model="switch-on-load", processors=2, level=2,
                   scale="tiny")


def test_put_get_roundtrip(tmp_path):
    cache = ResultCache(tmp_path, version="v1")
    assert cache.get("k") is None
    cache.put("k", {"value": 42})
    assert cache.get("k") == {"value": 42}
    assert "k" in cache
    assert len(cache) == 1
    assert cache.hits == 1 and cache.misses == 1


def test_code_version_change_invalidates(tmp_path):
    old = ResultCache(tmp_path, version="aaaa")
    old.put("k", {"value": 1})
    new = ResultCache(tmp_path, version="bbbb")
    assert new.get("k") is None  # mutated code version => miss
    assert old.get("k") == {"value": 1}  # old bucket untouched


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path, version="v1")
    cache.put("k", {"value": 1})
    (tmp_path / "v1" / "k.json").write_text("{not json", encoding="utf-8")
    assert cache.get("k") is None


def test_clear(tmp_path):
    cache = ResultCache(tmp_path, version="v1")
    cache.put("a", {})
    cache.put("b", {})
    assert cache.clear() == 2
    assert len(cache) == 0


def test_real_code_version_is_stable():
    assert code_version() == code_version()
    assert len(code_version()) == 16


def test_default_cache_dir_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
    assert default_cache_dir() == tmp_path / "custom"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == tmp_path / "xdg" / "repro"


def test_engine_serves_second_run_from_cache(tmp_path):
    spec = _spec()
    with Engine(cache=ResultCache(tmp_path, version="v1")) as first:
        live = first.run(spec)
        assert first.report()["executed"] == 1
    # A brand-new engine (fresh memo) on the same cache directory: the
    # run is restored from disk, nothing is simulated.
    with Engine(cache=ResultCache(tmp_path, version="v1")) as second:
        restored = second.run(spec)
        report = second.report()
    assert report["executed"] == 0 and report["cached"] == 1
    assert report["cache_fraction"] == 1.0
    assert restored.wall_cycles == live.wall_cycles
    assert restored.stats.to_dict() == live.stats.to_dict()


def test_engine_cache_entry_is_json(tmp_path):
    spec = _spec()
    with Engine(cache=ResultCache(tmp_path, version="v1")) as engine:
        engine.run(spec)
    entries = list((tmp_path / "v1").glob("*.json"))
    assert entries == [tmp_path / "v1" / f"{spec.key()}.json"]
    payload = json.loads(entries[0].read_text(encoding="utf-8"))
    assert payload["spec"]["app"] == "sieve"
    assert payload["result"]["wall_cycles"] > 0


def test_engine_memoises_within_process(tmp_path):
    spec = _spec()
    with Engine(cache=ResultCache(tmp_path, version="v1")) as engine:
        first = engine.run(spec)
        second = engine.run(spec)
        assert first is second
        assert engine.report()["memo_hits"] == 1
