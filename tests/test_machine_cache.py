"""Cache and directory unit behaviour."""

import pytest

from repro.machine.cache import Cache, OneLineCache
from repro.machine.config import CacheConfig
from repro.machine.directory import Directory


def make_cache(num_sets=2, assoc=2, line_words=4) -> Cache:
    return Cache(CacheConfig(num_sets=num_sets, assoc=assoc, line_words=line_words))


def test_miss_then_hit():
    cache = make_cache()
    assert cache.lookup(5) is None
    cache.install(1, [10, 11, 12, 13])  # words 4..7
    assert cache.lookup(5) == 11
    assert cache.contains(7)
    assert not cache.contains(8)


def test_lru_eviction_order():
    cache = make_cache(num_sets=1, assoc=2)
    cache.install(0, [0] * 4)
    cache.install(1, [1] * 4)
    cache.lookup(0)  # touch line 0: line 1 becomes LRU
    victim = cache.install(2, [2] * 4)
    assert victim == 1
    assert cache.contains(0)
    assert not cache.contains(4)


def test_install_existing_line_refreshes():
    cache = make_cache(num_sets=1, assoc=2)
    cache.install(0, [0] * 4)
    cache.install(1, [1] * 4)
    victim = cache.install(0, [9] * 4)  # refresh, no eviction
    assert victim is None
    assert cache.lookup(0) == 9


def test_update_if_present():
    cache = make_cache()
    cache.install(0, [1, 2, 3, 4])
    assert cache.update_if_present(2, 99)
    assert cache.lookup(2) == 99
    assert not cache.update_if_present(100, 5)


def test_invalidate():
    cache = make_cache()
    cache.install(3, [7] * 4)
    assert cache.invalidate(3)
    assert not cache.invalidate(3)
    assert cache.lookup(12) is None


def test_flush_and_resident_count():
    cache = make_cache()
    cache.install(0, [0] * 4)
    cache.install(9, [0] * 4)
    assert cache.resident_lines == 2
    cache.flush()
    assert cache.resident_lines == 0


def test_set_mapping_separates_lines():
    cache = make_cache(num_sets=2, assoc=1)
    cache.install(0, [0] * 4)  # set 0
    cache.install(1, [1] * 4)  # set 1
    assert cache.contains(0) and cache.contains(4)


def test_cache_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(num_sets=0)
    with pytest.raises(ValueError):
        CacheConfig(line_words=3)
    assert CacheConfig().total_words == 64 * 4 * 8


def test_one_line_cache_estimator():
    olc = OneLineCache(line_words=4)
    assert not olc.access(0)  # cold miss
    assert olc.access(1)  # same line
    assert olc.access(3)
    assert not olc.access(4)  # new line replaces
    assert not olc.access(0)  # old line gone
    assert olc.hit_rate == pytest.approx(2 / 5)


# -- directory ---------------------------------------------------------------


def test_directory_sharers():
    directory = Directory(4)
    directory.add_sharer(7, 0)
    directory.add_sharer(7, 2)
    assert directory.sharers_of(7) == {0, 2}
    assert directory.is_shared(7)


def test_invalidate_others_spares_writer():
    directory = Directory(4)
    for pid in (0, 1, 2):
        directory.add_sharer(5, pid)
    victims = directory.invalidate_others(5, writer=1)
    assert sorted(victims) == [0, 2]
    assert directory.sharers_of(5) == {1}


def test_invalidate_others_writerless():
    directory = Directory(4)
    directory.add_sharer(5, 0)
    directory.add_sharer(5, 3)
    victims = directory.invalidate_others(5, writer=-1)
    assert sorted(victims) == [0, 3]
    assert directory.sharers_of(5) == set()


def test_drop_sharer():
    directory = Directory(2)
    directory.add_sharer(1, 0)
    directory.drop_sharer(1, 0)
    assert not directory.is_shared(1)
    directory.drop_sharer(1, 0)  # idempotent
    directory.check_invariants()


def test_invariant_checker_catches_bad_sharer():
    directory = Directory(2)
    directory._sharers[0] = {5}
    with pytest.raises(AssertionError):
        directory.check_invariants()
