"""Event engine: ordering, memory timing, atomicity, termination."""

import pytest

from repro.isa import assemble
from repro.machine import (
    MachineConfig,
    Simulator,
    SimulationTimeout,
    SwitchModel,
)
from conftest import run_asm, run_program


def test_requires_finalized_program():
    from repro.isa import Instruction, Op, Program

    raw = Program([Instruction(Op.HALT)])
    with pytest.raises(ValueError, match="finalized"):
        Simulator(raw, MachineConfig(), [0], [{}])


def test_thread_register_count_checked():
    program = assemble("halt\n")
    config = MachineConfig(num_processors=2, threads_per_processor=2)
    with pytest.raises(ValueError, match="4 threads"):
        Simulator(program, config, [0], [{}])


def test_store_applies_at_half_latency():
    # Thread 0 stores at t=1; thread 1 (other processor) polls the word.
    # The store is visible at the memory from t ~ 1 + 100.
    asm = """
        bne  r4, r0, reader
        li   r1, 7
        sws  r1, 0(r0)
        halt
    reader:
        lws  r2, 0(r0)
        bne  r2, r0, done
        j    reader
    done:
        swl  r2, 0(r0)
        halt
    """
    result = run_asm(
        asm, model=SwitchModel.SWITCH_ON_LOAD, processors=2, latency=200
    )
    reader = result.threads[1]
    assert reader.local[0] == 7
    # The reader cannot observe the value before the writer's store
    # reached memory plus a return trip.
    assert reader.halt_time > 100


def test_faa_is_atomic_under_contention():
    asm = """
        li  r1, 1
        li  r9, 25
    loop:
        faa r2, 0(r0), r1
        addi r9, r9, -1
        bne r9, r0, loop
        halt
    """
    result = run_asm(
        asm, model=SwitchModel.SWITCH_ON_LOAD, processors=4, threads=4, latency=200
    )
    assert result.shared[0] == 25 * 16  # no lost updates


def test_ordered_delivery_same_thread():
    # Two stores then a load to the same address by one thread must
    # observe the second store (issue order = memory order).
    asm = """
        li  r1, 1
        li  r2, 2
        sws r1, 5(r0)
        sws r2, 5(r0)
        lws r3, 5(r0)
        swl r3, 0(r0)
        halt
    """
    result = run_asm(asm, model=SwitchModel.SWITCH_ON_LOAD, latency=200)
    assert result.threads[0].local[0] == 2


def test_write_after_write_register():
    # Two in-flight loads to the same register: the later load's value
    # must win and the register stays busy until the later one returns.
    asm = """
        lws r1, 0(r0)
        lws r1, 1(r0)
        switch
        swl r1, 0(r0)
        halt
    """
    result = run_asm(
        asm,
        shared=[11, 22] + [0] * 20,
        model=SwitchModel.EXPLICIT_SWITCH,
        latency=200,
    )
    assert result.threads[0].local[0] == 22


def test_timeout_on_runaway_program():
    asm = """
    spin:
        j spin
        halt
    """
    with pytest.raises(SimulationTimeout):
        run_asm(asm, model=SwitchModel.IDEAL, max_cycles=10_000)


def test_wall_time_is_last_halt():
    asm = """
        bne r4, r0, slow
        halt
    slow:
        li r9, 50
    loop:
        addi r9, r9, -1
        bne r9, r0, loop
        halt
    """
    result = run_asm(asm, model=SwitchModel.IDEAL, threads=2)
    assert result.wall_cycles == max(t.halt_time for t in result.threads)


def test_deterministic_replay():
    asm = """
        li  r1, 1
        li  r9, 10
    loop:
        faa r2, 0(r0), r1
        lws r3, 1(r0)
        addi r9, r9, -1
        bne r9, r0, loop
        halt
    """
    runs = [
        run_asm(asm, model=SwitchModel.SWITCH_ON_LOAD, processors=2, threads=3)
        for _ in range(2)
    ]
    assert runs[0].wall_cycles == runs[1].wall_cycles
    assert runs[0].stats.summary() == runs[1].stats.summary()


def test_block_thread_assignment():
    # Thread i runs on processor i // threads_per_processor.
    asm = "halt\n"
    result = run_asm(asm, processors=2, threads=3)
    assert len(result.threads) == 6
    assert result.config.total_threads == 6


def test_efficiency_metric():
    result = run_asm("li r1, 1\nhalt\n", model=SwitchModel.IDEAL)
    assert result.efficiency(result.wall_cycles) == pytest.approx(1.0)
    assert result.efficiency(0) == 0.0 or result.efficiency(0) == pytest.approx(0.0)
