"""Intra-block dependence rules (exact registers, pessimistic memory)."""

from repro.isa import assemble
from repro.compiler import block_dependences
from repro.compiler.dependence import mem_class, MemClass
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op


def deps_of(asm: str):
    program = assemble(asm + "\nhalt\n")
    body = program.instructions[:-1]
    return block_dependences(body)


def test_raw_dependence():
    preds, _succs = deps_of("li r1, 5\nadd r2, r1, r1")
    assert preds[1] == [0]


def test_war_dependence():
    preds, _ = deps_of("add r2, r1, r3\nli r1, 5")
    assert preds[1] == [0]


def test_waw_dependence():
    preds, _ = deps_of("li r1, 5\nli r1, 6")
    assert preds[1] == [0]


def test_independent_instructions():
    preds, _ = deps_of("li r1, 5\nli r2, 6")
    assert preds[1] == []


def test_r0_never_creates_dependences():
    preds, _ = deps_of("li r0, 5\nadd r1, r0, r0")
    assert preds[1] == []


def test_shared_loads_are_independent():
    preds, _ = deps_of("lws r1, 0(r9)\nlws r2, 4(r9)")
    assert preds[1] == []


def test_shared_store_orders_later_loads():
    preds, _ = deps_of("sws r1, 0(r9)\nlws r2, 4(r9)")
    assert preds[1] == [0]


def test_shared_load_orders_later_stores():
    preds, _ = deps_of("lws r1, 0(r9)\nsws r2, 4(r9)")
    assert 0 in preds[1]


def test_faa_is_a_fence_for_shared():
    preds, _ = deps_of("lws r1, 0(r9)\nfaa r2, 4(r9), r3\nlws r5, 8(r9)")
    assert 0 in preds[1]
    assert 1 in preds[2]


def test_local_and_shared_never_conflict():
    preds, _ = deps_of("swl r1, 0(r9)\nlws r2, 4(r9)")
    assert preds[1] == []


def test_local_store_orders_local_load():
    preds, _ = deps_of("swl r1, 0(r9)\nlwl r2, 4(r9)")
    assert preds[1] == [0]


def test_local_loads_independent():
    preds, _ = deps_of("lwl r1, 0(r9)\nlwl r2, 4(r9)")
    assert preds[1] == []


def test_switch_fences_shared_but_not_local():
    preds, _ = deps_of("lws r1, 0(r9)\nswitch\nlwl r2, 0(r9)\nlws r3, 4(r9)")
    assert 0 in preds[1]  # load before fence
    assert 1 not in preds[2]  # local traffic passes the fence
    assert 1 in preds[3]  # later shared load ordered after fence


def test_mem_class_mapping():
    assert mem_class(Instruction(Op.FAA)) is MemClass.SHARED_WRITE
    assert mem_class(Instruction(Op.LWS)) is MemClass.SHARED_READ
    assert mem_class(Instruction(Op.SDS)) is MemClass.SHARED_WRITE
    assert mem_class(Instruction(Op.LDL)) is MemClass.LOCAL_READ
    assert mem_class(Instruction(Op.SWL)) is MemClass.LOCAL_WRITE
    assert mem_class(Instruction(Op.SWITCH)) is MemClass.FENCE
    assert mem_class(Instruction(Op.ADD)) is MemClass.NONE


def test_edges_point_forward():
    preds, succs = deps_of(
        "lws r1, 0(r9)\nadd r2, r1, r1\nsws r2, 0(r9)\nlws r3, 4(r9)"
    )
    for later, earlier_list in enumerate(preds):
        for earlier in earlier_list:
            assert earlier < later
            assert later in succs[earlier]
