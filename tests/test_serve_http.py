"""End-to-end HTTP serve tests: equivalence, backpressure, coalescing,
drain, restart re-serving, telemetry endpoints, CLI."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

import repro
from repro.engine import RunSpec
from repro.faults import FaultConfig
from repro.serve import Client, JobRejected, ReproServer, ServeError, ServerConfig


@pytest.fixture
def server(tmp_path):
    config = ServerConfig(port=0, quiet=True, cache_dir=tmp_path / "cache")
    with ReproServer(config) as running:
        yield running


@pytest.fixture
def client(server):
    return Client(server.url)


def _gate_engine(server):
    """Wrap the server engine's run_many behind an Event so jobs stay
    queued deterministically; returns the gate."""
    gate = threading.Event()
    original = server.scheduler.engine.run_many

    def gated(*args, **kwargs):
        assert gate.wait(30.0), "test forgot to open the gate"
        return original(*args, **kwargs)

    server.scheduler.engine.run_many = gated
    return gate


# -- end-to-end equivalence -----------------------------------------------------


def test_served_result_is_byte_identical_to_direct_simulate(client):
    direct = repro.simulate("sieve", model="explicit-switch", processors=2,
                            level=4, scale="tiny")
    [payload] = client.result(
        client.submit({"app": "sieve", "model": "eswitch", "processors": 2,
                       "level": 4, "scale": "tiny"}),
        timeout=120.0,
    )
    assert payload["stats"] == direct.stats.to_dict()
    assert payload["wall_cycles"] == direct.wall_cycles
    assert payload["config"] == direct.config.to_dict()


def test_served_sweep_matches_direct_sweep(client):
    specs = [
        RunSpec(app=app, model="switch-on-load", processors=2, level=2,
                scale="tiny")
        for app in ("sieve", "sor")
    ]
    direct = repro.sweep(specs)
    payloads = client.result(client.submit(specs), timeout=240.0)
    assert [p["stats"] for p in payloads] == [
        r.stats.to_dict() for r in direct
    ]


def test_served_fault_spec_matches_direct(client):
    faults = FaultConfig(latency_model="uniform", jitter=50, seed=1,
                         loss_rate=0.01)
    spec = RunSpec(app="sieve", model="explicit-switch", processors=2,
                   level=4, scale="tiny", overrides=(("faults", faults),))
    direct = repro.simulate("sieve", model="explicit-switch", processors=2,
                            level=4, scale="tiny", faults=faults)
    [payload] = client.result(client.submit(spec), timeout=240.0)
    assert payload["stats"] == direct.stats.to_dict()
    assert payload["stats"]["retries"] > 0  # the faults actually fired


# -- coalescing -----------------------------------------------------------------


def test_four_concurrent_clients_one_engine_run(server, client):
    spec = RunSpec(app="sor", model="switch-on-load", processors=2, level=2,
                   scale="tiny")
    accepted = []

    def submit():
        accepted.append(Client(server.url).submit(spec))

    threads = [threading.Thread(target=submit) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)

    assert len({a["job"] for a in accepted}) == 1  # one job for all four
    assert sorted(a["coalesced"] for a in accepted) == [False, True, True, True]
    results = [client.result(a, timeout=120.0) for a in accepted]
    assert all(result == results[0] for result in results)
    assert server.engine.report()["executed"] == 1  # exactly one execution
    metrics = client.metrics()
    assert "serve_jobs_coalesced_total 3" in metrics
    assert "serve_engine_executed_total 1" in metrics
    assert client.status(accepted[0])["clients"] == 4


# -- admission control / backpressure -------------------------------------------


def test_queue_full_gives_429_with_retry_after(server, client):
    gate = _gate_engine(server)
    server.scheduler.max_queue_depth = 1
    client.submit(RunSpec(app="sieve", model="ideal", scale="tiny"))
    time.sleep(0.1)  # worker picks the first job up (now gated, RUNNING)
    client.submit(RunSpec(app="sor", model="ideal", scale="tiny"))  # queued
    with pytest.raises(JobRejected) as excinfo:
        client.submit(RunSpec(app="blkmat", model="ideal", scale="tiny"))
    assert excinfo.value.status == 429
    assert excinfo.value.retry_after >= 1
    # The raw HTTP reply carries the Retry-After header.
    request = urllib.request.Request(
        server.url + "/v1/jobs",
        data=json.dumps(
            {"spec": {"app": "mp3d", "model": "ideal", "scale": "tiny"}}
        ).encode(),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with pytest.raises(urllib.error.HTTPError) as http_excinfo:
        urllib.request.urlopen(request, timeout=10.0)
    assert http_excinfo.value.code == 429
    assert int(http_excinfo.value.headers["Retry-After"]) >= 1
    gate.set()


def test_draining_server_gives_503(server, client):
    server.scheduler.drain(timeout=30.0)
    with pytest.raises(JobRejected) as excinfo:
        client.submit(RunSpec(app="sieve", model="ideal", scale="tiny"))
    assert excinfo.value.status == 503
    assert client.health()["status"] == "draining"


def test_oversized_body_gives_413(server):
    from repro.serve.server import MAX_BODY_BYTES

    request = urllib.request.Request(
        server.url + "/v1/jobs",
        data=b"x" * (MAX_BODY_BYTES + 1),
        method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=10.0)
    assert excinfo.value.code == 413


# -- lifecycle ------------------------------------------------------------------


def test_graceful_shutdown_settles_inflight_jobs(tmp_path):
    config = ServerConfig(port=0, quiet=True, cache_dir=tmp_path / "cache")
    server = ReproServer(config).start()
    client = Client(server.url)
    accepted = client.submit(
        RunSpec(app="sieve", model="switch-on-load", processors=2, level=2,
                scale="tiny")
    )
    assert server.shutdown(drain=True, timeout=120.0)  # True = clean drain
    job = server.scheduler.get(accepted["job"])
    assert job is not None and job.state.value == "done"
    assert job.results  # settled with payloads before the server exited


def test_restart_reserves_finished_job_without_recompute(tmp_path):
    config = ServerConfig(port=0, quiet=True, cache_dir=tmp_path / "cache")
    spec = RunSpec(app="sieve", model="switch-on-load", processors=2, level=2,
                   scale="tiny")

    with ReproServer(config) as first:
        first_client = Client(first.url)
        accepted = first_client.submit(spec)
        original = first_client.result(accepted, timeout=120.0)
        assert first.engine.report()["executed"] == 1

    with ReproServer(config) as second:
        assert second.recovered == 1
        second_client = Client(second.url)
        status = second_client.wait(accepted["job"], timeout=60.0)
        assert status["state"] == "done"
        assert second_client.result(accepted["job"]) == original
        report = second.engine.report()
        assert report["executed"] == 0  # nothing recomputed
        assert report["cached"] == 1    # re-served from the disk cache
        # And a resubmission of the same spec coalesces onto the
        # recovered job instead of creating new work.
        again = second_client.submit(spec)
        assert again["job"] == accepted["job"] and again["coalesced"]


def test_failed_job_surfaces_error_over_http(client):
    spec = RunSpec(app="sieve", model="switch-on-load", scale="tiny",
                   overrides=(("max_cycles", 100),))
    accepted = client.submit(spec)
    status = client.wait(accepted, timeout=60.0)
    assert status["state"] == "failed"
    assert status["error"]["type"] == "SimulationTimeout"
    with pytest.raises(ServeError) as excinfo:
        client.result(accepted)
    assert excinfo.value.status == 500


# -- telemetry ------------------------------------------------------------------


def test_healthz_shape(client):
    health = client.health()
    assert health["status"] == "ok"
    assert "uptime" in health and "engine" in health
    assert health["engine"]["workers"] == 1


def test_metrics_endpoint_is_prometheus_text(server, client):
    client.result(
        client.submit(RunSpec(app="sieve", model="switch-on-load",
                              processors=2, level=2, scale="tiny")),
        timeout=120.0,
    )
    text = client.metrics()
    assert "# TYPE serve_jobs_submitted_total counter" in text
    assert "serve_jobs_submitted_total 1" in text
    assert "serve_jobs_completed_total 1" in text
    assert "serve_engine_simulated_cycles_total" in text


def test_unknown_routes_and_jobs_404(server, client):
    with pytest.raises(ServeError) as excinfo:
        client.status("jdoesnotexist")
    assert excinfo.value.status == 404
    for path in ("/nope", "/v1/jobs/x/y/z"):
        status, _, _ = client._request("GET", path)
        assert status == 404


def test_bad_submit_body_400(server, client):
    status, _, payload = client._request("POST", "/v1/jobs", {"nope": 1})
    assert status == 400 and "error" in payload


# -- CLI ------------------------------------------------------------------------


def test_cli_submit_status_and_shutdown(tmp_path, capsys):
    from repro.serve.cli import main

    config = ServerConfig(port=0, quiet=True, cache_dir=tmp_path / "cache")
    server = ReproServer(config).start()
    url = server.url
    try:
        assert main(["submit", "sieve", "--model", "eswitch",
                     "--processors", "2", "--level", "4", "--scale", "tiny",
                     "--url", url]) == 0
        payload = json.loads(capsys.readouterr().out)
        direct = repro.simulate("sieve", model="explicit-switch",
                                processors=2, level=4, scale="tiny")
        assert payload["stats"] == direct.stats.to_dict()

        job_id = repro.serve.job_id_for(
            [RunSpec(app="sieve", model="explicit-switch", processors=2,
                     level=4, scale="tiny", latency=200).key()]
        )
        assert main(["status", job_id, "--url", url]) == 0
        assert json.loads(capsys.readouterr().out)["state"] == "done"

        assert main(["shutdown", "--url", url]) == 0
        assert json.loads(capsys.readouterr().out)["status"] == "draining"
    finally:
        server.shutdown()


def test_cli_unreachable_server_exit_code():
    from repro.serve.cli import main

    assert main(["status", "jx", "--url", "http://127.0.0.1:1"]) == 1


def test_python_m_repro_serve_help():
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro.serve", "--help"],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0
    assert "repro-serve" in proc.stdout
