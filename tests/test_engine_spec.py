"""RunSpec / MachineConfig / SimStats serialization and hashing."""

import dataclasses
import json

import pytest

from repro.engine.spec import RunSpec, DEFAULT_LATENCY
from repro.harness import ExperimentContext
from repro.machine import (
    CacheConfig,
    MachineConfig,
    NetworkConfig,
    SimStats,
    SimulationResult,
    SwitchModel,
)
from repro.machine.config import normalize_config_kwargs
from repro.machine.network import MsgKind


# -- RunSpec ------------------------------------------------------------------


def test_runspec_roundtrip_through_json():
    spec = RunSpec(
        app="sor",
        model=SwitchModel.EXPLICIT_SWITCH,
        processors=2,
        level=4,
        scale="tiny",
        latency=100,
        oracle=True,
        overrides=(("switch_cost", 8), ("latency_jitter", 50)),
    )
    wire = json.loads(json.dumps(spec.to_dict()))
    restored = RunSpec.from_dict(wire)
    assert restored == spec
    assert restored.key() == spec.key()


def test_runspec_key_resolves_default_latency():
    implicit = RunSpec(app="sieve", model="switch-on-load", latency=None)
    explicit = RunSpec(app="sieve", model="switch-on-load", latency=DEFAULT_LATENCY)
    assert implicit.key() == explicit.key()
    assert implicit.effective_latency == DEFAULT_LATENCY
    ideal = RunSpec(app="sieve", model="ideal")
    assert ideal.effective_latency == 0


def test_runspec_key_covers_latency_and_overrides():
    base = RunSpec(app="sieve", model="switch-on-load", processors=2, level=2)
    keys = {
        base.key(),
        dataclasses.replace(base, latency=400).key(),
        RunSpec(app="sieve", model="switch-on-load", processors=2, level=2,
                overrides=(("switch_cost", 8),)).key(),
        RunSpec(app="sieve", model="switch-on-load", processors=2, level=2,
                oracle=True).key(),
        RunSpec(app="sieve", model="switch-on-load", processors=2, level=2,
                scale="tiny").key(),
    }
    assert len(keys) == 5  # every dimension distinguishes the hash


def test_runspec_key_ignores_backend():
    """The backend is an execution strategy, not result identity: every
    backend spelling hashes to the same cache key (so a warm interpreter
    cache serves compiled requests and vice versa), and the key recorded
    *before* the backend field existed must not have moved."""
    base = RunSpec(app="sieve", model="switch-on-use", processors=2,
                   level=4, scale="tiny")
    keys = {
        base.key(),
        dataclasses.replace(base, backend="interpreter").key(),
        dataclasses.replace(base, backend="compiled").key(),
        dataclasses.replace(base, backend="auto").key(),
    }
    assert keys == {"225330b90f6c27ab2d4cd00c77c47b0b"}  # pre-backend hash
    # ...but the backend still travels on the wire (serve submits need it).
    wire = dataclasses.replace(base, backend="compiled").to_dict()
    assert wire["backend"] == "compiled"
    assert RunSpec.from_dict(wire).backend == "compiled"
    with pytest.raises(ValueError, match="unknown backend"):
        RunSpec(app="sieve", backend="bogus")


def test_runspec_create_normalizes_spellings():
    via_alias = RunSpec.create(
        "sor", model="switch-on-load", num_processors=2,
        threads_per_processor=3, scale="tiny",
    )
    via_canonical = RunSpec.create(
        "sor", model="switch-on-load", processors=2, level=3, scale="tiny"
    )
    assert via_alias == via_canonical
    with pytest.raises(TypeError, match="exactly one"):
        RunSpec.create("sor", processors=2, num_processors=2)


def test_runspec_create_collects_overrides():
    spec = RunSpec.create(
        "sor", model="conditional-switch", processors=2, level=2,
        forced_switch_interval=0, cache=CacheConfig(num_sets=16),
    )
    overrides = dict(spec.overrides)
    assert overrides["forced_switch_interval"] == 0
    assert overrides["cache"] == CacheConfig(num_sets=16)
    restored = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert dict(restored.overrides)["cache"] == CacheConfig(num_sets=16)


def test_runspec_validates_model_and_shape():
    with pytest.raises(ValueError):
        RunSpec(app="sor", model="not-a-model")
    with pytest.raises(ValueError):
        RunSpec(app="sor", processors=0)


def test_runspec_machine_config():
    spec = RunSpec(
        app="sor", model="conditional-switch", processors=2, level=4,
        latency=100, overrides=(("switch_cost", 2),),
    )
    config = spec.machine_config()
    assert config.model is SwitchModel.CONDITIONAL_SWITCH
    assert config.processors == 2 and config.level == 4
    assert config.latency == 100 and config.switch_cost == 2
    assert config.cache is not None  # cached model gets its default cache


# -- MachineConfig ------------------------------------------------------------


def test_machine_config_roundtrip_and_key():
    config = MachineConfig(
        model=SwitchModel.CONDITIONAL_SWITCH,
        num_processors=4,
        threads_per_processor=8,
        latency=100,
        cache=CacheConfig(num_sets=32, assoc=2, line_words=4),
        network=NetworkConfig(header_bits=16),
    )
    wire = json.loads(json.dumps(config.to_dict()))
    restored = MachineConfig.from_dict(wire)
    assert restored == config
    assert restored.config_key() == config.config_key()
    assert restored.config_key() != config.replace(latency=200).config_key()


def test_machine_config_alias_spellings():
    assert normalize_config_kwargs({"processors": 2, "level": 3}) == {
        "num_processors": 2,
        "threads_per_processor": 3,
    }
    config = MachineConfig.create(processors=2, level=3)
    assert config.num_processors == 2 and config.threads_per_processor == 3
    assert config.processors == 2 and config.level == 3
    assert config.replace(level=5).threads_per_processor == 5
    with pytest.raises(TypeError, match="exactly one"):
        MachineConfig.create(processors=2, num_processors=4)


# -- SimStats / SimulationResult ----------------------------------------------


def test_simstats_roundtrip():
    stats = SimStats(2, NetworkConfig(), line_words=8)
    stats.instructions = 100
    stats.busy_cycles = 90
    stats.wall_cycles = 120
    stats.per_proc_busy = [50, 40]
    stats.per_proc_idle = [10, 20]
    stats.switches = 7
    stats.record_run(3)
    stats.record_run(3)
    stats.record_run(11)
    stats.count_message(MsgKind.READ, sync=False)
    stats.count_message(MsgKind.WRITE, sync=False)
    stats.count_message(MsgKind.FAA, sync=True)
    stats.cache_hits = 5
    stats.cache_misses = 2
    wire = json.loads(json.dumps(stats.to_dict()))
    restored = SimStats.from_dict(wire)
    assert restored.to_dict() == stats.to_dict()
    assert restored.run_lengths == stats.run_lengths
    assert restored.msg_counts == stats.msg_counts
    assert restored.mean_run_length == stats.mean_run_length
    assert restored.total_bits == stats.total_bits
    assert restored.hit_rate == stats.hit_rate


def test_simstats_roundtrip_oracle_and_merge_counters():
    """oracle_hits / oracle_misses / cache_merged must survive the wire."""
    stats = SimStats(1, NetworkConfig())
    stats.cache_hits = 9
    stats.cache_misses = 4
    stats.cache_merged = 3
    stats.oracle_hits = 17
    stats.oracle_misses = 5
    restored = SimStats.from_dict(json.loads(json.dumps(stats.to_dict())))
    assert restored.cache_merged == 3
    assert restored.oracle_hits == 17
    assert restored.oracle_misses == 5
    assert restored.oracle_hit_rate == stats.oracle_hit_rate == 17 / 22


def test_msg_counts_keyed_by_stable_member_names():
    """Serialized msg_counts keys are enum *names* (READ2), immune to a
    rewording of the display values; legacy value keys still load."""
    stats = SimStats(1, NetworkConfig())
    for kind in MsgKind:
        stats.count_message(kind, sync=False)
    wire = stats.to_dict()
    assert set(wire["msg_counts"]) == {kind.name for kind in MsgKind}
    restored = SimStats.from_dict(json.loads(json.dumps(wire)))
    assert restored.msg_counts == stats.msg_counts
    # A payload written with value-spelled keys (older format) also loads.
    legacy = dict(wire, msg_counts={kind.value: 1 for kind in MsgKind})
    assert SimStats.from_dict(legacy).msg_counts == stats.msg_counts
    assert MsgKind.from_name("READ2") is MsgKind.READ2
    assert MsgKind.from_name("line-read") is MsgKind.LINE_READ
    with pytest.raises(ValueError):
        MsgKind.from_name("bogus")


def test_simulation_result_roundtrip(tiny_ctx):
    result = tiny_ctx.run("sieve", SwitchModel.SWITCH_ON_LOAD, 2, 2)
    wire = json.loads(json.dumps(result.to_dict(include_shared=True)))
    restored = SimulationResult.from_dict(wire)
    assert restored.wall_cycles == result.wall_cycles
    assert restored.stats.to_dict() == result.stats.to_dict()
    assert restored.config == result.config
    assert restored.shared == list(result.shared)
    assert restored.efficiency(1000) == result.efficiency(1000)
    # Default serialization drops the memory image.
    assert "shared" not in result.to_dict()


@pytest.fixture(scope="module")
def tiny_ctx():
    return ExperimentContext(scale="tiny", processors=2, max_level=4)
