"""Zero-perturbation guard: fault-free runs match the pre-fault golden.

``tests/data/golden_stats.json`` pins the wall cycles and full SimStats
of every application x switch-model pair (P=2, M=2, tiny scale) as they
were *before* the fault-injection subsystem existed.  With no
``FaultConfig`` attached, today's simulator must reproduce every entry
bit for bit — the fault machinery is allowed to add counters, never to
move a number.
"""

import json
from pathlib import Path

import pytest

from repro.apps.registry import app_names
from repro.check import check_result
from repro.engine import Engine, RunSpec
from repro.machine import SwitchModel

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "golden_stats.json").read_text()
)

#: Counters introduced with the fault subsystem — absent from the golden
#: fixture and required to stay zero on fault-free runs.
_FAULT_COUNTERS = (
    "replies_dropped",
    "replies_delayed",
    "nacks",
    "retries",
    "backoff_cycles",
    "faa_replays",
)


@pytest.fixture(scope="module")
def engine():
    with Engine(workers=1) as engine:
        yield engine


def test_fixture_covers_every_app_and_model():
    expected = {
        f"{app}/{model.value}" for app in app_names() for model in SwitchModel
    }
    assert expected == set(GOLDEN)


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_fault_free_run_matches_golden(engine, key):
    app, model = key.split("/")
    entry = GOLDEN[key]
    result = engine.run(
        RunSpec(app=app, model=model, processors=2, level=2, scale="tiny")
    )
    assert result.wall_cycles == entry["wall_cycles"], key
    stats = result.stats.to_dict()
    # The fixture predates the fault counters, so compare its keys (the
    # shared subset must be identical) and pin the new ones to zero.
    mismatched = {
        name: (stats.get(name), value)
        for name, value in entry["stats"].items()
        if stats.get(name) != value
    }
    assert not mismatched, f"{key}: golden drift in {mismatched}"
    for name in _FAULT_COUNTERS:
        assert stats[name] == 0, f"{key}: {name} fired without faults"
    assert stats["mem_issued"] == stats["mem_completed"]
    check_result(result, label=key)
