"""ASCII chart renderer and the ablation harness (tiny scale)."""

import pytest

from repro.analysis.asciiplot import efficiency_chart
from repro.harness import ExperimentContext
from repro.harness.ablations import (
    latency_sweep,
    model_shootout,
    switch_cost_sensitivity,
    forced_interval_study,
)


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(scale="tiny", processors=2, max_level=4)


# -- asciiplot -------------------------------------------------------------------


def test_chart_contains_axes_and_legend():
    series = {"a": {1: 0.2, 2: 0.5, 4: 0.9}, "b": {1: 0.1, 2: 0.1, 4: 0.1}}
    text = efficiency_chart(series, [1, 2, 4], "demo chart")
    assert "demo chart" in text
    assert "1.0 |" in text and "0.0 |" in text
    assert "o a" in text and "x b" in text
    assert "(processors)" in text


def test_chart_clamps_out_of_range_values():
    text = efficiency_chart({"a": {1: 1.7, 2: -0.3}}, [1, 2], "clamp")
    assert "1.0 |o" in text  # clamped to the top row


def test_chart_empty_series():
    assert "(no data)" in efficiency_chart({}, [], "empty")


def test_chart_marks_positions_monotone():
    # A rising curve must place later marks on higher rows.
    series = {"up": {1: 0.0, 2: 0.5, 4: 1.0}}
    text = efficiency_chart(series, [1, 2, 4], "rising", width=30, height=9)
    rows = [i for i, line in enumerate(text.splitlines()) if "o" in line]
    assert rows == sorted(rows)  # top-to-bottom appearance order


# -- ablations --------------------------------------------------------------------


def test_latency_sweep_structure(ctx):
    text, data = latency_sweep(ctx, app_name="sor", latencies=[100, 200], level=2)
    assert "sor" in text
    for series in data.values():
        assert set(series) == {100, 200}
        # Shorter latency can never be slower under the same model.
        assert series[100] >= series[200] - 0.02


def test_model_shootout_structure(ctx):
    _text, data = model_shootout(ctx, app_name="sieve", level=2)
    assert "ideal" not in data
    assert len(data) == 7
    assert all(0.0 <= row["efficiency"] <= 1.1 for row in data.values())


def test_switch_cost_monotone(ctx):
    _text, data = switch_cost_sensitivity(
        ctx, app_name="sieve", costs=[0, 16], level=2
    )
    assert data[0] >= data[16] - 0.02


def test_forced_interval_handles_livelock(ctx):
    _text, data = forced_interval_study(
        ctx, app_name="ugray", intervals=[0, 200], level=2
    )
    assert set(data) == {0, 200}
    assert data[200]["efficiency"] > 0.0
    # interval 0 either livelocks (None) or completes; both are recorded.
    assert "efficiency" in data[0]
