"""The repro-lint CLI and the lint gates in the compiler/engine/serve
layers."""

import json
import time

import pytest

from repro.isa import assemble
from repro.isa.registers import NUM_REGS
from repro.lint import LintError, LintReport
from repro.lint.cli import main
from repro.lint.diagnostics import Diagnostic, Severity


def test_cli_clean_run(capsys):
    assert main(["sieve", "--model", "eswitch"]) == 0
    captured = capsys.readouterr()
    assert "sieve+grouped [explicit-switch]: ok" in captured.out
    assert "1 clean, 0 failing" in captured.err


def test_cli_requires_apps_or_all(capsys):
    assert main([]) == 2
    assert "--all" in capsys.readouterr().err


def test_cli_rejects_unknown_model_and_app(capsys):
    assert main(["sieve", "--model", "bogus"]) == 2
    assert main(["--all", "--scale", "bogus"]) == 2
    assert main(["nosuchapp"]) == 2


def test_cli_json_report(tmp_path, capsys):
    path = tmp_path / "report.json"
    assert main(["sieve", "sor", "--model", "sou", "--json", str(path)]) == 0
    capsys.readouterr()
    payload = json.loads(path.read_text())
    assert payload["programs"] == 2
    assert payload["failing"] == 0
    assert {report["model"] for report in payload["reports"]} == {
        "switch-on-use"
    }
    assert all(report["ok"] for report in payload["reports"])


def test_cli_exit_1_when_errors_exist(monkeypatch, capsys):
    import repro.lint.cli as cli

    failing = LintReport("broken", "explicit-switch", instructions=1, blocks=1)
    failing.add(Diagnostic(
        rule_id="isa-no-halt", severity=Severity.ERROR,
        message="no HALT instruction is reachable", program="broken",
    ))
    monkeypatch.setattr(cli, "lint_matrix", lambda *a, **k: iter([failing]))
    assert main(["sieve"]) == 1
    captured = capsys.readouterr()
    assert "FAIL (1E" in captured.out
    assert "1 failing" in captured.err


def test_cli_selftest(capsys):
    assert main(["--selftest", "--seed", "3"]) == 0
    captured = capsys.readouterr()
    assert "selftest passed" in captured.err
    assert "paper-group-switch: fired" in captured.out


def failing_report(severity=Severity.ERROR):
    report = LintReport("broken", "explicit-switch", instructions=1, blocks=1)
    report.add(Diagnostic(
        rule_id="isa-no-halt", severity=severity,
        message="no HALT instruction is reachable", program="broken",
    ))
    return report


def test_cli_ignore_suppresses_a_failing_rule(monkeypatch, capsys):
    import repro.lint.cli as cli

    monkeypatch.setattr(
        cli, "lint_matrix", lambda *a, **k: iter([failing_report()])
    )
    assert main(["sieve"]) == 1
    capsys.readouterr()
    assert main(["sieve", "--ignore", "isa-no-halt"]) == 0
    assert "0 failing" in capsys.readouterr().err


def test_cli_select_keeps_only_named_rules(monkeypatch, capsys):
    import repro.lint.cli as cli

    monkeypatch.setattr(
        cli, "lint_matrix", lambda *a, **k: iter([failing_report()])
    )
    # Selecting an unrelated rule drops the isa-no-halt error.
    assert main(["sieve", "--select", "df-dead-write"]) == 0
    capsys.readouterr()
    # Selecting the failing rule keeps it.
    assert main(["sieve", "--select", "isa-no-halt"]) == 1


def test_cli_severity_override_demotes_and_promotes(monkeypatch, capsys):
    import repro.lint.cli as cli

    monkeypatch.setattr(
        cli, "lint_matrix", lambda *a, **k: iter([failing_report()])
    )
    assert main(["sieve", "--severity", "isa-no-halt=warning"]) == 0
    capsys.readouterr()

    monkeypatch.setattr(
        cli, "lint_matrix",
        lambda *a, **k: iter([failing_report(Severity.WARNING)]),
    )
    assert main(["sieve"]) == 0
    capsys.readouterr()
    assert main(["sieve", "--severity", "isa-no-halt=error"]) == 1


def test_cli_unknown_rule_id_lists_vocabulary(capsys):
    assert main(["sieve", "--select", "no-such-rule"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule id(s): no-such-rule" in err
    assert "isa-no-halt" in err  # the valid vocabulary is listed

    assert main(["sieve", "--ignore", "nope"]) == 2
    assert main(["sieve", "--severity", "isa-no-halt"]) == 2  # missing =LEVEL
    assert main(["sieve", "--severity", "isa-no-halt=loud"]) == 2


def test_module_entry_point():
    import subprocess
    import sys
    import os
    import pathlib

    root = pathlib.Path(__file__).resolve().parent.parent
    env = dict(os.environ, PYTHONPATH=str(root / "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "sieve", "--model", "eswitch"],
        capture_output=True, text=True, env=env, cwd=root,
    )
    assert proc.returncode == 0, proc.stderr
    assert "explicit-switch]: ok" in proc.stdout


# -- gates -------------------------------------------------------------------

def test_prepare_for_model_lint_gate():
    from repro.compiler.passes import prepare_for_model
    from repro.machine.models import SwitchModel

    clean = assemble("lws r1, 0(r4)\nsws r1, 1(r4)\nhalt\n")
    prepared = prepare_for_model(clean, SwitchModel.EXPLICIT_SWITCH, lint=True)
    assert prepared.switch_count() > 0

    corrupt = clean.copy()
    corrupt.instructions[0].rd = NUM_REGS + 2
    with pytest.raises(LintError) as excinfo:
        prepare_for_model(corrupt, SwitchModel.SWITCH_ON_LOAD, lint=True)
    assert "isa-operand-range" in str(excinfo.value)


def test_engine_lint_gate_smoke():
    from repro.engine import Engine, RunSpec

    engine = Engine(lint=True)
    try:
        spec = RunSpec(app="sieve", model="explicit-switch", processors=2,
                       level=2, scale="tiny")
        [result] = engine.run_many([spec])
        assert result.wall_cycles > 0
    finally:
        engine.close()


def test_scheduler_check_lints_and_counts(tmp_path):
    from repro.engine import Engine, RunSpec
    from repro.serve import JobScheduler

    scheduler = JobScheduler(Engine(), check=True)
    try:
        spec = RunSpec(app="sieve", model="switch-on-load", processors=2,
                       level=2, scale="tiny")
        job, coalesced = scheduler.submit([spec])
        assert not coalesced
        deadline = time.time() + 60.0
        while not job.settled and time.time() < deadline:
            time.sleep(0.01)
        assert job.state.value == "done", job.error
        text = scheduler.metrics_text()
        assert "lint_programs_checked_total 1" in text
        # The spec lints clean, so no labelled diagnostics series exists.
        assert "lint_diagnostics_total{" not in text
    finally:
        scheduler.stop()
