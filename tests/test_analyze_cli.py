"""The repro-analyze CLI and the predicted blocks in engine/serve."""

import dataclasses
import json
import time

from repro.lint.analyze_cli import main


def test_analyze_renders_bound_table(capsys):
    assert main(["sieve", "--model", "ideal", "--model", "eswitch"]) == 0
    out = capsys.readouterr().out
    assert "sieve @ P=2 M=2 L=200" in out
    assert "ideal" in out and "explicit-switch" in out
    assert "run[min,max]" in out
    assert "loops:" in out


def test_analyze_requires_apps_or_all(capsys):
    assert main([]) == 2
    assert "--all" in capsys.readouterr().err


def test_analyze_rejects_unknown_model_and_app(capsys):
    assert main(["sieve", "--model", "bogus"]) == 2
    assert main(["nosuchapp"]) == 2


def test_analyze_json_payload(tmp_path, capsys):
    path = tmp_path / "pred.json"
    assert main(
        ["sieve", "--model", "sol", "--json", str(path)]
    ) == 0
    capsys.readouterr()
    payload = json.loads(path.read_text())
    prediction = payload["predictions"]["sieve"]
    assert set(prediction["models"]) == {"switch-on-load"}
    model = prediction["models"]["switch-on-load"]
    assert model["run_min"] >= 1
    assert "call_graph" in prediction


def test_analyze_validate_gate_passes(capsys):
    assert main(
        ["sieve", "--model", "ideal", "--model", "sol", "--validate"]
    ) == 0
    err = capsys.readouterr().err
    assert "apps: 2 cell(s), 0 violation(s)" in err


def test_analyze_synth_seed_gate_passes(capsys):
    assert main(["sieve", "--model", "sol", "--seeds", "2"]) == 0
    err = capsys.readouterr().err
    assert "synth: 2 seed(s), 0 failure(s)" in err


def test_analyze_selftest(capsys):
    assert main(["--selftest"]) == 0
    captured = capsys.readouterr()
    assert "selftest passed: 3 unsound bound(s)" in captured.err
    assert "run-max-unsound: predict-run-max" in captured.out


def test_analyze_catches_unsound_predictor(monkeypatch, capsys):
    import repro.lint.validate as validate

    honest = validate.predict_prepared

    def doctored(*args, **kwargs):
        return dataclasses.replace(honest(*args, **kwargs), run_max=1)

    monkeypatch.setattr(validate, "predict_prepared", doctored)
    assert main(["sieve", "--model", "sol", "--validate"]) == 1
    assert "predict-run-max" in capsys.readouterr().err


# -- predicted blocks in the engine and the serve layer ----------------------


def test_engine_report_carries_predictions():
    from repro.engine import Engine, RunSpec

    engine = Engine()
    try:
        spec = RunSpec(app="sieve", model="explicit-switch", processors=2,
                       level=2, scale="tiny")
        engine.run_many([spec])
        predicted = engine.report()["predicted"]
        assert spec.label() in predicted
        block = predicted[spec.label()]
        assert block["model"] == "explicit-switch"
        assert block["run_min"] >= 1
        assert block["switch_min"] >= 0
    finally:
        engine.close()


def test_scheduler_attaches_predicted_block():
    from repro.engine import Engine, RunSpec
    from repro.serve import JobScheduler

    scheduler = JobScheduler(Engine())
    try:
        spec = RunSpec(app="sieve", model="switch-on-load", processors=2,
                       level=2, scale="tiny")
        job, _ = scheduler.submit([spec])
        deadline = time.time() + 60.0
        while not job.settled and time.time() < deadline:
            time.sleep(0.01)
        assert job.state.value == "done", job.error
        [payload] = job.results
        predicted = payload["predicted"]
        assert predicted["model"] == "switch-on-load"
        assert predicted["run_min"] >= 1
        measured = payload["stats"]["switches"]
        if predicted["switch_max"] is not None:
            assert measured <= predicted["switch_max"]
        assert measured >= predicted["switch_min"]
    finally:
        scheduler.stop()
