"""Parallel execution: equivalence with serial, ordering, failure handling."""

import pytest

from repro.engine import Engine, RunSpec
from repro.harness import ExperimentContext
from repro.harness import tables as T
from repro.machine import SwitchModel
from repro.machine.simulator import SimulationTimeout

#: A miniature Table 2 sweep: every app at (switch-on-load, P=2, M=2).
APPS = ("sieve", "sor", "blkmat")


def _sweep_specs():
    return [
        RunSpec(app=app, model="switch-on-load", processors=2, level=2,
                scale="tiny")
        for app in APPS
    ]


def test_workers2_matches_serial():
    specs = _sweep_specs()
    with Engine(workers=1) as serial_engine:
        serial = serial_engine.run_many(specs)
    with Engine(workers=2) as parallel_engine:
        parallel = parallel_engine.run_many(specs)
    for spec, serial_result, parallel_result in zip(specs, serial, parallel):
        assert serial_result.wall_cycles == parallel_result.wall_cycles, spec
        assert serial_result.stats.to_dict() == parallel_result.stats.to_dict(), spec


def test_results_follow_input_order_and_dedupe():
    specs = _sweep_specs()
    doubled = specs + list(reversed(specs))  # duplicates in shuffled order
    with Engine(workers=2) as engine:
        results = engine.run_many(doubled)
        report = engine.report()
    assert report["executed"] == len(specs)  # duplicates executed once
    for spec, result in zip(doubled, results):
        assert result.config.num_processors == spec.processors
        assert result is results[doubled.index(spec)]  # same memo object


def test_duplicate_specs_write_cache_once(tmp_path):
    """N copies of one spec in a sweep execute once and persist once."""
    from repro.engine import ResultCache

    class CountingCache(ResultCache):
        def __init__(self, root):
            super().__init__(root)
            self.puts = 0

        def put(self, key, payload):
            self.puts += 1
            super().put(key, payload)

    spec = RunSpec(app="sieve", model="switch-on-load", processors=2,
                   level=2, scale="tiny")
    copies = [RunSpec.from_dict(spec.to_dict()) for _ in range(4)]
    cache = CountingCache(tmp_path / "cache")
    with Engine(workers=2, cache=cache) as engine:
        results = engine.run_many(copies)
        report = engine.report()
    assert cache.puts == 1
    assert report["executed"] == 1
    assert report["deduped"] == 3
    assert len(results) == 4
    assert all(result is results[0] for result in results)


def test_run_many_call_level_overrides_restore_engine_settings():
    events = []
    with Engine(workers=1) as engine:
        engine.run_many(_sweep_specs()[:1], progress=events.append)
        assert engine.progress is None  # restored after the call
        assert engine.timeout is None
    assert [event["source"] for event in events] == ["run"]


def test_parallel_table2_rendering_matches_serial():
    with ExperimentContext(scale="tiny", processors=2, max_level=4) as serial_ctx:
        serial_text, serial_data = T.table2(serial_ctx)
    with ExperimentContext(
        scale="tiny", processors=2, max_level=4, workers=2
    ) as parallel_ctx:
        parallel_text, parallel_data = T.table2(parallel_ctx)
    assert parallel_text == serial_text
    assert parallel_data == serial_data


def test_prefetch_is_noop_on_serial_context():
    with ExperimentContext(scale="tiny", processors=2) as ctx:
        ctx.prefetch(_sweep_specs())
        assert ctx.engine.report()["completed"] == 0


def test_failures_are_recorded_and_reraised():
    bad = RunSpec(app="sor", model="switch-on-load", processors=2, level=2,
                  scale="tiny", overrides=(("max_cycles", 100),))
    good = _sweep_specs()[0]
    with Engine(workers=2) as engine:
        results = engine.run_many([good, bad], on_error="record")
        assert results[0] is not None and results[1] is None
        with pytest.raises(SimulationTimeout):
            engine.run(bad)  # memoised failure re-raises per spec
        with pytest.raises(SimulationTimeout):
            engine.run_many([good, bad], on_error="raise")


def test_serial_fallback_when_pool_unavailable(monkeypatch):
    import concurrent.futures

    def broken_pool(*args, **kwargs):
        raise OSError("no processes in this sandbox")

    monkeypatch.setattr(
        concurrent.futures, "ProcessPoolExecutor", broken_pool
    )
    specs = _sweep_specs()
    with Engine(workers=4) as engine:
        results = engine.run_many(specs)
        assert engine._pool_broken
    assert [result.wall_cycles for result in results] == [
        result.wall_cycles for result in Engine().run_many(specs)
    ]


def test_mt_levels_parallel_equals_serial():
    with ExperimentContext(scale="tiny", processors=2, max_level=6) as serial_ctx:
        serial_levels = serial_ctx.mt_levels(
            "sieve", SwitchModel.SWITCH_ON_LOAD, targets=(0.2, 0.4)
        )
    with ExperimentContext(
        scale="tiny", processors=2, max_level=6, workers=2
    ) as parallel_ctx:
        parallel_levels = parallel_ctx.mt_levels(
            "sieve", SwitchModel.SWITCH_ON_LOAD, targets=(0.2, 0.4)
        )
    assert parallel_levels == serial_levels
