"""Deeper behaviour tests for the less-used taxonomy models."""

import pytest

from repro.machine import SwitchModel
from conftest import run_asm


def test_sec_interleaves_two_threads_fairly():
    # Two compute-only threads under switch-every-cycle share the
    # processor cycle by cycle: both finish at nearly the same time.
    asm = """
        li r9, 50
    loop:
        addi r9, r9, -1
        bne r9, r0, loop
        halt
    """
    result = run_asm(asm, model=SwitchModel.SWITCH_EVERY_CYCLE, threads=2)
    halts = [t.halt_time for t in result.threads]
    assert abs(halts[0] - halts[1]) <= 2
    # Interleaving doubles each thread's completion time.
    solo = run_asm(asm, model=SwitchModel.SWITCH_EVERY_CYCLE, threads=1)
    assert min(halts) >= 2 * solo.wall_cycles - 4


def test_sec_hides_latency_with_enough_threads():
    asm = """
        li r9, 16
    loop:
        lws r1, 0(r0)
        addi r9, r9, -1
        bne r9, r0, loop
        halt
    """
    thin = run_asm(asm, model=SwitchModel.SWITCH_EVERY_CYCLE, threads=2, latency=200)
    wide = run_asm(asm, model=SwitchModel.SWITCH_EVERY_CYCLE, threads=32, latency=200)
    # 16x the work in much less than 16x the time.
    assert wide.wall_cycles < thin.wall_cycles * 6


def test_use_model_prefetch_distance_matters():
    # With uses far from loads, switch-on-use pays almost nothing; with
    # uses adjacent it behaves like switch-on-load.
    near = """
        li r9, 16
    loop:
        lws r1, 0(r0)
        add r2, r1, r1
        addi r9, r9, -1
        bne r9, r0, loop
        halt
    """
    far = """
        li r9, 16
    loop:
        lws r1, 0(r0)
        addi r9, r9, -1
        add r3, r9, r9
        add r3, r3, r9
        add r2, r1, r1
        bne r9, r0, loop
        halt
    """
    near_result = run_asm(near, model=SwitchModel.SWITCH_ON_USE, latency=200)
    far_result = run_asm(far, model=SwitchModel.SWITCH_ON_USE, latency=200)
    # Both wait ~latency per iteration with one thread, but the far
    # version's waits are shorter by the overlap distance.
    assert far_result.stats.busy_cycles > near_result.stats.busy_cycles
    assert far_result.wall_cycles <= near_result.wall_cycles + 16 * 4


def test_use_miss_only_switches_on_missing_use():
    asm = """
        lws r1, 0(r0)
        add r2, r1, r1
        lws r3, 0(r0)
        add r4, r3, r3
        halt
    """
    result = run_asm(asm, model=SwitchModel.SWITCH_ON_USE_MISS, latency=200)
    # First use waits for the miss; second load hits so its use is free.
    assert result.stats.cache_misses == 1
    assert result.stats.cache_hits == 1
    assert result.stats.switches == 1


def test_flush_cost_not_charged_by_opcode_identified_models():
    asm = """
        lws r1, 0(r0)
        switch
        halt
    """
    for model in (SwitchModel.EXPLICIT_SWITCH, SwitchModel.CONDITIONAL_SWITCH):
        result = run_asm(asm, model=model, latency=200, switch_cost=9)
        assert result.stats.switch_overhead_cycles == 0, model


def test_burst_limit_does_not_change_results():
    asm = """
        li r9, 200
        li r10, 0
    loop:
        add r10, r10, r9
        addi r9, r9, -1
        bne r9, r0, loop
        sws r10, 0(r0)
        halt
    """
    walls = set()
    for limit in (16, 256, 4096):
        result = run_asm(
            asm, model=SwitchModel.SWITCH_ON_LOAD, latency=200, burst_limit=limit
        )
        assert result.shared[0] == sum(range(1, 201))
        walls.add(result.wall_cycles)
    assert len(walls) == 1  # burst granularity is invisible to timing


def test_latency_zero_non_ideal():
    # A degenerate zero-latency switch-on-load machine still works.
    asm = """
        lws r1, 0(r0)
        sws r1, 1(r0)
        halt
    """
    result = run_asm(
        asm, shared=[9] + [0] * 15, model=SwitchModel.SWITCH_ON_LOAD, latency=0
    )
    assert result.shared[1] == 9
