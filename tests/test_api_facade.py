"""The repro.api facade and the deprecation shims over the old paths."""

import pytest

import repro
from repro.api import list_apps, list_models, simulate, sweep
from repro.engine import RunSpec
from repro.machine import SimulationResult, SwitchModel


def test_list_apps_and_models():
    assert list_apps() == [
        "sieve", "blkmat", "sor", "ugray", "water", "locus", "mp3d"
    ]
    assert "switch-on-load" in list_models()
    assert len(list_models()) == len(SwitchModel)


def test_simulate_basic():
    result = simulate(
        "sieve", model="switch-on-load", processors=2, level=2, scale="tiny"
    )
    assert isinstance(result, SimulationResult)
    assert result.wall_cycles > 0
    assert result.config.num_processors == 2
    assert result.config.threads_per_processor == 2


def test_simulate_accepts_enum_and_alias_overrides():
    result = simulate(
        "sor",
        model=SwitchModel.EXPLICIT_SWITCH,
        processors=1,
        level=2,
        scale="tiny",
        latency=100,
        switch_cost=0,
    )
    assert result.config.model is SwitchModel.EXPLICIT_SWITCH
    assert result.config.latency == 100


def test_simulate_ideal_defaults_to_zero_latency():
    result = simulate("sieve", model="ideal", scale="tiny")
    assert result.config.latency == 0


def test_simulate_uses_disk_cache(tmp_path):
    first = simulate("sieve", model="switch-on-load", processors=2, level=2,
                     scale="tiny", cache=str(tmp_path))
    second = simulate("sieve", model="switch-on-load", processors=2, level=2,
                      scale="tiny", cache=str(tmp_path))
    assert second.wall_cycles == first.wall_cycles
    assert any(tmp_path.rglob("*.json"))


def test_sweep_accepts_dicts_and_specs():
    results = sweep(
        [
            RunSpec(app="sieve", model="switch-on-load", processors=2, level=2,
                    scale="tiny"),
            {"app": "sor", "model": "switch-on-load", "processors": 2,
             "level": 2, "scale": "tiny"},
        ]
    )
    assert len(results) == 2
    assert all(result.wall_cycles > 0 for result in results)


def test_sweep_rejects_garbage():
    with pytest.raises(TypeError):
        sweep([object()])


def test_top_level_exports():
    for name in ("simulate", "sweep", "list_apps", "list_models", "RunSpec",
                 "Engine", "ResultCache", "SwitchModel", "MachineConfig",
                 "SimulationResult", "SimStats"):
        assert hasattr(repro, name), name


# -- deprecation shims --------------------------------------------------------


def test_loader_shim_warns_and_works():
    import repro.runtime.loader as loader

    with pytest.deprecated_call(match="repro.runtime.loader.run_app"):
        run_app = loader.run_app
    from repro.runtime.execution import run_app as canonical
    assert run_app is canonical
    with pytest.deprecated_call():
        loader.make_simulator
    with pytest.raises(AttributeError):
        loader.not_a_thing


def test_experiment_shim_warns_and_works():
    import repro.harness.experiment as experiment

    with pytest.deprecated_call(match="ExperimentContext is deprecated"):
        shimmed = experiment.ExperimentContext
    from repro.harness import ExperimentContext
    assert shimmed is ExperimentContext
    with pytest.raises(AttributeError):
        experiment.not_a_thing


def test_new_imports_do_not_warn(recwarn):
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        from repro.harness import ExperimentContext  # noqa: F401
        from repro.runtime import run_app  # noqa: F401
        from repro.api import simulate  # noqa: F401
