"""The repro.api facade and the hard failures over the removed paths."""

import pytest

import repro
from repro.api import list_apps, list_models, simulate, sweep
from repro.engine import RunSpec
from repro.machine import SimulationResult, SwitchModel


def test_list_apps_and_models():
    assert list_apps() == [
        "sieve", "blkmat", "sor", "ugray", "water", "locus", "mp3d"
    ]
    assert "switch-on-load" in list_models()
    assert len(list_models()) == len(SwitchModel)


def test_simulate_basic():
    result = simulate(
        "sieve", model="switch-on-load", processors=2, level=2, scale="tiny"
    )
    assert isinstance(result, SimulationResult)
    assert result.wall_cycles > 0
    assert result.config.num_processors == 2
    assert result.config.threads_per_processor == 2


def test_simulate_accepts_enum_and_alias_overrides():
    result = simulate(
        "sor",
        model=SwitchModel.EXPLICIT_SWITCH,
        processors=1,
        level=2,
        scale="tiny",
        latency=100,
        switch_cost=0,
    )
    assert result.config.model is SwitchModel.EXPLICIT_SWITCH
    assert result.config.latency == 100


def test_simulate_ideal_defaults_to_zero_latency():
    result = simulate("sieve", model="ideal", scale="tiny")
    assert result.config.latency == 0


def test_simulate_uses_disk_cache(tmp_path):
    first = simulate("sieve", model="switch-on-load", processors=2, level=2,
                     scale="tiny", cache=str(tmp_path))
    second = simulate("sieve", model="switch-on-load", processors=2, level=2,
                      scale="tiny", cache=str(tmp_path))
    assert second.wall_cycles == first.wall_cycles
    assert any(tmp_path.rglob("*.json"))


def test_sweep_accepts_dicts_and_specs():
    results = sweep(
        [
            RunSpec(app="sieve", model="switch-on-load", processors=2, level=2,
                    scale="tiny"),
            {"app": "sor", "model": "switch-on-load", "processors": 2,
             "level": 2, "scale": "tiny"},
        ]
    )
    assert len(results) == 2
    assert all(result.wall_cycles > 0 for result in results)


def test_sweep_rejects_garbage():
    with pytest.raises(TypeError):
        sweep([object()])


def test_top_level_exports():
    for name in ("simulate", "sweep", "backends", "list_apps", "list_models",
                 "RunSpec", "Engine", "ResultCache", "SwitchModel",
                 "MachineConfig", "SimulationResult", "SimStats"):
        assert hasattr(repro, name), name


# -- execution backends -------------------------------------------------------


def test_backends_listing():
    infos = repro.backends()
    assert [info["name"] for info in infos] == [
        "interpreter", "compiled", "auto"
    ]
    assert all(info["available"] for info in infos)
    assert [info["name"] for info in infos if info["default"]] == [
        "interpreter"
    ]


def test_simulate_backend_choices_are_bit_identical():
    kwargs = dict(model="switch-on-load", processors=2, level=2, scale="tiny")
    reference = simulate("sieve", **kwargs).stats.to_dict()
    for backend in ("interpreter", "compiled", "auto"):
        assert simulate(
            "sieve", backend=backend, **kwargs
        ).stats.to_dict() == reference, backend
    with pytest.raises(ValueError, match="unknown backend"):
        simulate("sieve", backend="bogus", **kwargs)


def test_engine_counts_executions_per_backend():
    """Every execution is attributed to the backend that ran it — a
    mixed sweep reports both, and the summary line surfaces them."""
    from repro.engine import Engine

    specs = [
        RunSpec(app="sieve", model="switch-on-load", processors=2, level=2,
                scale="tiny"),
        RunSpec(app="sor", model="switch-on-load", processors=2, level=2,
                scale="tiny", backend="interpreter"),
    ]
    with Engine(backend="compiled") as engine:
        engine.run_many(specs)
        report = engine.report()
        summary = engine.summary_line()
    assert report["executed"] == 2
    assert report["executed_by_backend"] == {"compiled": 1, "interpreter": 1}
    assert "1 compiled" in summary and "1 interpreter" in summary


def test_cache_entries_are_shared_across_backends(tmp_path):
    """A result simulated by one backend answers the other: the cache
    key ignores the backend field (bit-identical contract)."""
    from repro.engine import Engine

    spec = RunSpec(app="sieve", model="switch-on-load", processors=2,
                   level=2, scale="tiny")
    with Engine(cache=str(tmp_path), backend="interpreter") as warm:
        first = warm.run(spec)
        assert warm.report()["executed_by_backend"] == {"interpreter": 1}
    with Engine(cache=str(tmp_path), backend="compiled") as engine:
        second = engine.run(spec)
        report = engine.report()
    assert report["executed"] == 0 and report["cached"] == 1
    assert second.stats.to_dict() == first.stats.to_dict()


# -- removed modules ----------------------------------------------------------


def test_loader_module_is_removed():
    """The one-release DeprecationWarning shim is now a hard failure
    that names the replacements."""
    with pytest.raises(ImportError, match=r"repro\.runtime\.execution"):
        import repro.runtime.loader  # noqa: F401


def test_experiment_module_is_removed():
    with pytest.raises(ImportError, match=r"repro\.harness"):
        import repro.harness.experiment  # noqa: F401


def test_canonical_imports_do_not_warn(recwarn):
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        from repro.harness import ExperimentContext  # noqa: F401
        from repro.runtime import run_app  # noqa: F401
        from repro.api import simulate  # noqa: F401
