"""The lint CFG and its bitmask dataflow analyses."""

import pytest

from repro.isa import Instruction, Op, assemble
from repro.isa.registers import NUM_REGS, reg_index
from repro.lint.dataflow import (
    ALL_REGS_MASK,
    LintCFG,
    block_def_masks,
    definitely_assigned,
    dominator_masks,
    live_out_masks,
    reg_mask,
)
from repro.lint.rules import ENTRY_DEFINED

DIAMOND = """
    beq r4, r0, else
    li r1, 1
    j join
else:
    li r2, 2
join:
    add r3, r1, r2
    halt
"""


def bit(name):
    return 1 << reg_index(name)


def test_reg_mask_ignores_out_of_range_slots():
    assert reg_mask([1, 5]) == (1 << 1) | (1 << 5)
    assert reg_mask([-1, NUM_REGS, NUM_REGS + 7]) == 0
    assert reg_mask(range(NUM_REGS)) == ALL_REGS_MASK


def test_cfg_requires_finalized_program():
    from repro.isa import Program

    with pytest.raises(ValueError):
        LintCFG(Program([Instruction(Op.HALT)]))


def test_diamond_edges_and_reachability():
    cfg = LintCFG(assemble(DIAMOND))
    assert len(cfg) == 4
    # beq: fall-through then branch target; both arms rejoin at block 3.
    assert cfg.succs[0] == [1, 2]
    assert cfg.succs[1] == [3]
    assert cfg.succs[2] == [3]
    assert cfg.succs[3] == []
    assert sorted(cfg.preds[3]) == [1, 2]
    assert all(cfg.reachable)
    assert cfg.falls_off == []
    assert cfg.indirect_exits == []


def test_block_of_pc_and_instruction_iteration():
    cfg = LintCFG(assemble(DIAMOND))
    pcs = [pc for index in range(len(cfg))
           for pc, _ins in cfg.instructions_of(index)]
    assert pcs == list(range(6))
    assert cfg.block_of_pc(0) == 0
    assert cfg.block_of_pc(3) == 2
    assert cfg.block_of_pc(5) == 3
    with pytest.raises(IndexError):
        cfg.block_of_pc(99)


def test_unreachable_block_detected():
    program = assemble(
        """
        j end
        li r1, 1
    end:
        halt
        """
    )
    cfg = LintCFG(program)
    assert cfg.reachable[0]
    assert not cfg.reachable[1]  # the stranded li
    assert cfg.reachable[2]


def test_fall_off_end_detected_on_mutated_copy():
    program = assemble(DIAMOND).copy()
    program.instructions[-1] = Instruction(Op.NOP)  # halt gone
    cfg = LintCFG(program)
    assert cfg.falls_off == [3]


def test_must_defined_intersects_over_paths():
    cfg = LintCFG(assemble(DIAMOND))
    seed = reg_mask(ENTRY_DEFINED)
    in_masks = definitely_assigned(cfg, seed)
    assert in_masks[0] == seed
    # Only one arm defines r1 (and only the other defines r2), so
    # neither survives the merge.
    assert not in_masks[3] & bit("r1")
    assert not in_masks[3] & bit("r2")
    # Within each arm the arm's own write is visible to its successor set.
    assert in_masks[3] == seed
    defs = block_def_masks(cfg)
    assert defs[1] == bit("r1")
    assert defs[2] == bit("r2")


def test_liveness_propagates_backward():
    cfg = LintCFG(assemble(DIAMOND))
    live_out = live_out_masks(cfg)
    # The join block reads r1 and r2, so both are live out of block 0.
    assert live_out[0] & bit("r1")
    assert live_out[0] & bit("r2")
    # Nothing is live after halt.
    assert live_out[3] == 0


def test_dominators_of_the_merge_block():
    cfg = LintCFG(assemble(DIAMOND))
    dom = dominator_masks(cfg)
    # Entry dominates everything; neither arm dominates the join.
    for index in range(4):
        assert dom[index] & 1
    assert not dom[3] & (1 << 1)
    assert not dom[3] & (1 << 2)
    assert dom[3] & (1 << 3)


def test_indirect_jump_without_return_points_is_pessimistic():
    program = assemble(
        """
        li r1, 1
        jr r31
        halt
        """
    )
    cfg = LintCFG(program)
    assert cfg.indirect_exits  # no jal anywhere -> unknown continuation
    assert live_out_masks(cfg)[cfg.indirect_exits[0]] == ALL_REGS_MASK


def test_jr_successors_are_jal_return_points():
    program = assemble(
        """
        jal sub
        halt
    sub:
        jr r31
        """
    )
    cfg = LintCFG(program)
    assert cfg.indirect_exits == []
    sub_block = cfg.block_of_pc(2)
    halt_block = cfg.block_of_pc(1)
    assert cfg.succs[sub_block] == [halt_block]


def test_jr_approximation_folds_every_jal_return_point():
    # Two call sites: the JR conservatively returns to both, so a write
    # present on only one post-call path must not survive the must-merge.
    program = assemble(
        """
        jal sub
        li r1, 1
        jal sub
        li r2, 2
        halt
    sub:
        addi r3, r3, 1
        jr r31
        """
    )
    cfg = LintCFG(program)
    assert cfg.indirect_exits == []
    jr_block = cfg.block_of_pc(6)
    returns = sorted(cfg.succs[jr_block])
    assert returns == sorted([cfg.block_of_pc(1), cfg.block_of_pc(3)])
    seed = reg_mask(ENTRY_DEFINED)
    in_masks = definitely_assigned(cfg, seed)
    # Entering sub (reachable from both call sites), neither r1 nor r2
    # is definitely assigned yet...
    assert not in_masks[jr_block] & bit("r1")
    assert not in_masks[jr_block] & bit("r2")
    # ...and because the JR folds *both* return points, the write of r1
    # on the first call path does not leak into the second return point.
    assert not in_masks[cfg.block_of_pc(3)] & bit("r1")


def test_nested_bounded_loops_structure():
    from repro.isa.builder import ProgramBuilder
    from repro.lint.predict import ProgramAnalysis

    b = ProgramBuilder()
    i = b.int_reg("i")
    j = b.int_reg("j")
    acc = b.int_reg("acc")
    b.li(acc, 0)
    with b.for_range(i, 0, 5):
        with b.for_range(j, 0, 3):
            b.addi(acc, acc, 1)
    b.halt()
    analysis = ProgramAnalysis(b.build("nested"))
    assert len(analysis.loops) == 2
    by_trips = {loop.trips: loop for loop in analysis.loops}
    assert set(by_trips) == {5, 3}
    # The inner loop nests inside the outer one.
    assert by_trips[3].blocks <= by_trips[5].blocks
    # Back edges: one per loop, each targeting its own header.
    headers = {loop.header for loop in analysis.loops}
    assert {h for _u, h in analysis.back_edges} == headers


def test_unreachable_loop_header_is_ignored():
    from repro.lint.predict import ProgramAnalysis

    program = assemble(
        """
        j end
    dead:
        addi r1, r1, 1
        bne r1, r2, dead
    end:
        halt
        """
    )
    cfg = LintCFG(program)
    dead_block = cfg.block_of_pc(1)
    assert not cfg.reachable[dead_block]
    # Unreachable blocks dominate only themselves...
    assert dominator_masks(cfg)[dead_block] == 1 << dead_block
    # ...so the dead cycle contributes no loop to the analysis.
    analysis = ProgramAnalysis(program)
    assert analysis.loops == []
    assert analysis.max_exec[dead_block] == 0


def test_indirect_exit_keeps_forward_analysis_sound():
    # A JR with no return points gets *no* successors for the forward
    # analyses: nothing downstream inherits its definitions.
    program = assemble(
        """
        beq r4, r0, out
        li r1, 1
        jr r31
    out:
        halt
        """
    )
    cfg = LintCFG(program)
    jr_block = cfg.block_of_pc(2)
    assert jr_block in cfg.indirect_exits
    assert cfg.succs[jr_block] == []
    halt_block = cfg.block_of_pc(3)
    seed = reg_mask(ENTRY_DEFINED)
    in_masks = definitely_assigned(cfg, seed)
    # The halt block is reached only by the branch, which never saw the
    # li: r1 must not be definitely assigned there.
    assert not in_masks[halt_block] & bit("r1")
