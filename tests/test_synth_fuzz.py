"""The differential fuzz harness and the invariant surfaces behind it:
stable ``Violation`` ids in repro.check, cross-model laws, shrinking,
repro bundles, corpus files, and the repro-fuzz CLI."""

import copy
import dataclasses
import json
import types
from collections import Counter

import pytest

from repro.check import (
    CROSS_MODEL_INVARIANTS,
    Violation,
    cross_model_violations,
    result_problems,
    result_violations,
)
from repro.faults.config import FaultConfig, LifecycleConfig
from repro.machine import SwitchModel
from repro.machine.config import MachineConfig
from repro.machine.network import MsgKind
from repro.runtime.execution import run_app
from repro.synth import (
    FuzzOptions,
    fault_profile,
    fuzz_many,
    fuzz_seed,
    generate_app,
    get_preset,
    replay_bundle,
    run_selftest,
    write_bundle,
)
from repro.synth.cli import main as fuzz_main
from repro.synth.fuzz import (
    MUTATIONS,
    SeedOutcome,
    _grid_violations,
    make_bundle,
    read_corpus,
    shrink_plan,
    write_corpus_entry,
)
from repro.synth.generator import (
    build_synth_app,
    generate_plan,
    plan_segment_ids,
    program_fingerprint,
)

QUICK = FuzzOptions(latency=16)


# -- Violation ids on the per-run oracle (satellite: machine-readable
# invariant field without changing rendered output) ----------------------------


def _clean_result():
    app = generate_app(1, get_preset("quick"), nthreads=4)
    config = MachineConfig(
        model=SwitchModel.SWITCH_ON_LOAD,
        num_processors=2,
        threads_per_processor=2,
        latency=32,
    )
    return run_app(app, config)


def test_result_violations_clean_run_and_render_parity():
    result = _clean_result()
    assert result_violations(result) == []
    assert result_problems(result) == []


def test_result_violations_carry_stable_ids():
    result = _clean_result()
    doctored = copy.copy(result)
    doctored.stats = copy.deepcopy(result.stats)
    doctored.stats.mem_completed += 1
    doctored.stats.nacks += 2
    violations = result_violations(doctored)
    ids = [v.invariant for v in violations]
    assert "transaction-conservation" in ids
    assert "drop-nack-conservation" in ids
    assert "nack-retry-conservation" in ids
    assert "fault-machinery-off" in ids
    # render parity: messages are exactly the historical strings
    assert result_problems(doctored) == [v.message for v in violations]
    assert str(violations[0]) == violations[0].message


# -- cross-model invariants ----------------------------------------------------


def _fake_result(instructions=100, loads=10, faa=2, stores=5,
                 shared=(1, 2, 3), stats_dict=None):
    stats = types.SimpleNamespace(
        instructions=instructions,
        cache_hits=0,
        cache_misses=0,
        msg_counts=Counter(
            {
                MsgKind.READ: loads,
                MsgKind.FAA: faa,
                MsgKind.WRITE: stores,
            }
        ),
        to_dict=lambda: dict(
            stats_dict
            or {
                "instructions": instructions,
                "loads": loads,
                "faa": faa,
                "stores": stores,
            }
        ),
    )
    return types.SimpleNamespace(stats=stats, shared=list(shared))


def _clean_grid():
    grid = {}
    for model in [m.value for m in SwitchModel]:
        loads = 0 if model == "ideal" else 10
        grid[model] = {
            "interpreter": _fake_result(loads=loads),
            "compiled": _fake_result(loads=loads),
        }
    return grid


def test_cross_model_clean_grid_has_no_violations():
    assert cross_model_violations(_clean_grid()) == []


@pytest.mark.parametrize(
    "mutate,invariant",
    [
        (
            lambda g: g["switch-on-load"].__setitem__(
                "compiled", _fake_result(stats_dict={"different": 1})
            ),
            "backend-stats-identical",
        ),
        (
            lambda g: g["switch-on-miss"].__setitem__(
                "interpreter", _fake_result(shared=(9, 9, 9))
            ),
            "memory-model-independent",
        ),
        (
            lambda g: g["switch-every-cycle"].__setitem__(
                "interpreter", g["switch-every-cycle"].pop("compiled")
            )
            or g["switch-every-cycle"].__setitem__(
                "interpreter", _fake_result(loads=99)
            ),
            "traffic-loads-model-independent",
        ),
        (
            lambda g: g["explicit-switch"].update(
                interpreter=_fake_result(faa=7), compiled=_fake_result(faa=7)
            ),
            "traffic-faa-model-independent",
        ),
        (
            lambda g: g["conditional-switch"].update(
                interpreter=_fake_result(stores=8),
                compiled=_fake_result(stores=8),
            ),
            "traffic-store-words-model-independent",
        ),
        (
            lambda g: g["ideal"].update(
                interpreter=_fake_result(loads=0, instructions=50),
                compiled=_fake_result(loads=0, instructions=50),
            ),
            "instructions-model-independent",
        ),
        (
            lambda g: g["explicit-switch"].update(
                interpreter=_fake_result(instructions=120),
                compiled=_fake_result(instructions=120),
            ),
            "instructions-grouped-pair",
        ),
    ],
)
def test_cross_model_invariants_fire(mutate, invariant):
    grid = _clean_grid()
    mutate(grid)
    ids = {v.invariant for v in cross_model_violations(grid)}
    assert invariant in ids
    assert invariant in CROSS_MODEL_INVARIANTS


def test_cross_model_per_thread_law():
    grid = _clean_grid()
    counts = {
        "ideal": {0: 50, 1: 50},
        "switch-on-load": {0: 50, 1: 50},
    }
    assert cross_model_violations(grid, per_thread=counts) == []
    counts["switch-on-load"] = {0: 51, 1: 49}
    ids = {
        v.invariant
        for v in cross_model_violations(grid, per_thread=counts)
    }
    assert ids == {"per-thread-instructions"}


def test_cross_model_scope_flags():
    grid = _clean_grid()
    grid["switch-on-use"].update(
        interpreter=_fake_result(loads=77, instructions=42),
        compiled=_fake_result(loads=77, instructions=42),
    )
    # faulty grids skip the traffic laws; nondeterministic kernels skip
    # the instruction-count laws
    assert cross_model_violations(grid, deterministic=False, faulty=True) == []
    ids = {v.invariant for v in cross_model_violations(grid)}
    assert "traffic-loads-model-independent" in ids
    assert "instructions-model-independent" in ids


# -- the fuzz loop -------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 17])
def test_fuzz_seed_clean(seed):
    outcome = fuzz_seed(seed, preset="quick", options=QUICK)
    assert outcome.ok, [v.message for v in outcome.violations]
    assert outcome.runs >= len(QUICK.models) * len(QUICK.backends)
    assert outcome.name == f"synth:{seed}:quick"


def test_fuzz_seed_sync_preset_skips_instruction_laws():
    outcome = fuzz_seed(4, preset="sync", options=QUICK)
    assert outcome.ok, [v.message for v in outcome.violations]


def test_fuzz_seed_with_faults_clean():
    options = dataclasses.replace(QUICK, faults=fault_profile("loss", seed=3))
    outcome = fuzz_seed(3, preset="quick", options=options)
    assert outcome.ok, [v.message for v in outcome.violations]


def test_fuzz_many_writes_corpus(tmp_path):
    summary = fuzz_many(
        range(2),
        preset="quick",
        options=QUICK,
        corpus_dir=tmp_path / "corpus",
        bundle_dir=tmp_path / "bundles",
    )
    assert summary["seeds"] == 2 and summary["failures"] == 0
    entries = read_corpus(tmp_path / "corpus")
    assert [e["app"] for e in entries] == ["synth:0:quick", "synth:1:quick"]
    assert all(e["ok"] for e in entries)


def test_fuzz_options_round_trip():
    options = FuzzOptions(
        models=("eswitch", "cswitch"),  # aliases normalise to value strings
        faults=FaultConfig(
            loss_rate=0.01, lifecycle=LifecycleConfig(components=2)
        ),
    )
    assert options.models == ("explicit-switch", "conditional-switch")
    rebuilt = FuzzOptions.from_dict(options.to_dict())
    assert rebuilt.models == options.models
    assert rebuilt.faults == options.faults
    with pytest.raises(ValueError, match="backend"):
        FuzzOptions(backends=("turbo",))
    with pytest.raises(ValueError, match="fault profile"):
        fault_profile("explosions")


# -- catching, shrinking, replaying --------------------------------------------


def _mutated_outcome(seed=3):
    options = dataclasses.replace(QUICK, use_engine=False)
    plan = generate_plan(seed, get_preset("quick"))
    mutate = MUTATIONS["final-store-skew"]
    app, overrides = mutate(plan, options.nthreads)
    violations, runs = _grid_violations(
        plan, app, options, program_overrides=overrides
    )
    outcome = SeedOutcome(
        seed=seed,
        preset="quick",
        name=f"synth:{seed}:quick",
        fingerprint=program_fingerprint(app.program),
        runs=runs,
        violations=violations,
    )
    return plan, mutate, options, outcome


def test_injected_bug_is_caught_shrunk_and_bundled(tmp_path):
    plan, mutate, options, outcome = _mutated_outcome()
    assert not outcome.ok
    assert outcome.violations[0].invariant == "functional-check"
    shrunk = shrink_plan(
        plan, "functional-check", options, build=lambda p, n: mutate(p, n)
    )
    assert len(plan_segment_ids(shrunk)) <= len(plan_segment_ids(plan))
    bundle = make_bundle(outcome, plan, options, shrunk)
    assert bundle["invariant"] == "functional-check"
    assert bundle["shrunk_segments"] <= bundle["original_segments"]
    path = write_bundle(bundle, tmp_path)
    payload = json.loads(path.read_text())
    assert payload["seed"] == 3 and payload["kind"] == "repro-bundle"
    # the bundled plan replays on the exact recorded machine shape; the
    # clean generator reproduces no failure (the bug was injected into
    # the program, not the plan)
    replayed = replay_bundle(path)
    assert replayed.ok


def test_selftest_catches_and_shrinks_every_mutation():
    report = run_selftest()
    assert set(report) == set(MUTATIONS)
    for entry in report.values():
        assert entry["caught"]
        assert entry["shrunk_segments"] <= entry["original_segments"]
    invariants = {entry["invariant"] for entry in report.values()}
    assert "functional-check" in invariants
    assert "instructions-grouped-pair" in invariants


# -- CLI -----------------------------------------------------------------------


def test_cli_campaign_and_summary(tmp_path, capsys):
    code = fuzz_main(
        [
            "--seeds", "2", "--quick", "--no-progress",
            "--models", "eswitch,sol",
            "--latency", "16",
            "--bundle-dir", str(tmp_path / "bundles"),
            "--corpus", str(tmp_path / "corpus"),
            "--json", str(tmp_path / "summary.json"),
        ]
    )
    assert code == 0
    summary = json.loads((tmp_path / "summary.json").read_text())
    assert summary["seeds"] == 2 and summary["failures"] == 0
    assert summary["options"]["models"] == [
        "explicit-switch", "switch-on-load"
    ]
    assert (tmp_path / "corpus" / "seed0-quick.json").exists()
    out = capsys.readouterr().out
    assert "2 clean" in out


def test_cli_selftest_and_usage_errors(capsys):
    assert fuzz_main(["--selftest"]) == 0
    assert "caught and shrunk" in capsys.readouterr().err
    assert fuzz_main(["--seeds", "1", "--preset", "bogus"]) == 2
    assert fuzz_main(["--seeds", "1", "--models", "warp-drive"]) == 2


def test_cli_replay_bundle(tmp_path, capsys):
    plan, mutate, options, outcome = _mutated_outcome()
    bundle = make_bundle(outcome, plan, options)
    path = write_bundle(bundle, tmp_path)
    # the bundle's plan rebuilds through the *clean* generator, so the
    # program-level injection does not survive replay: exit 0, clean
    assert fuzz_main(["--replay", str(path)]) == 0
    assert "clean" in capsys.readouterr().out
