"""Config validation, model flags, network bit accounting, stats math,
thread context."""

import pytest

from repro.machine.config import MachineConfig, CacheConfig, NetworkConfig
from repro.machine.models import SwitchModel
from repro.machine.network import MsgKind, transaction_bits
from repro.machine.stats import SimStats
from repro.machine.thread import ThreadContext


# -- config --------------------------------------------------------------------


def test_config_validation():
    with pytest.raises(ValueError):
        MachineConfig(num_processors=0)
    with pytest.raises(ValueError):
        MachineConfig(threads_per_processor=0)
    with pytest.raises(ValueError):
        MachineConfig(latency=201)  # must be even
    with pytest.raises(ValueError):
        MachineConfig(burst_limit=0)


def test_cached_models_get_default_cache():
    config = MachineConfig(model=SwitchModel.CONDITIONAL_SWITCH)
    assert config.cache is not None
    uncached = MachineConfig(model=SwitchModel.SWITCH_ON_LOAD)
    assert uncached.cache is None


def test_replace():
    config = MachineConfig(latency=200)
    faster = config.replace(latency=100)
    assert faster.latency == 100 and config.latency == 200
    assert config.total_threads == 1


# -- model flags -----------------------------------------------------------------


def test_model_flags():
    assert SwitchModel.CONDITIONAL_SWITCH.uses_cache
    assert SwitchModel.SWITCH_ON_MISS.uses_cache
    assert not SwitchModel.EXPLICIT_SWITCH.uses_cache
    assert SwitchModel.EXPLICIT_SWITCH.wants_grouped_code
    assert SwitchModel.SWITCH_ON_USE.wants_grouped_code
    assert not SwitchModel.SWITCH_ON_USE.wants_switch_instructions
    assert SwitchModel.CONDITIONAL_SWITCH.wants_switch_instructions
    assert SwitchModel.SWITCH_ON_USE_MISS.is_split_phase
    assert SwitchModel.SWITCH_ON_MISS.pays_flush_cost
    assert not SwitchModel.CONDITIONAL_SWITCH.pays_flush_cost


# -- network ---------------------------------------------------------------------


def test_transaction_bits_arithmetic():
    net = NetworkConfig(header_bits=32, addr_bits=32, word_bits=32, ack_bits=32)
    assert transaction_bits(MsgKind.READ, net) == (64, 64)
    assert transaction_bits(MsgKind.READ2, net) == (64, 96)
    assert transaction_bits(MsgKind.WRITE, net) == (96, 32)
    assert transaction_bits(MsgKind.FAA, net) == (96, 64)
    fwd, ret = transaction_bits(MsgKind.LINE_READ, net, line_words=8)
    assert ret == 32 + 8 * 32
    inval_fwd, inval_ret = transaction_bits(MsgKind.INVALIDATE, net)
    assert inval_fwd == 0 and inval_ret > 0


# -- stats ------------------------------------------------------------------------


def make_stats() -> SimStats:
    return SimStats(2, NetworkConfig(), line_words=8)


def test_run_length_bookkeeping():
    stats = make_stats()
    for length in (1, 1, 2, 50, 200):
        stats.record_run(length)
    stats.record_run(0)  # zero-length runs are not recorded
    assert stats.total_runs == 5
    assert stats.mean_run_length == pytest.approx((1 + 1 + 2 + 50 + 200) / 5)
    fractions = stats.run_length_fractions([1, 2, 5, 10, 100])
    assert fractions["1"] == pytest.approx(0.4)
    assert fractions["2"] == pytest.approx(0.2)
    assert fractions[">100"] == pytest.approx(0.2)
    assert sum(fractions.values()) == pytest.approx(1.0)


def test_message_accounting_and_sync_exclusion():
    stats = make_stats()
    stats.count_message(MsgKind.READ, sync=False)
    stats.count_message(MsgKind.READ, sync=True)
    assert stats.msg_counts[MsgKind.READ] == 1
    assert stats.sync_msgs == 1
    assert stats.total_bits == 128
    assert stats.sync_bits == 128


def test_bandwidth_per_processor():
    stats = make_stats()
    stats.count_message(MsgKind.READ, sync=False)
    stats.wall_cycles = 64
    # 128 bits over 64 cycles and 2 processors -> 1 bit/cycle/processor.
    assert stats.bandwidth_bits_per_cycle() == pytest.approx(1.0)


def test_grouping_factor():
    stats = make_stats()
    for _ in range(6):
        stats.count_message(MsgKind.READ, sync=False)
    stats.switches = 2
    assert stats.grouping_factor() == pytest.approx(3.0)


def test_hit_rate():
    stats = make_stats()
    assert stats.hit_rate == 0.0
    stats.cache_hits = 9
    stats.cache_misses = 1
    assert stats.hit_rate == pytest.approx(0.9)


# -- thread -----------------------------------------------------------------------


def test_thread_deliver_waw_guard():
    thread = ThreadContext(0)
    thread.inflight[3] = 400  # a newer load will return at t=400
    thread.deliver(3, 11, ready=200)  # the older load's response
    assert thread.regs[3] == 11
    assert thread.inflight == {3: 400}  # still waiting for the newer one
    thread.deliver(3, 22, ready=400)
    assert thread.regs[3] == 22
    assert not thread.inflight


def test_thread_r0_protected():
    thread = ThreadContext(0)
    thread.deliver(0, 99)
    assert thread.regs[0] == 0
