"""The synchronization-safety rule family and the grouping advisor."""

from repro.isa.builder import ProgramBuilder
from repro.lint import lint_program
from repro.lint.mutations import build_sync_victim
from repro.machine.models import SwitchModel
from repro.runtime.sync import (
    emit_barrier,
    emit_lock_acquire,
    emit_lock_release,
)


def rules_fired(report):
    return {diag.rule_id for diag in report.diagnostics}


# -- sync-lock-order ---------------------------------------------------------


def test_lock_order_cycle_fires():
    b = ProgramBuilder()
    lock_a = b.int_reg("lock_a")
    lock_b = b.int_reg("lock_b")
    b.addi(lock_a, "args", 2)
    b.addi(lock_b, "args", 4)
    ta = emit_lock_acquire(b, lock_a)
    tb = emit_lock_acquire(b, lock_b)
    emit_lock_release(b, lock_b, tb)
    emit_lock_release(b, lock_a, ta)
    tb = emit_lock_acquire(b, lock_b)  # now B before A: the cycle
    ta = emit_lock_acquire(b, lock_a)
    emit_lock_release(b, lock_a, ta)
    emit_lock_release(b, lock_b, tb)
    b.halt()
    report = lint_program(b.build("cycle"))
    assert "sync-lock-order" in rules_fired(report)


def test_consistent_lock_order_is_clean():
    b = ProgramBuilder()
    lock_a = b.int_reg("lock_a")
    lock_b = b.int_reg("lock_b")
    b.addi(lock_a, "args", 2)
    b.addi(lock_b, "args", 4)
    for _ in range(2):  # same A->B order both times
        ta = emit_lock_acquire(b, lock_a)
        tb = emit_lock_acquire(b, lock_b)
        emit_lock_release(b, lock_b, tb)
        emit_lock_release(b, lock_a, ta)
    b.halt()
    report = lint_program(b.build("ordered"))
    assert "sync-lock-order" not in rules_fired(report)


# -- sync-unreleased-lock ----------------------------------------------------


def test_acquire_without_release_fires():
    b = ProgramBuilder()
    lock = b.int_reg("lock")
    b.addi(lock, "args", 2)
    emit_lock_acquire(b, lock)
    value = b.int_reg("value")
    b.li(value, 7)
    b.sws(value, "args", 4)
    b.halt()  # never released
    report = lint_program(b.build("held"))
    assert "sync-unreleased-lock" in rules_fired(report)


def test_balanced_critical_section_is_clean():
    b = ProgramBuilder()
    lock = b.int_reg("lock")
    b.addi(lock, "args", 2)
    ticket = emit_lock_acquire(b, lock)
    value = b.int_reg("value")
    b.li(value, 7)
    b.sws(value, "args", 4)
    emit_lock_release(b, lock, ticket)
    b.halt()
    report = lint_program(b.build("balanced"))
    assert "sync-unreleased-lock" not in rules_fired(report)


# -- sync-barrier-participation ----------------------------------------------


def test_tid_guarded_barrier_fires():
    b = ProgramBuilder()
    only = b.int_reg("only")
    b.li(only, 0)
    with b.if_cmp("eq", "tid", only):
        emit_barrier(b, "args", "ntid")
    b.halt()
    report = lint_program(b.build("guarded-barrier"))
    assert "sync-barrier-participation" in rules_fired(report)


def test_unconditional_barrier_is_clean():
    b = ProgramBuilder()
    emit_barrier(b, "args", "ntid")
    b.halt()
    report = lint_program(b.build("plain-barrier"))
    assert "sync-barrier-participation" not in rules_fired(report)


def test_barrier_inside_counted_loop_is_clean():
    b = ProgramBuilder()
    i = b.int_reg("i")
    with b.for_range(i, 0, 3):
        emit_barrier(b, "args", "ntid")
    b.halt()
    report = lint_program(b.build("loop-barrier"))
    assert "sync-barrier-participation" not in rules_fired(report)


# -- advice-group-loads ------------------------------------------------------


def ungrouped_kernel():
    b = ProgramBuilder()
    a = b.int_reg("a")
    c = b.int_reg("c")
    filler = b.int_reg("filler")
    b.lws(a, "args", 0)
    b.li(filler, 3)
    b.lws(c, "args", 1)
    total = b.int_reg("total")
    b.add(total, a, c)
    b.add(total, total, filler)
    base = b.int_reg("base")
    b.add(base, "args", "tid")
    b.sws(total, base, 8)
    b.halt()
    return b.build("ungrouped")


def test_groupable_loads_advised_for_grouping_models():
    report = lint_program(
        ungrouped_kernel(), SwitchModel.EXPLICIT_SWITCH, prepared=False
    )
    assert "advice-group-loads" in rules_fired(report)
    # Advice is informational, never a gate.
    assert report.ok


def test_prepared_code_gets_no_grouping_advice():
    from repro.compiler.passes import prepare_for_model

    prepared = prepare_for_model(
        ungrouped_kernel(), SwitchModel.EXPLICIT_SWITCH
    )
    report = lint_program(
        prepared, SwitchModel.EXPLICIT_SWITCH, prepared=True
    )
    assert "advice-group-loads" not in rules_fired(report)


# -- the clean composite victim ----------------------------------------------


def test_sync_victim_stays_clean():
    report = lint_program(build_sync_victim())
    assert report.diagnostics == []
