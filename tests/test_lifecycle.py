"""Component lifecycles: schedules, outage semantics, availability.

The contract under test (DESIGN §5i): every component walks a
seed-deterministic HEALTHY→DEGRADED→FAILED→REPAIRING cycle that is a
pure function of ``(seed, component)`` — independent of query order,
worker count and execution backend — degraded stages stretch round
trips, outages NACK with a retry-after hint, and the post-run
availability ledger accounts every cycle of ``[0, wall)`` exactly once.
"""

import dataclasses

import pytest

from repro.check import check_result
from repro.faults import (
    DEGRADED,
    FAILED,
    FaultConfig,
    HEALTHY,
    LifecycleConfig,
    LifecyclePlan,
    REPAIRING,
    build_fault_plan,
    build_lifecycle_plan,
)
from repro.machine import SwitchModel
from conftest import run_asm


def _lifecycle(**kwargs):
    kwargs.setdefault("components", 2)
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("mean_healthy", 3_000)
    kwargs.setdefault("mean_degraded", 1_500)
    kwargs.setdefault("mean_failed", 600)
    kwargs.setdefault("mean_repair", 900)
    return LifecycleConfig(**kwargs)


# -- configuration -----------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"components": 0},
        {"mean_healthy": -1},
        {"mean_repair": -5},
        {"degrade_stages": 0},
        {"degraded_scale": 0.5},
        {"degraded_shift": -1},
        {"affected": -1},
        {"affected": 5, "components": 4},
    ],
)
def test_lifecycle_config_validation_rejects(kwargs):
    with pytest.raises(ValueError):
        LifecycleConfig(**kwargs)


def test_lifecycle_config_roundtrip_and_activity():
    config = _lifecycle(affected=1)
    assert config.active
    assert config.is_affected(0) and not config.is_affected(1)
    assert LifecycleConfig.from_dict(config.to_dict()) == config
    assert not _lifecycle(mean_healthy=0).active
    assert not _lifecycle(affected=0).active


def test_fault_config_lifts_lifecycle_mappings():
    config = FaultConfig(lifecycle=_lifecycle().to_dict())
    assert isinstance(config.lifecycle, LifecycleConfig)
    assert config.lifecycle == _lifecycle()
    assert config.has_lifecycles and config.drives_lifecycles
    assert not config.inert
    roundtrip = FaultConfig.from_dict(config.to_dict())
    assert roundtrip == config
    with pytest.raises(ValueError):
        FaultConfig(lifecycle=3)


def test_active_lifecycle_forces_a_fault_plan():
    assert build_fault_plan(FaultConfig(lifecycle=_lifecycle())) is not None
    # Inert lifecycles keep the fast path: no plan at all.
    assert build_fault_plan(
        FaultConfig(lifecycle=_lifecycle(mean_healthy=0))
    ) is None
    assert build_fault_plan(FaultConfig(lifecycle=_lifecycle(affected=0))) is None


# -- schedule purity ---------------------------------------------------------------


def test_plan_is_deterministic_and_query_order_independent():
    config = _lifecycle(components=3)
    forward = build_lifecycle_plan(FaultConfig(lifecycle=config))
    backward = build_lifecycle_plan(FaultConfig(lifecycle=config))
    samples = list(range(0, 60_000, 997))
    want = [
        (comp, t, forward.state_at(comp, t))
        for comp in range(3)
        for t in samples
    ]
    got = [
        (comp, t, backward.state_at(comp, t))
        for comp in reversed(range(3))
        for t in reversed(samples)
    ]
    assert sorted(want) == sorted(got)
    # And the walk visits every state.
    states = {state for _, _, (state, _) in want}
    assert states == {HEALTHY, DEGRADED, FAILED, REPAIRING}


def test_plan_seed_sensitivity():
    base = LifecyclePlan(_lifecycle(seed=1))
    other = LifecyclePlan(_lifecycle(seed=2))
    samples = range(0, 40_000, 503)
    assert any(
        base.state_at(0, t) != other.state_at(0, t) for t in samples
    )


def test_stretch_only_in_degraded_stages():
    config = _lifecycle(components=1, degraded_scale=2.0, degraded_shift=10)
    plan = LifecyclePlan(config)
    saw_degraded = saw_healthy = False
    for t in range(0, 40_000, 251):
        state, stage = plan.state_at(0, t)
        stretched = plan.stretch(100, 0, t)
        if state == DEGRADED:
            assert stretched == 100 * (1 + stage) + 10 * stage
            saw_degraded = True
        elif state in (HEALTHY, FAILED, REPAIRING):
            # FAILED/REPAIRING requests NACK before latency matters, but
            # stretch itself must not touch them.
            assert stretched == 100
            saw_healthy = saw_healthy or state == HEALTHY
    assert saw_degraded and saw_healthy


def test_outage_until_points_at_next_healthy_segment():
    plan = LifecyclePlan(_lifecycle(components=1))
    for t in range(0, 40_000, 101):
        state, _ = plan.state_at(0, t)
        recover = plan.outage_until(0, t)
        if state in (FAILED, REPAIRING):
            assert recover > t
            assert plan.state_at(0, recover)[0] == HEALTHY
            # One cycle before recovery the component is still down.
            assert plan.state_at(0, recover - 1)[0] in (FAILED, REPAIRING)
        else:
            assert recover == 0


def test_transitions_match_availability_counters():
    config = _lifecycle(components=2)
    plan = LifecyclePlan(config)
    wall = 50_000
    events = list(plan.transitions(wall))
    assert events == sorted(events)
    ledger = plan.availability(wall)
    fails = sum(1 for _, _, state, _ in events if state == FAILED)
    repairs = sum(1 for _, _, state, _ in events if state == HEALTHY)
    assert fails == sum(comp["failures"] for comp in ledger)
    assert repairs == sum(comp["repairs"] for comp in ledger)
    for comp in ledger:
        total = (
            comp["uptime_cycles"]
            + comp["downtime_cycles"]
            + comp["repair_cycles"]
        )
        assert total == wall
        assert 0 < comp["degraded_cycles"] <= comp["uptime_cycles"]


def test_unaffected_components_stay_healthy():
    plan = LifecyclePlan(_lifecycle(components=4, affected=1))
    for t in range(0, 30_000, 331):
        assert plan.state_at(3, t) == (HEALTHY, 0)
    ledger = plan.availability(10_000)
    assert ledger[3]["uptime_cycles"] == 10_000
    assert ledger[3]["failures"] == 0
    assert ledger[0]["failures"] > 0


# -- simulation wiring -------------------------------------------------------------

_POLL_SUM = """
    li  r9, 20
loop:
    lws r2, 0(r0)
    add r8, r8, r2
    addi r9, r9, -1
    bne r9, r0, loop
    swl r8, 0(r0)
    halt
"""


def _degraded_run(**lifecycle_kwargs):
    return run_asm(
        _POLL_SUM,
        shared=[7] + [0] * 63,
        model=SwitchModel.SWITCH_ON_LOAD,
        processors=2,
        threads=2,
        latency=200,
        faults=FaultConfig(lifecycle=_lifecycle(**lifecycle_kwargs)),
    )


def test_outages_nack_and_retries_recover():
    result = _degraded_run(mean_healthy=1_000, mean_failed=800)
    stats = result.stats
    assert stats.lifecycle_failures > 0
    assert stats.replies_dropped > 0  # outage NACKs
    assert stats.nacks == stats.replies_dropped
    assert stats.retries == stats.nacks
    assert stats.mem_issued == stats.mem_completed
    # Every thread still computed the exact polling sum.
    for thread in result.threads:
        assert thread.local[0] == 7 * 20
    check_result(result)


def test_degraded_stages_slow_the_run():
    healthy = _degraded_run(affected=0)
    degraded = _degraded_run(
        mean_healthy=1_000, mean_degraded=2_000, mean_failed=1,
        mean_repair=1, degraded_scale=3.0,
    )
    assert degraded.stats.lifecycle_degraded_cycles > 0
    assert degraded.stats.wall_cycles > healthy.stats.wall_cycles


def test_faa_applies_exactly_once_across_outages():
    asm = """
        li  r1, 1
        li  r9, 25
    loop:
        faa r2, 0(r0), r1
        addi r9, r9, -1
        bne r9, r0, loop
        halt
    """
    result = run_asm(
        asm,
        model=SwitchModel.SWITCH_ON_LOAD,
        processors=4,
        threads=4,
        latency=200,
        faults=FaultConfig(
            lifecycle=_lifecycle(
                components=1, mean_healthy=700, mean_failed=900
            )
        ),
    )
    assert result.shared[0] == 25 * 16  # no lost and no doubled adds
    assert result.stats.lifecycle_failures > 0
    assert result.stats.retries == result.stats.replies_dropped > 0
    check_result(result)


def test_retry_after_hint_bounds_retry_storms():
    """An outage costs roughly one retry per waiting thread, not the
    whole exponential budget: the NACK hint stretches the backoff to the
    scheduled recovery."""
    result = _degraded_run(mean_healthy=1_000, mean_failed=2_000)
    stats = result.stats
    assert stats.lifecycle_failures > 0
    # Far fewer retries than an unhinted exponential ladder would need:
    # each failure window is ~2000 cycles vs a 16..256-cycle ladder.
    assert stats.retries <= 4 * stats.lifecycle_failures * 4  # 4 threads


def test_availability_ledger_conservation_in_simulation():
    result = _degraded_run()
    stats = result.stats
    ledger = stats.component_availability
    assert len(ledger) == 2
    for comp in ledger:
        assert (
            comp["uptime_cycles"]
            + comp["downtime_cycles"]
            + comp["repair_cycles"]
            == stats.wall_cycles
        )
    assert stats.mttf() >= 0.0 and stats.mttr() >= 0.0
    check_result(result)


def test_inert_lifecycle_reports_all_up_ledger():
    result = _degraded_run(mean_healthy=0)
    stats = result.stats
    assert stats.lifecycle_failures == 0
    assert stats.lifecycle_degraded_cycles == 0
    assert all(
        comp["uptime_cycles"] == stats.wall_cycles
        for comp in stats.component_availability
    )
    check_result(result)


def test_stats_roundtrip_preserves_availability():
    from repro.machine.stats import SimStats

    stats = _degraded_run().stats
    again = SimStats.from_dict(stats.to_dict())
    assert again.component_availability == stats.component_availability
    assert again.to_dict() == stats.to_dict()


def test_describe_names_the_lifecycle():
    from repro.isa import assemble
    from repro.machine.config import MachineConfig
    from repro.machine.simulator import Simulator

    program = assemble("halt\n")

    def tag(lifecycle):
        config = MachineConfig(
            model=SwitchModel.SWITCH_ON_LOAD,
            faults=FaultConfig(lifecycle=lifecycle),
        )
        registers = [{} for _ in range(config.total_threads)]
        sim = Simulator(program, config, [0] * 8, registers)
        return sim.describe()

    assert "lifecycle=2c/seed=7" in tag(_lifecycle())
    assert "inert" in tag(_lifecycle(mean_healthy=0))
