"""The observability layer: events, tracers, exporters, metrics, run logs."""

import json

import pytest

from repro.machine import MachineConfig, Simulator, SwitchModel
from repro.obs import (
    Counter,
    EventKind,
    Histogram,
    MetricsRegistry,
    NullTracer,
    RingBuffer,
    RingTracer,
    TimelineTracer,
    TraceEvent,
    Tracer,
    bursts,
    chrome_trace,
    event_to_record,
    metrics_from_events,
    read_events_jsonl,
    record_to_event,
    validate_chrome_trace,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.obs.events import DATA_FIELDS
from repro.obs.runlog import (
    RunLogWriter,
    default_entry,
    peak_rss_kb,
    read_runlog,
    render_runlog_report,
    summarize_runlog,
)
from conftest import run_asm

WORKLOAD = """
    li r9, 12
loop:
    lws r1, 0(r0)
    add r2, r1, r1
    addi r9, r9, -1
    bne r9, r0, loop
    halt
"""


# -- events & ring buffer ------------------------------------------------------


def test_event_record_roundtrip_all_kinds():
    samples = {
        EventKind.INSTR: (12, 3),
        EventKind.BURST: (40, 0),
        EventKind.SWITCH_TAKEN: (250,),
        EventKind.SWITCH_SKIPPED: (),
        EventKind.SWITCH_FORCED: (),
        EventKind.MEM_ISSUE: (7, "READ", 16, 200),
        EventKind.MEM_COMPLETE: (7,),
        EventKind.CACHE_HIT: (16,),
        EventKind.CACHE_MISS: (17,),
        EventKind.CACHE_MERGE: (18,),
        EventKind.CACHE_EVICT: (2,),
        EventKind.FAA_COMBINE: (8, 5, 1),
        EventKind.INVALIDATE: (3,),
        EventKind.THREAD_HALT: (),
        EventKind.MEM_NACK: (7, 1, 8),
        EventKind.MEM_RETRY: (7, 1),
        EventKind.FAA_REPLAY: (8, 7),
        EventKind.COMPONENT_DEGRADE: (1, 2),
        EventKind.COMPONENT_FAIL: (1,),
        EventKind.COMPONENT_REPAIR: (1,),
    }
    assert set(samples) == set(EventKind) == set(DATA_FIELDS)
    for kind, data in samples.items():
        event = TraceEvent(100, kind, 1, 2, data)
        wire = json.loads(json.dumps(event_to_record(event)))
        assert record_to_event(wire) == event


def test_events_jsonl_roundtrip(tmp_path):
    events = [
        TraceEvent(0, EventKind.BURST, 0, 0, (10, 0)),
        TraceEvent(5, EventKind.MEM_ISSUE, 0, 0, (1, "READ", 8, 200)),
        TraceEvent(205, EventKind.MEM_COMPLETE, 0, 0, (1,)),
    ]
    path = tmp_path / "events.jsonl"
    assert write_events_jsonl(path, events) == 3
    assert read_events_jsonl(path) == events


def test_ring_buffer_drops_oldest():
    ring = RingBuffer(capacity=3)
    for index in range(7):
        ring.append(TraceEvent(index, EventKind.INSTR, 0, 0, (index, 0)))
    assert len(ring) == 3
    assert ring.total == 7
    assert ring.dropped == 4
    assert [event.time for event in ring] == [4, 5, 6]
    ring.clear()
    assert len(ring) == 0 and ring.dropped == 0


def test_ring_buffer_unbounded_and_validation():
    ring = RingBuffer()
    for index in range(5):
        ring.append(TraceEvent(index, EventKind.INSTR, 0, 0, (0, 0)))
    assert len(ring) == 5 and ring.dropped == 0
    with pytest.raises(ValueError):
        RingBuffer(capacity=0)


# -- tracers wired into the machine -------------------------------------------


def test_disabled_tracer_is_dropped_at_construction():
    from repro.isa import assemble

    sim = Simulator(
        assemble(WORKLOAD), MachineConfig(), [0] * 16, [{}], tracer=NullTracer()
    )
    assert sim.tracer is None
    assert sim.timeline is None


def test_ring_tracer_records_machine_events():
    tracer = RingTracer()
    result = run_asm(
        WORKLOAD,
        model=SwitchModel.SWITCH_ON_LOAD,
        threads=2,
        latency=200,
        tracer=tracer,
    )
    events = tracer.events()
    kinds = {event.kind for event in events}
    assert EventKind.INSTR in kinds
    assert EventKind.BURST in kinds
    assert EventKind.MEM_ISSUE in kinds
    assert EventKind.MEM_COMPLETE in kinds
    assert EventKind.THREAD_HALT in kinds
    # Instruction events match the retired-instruction count (the trace
    # also shows each thread's final HALT, which stats don't retire).
    instr = sum(1 for e in events if e.kind is EventKind.INSTR)
    assert instr == result.stats.instructions + result.stats.halted_threads
    # Every issued transaction of a value-returning kind completes once.
    issued = {
        e.data[0]
        for e in events
        if e.kind is EventKind.MEM_ISSUE and e.data[1] in ("READ", "READ2", "FAA")
    }
    completed = [e.data[0] for e in events if e.kind is EventKind.MEM_COMPLETE]
    assert sorted(completed) == sorted(issued)
    # Burst view of the stream equals the classic timeline tuples.
    assert list(bursts(events)) == tracer.burst_tuples()
    total = sum(end - start for start, _p, _t, end, _o in bursts(events))
    assert total == result.stats.busy_cycles


def test_tracing_does_not_change_simulation():
    plain = run_asm(WORKLOAD, model=SwitchModel.SWITCH_ON_LOAD, threads=2)
    traced = run_asm(
        WORKLOAD, model=SwitchModel.SWITCH_ON_LOAD, threads=2, tracer=RingTracer()
    )
    assert traced.wall_cycles == plain.wall_cycles
    assert traced.stats.to_dict() == plain.stats.to_dict()


def test_timeline_tracer_matches_record_timeline():
    tracer = TimelineTracer()
    run_asm(WORKLOAD, model=SwitchModel.SWITCH_ON_LOAD, threads=2, tracer=tracer)
    from repro.isa import assemble

    config = MachineConfig(
        model=SwitchModel.SWITCH_ON_LOAD,
        threads_per_processor=2,
        latency=200,
        record_timeline=True,
    )
    sim = Simulator(assemble(WORKLOAD), config, [0] * 64, [{4: 0, 5: 2}, {4: 1, 5: 2}])
    sim.run()
    assert tracer.burst_tuples() == sim.timeline


def test_base_tracer_is_noop():
    tracer = Tracer()
    assert tracer.enabled
    tracer.instr(0, 0, 0, 0, 0)
    tracer.burst(0, 0, 0, 1, 0)
    assert tracer.mem_issue(0, 0, 0, "READ", 0, 200) == 0


# -- Chrome exporter -----------------------------------------------------------


def test_chrome_trace_valid_and_complete(tmp_path):
    tracer = RingTracer()
    run_asm(
        WORKLOAD,
        model=SwitchModel.SWITCH_ON_LOAD,
        processors=2,
        threads=2,
        tracer=tracer,
    )
    document = chrome_trace(tracer.events(), tracer.dropped)
    validate_chrome_trace(document)
    phases = {entry["ph"] for entry in document["traceEvents"]}
    assert {"M", "X", "b", "e"} <= phases
    assert document["otherData"]["dropped"] == 0
    path = tmp_path / "trace.json"
    write_chrome_trace(path, tracer.events(), tracer.dropped)
    validate_chrome_trace(json.loads(path.read_text()))


def test_chrome_validation_rejects_bad_documents():
    with pytest.raises(ValueError, match="traceEvents"):
        validate_chrome_trace({"traceEvents": []})
    with pytest.raises(ValueError, match="phase"):
        validate_chrome_trace(
            {"traceEvents": [{"ph": "?", "pid": 0, "tid": 0, "ts": 0, "name": "x"}]}
        )
    with pytest.raises(ValueError, match="never ended"):
        validate_chrome_trace(
            {
                "traceEvents": [
                    {
                        "ph": "b",
                        "pid": 0,
                        "tid": 0,
                        "ts": 0,
                        "name": "txn",
                        "cat": "mem",
                        "id": 1,
                    }
                ]
            }
        )


# -- metrics -------------------------------------------------------------------


def test_counter_and_histogram_basics():
    counter = Counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    hist = Histogram("h")
    for value in (1, 1.5, 2, 3, 100):
        hist.observe(value)
    assert hist.count == 5
    assert hist.buckets[0] == 1  # value 1
    assert hist.buckets[1] == 2  # 1.5 and 2 both land in (1, 2]
    assert hist.buckets[2] == 1  # 3 in (2, 4]
    assert hist.buckets[7] == 1  # 100 in (64, 128]
    assert hist.min == 1 and hist.max == 100
    assert hist.percentile(0.5) == 2.0
    with pytest.raises(ValueError):
        hist.observe(-1)


def test_registry_name_clash_and_render():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.histogram("b").observe(3)
    with pytest.raises(TypeError):
        registry.histogram("a")
    with pytest.raises(TypeError):
        registry.counter("b")
    text = registry.render()
    assert "counters:" in text and "histograms:" in text
    wire = json.loads(json.dumps(registry.to_dict()))
    assert wire["a"]["value"] == 1
    assert wire["b"]["count"] == 1


def test_metrics_from_events_and_stats_agree():
    tracer = RingTracer()
    result = run_asm(
        WORKLOAD, model=SwitchModel.SWITCH_ON_LOAD, threads=2, tracer=tracer
    )
    from_events = metrics_from_events(tracer.events())
    from_stats = result.stats.to_metrics()
    halts = result.stats.halted_threads  # traced, but not "retired"
    assert from_stats.counter("instr").value == result.stats.instructions
    assert from_events.counter("instr").value == result.stats.instructions + halts
    assert (
        from_events.counter("switch.taken").value
        == from_stats.counter("switch.taken").value
    )
    for name in ("READ", "WRITE"):
        assert (
            from_events.counter(f"mem.issue.{name}").value
            == from_stats.counter(f"mem.issue.{name}").value
        )
    assert from_events.histogram("burst.cycles").count > 0
    assert from_stats.histogram("run.length").count == result.stats.total_runs


# -- run log -------------------------------------------------------------------


def test_runlog_roundtrip_and_torn_line(tmp_path):
    path = tmp_path / "runlog.jsonl"
    with RunLogWriter(path) as writer:
        writer.append(default_entry(spec="a", source="run", elapsed=1.0))
        writer.append(default_entry(spec="b", source="cached", elapsed=0.0))
        assert writer.entries_written == 2
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"spec": "torn')  # crash mid-write
    entries = read_runlog(path)
    assert [entry["spec"] for entry in entries] == ["a", "b"]
    assert all(entry["worker"] for entry in entries)


def test_runlog_summary_and_report():
    entries = [
        {"spec": "a", "source": "run", "elapsed": 2.0, "worker": 10,
         "peak_rss_kb": 2048, "wall_cycles": 100},
        {"spec": "b", "source": "cached", "elapsed": 0.1, "worker": 10,
         "peak_rss_kb": 4096, "wall_cycles": 200},
        {"spec": "c", "source": "failed", "elapsed": 0.5, "worker": 11,
         "error": {"type": "SimulationTimeout", "message": "boom"}},
    ]
    summary = summarize_runlog(entries)
    assert summary["entries"] == 3
    assert summary["by_source"] == {"run": 1, "cached": 1, "failed": 1}
    assert summary["by_worker"] == {10: 2, 11: 1}
    assert summary["peak_rss_kb"] == 4096
    assert summary["elapsed_total"] == pytest.approx(2.6)
    assert [entry["spec"] for entry in summary["slowest"][:2]] == ["a", "c"]
    report = render_runlog_report(entries)
    assert "3 entries" in report
    assert "SimulationTimeout" in report
    assert render_runlog_report([]) == "(empty run log)"


def test_peak_rss_is_positive_on_posix():
    rss = peak_rss_kb()
    assert rss is None or rss > 0


# -- engine integration --------------------------------------------------------


def test_engine_writes_runlog(tmp_path):
    from repro.engine import Engine, RunSpec

    spec = RunSpec.create("sieve", model="switch-on-load", processors=1,
                          level=2, scale="tiny")
    with Engine(cache=tmp_path / "cache") as engine:
        engine.run(spec)
        report = engine.report()
    assert report["runlog"] == str(tmp_path / "cache" / "runlog.jsonl")
    assert report["peak_rss_kb"] == peak_rss_kb() or report["peak_rss_kb"] is None
    # A second engine resolves from disk and logs a cached entry.
    with Engine(cache=tmp_path / "cache") as engine:
        engine.run(spec)
    entries = read_runlog(tmp_path / "cache" / "runlog.jsonl")
    assert [entry["source"] for entry in entries] == ["run", "cached"]
    assert entries[0]["app"] == "sieve"
    assert entries[0]["model"] == "switch-on-load"
    assert entries[0]["wall_cycles"] > 0
    assert entries[0]["worker"] > 0


def test_engine_runlog_disabled_and_explicit(tmp_path):
    from repro.engine import Engine, RunSpec

    spec = RunSpec.create("sieve", model="ideal", processors=1, level=1,
                          scale="tiny", latency=0)
    with Engine(cache=tmp_path / "cache", runlog=False) as engine:
        engine.run(spec)
        assert engine.report()["runlog"] is None
    assert not (tmp_path / "cache" / "runlog.jsonl").exists()
    explicit = tmp_path / "elsewhere.jsonl"
    with Engine(runlog=explicit) as engine:  # no cache at all
        engine.run(spec)
    assert len(read_runlog(explicit)) == 1


def test_engine_logs_failures(tmp_path):
    from repro.engine import Engine, RunSpec
    from repro.machine.simulator import SimulationTimeout

    spec = RunSpec.create("sieve", model="switch-on-load", processors=1,
                          level=2, scale="tiny", max_cycles=10)
    with Engine(cache=tmp_path / "cache") as engine:
        with pytest.raises(SimulationTimeout):
            engine.run(spec)
    entries = read_runlog(tmp_path / "cache" / "runlog.jsonl")
    assert entries[0]["source"] == "failed"
    assert entries[0]["error"]["type"] == "SimulationTimeout"


# -- model aliases & facade ----------------------------------------------------


def test_switch_model_parse():
    assert SwitchModel.parse("eswitch") is SwitchModel.EXPLICIT_SWITCH
    assert SwitchModel.parse("cswitch") is SwitchModel.CONDITIONAL_SWITCH
    assert SwitchModel.parse("hep") is SwitchModel.SWITCH_EVERY_CYCLE
    assert SwitchModel.parse("SWITCH_ON_USE") is SwitchModel.SWITCH_ON_USE
    assert SwitchModel.parse("switch-on-load") is SwitchModel.SWITCH_ON_LOAD
    assert SwitchModel.parse(SwitchModel.IDEAL) is SwitchModel.IDEAL
    with pytest.raises(ValueError, match="unknown switch model"):
        SwitchModel.parse("bogus")


def test_simulate_with_tracer():
    from repro import simulate

    tracer = RingTracer()
    result = simulate(
        "sieve", model="explicit-switch", processors=2, level=2,
        scale="tiny", tracer=tracer,
    )
    assert result.wall_cycles > 0
    assert tracer.total_events > 0
    validate_chrome_trace(chrome_trace(tracer.events(), tracer.dropped))


# -- repro-trace CLI -----------------------------------------------------------


def test_trace_cli_run_and_report(tmp_path, capsys):
    from repro.obs.cli import main

    out = tmp_path / "trace.json"
    events = tmp_path / "events.jsonl"
    code = main([
        "run", "sieve", "--model", "eswitch", "--processors", "2",
        "--level", "2", "--scale", "tiny",
        "--out", str(out), "--events", str(events),
        "--timeline", "--metrics",
    ])
    assert code == 0
    validate_chrome_trace(json.loads(out.read_text()))
    assert read_events_jsonl(events)
    captured = capsys.readouterr()
    assert "processor occupancy" in captured.out
    assert "counters:" in captured.out

    runlog = tmp_path / "runlog.jsonl"
    with RunLogWriter(runlog) as writer:
        writer.append(default_entry(spec="x", source="run", elapsed=1.0))
    assert main(["report", str(runlog)]) == 0
    assert "1 entries" in capsys.readouterr().out


def test_trace_cli_rejects_unknown_model(tmp_path, capsys):
    from repro.obs.cli import main

    assert main(["run", "sieve", "--model", "bogus",
                 "--out", str(tmp_path / "t.json")]) == 2
    assert "unknown switch model" in capsys.readouterr().err


def test_lifecycle_events_trace_chrome_and_metrics():
    """COMPONENT_DEGRADE/FAIL/REPAIR flow through the ring tracer, count
    exactly what the availability ledger counts, export as a valid
    Chrome document under the "lifecycle" category, and surface as
    Prometheus counters."""
    from repro.faults import FaultConfig
    from repro.obs.metrics import metrics_from_events

    tracer = RingTracer()
    result = run_asm(
        WORKLOAD,
        model=SwitchModel.SWITCH_ON_LOAD,
        processors=2,
        threads=2,
        latency=200,
        tracer=tracer,
        faults=FaultConfig(
            lifecycle={
                "components": 2,
                "seed": 7,
                "mean_healthy": 500,
                "mean_degraded": 300,
                "mean_failed": 200,
                "mean_repair": 200,
            }
        ),
    )
    events = tracer.events()
    stats = result.stats
    fails = [e for e in events if e.kind is EventKind.COMPONENT_FAIL]
    repairs = [e for e in events if e.kind is EventKind.COMPONENT_REPAIR]
    degrades = [e for e in events if e.kind is EventKind.COMPONENT_DEGRADE]
    assert degrades and fails
    assert len(fails) == stats.lifecycle_failures
    assert len(repairs) == stats.lifecycle_repairs
    assert {e.data[0] for e in fails} <= {0, 1}
    # Chrome export: valid document, lifecycle instants categorized.
    document = chrome_trace(events, tracer.dropped)
    validate_chrome_trace(document)
    lifecycle_instants = [
        entry for entry in document["traceEvents"]
        if entry.get("cat") == "lifecycle"
    ]
    assert len(lifecycle_instants) == len(fails) + len(repairs) + len(degrades)
    # Prometheus: per-kind event counters plus availability counters.
    registry = metrics_from_events(events)
    assert registry.counter("component.fail").value == len(fails)
    assert registry.counter("component.degrade").value == len(degrades)
    text = stats.to_metrics().to_prometheus()
    assert f"lifecycle_failures_total {len(fails)}" in text
    assert 'lifecycle_component_failures_total{component="0"}' in text
