"""SARIF 2.1.0 export: structure, validation, and CLI integration."""

import json

from repro.lint import lint_app_model, lint_program
from repro.lint.cli import main as lint_main
from repro.lint.analyze_cli import main as analyze_main
from repro.lint.diagnostics import Severity
from repro.lint.mutations import MUTATIONS
from repro.lint.rules import RULES
from repro.lint.sarif import (
    SARIF_VERSION,
    reports_to_sarif,
    severity_level,
    validate_sarif,
    write_sarif,
)

import random


def dirty_report():
    """A report with at least one real diagnostic (lock-order victim)."""
    return MUTATIONS["sync-lock-order"](random.Random(0))


def test_severity_levels_map_to_sarif_vocabulary():
    assert severity_level(Severity.INFO) == "note"
    assert severity_level(Severity.WARNING) == "warning"
    assert severity_level(Severity.ERROR) == "error"


def test_export_is_valid_and_carries_the_rule_table():
    document = reports_to_sarif([dirty_report()])
    assert validate_sarif(document) == []
    assert document["version"] == SARIF_VERSION
    run = document["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    assert [rule["id"] for rule in rules] == sorted(RULES)
    assert run["results"], "victim diagnostics must become results"
    result = run["results"][0]
    assert result["ruleId"] == "sync-lock-order"
    location = result["locations"][0]["physicalLocation"]
    assert location["region"]["startLine"] >= 1
    assert location["artifactLocation"]["uri"].startswith("programs/")


def test_clean_report_exports_zero_results():
    report = lint_app_model("sieve", "ideal")
    document = reports_to_sarif([report])
    assert validate_sarif(document) == []
    assert document["runs"][0]["results"] == []


def test_validate_sarif_catches_corruption():
    document = reports_to_sarif([dirty_report()])
    document["runs"][0]["results"][0]["level"] = "catastrophic"
    assert validate_sarif(document)

    document = reports_to_sarif([dirty_report()])
    document["runs"][0]["results"][0]["ruleId"] = "no-such-rule"
    assert validate_sarif(document)

    document = reports_to_sarif([dirty_report()])
    document["version"] = "3.0.0"
    assert validate_sarif(document)

    document = reports_to_sarif([dirty_report()])
    document["runs"][0]["results"][0]["locations"][0][
        "physicalLocation"]["region"]["startLine"] = 0
    assert validate_sarif(document)


def test_write_sarif_round_trips(tmp_path):
    path = tmp_path / "lint.sarif"
    write_sarif(path, [dirty_report()])
    loaded = json.loads(path.read_text())
    assert validate_sarif(loaded) == []
    assert loaded["runs"][0]["tool"]["driver"]["name"] == "repro-lint"


def test_lint_cli_writes_sarif(tmp_path):
    path = tmp_path / "out.sarif"
    code = lint_main(["sieve", "--model", "ideal", "--sarif", str(path)])
    assert code == 0
    loaded = json.loads(path.read_text())
    assert validate_sarif(loaded) == []


def test_analyze_cli_writes_sarif(tmp_path):
    path = tmp_path / "analyze.sarif"
    code = analyze_main(
        ["sieve", "--model", "ideal", "--sarif", str(path)]
    )
    assert code == 0
    loaded = json.loads(path.read_text())
    assert validate_sarif(loaded) == []
    assert loaded["runs"][0]["tool"]["driver"]["name"] == "repro-analyze"
