"""Assembler / disassembler behaviour."""

import pytest

from repro.isa import assemble, disassemble, AssemblerError, Op


def test_basic_program():
    program = assemble(
        """
        li   r8, 5
    loop:
        addi r8, r8, -1
        bne  r8, r0, loop
        halt
        """
    )
    assert len(program) == 4
    assert program[0].op is Op.LI
    assert program[2].target == 1  # resolved label


def test_every_operand_signature_parses():
    text = """
    start:
        add    r1, r2, r3
        addi   r1, r2, 7
        mov    r1, r2
        li     r1, -3
        fli    f1, 2.5
        lws    r1, 4(r2)
        sws    r1, -4(r2)
        lwl    f3, 0(r2)
        swl    f3, 0(r2)
        lds    r2, 8(r3)
        sds    r2, 8(r3)
        faa    r1, 0(r2), r3
        beq    r1, r2, start
        j      start
        jal    start
        jr     r31
        nop
        switch
        halt
    """
    program = assemble(text)
    assert program[4].imm == 2.5
    assert program[11].op is Op.FAA


def test_round_trip():
    text = """
    top:
        li     r8, 10
        lws    f2, 3(r8)
        faa    r9, 0(r8), r1
        blt    r9, r8, top
        halt
    """
    program = assemble(text)
    again = assemble(disassemble(program))
    assert [ins.to_asm() for ins in program] == [ins.to_asm() for ins in again]
    assert again.labels == program.labels


def test_comments_and_blank_lines():
    program = assemble(
        """
        ; leading comment
        li r1, 1   # trailing comment
        # another
        halt
        """
    )
    assert len(program) == 2


def test_sync_marker_round_trips():
    program = assemble("lws r1, 0(r2) ; sync\nhalt\n")
    assert program[0].sync
    again = assemble(disassemble(program))
    assert again[0].sync


def test_hex_immediates():
    program = assemble("li r1, 0x10\nhalt\n")
    assert program[0].imm == 16


def test_label_sharing_line_with_instruction():
    program = assemble("go: li r1, 1\n j go\n halt\n")
    assert program.labels["go"] == 0


def test_unknown_mnemonic():
    with pytest.raises(AssemblerError, match="unknown mnemonic"):
        assemble("frobnicate r1, r2\nhalt\n")


def test_wrong_operand_count():
    with pytest.raises(AssemblerError, match="expects"):
        assemble("add r1, r2\nhalt\n")


def test_duplicate_label():
    with pytest.raises(AssemblerError, match="duplicate label"):
        assemble("x: nop\nx: halt\n")


def test_undefined_label():
    with pytest.raises(Exception, match="undefined label"):
        assemble("j nowhere\nhalt\n")


def test_bad_register():
    with pytest.raises(AssemblerError):
        assemble("add r1, r2, r99\nhalt\n")


def test_bad_memory_operand():
    with pytest.raises(AssemblerError, match="bad memory operand"):
        assemble("lws r1, r2\nhalt\n")


def test_negative_displacement():
    program = assemble("lws r1, -12(r2)\nhalt\n")
    assert program[0].imm == -12
