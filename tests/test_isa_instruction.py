"""Instruction def/use sets and rendering."""

from repro.isa import Instruction, Op, instr_reads, instr_writes
from repro.isa.registers import LINK_REG


def test_r3_reads_and_writes():
    ins = Instruction(Op.ADD, rd=1, rs1=2, rs2=3)
    assert set(instr_reads(ins)) == {2, 3}
    assert instr_writes(ins) == (1,)


def test_load_reads_base_writes_dest():
    ins = Instruction(Op.LWS, rd=7, rs1=8, imm=4)
    assert instr_reads(ins) == (8,)
    assert instr_writes(ins) == (7,)


def test_double_load_writes_pair():
    ins = Instruction(Op.LDS, rd=7, rs1=8)
    assert instr_writes(ins) == (7, 8)


def test_store_reads_value_and_base():
    ins = Instruction(Op.SWS, rs1=8, rs2=9)
    assert set(instr_reads(ins)) == {8, 9}
    assert instr_writes(ins) == ()


def test_double_store_reads_pair():
    ins = Instruction(Op.SDS, rs1=8, rs2=10)
    assert set(instr_reads(ins)) == {8, 10, 11}


def test_faa_reads_base_and_addend():
    ins = Instruction(Op.FAA, rd=1, rs1=2, rs2=3)
    assert set(instr_reads(ins)) == {2, 3}
    assert instr_writes(ins) == (1,)


def test_jal_writes_link_register():
    ins = Instruction(Op.JAL, label="x")
    assert instr_writes(ins) == (LINK_REG,)


def test_switch_touches_nothing():
    ins = Instruction(Op.SWITCH)
    assert instr_reads(ins) == ()
    assert instr_writes(ins) == ()


def test_cost_precomputed():
    assert Instruction(Op.MUL).cost == 12
    assert Instruction(Op.ADD).cost == 1


def test_equality_and_copy():
    a = Instruction(Op.ADDI, rd=1, rs1=2, imm=5)
    assert a == a.copy()
    assert a != Instruction(Op.ADDI, rd=1, rs1=2, imm=6)


def test_to_asm_examples():
    assert Instruction(Op.ADDI, rd=1, rs1=2, imm=-3).to_asm() == "addi    r1, r2, -3"
    assert Instruction(Op.LWS, rd=33, rs1=2, imm=8).to_asm() == "lws     f1, 8(r2)"
    assert Instruction(Op.SWITCH).to_asm() == "switch"
    sync = Instruction(Op.LWS, rd=1, rs1=2, sync=True)
    assert "sync" in sync.to_asm()
