"""Prometheus text-format export of the metrics registry."""

from repro.obs.metrics import (
    MetricsRegistry,
    escape_help,
    escape_label_value,
    labeled_key,
    metrics_from_events,
    prometheus_name,
)


def test_counter_rendering():
    registry = MetricsRegistry()
    registry.counter("serve.jobs.submitted", help="Jobs accepted").inc(3)
    text = registry.to_prometheus()
    assert "# HELP serve_jobs_submitted_total Jobs accepted" in text
    assert "# TYPE serve_jobs_submitted_total counter" in text
    assert "serve_jobs_submitted_total 3" in text
    assert text.endswith("\n")


def test_counter_named_total_not_doubled():
    registry = MetricsRegistry()
    registry.counter("requests_total").inc()
    text = registry.to_prometheus()
    assert "requests_total 1" in text
    assert "requests_total_total" not in text


def test_histogram_rendering_cumulative_buckets():
    registry = MetricsRegistry()
    hist = registry.histogram("mem.latency.read")
    for value in (1, 2, 2, 5, 200):
        hist.observe(value)
    text = registry.to_prometheus()
    assert "# TYPE mem_latency_read histogram" in text
    # Power-of-two buckets, cumulative counts.
    assert 'mem_latency_read_bucket{le="1"} 1' in text
    assert 'mem_latency_read_bucket{le="2"} 3' in text
    assert 'mem_latency_read_bucket{le="8"} 4' in text
    assert 'mem_latency_read_bucket{le="256"} 5' in text
    assert 'mem_latency_read_bucket{le="+Inf"} 5' in text
    assert "mem_latency_read_sum 210" in text
    assert "mem_latency_read_count 5" in text


def test_labeled_key_is_sorted_and_escaped():
    assert labeled_key("c") == "c"
    assert labeled_key("c", {}) == "c"
    assert (
        labeled_key("c", {"b": "2", "a": "1"}) == 'c{a="1",b="2"}'
    )
    assert labeled_key("c", {"x": 'say "hi"'}) == 'c{x="say \\"hi\\""}'


def test_labeled_counters_are_distinct_series():
    registry = MetricsRegistry()
    first = registry.counter("lint.diagnostics",
                             labels={"rule": "isa-arity",
                                     "severity": "warning"})
    second = registry.counter("lint.diagnostics",
                              labels={"rule": "isa-no-halt",
                                      "severity": "error"})
    assert first is not second
    first.inc(2)
    second.inc()
    # Same (name, labels) -> the same instrument.
    again = registry.counter("lint.diagnostics",
                             labels={"severity": "warning",
                                     "rule": "isa-arity"})
    assert again is first
    assert again.value == 2
    assert len(registry) == 2


def test_labeled_counter_rendering_one_family_header():
    registry = MetricsRegistry()
    registry.counter("lint.diagnostics", help="Lint findings",
                     labels={"rule": "df-dead-write",
                             "severity": "info"}).inc()
    registry.counter("lint.diagnostics", help="Lint findings",
                     labels={"rule": "isa-no-halt",
                             "severity": "error"}).inc(3)
    text = registry.to_prometheus()
    assert text.count("# HELP lint_diagnostics_total") == 1
    assert text.count("# TYPE lint_diagnostics_total counter") == 1
    assert ('lint_diagnostics_total{rule="df-dead-write",severity="info"} 1'
            in text)
    assert ('lint_diagnostics_total{rule="isa-no-halt",severity="error"} 3'
            in text)


def test_labeled_counter_to_dict_carries_labels():
    registry = MetricsRegistry()
    registry.counter("plain").inc()
    registry.counter("tagged", labels={"k": "v"}).inc()
    document = registry.to_dict()
    assert "labels" not in document["plain"]
    assert document['tagged{k="v"}']["labels"] == {"k": "v"}


def test_name_sanitization():
    assert prometheus_name("mem.issue.read-shared") == "mem_issue_read_shared"
    assert prometheus_name("0weird name") == "_0weird_name"
    assert prometheus_name("already_fine:ok") == "already_fine:ok"


def test_help_and_label_escaping():
    assert escape_help("a\\b\nc") == "a\\\\b\\nc"
    assert escape_label_value('say "hi"\n\\') == 'say \\"hi\\"\\n\\\\'
    registry = MetricsRegistry()
    registry.counter("c", help="line1\nline2 \\ slash").inc()
    text = registry.to_prometheus()
    assert "# HELP c_total line1\\nline2 \\\\ slash" in text
    assert "\nline2" not in text  # no raw newline leaks into the help line


def test_output_ordering_is_stable_and_sorted():
    first = MetricsRegistry()
    first.counter("b.second").inc()
    first.histogram("a.first").observe(1)
    second = MetricsRegistry()
    second.histogram("a.first").observe(1)
    second.counter("b.second").inc()
    assert first.to_prometheus() == second.to_prometheus()
    text = first.to_prometheus()
    assert text.index("a_first") < text.index("b_second_total")


def test_empty_registry_renders_empty():
    assert MetricsRegistry().to_prometheus() == ""


def test_event_derived_metrics_round_trip_through_exporter():
    import repro
    from repro.obs import RingTracer

    tracer = RingTracer(capacity=100_000)
    repro.simulate("sieve", model="explicit-switch", processors=2, level=2,
                   scale="tiny", tracer=tracer)
    text = metrics_from_events(tracer.events()).to_prometheus()
    assert "instr_total" in text
    assert "burst_cycles_count" in text
