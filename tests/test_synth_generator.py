"""repro.synth generator: determinism, validity by construction, and
the ``synth:<seed>[:<preset>]`` registry scheme."""

import pytest

from repro.apps.registry import get_app
from repro.compiler.passes import prepare_for_model
from repro.harness.sizes import sizes_for
from repro.lint import lint_pair
from repro.machine import SwitchModel
from repro.machine.config import MachineConfig
from repro.runtime.execution import run_app
from repro.synth import (
    PRESETS,
    SynthConfig,
    build_synth_app,
    format_synth_name,
    generate_app,
    generate_plan,
    get_preset,
    parse_synth_name,
    plan_segment_ids,
    program_fingerprint,
    prune_plan,
)

ALL_MODELS = list(SwitchModel)


def _run(app, model, backend="interpreter"):
    config = MachineConfig(
        model=model,
        num_processors=2,
        threads_per_processor=2,
        latency=0 if model is SwitchModel.IDEAL else 32,
    )
    program = prepare_for_model(app.program, model)
    return run_app(app, config, program=program, backend=backend)


# -- determinism ---------------------------------------------------------------


def test_same_seed_same_plan_and_program():
    cfg = get_preset("quick")
    assert generate_plan(9, cfg) == generate_plan(9, cfg)
    first = build_synth_app(generate_plan(9, cfg), 4)
    second = build_synth_app(generate_plan(9, cfg), 4)
    assert program_fingerprint(first.program) == program_fingerprint(
        second.program
    )
    assert first.shared == second.shared


def test_different_seeds_differ():
    cfg = get_preset("quick")
    fingerprints = {
        program_fingerprint(build_synth_app(generate_plan(s, cfg), 4).program)
        for s in range(6)
    }
    assert len(fingerprints) > 1


def test_config_round_trip_and_validation():
    cfg = SynthConfig(segments=4, sync="lock", region_words=16)
    assert SynthConfig.from_dict(cfg.to_dict()) == cfg
    with pytest.raises(ValueError):
        SynthConfig(segments=0)
    with pytest.raises(ValueError):
        SynthConfig(sync="mutex")
    with pytest.raises(ValueError):
        SynthConfig(region_words=12)  # not a power of two
    with pytest.raises(KeyError, match="unknown synth preset"):
        get_preset("nope")
    assert set(PRESETS) == {"default", "dense", "branchy", "sync", "quick"}


# -- validity by construction --------------------------------------------------


@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_kernels_lint_clean_across_all_models(preset):
    app = generate_app(11, get_preset(preset), nthreads=4)
    for model in ALL_MODELS:
        prepared = prepare_for_model(app.program, model)
        report = lint_pair(app.program, prepared, model)
        assert not report.diagnostics, (
            f"{preset}/{model.value}: "
            f"{[d.render() for d in report.diagnostics]}"
        )


@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_kernels_pass_their_reference_check(preset):
    app = generate_app(5, get_preset(preset), nthreads=4)
    for model in (SwitchModel.SWITCH_ON_LOAD, SwitchModel.EXPLICIT_SWITCH):
        result = _run(app, model)  # run_app re-raises on check failure
        assert result.stats.halted_threads == 4


def test_backends_agree_on_a_generated_kernel():
    app = generate_app(13, get_preset("quick"), nthreads=4)
    interp = _run(app, SwitchModel.CONDITIONAL_SWITCH, backend="interpreter")
    compiled = _run(app, SwitchModel.CONDITIONAL_SWITCH, backend="compiled")
    assert interp.stats.to_dict() == compiled.stats.to_dict()
    assert interp.shared == compiled.shared


def test_prune_plan_keeps_kernels_valid():
    plan = generate_plan(7, get_preset("quick"))
    ids = plan_segment_ids(plan)
    assert ids
    pruned = prune_plan(plan, set(ids[:1]))
    assert plan_segment_ids(pruned) == ids[:1]
    app = build_synth_app(pruned, 4)
    _run(app, SwitchModel.SWITCH_ON_LOAD)  # reference check still holds
    empty = build_synth_app(prune_plan(plan, set()), 4)
    _run(empty, SwitchModel.SWITCH_ON_LOAD)


def test_sync_kernels_execute_locks_and_barriers():
    app = generate_app(2, get_preset("sync"), nthreads=4)
    result = _run(app, SwitchModel.SWITCH_ON_LOAD)
    assert result.stats.sync_msgs > 0


# -- registry scheme -----------------------------------------------------------


def test_parse_synth_name():
    assert parse_synth_name("synth:42") == (42, "default")
    assert parse_synth_name("synth:0x2a:dense") == (42, "dense")
    assert format_synth_name(42) == "synth:42"
    assert format_synth_name(42, "dense") == "synth:42:dense"
    for bad in ("synth:", "synth:abc", "synth:-1", "synth:1:nope",
                "synth:1:dense:extra"):
        with pytest.raises(ValueError):
            parse_synth_name(bad)


def test_get_app_resolves_synth_scheme():
    spec = get_app("synth:42:quick")
    assert spec.name == "synth:42:quick"
    app = spec.build(4)
    reference = generate_app(42, get_preset("quick"), nthreads=4)
    assert program_fingerprint(app.program) == program_fingerprint(
        reference.program
    )
    with pytest.raises(TypeError):
        spec.build(4, limit=100)  # synth kernels take no size keywords


def test_get_app_synth_errors_are_keyerrors():
    with pytest.raises(KeyError, match="synth"):
        get_app("synth:notanumber")
    with pytest.raises(KeyError, match="preset"):
        get_app("synth:1:bogus")


def test_unknown_app_error_names_apps_and_synth_scheme():
    with pytest.raises(KeyError) as excinfo:
        get_app("doom")
    message = str(excinfo.value)
    assert "sieve" in message and "mp3d" in message
    assert "synth:<seed>[:<preset>]" in message


def test_sizes_for_unknown_app_is_empty():
    assert sizes_for("synth:1:quick", "tiny") == {}
    assert sizes_for("sieve", "tiny") == {"limit": 600}
    with pytest.raises(KeyError, match="unknown scale"):
        sizes_for("sieve", "huge")


def test_synth_runs_through_api_facade():
    import repro

    result = repro.simulate(
        "synth:5:quick",
        model="switch-on-load",
        processors=2,
        level=2,
        scale="tiny",
        latency=32,
    )
    assert result.stats.halted_threads == 4


def test_experiment_context_accepts_synth_apps():
    from repro.harness.context import ExperimentContext

    with ExperimentContext(scale="tiny", apps=["synth:42:quick", "sieve"]) as ctx:
        assert ctx.app_names() == ["synth:42:quick", "sieve"]
        assert [spec.name for spec in ctx.apps()] == ["synth:42:quick", "sieve"]
        assert ctx.size_of("synth:42:quick") == {}
        assert ctx.size_of("sieve") == {"limit": 600}
        result = ctx.run("synth:42:quick", SwitchModel.SWITCH_ON_LOAD, 2, 2)
        assert result.stats.halted_threads == 4
