"""Every benchmark application lints clean under every switch model.

This is the acceptance bar of the lint subsystem: the 7 Table 1
applications, lowered for all 8 Figure 1 models, produce *zero*
diagnostics — not merely zero errors.  Any future compiler or
application change that trips a rule fails here with the full report.
"""

import pytest

from repro.apps.registry import app_names
from repro.lint import lint_app_model, lint_matrix, lint_spec_cached
from repro.machine.models import SwitchModel


@pytest.mark.parametrize("app", app_names())
def test_app_lints_clean_under_every_model(app):
    for model in SwitchModel:
        report = lint_app_model(app, model)
        assert report.diagnostics == [], report.render()
        assert report.instructions > 0
        assert report.blocks > 0


def test_matrix_covers_the_full_grid():
    reports = list(lint_matrix())
    assert len(reports) == len(app_names()) * len(SwitchModel)
    assert all(report.ok for report in reports)


def test_lint_spec_is_memoised():
    lint_spec_cached.cache_clear()
    first = lint_spec_cached("sieve", "explicit-switch", 2, "tiny")
    second = lint_spec_cached("sieve", "explicit-switch", 2, "tiny")
    assert first is second
    assert lint_spec_cached.cache_info().hits == 1


def test_lint_spec_uses_the_engine_build_parameters():
    from repro.engine import RunSpec
    from repro.lint import lint_spec

    spec = RunSpec(app="sieve", model="explicit-switch", processors=2,
                   level=4, scale="tiny")
    report = lint_spec(spec)
    assert report.model == "explicit-switch"
    assert report.ok
