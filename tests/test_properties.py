"""Property-based tests (hypothesis) on the core invariants.

The heavyweight one is *grouping preserves semantics*: for random
straight-line programs over the full ISA subset the scheduler may touch,
the grouped code must leave registers and both memories exactly as the
original does.
"""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st, HealthCheck

from repro.isa import Instruction, Op, Program, assemble, disassemble
from repro.isa.instruction import instr_reads, instr_writes
from repro.isa.registers import reg_index, reg_name, NUM_REGS
from repro.compiler import group_block, group_program
from repro.machine import SwitchModel
from repro.machine.config import NetworkConfig
from repro.machine.stats import SimStats
from repro.runtime import SharedLayout
from conftest import run_program

_SETTINGS = dict(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Registers the generated programs use (small int file, disjoint scratch).
_REGS = st.integers(min_value=1, max_value=7)
_ADDRS = st.integers(min_value=0, max_value=15)
_IMMS = st.integers(min_value=-64, max_value=64)


@st.composite
def straight_line_instruction(draw):
    kind = draw(
        st.sampled_from(
            ["alu", "alui", "li", "lws", "sws", "lds", "sds", "faa", "lwl", "swl"]
        )
    )
    rd = draw(_REGS)
    rs1 = draw(_REGS)
    rs2 = draw(_REGS)
    addr = draw(_ADDRS)
    if kind == "alu":
        op = draw(st.sampled_from([Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SLT]))
        return Instruction(op, rd=rd, rs1=rs1, rs2=rs2)
    if kind == "alui":
        op = draw(st.sampled_from([Op.ADDI, Op.ANDI, Op.ORI, Op.SLTI]))
        return Instruction(op, rd=rd, rs1=rs1, imm=draw(_IMMS))
    if kind == "li":
        return Instruction(Op.LI, rd=rd, imm=draw(_IMMS))
    if kind == "lws":
        return Instruction(Op.LWS, rd=rd, rs1=0, imm=addr)
    if kind == "sws":
        return Instruction(Op.SWS, rs1=0, rs2=rs2, imm=addr)
    if kind == "lds":
        return Instruction(Op.LDS, rd=min(rd, 6), rs1=0, imm=addr)
    if kind == "sds":
        return Instruction(Op.SDS, rs1=0, rs2=min(rs2, 6), imm=addr)
    if kind == "faa":
        return Instruction(Op.FAA, rd=rd, rs1=0, rs2=rs2, imm=addr)
    if kind == "lwl":
        return Instruction(Op.LWL, rd=rd, rs1=0, imm=addr)
    return Instruction(Op.SWL, rs1=0, rs2=rs2, imm=addr)


def _architectural_state(program: Program, model: SwitchModel):
    shared = [(7 * i + 3) % 11 for i in range(32)]
    result = run_program(
        program.copy(), shared=shared, model=model, latency=200, local_size=32
    )
    thread = result.threads[0]
    return thread.regs[:8], result.shared, thread.local


@settings(**_SETTINGS)
@given(st.lists(straight_line_instruction(), min_size=1, max_size=14))
def test_grouping_preserves_semantics(instructions):
    body = list(instructions) + [Instruction(Op.HALT)]
    program = Program(body).finalize()
    grouped_block = group_block(program.instructions[:-1])
    grouped = Program(grouped_block + [Instruction(Op.HALT)]).finalize()

    for model in (SwitchModel.SWITCH_ON_LOAD, SwitchModel.EXPLICIT_SWITCH):
        code = program if model is SwitchModel.SWITCH_ON_LOAD else grouped
        reference = _architectural_state(program, SwitchModel.SWITCH_ON_LOAD)
        outcome = _architectural_state(code, model)
        assert outcome == reference


@settings(**_SETTINGS)
@given(st.lists(straight_line_instruction(), min_size=1, max_size=12))
def test_grouping_emits_permutation_plus_switches(instructions):
    scheduled = group_block(instructions)
    original = Counter(ins.to_asm() for ins in instructions)
    emitted = Counter(
        ins.to_asm() for ins in scheduled if ins.op is not Op.SWITCH
    )
    assert emitted == original


@settings(**_SETTINGS)
@given(st.lists(straight_line_instruction(), min_size=1, max_size=12))
def test_grouping_is_dependence_preserving_permutation(instructions):
    """Beyond multiset equality: the grouped schedule must keep every
    dependence edge of the original block pointing forward."""
    from repro.compiler.dependence import block_dependences

    scheduled = [
        ins for ins in group_block(list(instructions))
        if ins.op is not Op.SWITCH
    ]
    # Match original positions onto scheduled positions (greedy in-order
    # over identical renderings — duplicates carry WAW edges, so order
    # among them is itself constrained).
    remaining = {}
    for position, ins in enumerate(scheduled):
        remaining.setdefault(ins.to_asm(), []).append(position)
    mapping = [remaining[ins.to_asm()].pop(0) for ins in instructions]
    assert sorted(mapping) == list(range(len(instructions)))

    _preds, succs = block_dependences(list(instructions))
    for earlier, followers in enumerate(succs):
        for later in followers:
            assert mapping[earlier] < mapping[later], (
                f"dependence {earlier}->{later} reversed: "
                f"{instructions[earlier].to_asm()} vs "
                f"{instructions[later].to_asm()}"
            )


@settings(**_SETTINGS)
@given(st.lists(straight_line_instruction(), min_size=1, max_size=12))
def test_lint_permutation_rule_agrees_with_direct_check(instructions):
    """The repro.lint cross-check reaches the same verdict on the real
    grouping pass: zero permutation findings for any generated block."""
    from repro.lint import lint_pair

    body = list(instructions) + [Instruction(Op.HALT)]
    original = Program(body).finalize()
    prepared = group_program(original)
    report = lint_pair(original, prepared, SwitchModel.EXPLICIT_SWITCH)
    # No errors at all (an error would skip the cross-check silently).
    assert report.ok, report.render()
    assert report.by_rule("paper-grouping-permutation") == [], report.render()


@settings(**_SETTINGS)
@given(st.lists(straight_line_instruction(), min_size=1, max_size=12))
def test_assembler_round_trip(instructions):
    program = Program(list(instructions) + [Instruction(Op.HALT)]).finalize()
    again = assemble(disassemble(program))
    assert [i.to_asm() for i in again] == [i.to_asm() for i in program]


@settings(**_SETTINGS)
@given(
    st.lists(
        st.tuples(st.sampled_from(["lws", "lds", "sws", "faa"]), _ADDRS, _IMMS),
        min_size=1,
        max_size=16,
    )
)
def test_cached_machine_equals_flat_memory(accesses):
    """A single thread's access sequence through cache+directory must
    leave memory exactly as direct execution does, and loads must return
    the same values."""
    lines = []
    out = 0
    for kind, addr, value in accesses:
        if kind == "lws":
            lines += [f"lws r1, {addr}(r0)", f"swl r1, {out}(r0)"]
            out += 1
        elif kind == "lds":
            lines += [f"lds r2, {addr}(r0)", f"swl r2, {out}(r0)"]
            out += 1
        elif kind == "sws":
            lines += [f"li r1, {value}", f"sws r1, {addr}(r0)"]
        else:
            lines += [f"li r1, {value}", f"faa r2, {addr}(r0), r1"]
    asm = "\n".join(lines) + "\nhalt\n"
    program = assemble(asm)
    shared = [(5 * i + 1) % 9 for i in range(24)]
    ideal = run_program(program.copy(), shared=list(shared), model=SwitchModel.IDEAL)
    cached = run_program(
        program.copy(),
        shared=list(shared),
        model=SwitchModel.CONDITIONAL_SWITCH,
        latency=200,
    )
    assert cached.shared == ideal.shared
    assert cached.threads[0].local == ideal.threads[0].local


@settings(**_SETTINGS)
@given(
    st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=8),
    st.integers(min_value=1, max_value=4),
)
def test_faa_sum_preserved_across_threads(addends, threads):
    body = []
    for index, amount in enumerate(addends):
        body.append(f"li r1, {amount}")
        body.append("faa r2, 0(r0), r1")
    asm = "\n".join(body) + "\nhalt\n"
    result = run_program(
        assemble(asm),
        shared=[0] * 8,
        model=SwitchModel.SWITCH_ON_LOAD,
        threads=threads,
        latency=200,
    )
    assert result.shared[0] == sum(addends) * threads


@settings(**_SETTINGS)
@given(st.lists(st.integers(min_value=1, max_value=500), min_size=0, max_size=40))
def test_run_length_fractions_partition(lengths):
    stats = SimStats(1, NetworkConfig())
    for length in lengths:
        stats.record_run(length)
    fractions = stats.run_length_fractions([1, 2, 5, 10, 100])
    if lengths:
        assert sum(fractions.values()) == pytest.approx(1.0)
    else:
        assert sum(fractions.values()) == 0.0


@settings(**_SETTINGS)
@given(
    st.lists(
        st.tuples(st.integers(min_value=1, max_value=40), st.booleans()),
        min_size=1,
        max_size=12,
        unique_by=lambda pair: pair,
    )
)
def test_layout_regions_never_overlap(sizes):
    layout = SharedLayout()
    spans = []
    for index, (size, single) in enumerate(sizes):
        if single:
            base = layout.word(f"w{index}")
            spans.append((base, base + 1))
        else:
            base = layout.alloc(f"r{index}", size)
            spans.append((base, base + size))
    spans.sort()
    for (_, end), (start, _) in zip(spans, spans[1:]):
        assert end <= start
    image = layout.build_image()
    assert len(image) == layout.total_words


@settings(**_SETTINGS)
@given(st.integers(min_value=0, max_value=NUM_REGS - 1))
def test_register_name_round_trip(slot):
    assert reg_index(reg_name(slot)) == slot


@settings(**_SETTINGS)
@given(
    st.integers(min_value=-1000, max_value=1000),
    st.integers(min_value=-1000, max_value=1000).filter(lambda v: v != 0),
)
def test_division_matches_c_semantics(a, b):
    asm = f"""
        li r1, {a}
        li r2, {b}
        div r3, r1, r2
        rem r4, r1, r2
        swl r3, 0(r0)
        swl r4, 1(r0)
        halt
    """
    result = run_program(assemble(asm))
    quotient, remainder = result.threads[0].local[:2]
    assert quotient == int(a / b)  # trunc toward zero
    assert remainder == a - quotient * b
    assert quotient * b + remainder == a


@settings(**_SETTINGS)
@given(st.lists(straight_line_instruction(), min_size=1, max_size=10))
def test_def_use_sets_cover_register_effects(instructions):
    """Executing an instruction must only change registers it declares."""
    program = Program(list(instructions) + [Instruction(Op.HALT)]).finalize()
    shared = [1] * 32
    # Pin the loader's convention registers to zero so only the program's
    # own writes can change the register file.
    result = run_program(
        program, shared=shared, local_size=32, regs=[{4: 0, 5: 0}]
    )
    # build the set of declared destinations
    declared = set()
    for ins in instructions:
        declared.update(instr_writes(ins))
    regs = result.threads[0].regs
    for slot in range(1, 8):
        if slot not in declared:
            assert regs[slot] == 0, f"r{slot} changed without being written"


# -- component-lifecycle trajectories (DESIGN §5i) -------------------------------

from repro.faults import FaultConfig, LifecycleConfig
from repro.faults.lifecycle import (
    DEGRADED,
    FAILED,
    HEALTHY,
    LifecyclePlan,
    REPAIRING,
)

lifecycle_configs = st.builds(
    LifecycleConfig,
    components=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    mean_healthy=st.integers(min_value=0, max_value=5_000),
    mean_degraded=st.integers(min_value=0, max_value=3_000),
    mean_failed=st.integers(min_value=0, max_value=1_500),
    mean_repair=st.integers(min_value=0, max_value=1_500),
    degrade_stages=st.integers(min_value=1, max_value=3),
    degraded_scale=st.floats(
        min_value=1.0, max_value=3.0, allow_nan=False, allow_infinity=False
    ),
    degraded_shift=st.integers(min_value=0, max_value=50),
)


@given(
    config=lifecycle_configs,
    times=st.lists(
        st.integers(min_value=0, max_value=100_000), min_size=1, max_size=20
    ),
)
@settings(**_SETTINGS)
def test_lifecycle_trajectory_is_a_pure_function(config, times):
    """Two independently built plans agree at every sampled cycle even
    when queried in opposite orders — the schedule is a pure function of
    (seed, component, cycle), never of query history."""
    forward, backward = LifecyclePlan(config), LifecyclePlan(config)
    states = {
        (comp, t): forward.state_at(comp, t)
        for comp in range(config.components)
        for t in times
    }
    for (comp, t) in reversed(list(states)):
        assert backward.state_at(comp, t) == states[(comp, t)]
        state, stage = states[(comp, t)]
        assert state in (HEALTHY, DEGRADED, FAILED, REPAIRING)
        assert (1 <= stage <= config.degrade_stages) == (state == DEGRADED)


@given(
    config=lifecycle_configs,
    wall=st.integers(min_value=1, max_value=100_000),
)
@settings(**_SETTINGS)
def test_lifecycle_availability_accounts_every_cycle(config, wall):
    plan = LifecyclePlan(config)
    ledger = plan.availability(wall)
    assert len(ledger) == config.components
    for comp in ledger:
        assert (
            comp["uptime_cycles"]
            + comp["downtime_cycles"]
            + comp["repair_cycles"]
            == wall
        )
        assert 0 <= comp["degraded_cycles"] <= comp["uptime_cycles"]
        assert comp["failures"] >= comp["repairs"] >= comp["failures"] - 1


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=3, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_degradation_scenario_is_identical_everywhere(seed):
    """The acceptance property: any fixed-seed degradation scenario
    serializes identically at 1 vs 2 workers, cache cold vs warm, and on
    the interpreter vs the compiled backend."""
    import tempfile

    from repro.check import replay_check
    from repro.engine import RunSpec

    faults = FaultConfig(
        lifecycle=LifecycleConfig(
            components=2,
            seed=seed,
            mean_healthy=2_000,
            mean_degraded=1_000,
            mean_failed=500,
            mean_repair=700,
        )
    )
    spec = RunSpec(
        app="sieve",
        model="explicit-switch",
        processors=2,
        level=2,
        scale="tiny",
        overrides=(("faults", faults),),
    )
    with tempfile.TemporaryDirectory() as cache_dir:
        canonical = replay_check(
            spec,
            workers=(1, 2),
            cache_dir=cache_dir,
            backends=("interpreter", "compiled"),
        )
    assert '"component_availability"' in canonical


# -- synthetic-kernel generator (repro.synth) ----------------------------------

_SYNTH_CONFIGS = st.builds(
    dict,
    segments=st.integers(min_value=1, max_value=5),
    shared_load_density=st.floats(min_value=0.0, max_value=1.0),
    max_group=st.integers(min_value=1, max_value=6),
    branchiness=st.floats(min_value=0.0, max_value=1.0),
    loop_depth=st.integers(min_value=0, max_value=2),
    faa_weight=st.floats(min_value=0.0, max_value=1.0),
    sync=st.sampled_from(["none", "lock", "barrier", "mixed"]),
    region_words=st.sampled_from([8, 16, 32]),
)


@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       raw=_SYNTH_CONFIGS)
def test_synth_generator_is_seed_deterministic(seed, raw):
    """Same (seed, config) => byte-identical plan, program and image."""
    from repro.synth import SynthConfig, build_synth_app, generate_plan
    from repro.synth.generator import program_fingerprint

    config = SynthConfig(**raw)
    first_plan = generate_plan(seed, config)
    second_plan = generate_plan(seed, config)
    assert first_plan == second_plan
    first = build_synth_app(first_plan, 4)
    second = build_synth_app(second_plan, 4)
    assert program_fingerprint(first.program) == program_fingerprint(
        second.program
    )
    assert first.shared == second.shared


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**16), raw=_SYNTH_CONFIGS)
def test_synth_kernels_lint_clean_by_construction(seed, raw):
    """Sampled across the config space, every generated kernel passes
    repro.lint with zero diagnostics for every switch model."""
    from repro.compiler.passes import prepare_for_model
    from repro.lint import lint_pair
    from repro.synth import SynthConfig, generate_app

    app = generate_app(seed, SynthConfig(**raw), nthreads=4)
    for model in SwitchModel:
        prepared = prepare_for_model(app.program, model)
        report = lint_pair(app.program, prepared, model)
        assert not report.diagnostics, (
            f"{model.value}: {[d.render() for d in report.diagnostics]}"
        )
