"""The repro.check oracle: invariants, golden replay, zero-fault equivalence."""

import pytest

from repro.check import (
    CheckFailure,
    canonical_stats,
    check_result,
    replay_check,
    result_problems,
    zero_fault_equivalence,
    zero_lifecycle_equivalence,
)
from repro.engine import RunSpec
from repro.faults import FaultConfig
from repro.harness import ExperimentContext
from repro.machine import SwitchModel
from conftest import run_asm, NONIDEAL_MODELS

_FAULTY = FaultConfig(
    latency_model="uniform", jitter=100, loss_rate=0.02, seed=1
)


def test_oracle_passes_on_full_matrix_under_faults():
    """Every app x non-ideal model completes via retries under jittered
    latency + 2% reply loss, and every invariant holds (the tentpole's
    acceptance matrix)."""
    total_retries = 0
    with ExperimentContext(
        scale="tiny", processors=2, faults=_FAULTY, check=True
    ) as ctx:
        for app in ctx.app_names():
            for model in NONIDEAL_MODELS:
                result = ctx.run(app, model, 2, 2)  # check=True raises on problems
                total_retries += result.stats.retries
    assert total_retries > 0  # the loss rate actually exercised the protocol


def test_clean_result_has_no_problems():
    result = run_asm("halt\n")
    assert result_problems(result) == []
    assert check_result(result) is result


def test_tampered_conservation_is_caught():
    result = run_asm(
        "lws r1, 0(r0)\nhalt\n", model=SwitchModel.SWITCH_ON_LOAD, latency=200
    )
    result.stats.mem_completed -= 1
    with pytest.raises(CheckFailure, match="conservation"):
        check_result(result, label="tampered")


def test_fault_counters_must_stay_zero_without_faults():
    result = run_asm("halt\n")
    result.stats.retries = 3
    problems = result_problems(result)
    assert any("faults off" in p for p in problems)
    # retries also no longer match nacks.
    assert any("retry" in p for p in problems)


def test_unhalted_thread_is_caught():
    result = run_asm("halt\n")
    result.threads[0].halted = False
    with pytest.raises(CheckFailure, match="never halted"):
        check_result(result)


def test_check_failure_message_carries_label():
    result = run_asm("halt\n")
    result.stats.halted_threads = 0
    with pytest.raises(CheckFailure, match="my-run:"):
        check_result(result, label="my-run")


# -- golden replay (satellite: byte-identical across workers and cache) -------------


def _faulty_spec():
    return RunSpec(
        app="sieve",
        model="switch-on-load",
        processors=2,
        level=2,
        scale="tiny",
        overrides=(("faults", _FAULTY),),
    )


def test_replay_is_byte_identical_across_workers_and_cache(tmp_path):
    canonical = replay_check(
        _faulty_spec(), workers=(1, 2), cache_dir=str(tmp_path)
    )
    assert '"retries"' in canonical
    # The cache-warm pass really came from disk.
    assert any((tmp_path / "quarantine").parent.rglob("*.json"))


def test_canonical_stats_is_stable():
    result_a = run_asm("halt\n")
    result_b = run_asm("halt\n")
    assert canonical_stats(result_a.stats) == canonical_stats(result_b.stats)


def test_zero_fault_equivalence_strips_and_compares():
    result = zero_fault_equivalence(_faulty_spec())
    assert result.wall_cycles > 0


# -- lifecycle availability oracles ---------------------------------------------

_DEGRADED = FaultConfig(
    lifecycle={
        "components": 2,
        "seed": 7,
        "mean_healthy": 3_000,
        "mean_degraded": 1_500,
        "mean_failed": 600,
        "mean_repair": 900,
    }
)


def _degraded_spec():
    return RunSpec(
        app="sieve",
        model="explicit-switch",
        processors=2,
        level=2,
        scale="tiny",
        overrides=(("faults", _DEGRADED),),
    )


def test_degradation_replay_identical_across_workers_cache_backends(tmp_path):
    """The acceptance criterion: one fixed-seed degradation scenario,
    byte-identical SimStats (availability ledger included) at 1 and 2
    workers, cache cold vs warm, interpreter vs compiled."""
    canonical = replay_check(
        _degraded_spec(),
        workers=(1, 2),
        cache_dir=str(tmp_path),
        backends=("interpreter", "compiled"),
    )
    assert '"component_availability"' in canonical
    assert '"failures"' in canonical


def test_zero_lifecycle_equivalence_holds():
    result = zero_lifecycle_equivalence(_degraded_spec())
    assert result.wall_cycles > 0


def _degraded_result():
    return run_asm(
        "lws r1, 0(r0)\nhalt\n",
        model=SwitchModel.SWITCH_ON_LOAD,
        latency=200,
        faults=_DEGRADED,
    )


def test_tampered_availability_conservation_is_caught():
    result = _degraded_result()
    assert result_problems(result) == []
    result.stats.component_availability[0]["uptime_cycles"] += 1
    assert any(
        "availability conservation" in problem
        for problem in result_problems(result)
    )


def test_tampered_repair_pairing_is_caught():
    result = _degraded_result()
    comp = result.stats.component_availability[1]
    comp["repairs"] = comp["failures"] + 2
    assert any("repairs" in problem for problem in result_problems(result))


def test_ledger_without_lifecycle_config_is_caught():
    result = run_asm("halt\n")
    result.stats.component_availability = [
        {"component": 0, "uptime_cycles": 1, "degraded_cycles": 0,
         "downtime_cycles": 0, "repair_cycles": 0, "failures": 0,
         "repairs": 0}
    ]
    assert any(
        "without a lifecycle config" in problem
        for problem in result_problems(result)
    )


def test_short_ledger_is_caught():
    result = _degraded_result()
    result.stats.component_availability.pop()
    assert any("covers 1 components" in p for p in result_problems(result))
