"""Basic-block discovery and reassembly."""

import pytest

from repro.isa import assemble, Op
from repro.compiler import build_blocks, reassemble

LOOPY = """
    li   r1, 0
    li   r2, 5
loop:
    addi r1, r1, 1
    lws  r3, 0(r1)
    bne  r1, r2, loop
    sws  r3, 0(r0)
    halt
"""


def test_leaders():
    program = assemble(LOOPY)
    blocks = build_blocks(program)
    starts = [block.start for block in blocks]
    # leaders: 0 (entry), 2 (label target), 5 (after branch)
    assert starts == [0, 2, 5]
    assert blocks[1].labels == ["loop"]


def test_terminator_property():
    program = assemble(LOOPY)
    blocks = build_blocks(program)
    assert blocks[1].terminator.op is Op.BNE
    assert blocks[2].terminator.op is Op.HALT
    assert blocks[0].terminator is None  # falls through


def test_blocks_copy_instructions():
    program = assemble(LOOPY)
    blocks = build_blocks(program)
    blocks[0].instructions[0].imm = 42
    assert program[0].imm == 0


def test_reassemble_round_trip():
    program = assemble(LOOPY)
    rebuilt = reassemble(build_blocks(program), "again")
    assert len(rebuilt) == len(program)
    assert rebuilt.labels == program.labels
    assert [i.to_asm() for i in rebuilt] == [i.to_asm() for i in program]


def test_reassemble_remaps_labels_after_insertion():
    from repro.isa import Instruction

    program = assemble(LOOPY)
    blocks = build_blocks(program)
    blocks[0].instructions.append(Instruction(Op.NOP))
    rebuilt = reassemble(blocks, "shifted")
    assert rebuilt.labels["loop"] == 3
    assert rebuilt[rebuilt.labels["loop"] + 2].target == 3  # bne re-resolved


def test_jump_targets_create_leaders():
    program = assemble(
        """
        j skip
        nop
    skip:
        halt
        """
    )
    blocks = build_blocks(program)
    assert [block.start for block in blocks] == [0, 1, 2]


def test_requires_finalized():
    from repro.isa import Instruction, Program

    with pytest.raises(ValueError):
        build_blocks(Program([Instruction(Op.HALT)]))


def test_reassemble_rejects_anonymous_branches():
    from repro.isa import Instruction, Program
    from repro.compiler.cfg import BasicBlock

    anon = Instruction(Op.J)
    anon.target = 0
    block = BasicBlock(0, 0, [anon, Instruction(Op.HALT)])
    with pytest.raises(ValueError, match="symbolic"):
        reassemble([block], "bad")
