"""The compiled backend's equivalence contract.

The :mod:`repro.jit` backend exists to be *fast*, never *different*:
for every application x switch-model pair the compiled backend must
produce a :meth:`SimStats.to_dict` bit-identical to the interpreter's.
This suite pins that contract three ways:

* the full application x model grid, fault-free (every program built
  with ``lint=True``, so only statically verified code is compiled);
* a fault-injected subset (uniform latency jitter + 1% reply loss),
  where the compiled backend must take the interpreter's slow paths —
  byte for byte — through the NACK/retry protocol;
* the committed golden fixture (``tests/data/golden_stats.json``) plus
  the :mod:`repro.check` result oracles, so the compiled backend is
  anchored to the same pre-fault baseline as the interpreter, not just
  to whatever the interpreter does today.
"""

import json
from pathlib import Path

import pytest

from repro.apps.registry import app_names
from repro.check import check_result
from repro.engine.executor import _build
from repro.engine.spec import RunSpec
from repro.faults import FaultConfig
from repro.machine import SwitchModel
from repro.runtime.execution import make_simulator

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "golden_stats.json").read_text()
)

APPS = app_names()
MODELS = [model.value for model in SwitchModel]

#: Fault-injected subset: three memory-intensive apps under the three
#: models whose slow paths differ most (plain load switching, the cached
#: model, and one-instruction bursts).
FAULT_APPS = ("sieve", "mp3d", "water")
FAULT_MODELS = (
    "switch-on-load",
    "switch-on-use-miss",
    "switch-every-cycle",
)


def _stats_for(spec: RunSpec, backend: str, lint: bool = True):
    """One in-process simulation -> checked SimulationResult."""
    app, program = _build(
        spec.app,
        spec.total_threads,
        spec.effective_code_model.value,
        spec.scale,
        lint,
    )
    result = make_simulator(
        app, spec.machine_config(), program=program, backend=backend
    ).run()
    if app.check is not None:
        app.check(result.shared)
    return result


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("app", APPS)
def test_grid_cell_is_bit_identical(app, model):
    """Interpreter and compiled agree on every fault-free grid cell."""
    spec = RunSpec(app=app, model=model, processors=2, level=4, scale="tiny")
    interpreted = _stats_for(spec, "interpreter")
    compiled = _stats_for(spec, "compiled")
    assert interpreted.stats.to_dict() == compiled.stats.to_dict(), (
        f"{app}/{model}: compiled SimStats diverge from the interpreter"
    )
    assert interpreted.wall_cycles == compiled.wall_cycles


@pytest.mark.parametrize("model", FAULT_MODELS)
@pytest.mark.parametrize("app", FAULT_APPS)
def test_fault_injected_cell_is_bit_identical(app, model):
    """Jittered latency + 1% reply loss: the compiled backend must fall
    back to the interpreter's fault paths and still match exactly."""
    spec = RunSpec.create(
        app,
        model=model,
        processors=2,
        level=4,
        scale="tiny",
        faults=FaultConfig(
            latency_model="uniform", jitter=80, seed=7, loss_rate=0.01
        ),
    )
    interpreted = _stats_for(spec, "interpreter")
    compiled = _stats_for(spec, "compiled")
    assert interpreted.stats.to_dict() == compiled.stats.to_dict(), (
        f"{app}/{model}: compiled diverges under fault injection"
    )
    # The scenario must actually exercise the fault machinery, or this
    # test silently degrades into a copy of the fault-free grid.
    faulty = interpreted.stats.to_dict()
    assert faulty["replies_delayed"] > 0 or faulty["retries"] > 0


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_compiled_matches_golden_fixture(key):
    """The compiled backend reproduces the committed pre-fault golden
    numbers (the same anchor ``test_golden_baseline`` holds the
    interpreter to), and passes the result oracles."""
    app, model = key.split("/")
    entry = GOLDEN[key]
    spec = RunSpec(app=app, model=model, processors=2, level=2, scale="tiny")
    result = _stats_for(spec, "compiled")
    check_result(result, label=f"{key} (compiled)")
    assert result.wall_cycles == entry["wall_cycles"], key
    stats = result.stats.to_dict()
    mismatched = {
        name
        for name, value in entry["stats"].items()
        if stats.get(name) != value
    }
    assert not mismatched, f"{key}: compiled drift from golden in {mismatched}"
