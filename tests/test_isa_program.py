"""Program container: finalisation, validation, rendering."""

import pytest

from repro.isa import assemble, Instruction, Op, Program
from repro.isa.program import ProgramError


def test_requires_halt():
    with pytest.raises(ProgramError, match="no HALT") as excinfo:
        Program([Instruction(Op.NOP)], name="haltless").finalize()
    assert "'haltless'" in str(excinfo.value)


def test_branch_target_resolution():
    program = Program(
        [Instruction(Op.J, label="end"), Instruction(Op.HALT)],
        labels={"end": 1},
    ).finalize()
    assert program[0].target == 1


def test_undefined_label_rejected():
    with pytest.raises(ProgramError, match="undefined label") as excinfo:
        Program(
            [Instruction(Op.NOP), Instruction(Op.J, label="oops"),
             Instruction(Op.HALT)],
            labels={"top": 0},
            name="kernel",
        ).finalize()
    message = str(excinfo.value)
    # The error pinpoints program, index and the rendered offending line
    # (opaque messages are useless in multi-hundred-instruction kernels).
    assert "program 'kernel'" in message
    assert "instruction 1 of 3" in message
    assert "`j       oops`" in message
    assert "known labels: top" in message


def test_out_of_range_target_rejected():
    bad = Instruction(Op.J)
    bad.target = 99
    with pytest.raises(ProgramError, match="outside the program") as excinfo:
        Program([bad, Instruction(Op.HALT)]).finalize()
    message = str(excinfo.value)
    assert "instruction 0 of 2" in message
    assert "valid range 0..1" in message


def test_copy_is_deep():
    program = assemble("li r1, 1\nhalt\n")
    dup = program.copy()
    dup.instructions[0].imm = 42
    assert program[0].imm == 1
    assert dup.finalized


def test_static_counts():
    program = assemble(
        """
        lws r1, 0(r2)
        lds r3, 0(r2)
        faa r1, 0(r2), r3
        sws r1, 0(r2)
        switch
        halt
        """
    )
    assert program.shared_load_count() == 3
    assert program.shared_store_count() == 1
    assert program.switch_count() == 1
    assert program.count(Op.HALT) == 1


def test_to_asm_includes_labels():
    program = assemble("top:\n j top\n halt\n")
    text = program.to_asm()
    assert "top:" in text
    assert "j       top" in text


def test_len_and_iteration():
    program = assemble("nop\nnop\nhalt\n")
    assert len(program) == 3
    assert sum(1 for _ in program) == 3
