"""Differential soundness: static bounds must contain measured stats.

The full gate (7 apps x 8 models plus 100+ synth seeds) runs in CI's
``analyze-smoke`` job; here we run a representative slice plus the
self-test that proves the harness can actually catch an unsound
predictor and shrink the witness.
"""

import dataclasses

from repro.apps.registry import get_app
from repro.harness.sizes import sizes_for
from repro.lint import predict_spec_cached
from repro.lint.validate import (
    DOCTORS,
    check_cell,
    prediction_violations,
    run_selftest,
    validate_apps,
    validate_synth_seeds,
)
from repro.synth.fuzz import FuzzOptions

MODELS = [
    "ideal", "switch-every-cycle", "switch-on-load", "switch-on-use",
    "explicit-switch", "switch-on-miss", "switch-on-use-miss",
    "conditional-switch",
]


def build(name, nthreads=4, scale="tiny"):
    spec = get_app(name)
    return spec.build(nthreads, **sizes_for(name, scale))


def test_validate_apps_slice_is_sound():
    summary = validate_apps(
        apps=["sieve", "sor"], models=MODELS, scale="tiny",
        processors=2, level=2, latency=200,
    )
    assert summary["ok"], summary["violations"]
    assert len(summary["cells"]) == 2 * len(MODELS)
    for cell in summary["cells"]:
        assert cell["violations"] == []
        measured = cell["measured"]
        predicted = cell["predicted"]
        assert measured["run_min"] >= 1
        if predicted["run_max"] is not None:
            assert measured["run_max"] <= predicted["run_max"]


def test_check_cell_reports_measured_and_predicted():
    cell = check_cell(build("sieve"), "explicit-switch", latency=64)
    assert cell["model"] == "explicit-switch"
    assert cell["lint_clean"] is True
    assert cell["violations"] == []
    assert cell["measured"]["switches"] >= cell["predicted"]["switch_min"]


def test_check_cell_catches_a_doctored_run_bound():
    doctor = lambda pred: dataclasses.replace(pred, run_max=1)
    cell = check_cell(
        build("sieve"), "switch-on-load", latency=200, doctor=doctor
    )
    invariants = {v["invariant"] for v in cell["violations"]}
    assert "predict-run-max" in invariants


def test_synth_seed_campaign_is_sound(tmp_path):
    options = FuzzOptions(models=tuple(MODELS))
    summary = validate_synth_seeds(
        range(6), options=options, bundle_dir=str(tmp_path)
    )
    assert summary["ok"], summary
    assert summary["seeds"] == 6
    assert summary["failures"] == 0
    assert list(tmp_path.iterdir()) == []  # no failure bundles written


def test_selftest_catches_and_shrinks_every_doctor():
    report = run_selftest()
    assert set(report) == set(DOCTORS)
    for name, entry in report.items():
        assert entry["caught"], name
        assert entry["shrunk_segments"] <= entry["original_segments"]


def test_prediction_violations_vacuous_when_threads_hang():
    class Stats:
        halted_threads = 1

    class Config:
        total_threads = 4

    class Result:
        stats = Stats()
        config = Config()

    pred = predict_spec_cached("sieve", "ideal", 2, 2, "tiny", 0)
    assert prediction_violations(pred, Result()) == []
