"""Fault-injection subsystem: configs, latency models, NACK/retry."""

import dataclasses

import pytest

from repro.faults import (
    FaultConfig,
    FaultPlan,
    RetryLimitExceeded,
    build_fault_plan,
    build_latency_model,
)
from repro.faults.latency import (
    GeometricJitterLatency,
    HotSpotLatency,
    UniformJitterLatency,
)
from repro.faults.rng import bounded, hash_u64, mix64, unit
from repro.machine import SwitchModel
from conftest import run_asm


# -- configuration -----------------------------------------------------------------


def test_default_config_is_inert():
    config = FaultConfig()
    assert config.inert
    assert not config.injects_faults
    assert not config.perturbs_latency


@pytest.mark.parametrize(
    "kwargs",
    [
        {"latency_model": "gaussian"},
        {"loss_rate": -0.1},
        {"loss_rate": 1.5},
        {"delay_rate": 2.0},
        {"jitter": -1},
        {"delay_cycles": 0},
        {"max_retries": 0},
        {"backoff_base": 0},
        {"backoff_base": 16, "backoff_cap": 8},
        {"hotspot_modules": 0},
    ],
)
def test_config_validation_rejects(kwargs):
    with pytest.raises(ValueError):
        FaultConfig(**kwargs)


def test_config_dict_roundtrip_ignores_unknown_keys():
    config = FaultConfig(latency_model="uniform", jitter=50, seed=7, loss_rate=0.01)
    data = config.to_dict()
    data["future_field"] = "ignored"
    assert FaultConfig.from_dict(data) == config


# -- hashed randomness --------------------------------------------------------------


def test_rng_is_deterministic_and_sensitive():
    assert mix64(0) == mix64(0)
    assert hash_u64(1, 2, 3) == hash_u64(1, 2, 3)
    assert hash_u64(1, 2, 3) != hash_u64(1, 2, 4)
    assert hash_u64(1, 2, 3) != hash_u64(1, 3, 2)
    assert unit(9, 9) == unit(9, 9)


def test_rng_ranges():
    for n in range(200):
        assert 0.0 <= unit(42, n) < 1.0
        assert 0 <= bounded(13, 42, n) <= 13
    # A bounded draw actually covers its range.
    values = {bounded(3, 0, n) for n in range(100)}
    assert values == {0, 1, 2, 3}


def test_unit_is_roughly_uniform():
    draws = [unit(123, n) for n in range(2000)]
    mean = sum(draws) / len(draws)
    assert 0.45 < mean < 0.55


# -- latency models -----------------------------------------------------------------


def test_build_latency_model_constant_is_fast_path_none():
    assert build_latency_model(FaultConfig(), 200) is None


def test_uniform_jitter_bounds_and_determinism():
    model = build_latency_model(
        FaultConfig(latency_model="uniform", jitter=100, seed=3), 200
    )
    assert isinstance(model, UniformJitterLatency)
    draws = [model.round_trip(t, t % 7) for t in range(500)]
    assert all(200 <= d <= 300 for d in draws)
    assert len(set(draws)) > 10  # actually jitters
    assert draws == [model.round_trip(t, t % 7) for t in range(500)]


def test_geometric_jitter_mean_and_cap():
    model = build_latency_model(
        FaultConfig(latency_model="geometric", jitter=50, seed=1), 200
    )
    assert isinstance(model, GeometricJitterLatency)
    extras = [model.round_trip(t, 0) - 200 for t in range(4000)]
    assert all(0 <= e <= 16 * 50 for e in extras)
    mean = sum(extras) / len(extras)
    assert 35 < mean < 65  # geometric with mean 50


def test_hotspot_queues_same_module_only():
    model = HotSpotLatency(base=200, modules=16, service=4)
    # Back-to-back requests to one module queue behind each other...
    first = model.round_trip(0, 5)
    second = model.round_trip(0, 5)
    third = model.round_trip(0, 5)
    assert first == 200 + 4
    assert second == 200 + 4 + 4
    assert third == 200 + 8 + 4
    # ...while a different module at the same time pays only service.
    assert model.round_trip(0, 6) == 200 + 4


# -- fault plans --------------------------------------------------------------------


def test_build_fault_plan_none_without_fault_rates():
    assert build_fault_plan(FaultConfig(latency_model="uniform", jitter=9)) is None
    assert isinstance(build_fault_plan(FaultConfig(loss_rate=0.5)), FaultPlan)


def test_reply_fate_statistics_track_rates():
    plan = FaultPlan(seed=11, loss_rate=0.2, delay_rate=0.3, delay_cycles=64)
    lost = delayed = 0
    for txn in range(5000):
        was_lost, extra = plan.reply_fate(txn, 1)
        if was_lost:
            lost += 1
            assert extra == 0
        elif extra:
            delayed += 1
            assert 1 <= extra <= 64
    assert 0.15 < lost / 5000 < 0.25
    # Delay applies to the surviving 80%: expect ~0.8 * 0.3 = 24%.
    assert 0.19 < delayed / 5000 < 0.29


def test_reply_fate_extremes():
    always = FaultPlan(seed=0, loss_rate=1.0, delay_rate=0.0, delay_cycles=8)
    never = FaultPlan(seed=0, loss_rate=0.0, delay_rate=0.0, delay_cycles=8)
    for txn in range(100):
        assert always.reply_fate(txn, 1) == (True, 0)
        assert never.reply_fate(txn, 1) == (False, 0)


# -- end-to-end retry protocol ------------------------------------------------------

_POLL_SUM = """
    li  r9, 20
loop:
    lws r2, 0(r0)
    add r8, r8, r2
    addi r9, r9, -1
    bne r9, r0, loop
    swl r8, 0(r0)
    halt
"""


def _lossy(**kwargs):
    kwargs.setdefault("seed", 5)
    return FaultConfig(loss_rate=kwargs.pop("loss_rate", 0.3), **kwargs)


def test_lost_replies_are_retried_and_accounted():
    result = run_asm(
        _POLL_SUM,
        shared=[7] + [0] * 63,
        model=SwitchModel.SWITCH_ON_LOAD,
        processors=2,
        threads=2,
        latency=200,
        faults=_lossy(),
    )
    stats = result.stats
    assert stats.replies_dropped > 0
    assert stats.nacks == stats.replies_dropped
    assert stats.retries == stats.nacks
    assert stats.backoff_cycles > 0
    assert stats.mem_issued == stats.mem_completed
    # Every thread still computed the exact polling sum.
    for thread in result.threads:
        assert thread.local[0] == 7 * 20


def test_faa_applies_exactly_once_under_loss():
    asm = """
        li  r1, 1
        li  r9, 25
    loop:
        faa r2, 0(r0), r1
        addi r9, r9, -1
        bne r9, r0, loop
        halt
    """
    result = run_asm(
        asm,
        model=SwitchModel.SWITCH_ON_LOAD,
        processors=4,
        threads=4,
        latency=200,
        faults=_lossy(loss_rate=0.4),
    )
    assert result.shared[0] == 25 * 16  # no lost and no doubled updates
    assert result.stats.faa_replays > 0
    assert result.stats.retries == result.stats.replies_dropped > 0


def test_total_loss_exhausts_retry_budget():
    with pytest.raises(RetryLimitExceeded) as info:
        run_asm(
            "lws r1, 0(r0)\nhalt\n",
            model=SwitchModel.SWITCH_ON_LOAD,
            latency=200,
            faults=FaultConfig(loss_rate=1.0, max_retries=3),
        )
    assert "3 attempts" in str(info.value)


def test_delayed_replies_slow_the_run_but_deliver():
    base = run_asm(
        _POLL_SUM,
        shared=[7] + [0] * 63,
        model=SwitchModel.SWITCH_ON_LOAD,
        latency=200,
    )
    delayed = run_asm(
        _POLL_SUM,
        shared=[7] + [0] * 63,
        model=SwitchModel.SWITCH_ON_LOAD,
        latency=200,
        faults=FaultConfig(delay_rate=1.0, delay_cycles=50, seed=2),
    )
    assert delayed.stats.replies_delayed > 0
    assert delayed.stats.replies_dropped == 0
    assert delayed.wall_cycles > base.wall_cycles
    assert delayed.threads[0].local[0] == 7 * 20


def test_inert_config_is_bit_identical_to_no_config():
    for model in (SwitchModel.SWITCH_ON_LOAD, SwitchModel.EXPLICIT_SWITCH):
        bare = run_asm(_POLL_SUM, model=model, processors=2, threads=2, latency=200)
        inert = run_asm(
            _POLL_SUM,
            model=model,
            processors=2,
            threads=2,
            latency=200,
            faults=FaultConfig(),
        )
        assert bare.stats.to_dict() == inert.stats.to_dict()
        assert bare.wall_cycles == inert.wall_cycles


def test_same_seed_reproduces_same_faulty_run():
    runs = [
        run_asm(
            _POLL_SUM,
            model=SwitchModel.SWITCH_ON_LOAD,
            processors=2,
            threads=3,
            latency=200,
            faults=FaultConfig(
                latency_model="uniform", jitter=80, loss_rate=0.2, seed=99
            ),
        )
        for _ in range(2)
    ]
    assert runs[0].stats.to_dict() == runs[1].stats.to_dict()
    assert runs[0].stats.retries > 0


def test_different_seeds_usually_diverge():
    def run_with_seed(seed):
        return run_asm(
            _POLL_SUM,
            model=SwitchModel.SWITCH_ON_LOAD,
            processors=2,
            threads=3,
            latency=200,
            faults=FaultConfig(latency_model="uniform", jitter=150, seed=seed),
        )

    walls = {run_with_seed(seed).wall_cycles for seed in range(4)}
    assert len(walls) > 1


def test_faults_survive_machine_config_roundtrip():
    from repro.machine import MachineConfig

    config = MachineConfig(
        faults=FaultConfig(latency_model="geometric", jitter=30, loss_rate=0.05)
    )
    rebuilt = MachineConfig.from_dict(config.to_dict())
    assert rebuilt.faults == config.faults
    bare = MachineConfig.from_dict(MachineConfig().to_dict())
    assert bare.faults is None
