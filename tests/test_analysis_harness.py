"""Analysis helpers and the experiment harness (tiny scale)."""

import pytest

from repro.analysis import (
    TextTable,
    run_length_row,
    single_thread_cycles,
    mt_levels_for_efficiency,
    reorganization_penalty,
    bandwidth_row,
)
from repro.analysis.runlength import format_row_cells, RUN_BIN_LABELS
from repro.apps import get_app
from repro.compiler.interblock import oracle_config, estimate
from repro.harness import ExperimentContext
from repro.harness.sizes import scale_sizes, SCALES
from repro.harness import tables as T
from repro.harness import figures as F
from repro.machine import MachineConfig, SwitchModel
from repro.harness.cli import main as cli_main


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(scale="tiny", processors=2, max_level=6)


# -- tablefmt ---------------------------------------------------------------


def test_text_table_render():
    table = TextTable("demo", ["a", "b"])
    table.add_row(["x", 1.5])
    text = table.render()
    assert "demo" in text
    assert "1.50" in text
    with pytest.raises(ValueError):
        table.add_row(["only-one"])


# -- efficiency helpers --------------------------------------------------------


def test_single_thread_cycles_and_penalty():
    spec = get_app("sor")
    size = SCALES["tiny"]["sor"]
    t1 = single_thread_cycles(spec, size)
    assert t1 > 1000
    penalty = reorganization_penalty(spec, size)
    assert 0.0 <= penalty < 0.15  # a few percent, as in the paper


def test_mt_levels_structure():
    spec = get_app("sieve")
    size = SCALES["tiny"]["sieve"]
    base = MachineConfig(
        model=SwitchModel.SWITCH_ON_LOAD, num_processors=2, threads_per_processor=1
    )
    levels = mt_levels_for_efficiency(
        spec, size, base, targets=(0.2, 0.4), max_level=6
    )
    assert set(levels) == {0.2, 0.4}
    reached = [lvl for lvl in levels.values() if lvl is not None]
    assert all(1 <= lvl <= 6 for lvl in reached)
    # Higher targets never need fewer threads.
    if levels[0.2] is not None and levels[0.4] is not None:
        assert levels[0.4] >= levels[0.2]


def test_run_length_row_and_cells(ctx):
    result = ctx.run("sor", SwitchModel.SWITCH_ON_LOAD, 2, 2)
    row = run_length_row(result.stats)
    assert set(RUN_BIN_LABELS) < set(row)
    total = sum(row[label] for label in RUN_BIN_LABELS)
    assert total == pytest.approx(100.0, abs=0.5)
    cells = format_row_cells(row)
    assert len(cells) == len(RUN_BIN_LABELS) + 1


def test_bandwidth_row(ctx):
    result = ctx.run("sor", SwitchModel.CONDITIONAL_SWITCH, 2, 2)
    row = bandwidth_row(result)
    assert 0.0 <= row["hit_rate"] <= 1.0
    assert row["bits_per_cycle"] > 0
    assert row["sync_messages_excluded"] > 0  # barrier spinning


# -- experiment context ----------------------------------------------------------


def test_context_memoises_runs(ctx):
    first = ctx.run("sieve", SwitchModel.SWITCH_ON_LOAD, 2, 1)
    second = ctx.run("sieve", SwitchModel.SWITCH_ON_LOAD, 2, 1)
    assert first is second


def test_context_t1_positive(ctx):
    assert ctx.t1("blkmat") > 0


def test_scale_sizes_lookup():
    assert "sieve" in scale_sizes("tiny")
    with pytest.raises(KeyError, match="unknown scale"):
        scale_sizes("galactic")


def test_oracle_config_and_estimate(ctx):
    base = MachineConfig(num_processors=1, threads_per_processor=1)
    config = oracle_config(base)
    assert config.interblock_oracle
    assert config.model is SwitchModel.EXPLICIT_SWITCH
    result = ctx.run("locus", SwitchModel.EXPLICIT_SWITCH, 2, 2, oracle=True)
    summary = estimate(result.stats)
    assert 0.0 <= summary.hit_rate <= 1.0
    assert summary.grouping_factor > 0


# -- tables and figures (tiny, structural assertions only) -----------------------


def test_table1(ctx):
    text, data = T.table1(ctx)
    assert len(data) == 7 and "sieve" in text


def test_table2_and_4(ctx):
    _text, sol = T.table2(ctx)
    _text, grouped = T.table4(ctx)
    assert sol["sor"]["1"] > grouped["sor"]["1"]  # grouping kills 1-runs
    assert grouped["sor"]["grouping"] > 1.5


def test_table7(ctx):
    text, data = T.table7(ctx)
    assert set(data) == {
        "sieve", "blkmat", "sor", "ugray", "water", "locus", "mp3d"
    }
    assert "bits/cy" in text


def test_figures(ctx):
    text, graph = F.figure1()
    assert "explicit-switch" in text
    text, data = F.figure2(ctx, processor_counts=[1, 2])
    assert data["sieve"][1] > 0.9
    text, data = F.figure3(ctx, levels=[1, 2], processor_counts=[1, 2])
    assert data["2"][2] >= data["1"][2] - 0.02
    text, data = F.figure4(ctx)
    assert data["loads"] == 5


def test_cli_smoke(capsys):
    assert cli_main(["figure4", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out
    with pytest.raises(SystemExit):
        cli_main(["not-a-target"])


def test_cli_json_embeds_engine_report(tmp_path, capsys):
    import json

    out = tmp_path / "results.json"
    assert cli_main([
        "table1", "--scale", "tiny", "--quiet",
        "--cache-dir", str(tmp_path / "cache"), "--json", str(out),
    ]) == 0
    document = json.loads(out.read_text())
    assert "table1" in document["targets"]
    engine = document["engine"]
    assert engine["completed"] == engine["executed"] + engine["cached"] > 0
    assert engine["cache_dir"] == str(tmp_path / "cache")
    assert engine["runlog"] == str(tmp_path / "cache" / "runlog.jsonl")
    assert (tmp_path / "cache" / "runlog.jsonl").exists()
    stderr = capsys.readouterr().err
    assert "run log" in stderr
