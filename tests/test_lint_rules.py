"""Per-rule unit tests for the lint rule registry and diagnostics."""

import pytest

from repro.isa import Instruction, Op, assemble
from repro.isa.registers import NUM_REGS, reg_index
from repro.lint import (
    RULES,
    LintError,
    LintReport,
    Severity,
    lint_pair,
    lint_program,
)
from repro.lint.mutations import build_sync_victim, build_victim
from repro.machine.models import SwitchModel

CLEAN = """
    add  r8, r6, r4
    lws  r9, 0(r8)
    sws  r9, 1(r8)
    halt
"""


def only_rule(report, rule_id):
    """Assert *rule_id* fired and return its diagnostics."""
    hits = report.by_rule(rule_id)
    assert hits, f"{rule_id} did not fire: {report.render()}"
    return hits


def test_clean_program_has_no_diagnostics():
    report = lint_program(assemble(CLEAN))
    assert report.diagnostics == []
    assert report.ok
    assert report.instructions == 4
    assert report.blocks == 1
    assert "ok (0E 0W 0I" in report.summary_line()


def test_registry_rule_ids_match_their_keys():
    for rule_id, rule in RULES.items():
        assert rule.rule_id == rule_id
        assert rule.summary


# -- isa-* -------------------------------------------------------------------

def test_operand_range_fires_on_out_of_file_slot():
    program = assemble(CLEAN).copy()
    program.instructions[0].rs2 = NUM_REGS + 3
    report = lint_program(program)
    [diag] = only_rule(report, "isa-operand-range")
    assert diag.severity is Severity.ERROR
    assert diag.pc == 0
    assert not report.ok


def test_operand_kind_fires_on_wrong_register_file():
    program = assemble(
        """
        fli  f1, 1.0
        fadd f2, f1, f1
        halt
        """
    ).copy()
    program.instructions[1].rs1 = reg_index("r5")
    report = lint_program(program)
    [diag] = only_rule(report, "isa-operand-kind")
    assert "must be a fp register" in diag.message


def test_branches_may_compare_fp_but_not_across_files():
    same_file = assemble(
        """
        fli f1, 1.0
        fli f2, 2.0
        bge f1, f2, out
    out:
        halt
        """
    )
    assert lint_program(same_file).by_rule("isa-operand-kind") == []

    mixed = same_file.copy()
    mixed.instructions[2].rs2 = reg_index("r5")
    [diag] = only_rule(lint_program(mixed), "isa-operand-kind")
    assert "across register files" in diag.message


def test_float_immediate_only_legal_on_fli():
    program = assemble(CLEAN).copy()
    program.instructions[0].imm = 1.5
    only_rule(lint_program(program), "isa-operand-kind")


def test_arity_warns_on_unused_operand_fields():
    program = assemble(CLEAN).copy()
    program.instructions[-1].rd = 7  # halt takes no operands
    [diag] = only_rule(lint_program(program), "isa-arity")
    assert diag.severity is Severity.WARNING
    assert lint_program(program).ok  # warnings never fail the gate


def test_corrupt_branch_target_skips_cfg_rules():
    program = assemble(
        """
        beq r4, r0, end
        li r1, 1
    end:
        halt
        """
    ).copy()
    program.instructions[0].target = 99
    report = lint_program(program)
    only_rule(report, "isa-branch-target")
    # Block discovery would be poisoned, so no CFG rule may run (and the
    # block count stays unset).
    assert report.blocks == 0
    assert report.rules_fired == ["isa-branch-target"]


def test_fall_off_end_and_no_halt():
    program = assemble(CLEAN).copy()
    program.instructions[-1] = Instruction(Op.NOP)
    report = lint_program(program)
    only_rule(report, "isa-fall-off-end")
    only_rule(report, "isa-no-halt")


def test_unreachable_code_warns():
    program = assemble(
        """
        j end
        li r1, 1
    end:
        halt
        """
    )
    [diag] = only_rule(lint_program(program), "isa-unreachable-code")
    assert diag.severity is Severity.WARNING
    assert diag.block == 1


# -- df-* --------------------------------------------------------------------

def test_use_before_def_on_one_armed_definition():
    program = assemble(
        """
        beq r4, r0, join
        li r1, 1
    join:
        add r2, r1, r0
        halt
        """
    )
    hits = only_rule(lint_program(program), "df-use-before-def")
    assert any("r1" in diag.message for diag in hits)


def test_entry_registers_are_predefined():
    # tid/ntid/args/sp may be read immediately — the loader set them.
    program = assemble(
        """
        add r1, r4, r5
        add r2, r6, r29
        sws r2, 0(r1)
        halt
        """
    )
    assert lint_program(program).by_rule("df-use-before-def") == []


def test_dead_write_is_info_severity():
    program = assemble(
        """
        li r1, 1
        li r1, 2
        sws r1, 0(r4)
        halt
        """
    )
    [diag] = only_rule(lint_program(program), "df-dead-write")
    assert diag.severity is Severity.INFO
    assert diag.pc == 0


def test_dead_write_exempts_faa_and_sync():
    program = assemble(
        """
        li  r2, 1
        faa r1, 0(r4), r2
        halt
        """
    )
    # The FAA result is unread, but the memory side effect is the point.
    assert lint_program(program).by_rule("df-dead-write") == []


# -- paper-* -----------------------------------------------------------------

def test_group_switch_fires_on_use_inside_open_group():
    program = assemble(
        """
        lws r1, 0(r4)
        add r2, r1, r1
        halt
        """
    )
    report = lint_program(program, SwitchModel.EXPLICIT_SWITCH, prepared=True)
    hits = only_rule(report, "paper-group-switch")
    assert any("in flight" in diag.message for diag in hits)


def test_group_switch_fires_on_group_leaking_past_block_end():
    program = assemble(
        """
        lws r1, 0(r4)
        halt
        """
    )
    report = lint_program(program, "eswitch", prepared=True)
    hits = only_rule(report, "paper-group-switch")
    assert any("not closed" in diag.message for diag in hits)


def test_group_switch_clean_when_switch_closes_the_group():
    program = assemble(
        """
        lws r1, 0(r4)
        switch
        add r2, r1, r1
        sws r2, 1(r4)
        halt
        """
    )
    report = lint_program(program, "eswitch", prepared=True)
    assert report.by_rule("paper-group-switch") == []


def test_use_model_code_must_not_contain_switch():
    program = assemble(
        """
        lws r1, 0(r4)
        switch
        sws r1, 1(r4)
        halt
        """
    )
    report = lint_program(program, SwitchModel.SWITCH_ON_USE, prepared=True)
    [diag] = only_rule(report, "paper-use-model-switch")
    assert diag.pc == 1
    # The same code is fine for a model that executes SWITCHes.
    assert lint_program(program, "eswitch", prepared=True).ok


def test_permutation_rule_catches_reversed_dependence():
    from repro.compiler.passes import prepare_for_model

    original = build_victim()
    prepared = prepare_for_model(original, SwitchModel.SWITCH_ON_USE).copy()
    # Swap the adjacent dependent pair `cvtif y, total` / `fadd x, x, y`.
    instructions = prepared.instructions
    [pc] = [
        index for index, ins in enumerate(instructions)
        if ins.op is Op.FADD
    ]
    instructions[pc - 1], instructions[pc] = instructions[pc], instructions[pc - 1]
    report = lint_pair(original, prepared, SwitchModel.SWITCH_ON_USE)
    hits = only_rule(report, "paper-grouping-permutation")
    assert any("reversed" in diag.message for diag in hits)


def test_permutation_rule_catches_dropped_instruction():
    from repro.compiler.passes import prepare_for_model

    original = assemble(CLEAN)
    prepared = prepare_for_model(original, SwitchModel.SWITCH_ON_USE).copy()
    prepared.instructions[0] = Instruction(Op.NOP)
    report = lint_pair(original, prepared, "sou")
    hits = report.by_rule("paper-grouping-permutation")
    messages = " ".join(diag.message for diag in hits)
    assert "missing" in messages and "appears" in messages


def test_shared_store_race_and_its_exemptions():
    racy = assemble(
        """
        li  r1, 7
        sws r1, 0(r6)
        halt
        """
    )
    [diag] = only_rule(lint_program(racy), "paper-shared-store-race")
    assert diag.severity is Severity.WARNING

    tid_derived = assemble(
        """
        add r2, r6, r4
        li  r1, 7
        sws r1, 0(r2)
        halt
        """
    )
    assert lint_program(tid_derived).by_rule("paper-shared-store-race") == []

    # A store to a true global is clean only under the lock's sync-FAA.
    assert lint_program(build_sync_victim()).diagnostics == []


# -- report / diagnostics surface -------------------------------------------

def test_diagnostic_rendering_and_json():
    program = assemble(CLEAN).copy()
    program.instructions[0].rs2 = NUM_REGS + 1
    report = lint_program(program)
    [diag] = report.by_severity(Severity.ERROR)
    line = diag.render()
    assert line.startswith("error[isa-operand-range] pc 0")
    assert "`" in line  # the offending asm is quoted
    payload = diag.to_dict()
    assert payload["rule"] == "isa-operand-range"
    assert payload["severity"] == "error"
    assert payload["pc"] == 0

    document = report.to_dict()
    assert document["ok"] is False
    assert document["errors"] == 1
    assert document["diagnostics"][0]["rule"] == "isa-operand-range"
    assert report.render(Severity.ERROR).count("\n") == 1


def test_raise_on_error_gate_and_chaining():
    clean = lint_program(assemble(CLEAN))
    assert clean.raise_on_error() is clean

    program = assemble(CLEAN).copy()
    program.instructions[0].rs2 = NUM_REGS + 1
    with pytest.raises(LintError) as excinfo:
        lint_program(program).raise_on_error()
    assert "isa-operand-range" in str(excinfo.value)
    assert excinfo.value.report.errors == 1


def test_severity_parse_and_ordering():
    assert Severity.parse("error") is Severity.ERROR
    assert Severity.parse(Severity.INFO) is Severity.INFO
    assert Severity.WARNING < Severity.ERROR
    with pytest.raises(ValueError):
        Severity.parse("fatal")


def test_report_accounting_helpers():
    report = LintReport("p", "eswitch")
    assert report.subject() == "p [eswitch]"
    assert report.rules_fired == []
    assert report.ok and report.errors == 0
