"""Strict serve-side validation of fault/lifecycle spec payloads.

Every malformed form a client can send in the curl-friendly
``{"faults": {...}}`` mapping must come back as a *structured* 400
naming the offending key — never a 500 from deep inside a dataclass
constructor, and never a silently dropped chaos knob.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.faults import FaultConfig, LifecycleConfig
from repro.serve import (
    ReproServer,
    ServerConfig,
    SpecValidationError,
    specs_from_payload,
    validate_fault_spec,
    validate_lifecycle_spec,
)


# -- validator unit level --------------------------------------------------------


@pytest.mark.parametrize(
    "payload, key",
    [
        # unknown keys (the historical 500: FaultConfig(**{...}) TypeError)
        ({"los_rate": 0.1}, "los_rate"),
        ({"lifecycle": {"compnents": 2}}, "compnents"),
        # wrong types
        ({"loss_rate": "high"}, "loss_rate"),
        ({"seed": 1.5}, "seed"),
        ({"jitter": True}, "jitter"),
        ({"latency_model": 3}, "latency_model"),
        ({"lifecycle": {"components": "two"}}, "components"),
        ({"lifecycle": 5}, "lifecycle"),
        ("not-a-mapping", "faults"),
        # out-of-range values (constructor rules, key re-attached)
        ({"loss_rate": 2.0}, "loss_rate"),
        ({"delay_rate": -0.5}, "delay_rate"),
        ({"latency_model": "quantum"}, "latency_model"),
        ({"max_retries": 0}, "max_retries"),
        ({"lifecycle": {"components": 0}}, "components"),
        ({"lifecycle": {"degrade_stages": 0}}, "degrade_stages"),
        ({"lifecycle": {"degraded_scale": 0.25}}, "degraded_scale"),
        ({"lifecycle": {"components": 2, "affected": 5}}, "affected"),
    ],
)
def test_validator_rejects_with_offending_key(payload, key):
    with pytest.raises(SpecValidationError) as info:
        validate_fault_spec(payload)
    assert info.value.key == key


def test_validator_accepts_well_formed_payloads():
    config = validate_fault_spec(
        {
            "latency_model": "uniform",
            "jitter": 50,
            "loss_rate": 0.01,
            "seed": 3,
            "lifecycle": {"components": 2, "seed": 7, "affected": 1},
        }
    )
    assert config == FaultConfig(
        latency_model="uniform",
        jitter=50,
        loss_rate=0.01,
        seed=3,
        lifecycle=LifecycleConfig(components=2, seed=7, affected=1),
    )
    # Floats may arrive as JSON integers.
    assert validate_fault_spec({"loss_rate": 0}).loss_rate == 0.0
    lifecycle = validate_lifecycle_spec({"components": 3, "degraded_scale": 2})
    assert lifecycle.degraded_scale == 2.0


def test_specs_from_payload_preserves_validation_structure():
    payload = {
        "spec": {
            "app": "sieve",
            "model": "eswitch",
            "level": 2,
            "faults": {"lifecycle": {"mean_healthy": -1}},
        }
    }
    with pytest.raises(SpecValidationError) as info:
        specs_from_payload(payload)
    assert info.value.key == "mean_healthy"


def test_lenient_from_dict_contract_is_untouched():
    """The strictness lives in the serve layer only: FaultConfig.from_dict
    keeps ignoring unknown keys (old cached payloads must load)."""
    data = FaultConfig(loss_rate=0.01).to_dict()
    data["future_field"] = 1
    assert FaultConfig.from_dict(data) == FaultConfig(loss_rate=0.01)
    with pytest.raises(SpecValidationError):
        validate_fault_spec(data)


# -- HTTP level ------------------------------------------------------------------


@pytest.fixture(scope="module")
def server():
    config = ServerConfig(port=0, quiet=True, no_cache=True)
    with ReproServer(config) as running:
        yield running


def _post_job(server, faults):
    body = json.dumps(
        {"spec": {"app": "sieve", "model": "eswitch", "level": 2,
                  "scale": "tiny", "faults": faults}}
    ).encode("utf-8")
    request = urllib.request.Request(
        server.url + "/v1/jobs",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.mark.parametrize(
    "faults, key",
    [
        ({"los_rate": 0.1}, "los_rate"),
        ({"loss_rate": "high"}, "loss_rate"),
        ({"loss_rate": 7.5}, "loss_rate"),
        ({"latency_model": "quantum"}, "latency_model"),
        ({"lifecycle": {"compnents": 2}}, "compnents"),
        ({"lifecycle": {"degrade_stages": 0}}, "degrade_stages"),
        ({"lifecycle": "everything"}, "lifecycle"),
        (["not", "a", "mapping"], "faults"),
    ],
)
def test_submit_returns_structured_400(server, faults, key):
    status, body = _post_job(server, faults)
    assert status == 400
    assert body["key"] == key
    assert body["error"]


def test_submit_accepts_valid_lifecycle_spec(server):
    status, body = _post_job(
        server, {"lifecycle": {"components": 2, "seed": 7}}
    )
    assert status == 202
    assert "job" in body
