"""Opcode metadata consistency."""

from repro.isa.opcodes import (
    Op,
    Sig,
    OP_SIG,
    CYCLE_COST,
    SHARED_LOADS,
    SHARED_STORES,
    LOCAL_LOADS,
    LOCAL_STORES,
    BRANCHES,
    BLOCK_TERMINATORS,
    DOUBLE_ACCESSES,
    is_shared_access,
    instruction_cost,
)


def test_every_opcode_has_a_signature():
    assert set(OP_SIG) == set(Op)


def test_costs_are_positive():
    for op in Op:
        assert instruction_cost(op) >= 1


def test_expensive_ops_cost_more_than_one_cycle():
    for op in (Op.MUL, Op.DIV, Op.REM, Op.FADD, Op.FMUL, Op.FDIV, Op.FSQRT):
        assert instruction_cost(op) > 1
    assert instruction_cost(Op.ADD) == 1
    assert instruction_cost(Op.SWITCH) == 1


def test_memory_classifications_are_disjoint():
    groups = [SHARED_LOADS, SHARED_STORES, LOCAL_LOADS, LOCAL_STORES]
    for i, a in enumerate(groups):
        for b in groups[i + 1 :]:
            assert not (a & b)


def test_shared_access_predicate():
    assert is_shared_access(Op.LWS)
    assert is_shared_access(Op.SDS)
    assert is_shared_access(Op.FAA)
    assert not is_shared_access(Op.LWL)
    assert not is_shared_access(Op.ADD)
    assert not is_shared_access(Op.SWITCH)


def test_faa_is_a_shared_load():
    # FAA returns a value, so models that switch on loads switch on it.
    assert Op.FAA in SHARED_LOADS


def test_terminators_include_branches_and_halt():
    assert BRANCHES < BLOCK_TERMINATORS
    assert Op.HALT in BLOCK_TERMINATORS
    assert Op.SWITCH not in BLOCK_TERMINATORS


def test_double_accesses():
    assert DOUBLE_ACCESSES == {Op.LDS, Op.SDS, Op.LDL, Op.SDL}


def test_opcode_value_layout_supports_range_dispatch():
    # The interpreter relies on declaration-order grouping.
    assert Op.ADD.value == 1
    assert all(op.value <= 25 for op in (Op.ADD, Op.SLTI, Op.LI, Op.MOV))
    assert all(26 <= op.value <= 39 for op in (Op.FADD, Op.CVTFI))
    assert all(40 <= op.value <= 45 for op in (Op.BEQ, Op.BGE))
    assert all(46 <= op.value <= 50 for op in (Op.J, Op.HALT))
    assert all(51 <= op.value <= 54 for op in (Op.LWL, Op.SDL))
    assert all(55 <= op.value <= 59 for op in (Op.LWS, Op.FAA))
    assert Op.SWITCH.value == 60


def test_sig_strings_are_informative():
    assert "rd" in Sig.LOAD.value
    assert "label" in Sig.BR2.value
