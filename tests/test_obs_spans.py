"""Unit tests for wall-clock span tracing (`repro.obs.spans`) and the
metrics extensions it rides on (quantiles, gauges, labelled + fractional
histograms)."""

import json

import pytest

from repro.obs.chrome import chrome_trace, validate_chrome_trace
from repro.obs.metrics import Gauge, Histogram, MetricsRegistry, labeled_key
from repro.obs.spans import (
    STAGE_FLOOR,
    STAGE_HISTOGRAM,
    WALL_CLOCK_PID,
    NullSpanRecorder,
    Span,
    SpanContext,
    SpanRecorder,
    active,
    merge_chrome_traces,
    new_span_id,
    new_trace_id,
    read_spans_jsonl,
    render_span_report,
    render_span_tree,
    spans_chrome_trace,
    write_spans_jsonl,
)

# -- identity and propagation ---------------------------------------------------


def test_fresh_ids_are_wellformed_hex():
    trace, span = new_trace_id(), new_span_id()
    assert len(trace) == 32 and int(trace, 16) >= 0
    assert len(span) == 16 and int(span, 16) >= 0
    assert new_trace_id() != trace  # 128 bits: collisions don't happen


def test_traceparent_round_trip():
    context = SpanContext(new_trace_id(), new_span_id())
    header = context.to_traceparent()
    assert header == f"00-{context.trace_id}-{context.span_id}-01"
    assert SpanContext.from_traceparent(header) == context


@pytest.mark.parametrize("header", [
    None,
    42,
    "",
    "garbage",
    "00-abc-def-01",                                    # wrong lengths
    "00-" + "g" * 32 + "-" + "1" * 16 + "-01",          # non-hex trace
    "00-" + "0" * 32 + "-" + "1" * 16 + "-01",          # all-zero trace
    "00-" + "1" * 32 + "-" + "0" * 16 + "-01",          # all-zero span
    "00-" + "1" * 32 + "-" + "1" * 16,                  # missing flags
])
def test_traceparent_rejects_malformed_headers(header):
    assert SpanContext.from_traceparent(header) is None


def test_span_dict_round_trip_preserves_everything():
    span = Span("execute", attributes={"job": "j1"})
    span.set(extra=3)
    span.finish(status="error")
    clone = Span.from_dict(span.to_dict())
    assert clone.trace_id == span.trace_id
    assert clone.span_id == span.span_id
    assert clone.parent_id is None
    assert clone.name == "execute"
    assert clone.status == "error"
    assert clone.attributes == {"job": "j1", "extra": 3}
    assert clone.duration == span.duration


def test_finish_is_idempotent_first_status_wins():
    span = Span("x")
    span.finish(status="error")
    end = span.end
    span.finish(status="ok")
    assert span.end == end and span.status == "error"


def test_child_span_inherits_trace_via_any_parent_shape():
    recorder = SpanRecorder()
    root = recorder.start("root")
    for parent in (root, root.context, (root.trace_id, root.span_id)):
        child = recorder.start("child", parent=parent)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id


# -- recorder contract ----------------------------------------------------------


def test_active_normalises_disabled_recorders_to_none():
    assert active(None) is None
    assert active(NullSpanRecorder()) is None
    recorder = SpanRecorder()
    assert active(recorder) is recorder


def test_span_contextmanager_marks_errors():
    recorder = SpanRecorder()
    with pytest.raises(RuntimeError):
        with recorder.span("boom"):
            raise RuntimeError("nope")
    [span] = recorder.spans()
    assert span.status == "error" and span.end is not None


def test_recorder_capacity_drops_oldest():
    recorder = SpanRecorder(capacity=2)
    for name in ("a", "b", "c"):
        recorder.finish(recorder.start(name))
    assert [span.name for span in recorder.spans()] == ["b", "c"]
    assert recorder.dropped == 1 and recorder.recorded == 3


def test_recorder_folds_durations_into_stage_histograms():
    registry = MetricsRegistry()
    recorder = SpanRecorder(metrics=registry)
    recorder.finish(recorder.start("execute"))
    recorder.finish(recorder.start("execute"))
    recorder.finish(recorder.start("admit"))
    execute = registry.histogram(
        STAGE_HISTOGRAM, labels={"stage": "execute"}, floor=STAGE_FLOOR
    )
    assert execute.count == 2
    assert registry.histogram(
        STAGE_HISTOGRAM, labels={"stage": "admit"}, floor=STAGE_FLOOR
    ).count == 1


def test_absorb_skips_malformed_records():
    recorder = SpanRecorder()
    good = Span("worker").finish().to_dict()
    absorbed = recorder.absorb([good, {"nope": True}, "not-a-dict", None])
    assert absorbed == 1
    assert [span.name for span in recorder.spans()] == ["worker"]


# -- metrics extensions ---------------------------------------------------------


def test_quantile_upper_bounds_and_max_clamp():
    hist = Histogram("h")
    assert hist.quantile(0.5) == 0.0  # empty
    for value in (1, 2, 3, 100):
        hist.observe(value)
    assert hist.quantile(0.25) == 1.0
    assert hist.quantile(0.5) == 2.0
    # the p99 bucket bound (128) is clamped by the exact observed max
    assert hist.quantile(0.99) == 100.0
    assert hist.quantile(1.0) == 100.0


def test_fractional_floor_buckets_are_exact_powers_of_two():
    hist = Histogram("h", floor=-20)
    hist.observe(0.5)        # exactly 2**-1: upper bound 0.5
    hist.observe(0.375)      # in (2**-2, 2**-1]
    hist.observe(2 ** -25)   # below the floor: clamps to floor bucket
    hist.observe(0.0)
    assert hist.buckets == {-1: 2, -20: 2}
    assert hist.quantile(1.0) == 0.5


def test_floor_must_not_be_positive():
    with pytest.raises(ValueError):
        Histogram("h", floor=1)


def test_default_floor_preserves_integral_bucketing():
    hist = Histogram("h")
    hist.observe(0.25)
    hist.observe(1)
    assert hist.buckets == {0: 2}


def test_gauge_set_and_prometheus_exposition():
    registry = MetricsRegistry()
    registry.gauge("process.uptime_seconds", help="up").set(12.5)
    registry.gauge(
        "repro.build_info", help="info", labels={"version": "1.0.0"}
    ).set(1)
    text = registry.to_prometheus()
    assert "# TYPE process_uptime_seconds gauge" in text
    assert "process_uptime_seconds 12.5" in text
    assert 'repro_build_info{version="1.0.0"} 1' in text


def test_labelled_histogram_prometheus_merges_le_with_labels():
    registry = MetricsRegistry()
    registry.histogram(
        "stage.seconds", labels={"stage": "execute"}, floor=-20
    ).observe(0.5)
    text = registry.to_prometheus()
    assert 'stage_seconds_bucket{stage="execute",le="0.5"} 1' in text
    assert 'stage_seconds_bucket{stage="execute",le="+Inf"} 1' in text
    assert 'stage_seconds_sum{stage="execute"} 0.5' in text
    assert 'stage_seconds_count{stage="execute"} 1' in text
    # one TYPE line per family even with many labelled series
    registry.histogram("stage.seconds", labels={"stage": "admit"}, floor=-20)
    assert registry.to_prometheus().count("# TYPE stage_seconds histogram") == 1


def test_labeled_key_distinguishes_series():
    assert labeled_key("x") == "x"
    assert labeled_key("x", {"a": "1"}) == 'x{a="1"}'
    registry = MetricsRegistry()
    a = registry.histogram("x", labels={"stage": "a"})
    b = registry.histogram("x", labels={"stage": "b"})
    assert a is not b
    assert registry.histogram("x", labels={"stage": "a"}) is a


def test_gauge_class_basics():
    gauge = Gauge("g")
    assert gauge.value == 0.0
    gauge.set(3)
    assert gauge.to_dict() == {"type": "gauge", "value": 3}


# -- JSONL ----------------------------------------------------------------------


def test_spans_jsonl_round_trip(tmp_path):
    recorder = SpanRecorder()
    root = recorder.start("root")
    recorder.finish(recorder.start("child", parent=root))
    recorder.finish(root)
    path = tmp_path / "spans.jsonl"
    assert write_spans_jsonl(path, recorder.spans()) == 2
    loaded = read_spans_jsonl(path)
    assert [span.name for span in loaded] == ["child", "root"]
    assert loaded[0].parent_id == root.span_id


def test_read_spans_jsonl_skips_torn_tail(tmp_path):
    path = tmp_path / "spans.jsonl"
    span = Span("ok").finish()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(span.to_dict()) + "\n")
        handle.write('{"trace": "dead-beef", "name": "torn')  # crashed writer
    [loaded] = read_spans_jsonl(path)
    assert loaded.name == "ok"


def test_recorder_log_append_survives_reopen(tmp_path):
    path = tmp_path / "spans.jsonl"
    first = SpanRecorder(log=path)
    first.finish(first.start("a"))
    first.close()
    second = SpanRecorder(log=path)
    second.finish(second.start("b"))
    second.close()
    assert [span.name for span in read_spans_jsonl(path)] == ["a", "b"]


# -- Chrome export --------------------------------------------------------------


def _finished_trace():
    recorder = SpanRecorder()
    root = recorder.start("http")
    recorder.finish(recorder.start("execute", parent=root))
    recorder.finish(root)
    return recorder.spans()


def test_chrome_trace_validates_and_tracks_per_trace():
    spans = _finished_trace() + _finished_trace()  # two traces
    document = spans_chrome_trace(spans)
    validate_chrome_trace(document)
    slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert len(slices) == 4
    assert {e["pid"] for e in slices} == {WALL_CLOCK_PID}
    assert {e["tid"] for e in slices} == {0, 1}  # one lane per trace
    assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in slices)
    assert document["otherData"]["spans"] == 4


def test_chrome_trace_carries_span_identity_in_args():
    [child, root] = _finished_trace()
    document = spans_chrome_trace([child, root])
    execute = next(
        e for e in document["traceEvents"] if e.get("name") == "execute"
    )
    assert execute["args"]["trace_id"] == root.trace_id
    assert execute["args"]["parent_id"] == root.span_id


def test_merge_with_cycle_trace_is_one_valid_document():
    cycle = chrome_trace([], dropped=0)
    merged = merge_chrome_traces(cycle, spans_chrome_trace(_finished_trace()))
    validate_chrome_trace(merged)
    assert merged["otherData"]["spans"] == 2
    pids = {e["pid"] for e in merged["traceEvents"] if "pid" in e}
    assert WALL_CLOCK_PID in pids


def test_empty_span_set_exports_empty_document():
    document = spans_chrome_trace([])
    assert document["traceEvents"] == []
    assert document["otherData"]["spans"] == 0


# -- reports --------------------------------------------------------------------


def test_render_span_report_has_quantile_columns():
    report = render_span_report(_finished_trace())
    assert "p50 ms" in report and "p95 ms" in report and "p99 ms" in report
    assert "http" in report and "execute" in report
    assert render_span_report([]) == "(no finished spans)"


def test_render_span_tree_nests_children_and_filters():
    spans = _finished_trace()
    tree = render_span_tree(spans)
    http_line = next(line for line in tree.splitlines() if "http" in line)
    execute_line = next(line for line in tree.splitlines() if "execute" in line)
    indent = lambda line: len(line) - len(line.lstrip())  # noqa: E731
    assert indent(execute_line) > indent(http_line)
    assert render_span_tree(spans, trace_id="nope") == "(no matching spans)"


def test_render_span_tree_roots_orphan_parents_at_trace():
    recorder = SpanRecorder()
    phantom = SpanContext(new_trace_id(), new_span_id())
    recorder.finish(recorder.start("child", parent=phantom))
    tree = render_span_tree(recorder.spans())
    assert "child" in tree and phantom.trace_id in tree
