"""Unit tests for the static performance predictor (repro.lint.predict)."""

import pytest

from repro.isa import assemble
from repro.isa.builder import ProgramBuilder
from repro.isa.registers import reg_index
from repro.lint import (
    ModelPrediction,
    ProgramAnalysis,
    call_graph,
    predict_prepared,
    predict_program,
    predict_spec_cached,
)
from repro.machine.models import SwitchModel

STRAIGHT = """
    li r1, 1
    addi r1, r1, 2
    halt
"""


def straight():
    return assemble(STRAIGHT)


# -- program analysis --------------------------------------------------------


def test_const_propagation_tracks_immediates():
    program = assemble(
        """
        li r1, 7
        addi r2, r1, 3
        add r3, r2, r1
        halt
        """
    )
    analysis = ProgramAnalysis(program)
    r1, r2 = reg_index("r1"), reg_index("r2")
    assert analysis.const_at(1, r1) == 7
    assert analysis.const_at(2, r2) == 10
    # Before its own li, r1 is unknown.
    assert analysis.const_at(0, r1) is None


def test_for_range_trip_count_inferred():
    b = ProgramBuilder()
    i = b.int_reg("i")
    acc = b.int_reg("acc")
    b.li(acc, 0)
    with b.for_range(i, 0, 4):
        b.addi(acc, acc, 1)
    b.halt()
    analysis = ProgramAnalysis(b.build("counted"))
    assert len(analysis.loops) == 1
    assert analysis.loops[0].trips == 4


def test_nested_loops_multiply_execution_bounds():
    b = ProgramBuilder()
    i = b.int_reg("i")
    j = b.int_reg("j")
    acc = b.int_reg("acc")
    b.li(acc, 0)
    with b.for_range(i, 0, 3):
        with b.for_range(j, 0, 2):
            b.addi(acc, acc, 1)
    b.halt()
    analysis = ProgramAnalysis(b.build("nested"))
    trips = sorted(loop.trips for loop in analysis.loops)
    assert trips == [2, 3]
    # The inner body runs at most 3 * 2 = 6 times; some block in the
    # program must carry exactly that bound.
    assert max(
        x for x in analysis.max_exec if x != float("inf")
    ) >= 6


def test_data_dependent_loop_is_unbounded():
    program = assemble(
        """
    spin:
        lws r1, 0(r2)
        bne r1, r0, spin
        halt
        """
    )
    analysis = ProgramAnalysis(program)
    assert len(analysis.loops) == 1
    assert analysis.loops[0].trips is None
    header = analysis.loops[0].header
    assert analysis.max_exec[header] == float("inf")


# -- per-model bounds --------------------------------------------------------


def test_ideal_straight_line_bounds_are_exact():
    pred = predict_prepared(straight(), SwitchModel.IDEAL, latency=0)
    assert pred.switch_min == 0
    assert pred.switch_max == 0
    assert pred.run_min == pred.run_max
    assert pred.utilization_bound == 1.0
    assert pred.static_switch_sites == 0


def test_switch_every_cycle_pins_run_length_to_one():
    pred = predict_prepared(
        straight(), SwitchModel.SWITCH_EVERY_CYCLE, latency=200
    )
    assert pred.run_min == 1
    assert pred.run_max == 1
    assert pred.switch_min > 0


def test_unbounded_loop_gives_unbounded_run_max_on_ideal():
    program = assemble(
        """
    spin:
        addi r1, r1, 1
        bne r1, r2, spin
        halt
        """
    )
    pred = predict_prepared(program, SwitchModel.IDEAL, latency=0)
    assert pred.run_max is None


def test_switch_counts_scale_with_thread_count():
    one = predict_prepared(
        straight(), SwitchModel.SWITCH_EVERY_CYCLE,
        latency=200, processors=1, level=1,
    )
    four = predict_prepared(
        straight(), SwitchModel.SWITCH_EVERY_CYCLE,
        latency=200, processors=2, level=2,
    )
    assert four.switch_min == 4 * one.switch_min
    assert four.switch_max == 4 * one.switch_max


def test_run_bins_are_a_distribution():
    b = ProgramBuilder()
    i = b.int_reg("i")
    v = b.int_reg("v")
    with b.for_range(i, 0, 8):
        b.lws(v, "args", 0)
        b.add(v, v, v)
    b.halt()
    pred = predict_prepared(
        b.build("loads"), SwitchModel.SWITCH_ON_LOAD, latency=64
    )
    total = sum(pred.run_bins.values())
    assert total == pytest.approx(1.0)
    assert all(0.0 <= share <= 1.0 for share in pred.run_bins.values())
    assert pred.mean_run_estimate > 0


def test_to_dict_round_trips_every_field():
    pred = predict_prepared(straight(), SwitchModel.IDEAL, latency=0)
    data = pred.to_dict()
    for field in (
        "model", "run_min", "run_max", "switch_min", "switch_max",
        "utilization_bound", "efficiency_bound", "run_bins",
        "mean_run_estimate", "static_switch_sites", "prepared_program",
    ):
        assert field in data
    assert data["model"] == "ideal"


# -- call graph --------------------------------------------------------------


def test_call_graph_summarises_jal_targets():
    program = assemble(
        """
        jal sub
        jal sub
        halt
    sub:
        addi r1, r1, 1
        jr r31
        """
    )
    graph = call_graph(program)
    assert graph["indirect_exits"] == []
    assert len(graph["functions"]) == 1
    func = graph["functions"][0]
    assert func["entry_pc"] == 3
    assert func["label"] == "sub"
    assert func["callers"] == [0, 1]
    assert func["instructions"] == 2
    assert func["shared_loads"] == 0
    assert func["busy_cost"] > 0


def test_call_graph_counts_shared_loads_in_body():
    program = assemble(
        """
        jal fetch
        halt
    fetch:
        lws r1, 0(r2)
        jr r31
        """
    )
    graph = call_graph(program)
    assert graph["functions"][0]["shared_loads"] == 1


def test_call_graph_flags_indirect_exits():
    program = assemble(
        """
        li r1, 1
        jr r31
        halt
        """
    )
    graph = call_graph(program)
    assert graph["functions"] == []
    assert graph["indirect_exits"]


# -- top-level entry points --------------------------------------------------


def test_predict_program_covers_all_models():
    prediction = predict_program(straight(), latency=200)
    assert set(prediction.models) == {m.value for m in SwitchModel}
    # Ideal is always predicted at latency zero, matching every
    # execution path in the repo.
    ideal = prediction.models["ideal"]
    assert ideal.switch_max == 0
    data = prediction.to_dict()
    assert data["latency"] == 200
    assert set(data["models"]) == set(prediction.models)


def test_predict_spec_cached_returns_model_prediction():
    pred = predict_spec_cached(
        "sieve", "explicit-switch", 2, 2, "tiny", 200
    )
    assert isinstance(pred, ModelPrediction)
    assert pred.model == "explicit-switch"
    assert pred.run_min >= 1
    # Memoised: the same key returns the identical object.
    again = predict_spec_cached(
        "sieve", "explicit-switch", 2, 2, "tiny", 200
    )
    assert again is pred
