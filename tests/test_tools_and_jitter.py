"""Timeline tools and latency-jitter support."""

import pytest

from repro.machine import MachineConfig, SwitchModel, Simulator
from repro.tools import render_timeline, timeline_summary
from conftest import run_asm

WORKLOAD = """
    li r9, 12
loop:
    lws r1, 0(r0)
    add r2, r1, r1
    addi r9, r9, -1
    bne r9, r0, loop
    halt
"""


def run_with_timeline(threads=2, processors=1):
    return run_asm(
        WORKLOAD,
        model=SwitchModel.SWITCH_ON_LOAD,
        threads=threads,
        processors=processors,
        latency=200,
        record_timeline=True,
    )


def test_timeline_disabled_by_default():
    result = run_asm(WORKLOAD, model=SwitchModel.SWITCH_ON_LOAD, latency=200)
    # SimulationResult has no timeline attribute; check via a fresh sim.
    from repro.isa import assemble

    sim = Simulator(
        assemble(WORKLOAD), MachineConfig(), [0] * 16, [{}]
    )
    assert sim.timeline is None


def test_timeline_events_recorded():
    from repro.isa import assemble

    config = MachineConfig(
        model=SwitchModel.SWITCH_ON_LOAD,
        threads_per_processor=2,
        latency=200,
        record_timeline=True,
    )
    sim = Simulator(assemble(WORKLOAD), config, [0] * 16, [{}, {}])
    sim.run()
    assert sim.timeline
    for start, pid, tid, end, outcome in sim.timeline:
        assert 0 <= start <= end
        assert pid == 0
        assert tid in (0, 1)
    # Busy cycles in the timeline match the stats.
    total = sum(end - start for start, _p, _t, end, _o in sim.timeline)
    assert total == sim.stats.busy_cycles


def test_render_timeline_shape():
    from repro.isa import assemble

    config = MachineConfig(
        model=SwitchModel.SWITCH_ON_LOAD,
        num_processors=2,
        threads_per_processor=1,
        latency=200,
        record_timeline=True,
    )
    sim = Simulator(assemble(WORKLOAD), config, [0] * 16, [{}, {}])
    sim.run()
    text = render_timeline(sim.timeline, 2, width=40)
    lines = text.splitlines()
    assert lines[1].startswith("P0: ")
    assert lines[2].startswith("P1: ")
    assert len(lines[1]) == len("P0: ") + 40
    summary = timeline_summary(sim.timeline, 2)
    assert summary[0] and summary[1]


def test_render_empty_timeline():
    assert "(empty timeline)" in render_timeline([], 1)


def test_degenerate_burst_never_marks_past_horizon():
    """Regression: a zero-length burst at the horizon used to be clamped
    to the horizon first, then widened to one cycle — marking a bucket
    *past* ``until``."""
    events = [
        (0, 0, 0, 100, 0),
        (100, 0, 1, 100, 3),  # zero-length burst exactly at the horizon
    ]
    text = render_timeline(events, 1, width=10, until=100)
    row = text.splitlines()[1][len("P0: "):]
    assert row == "0" * 10  # thread 1's mark must not appear anywhere
    # A degenerate burst *inside* the horizon still shows up as one cycle.
    inside = render_timeline([(5, 0, 7, 5, 0)], 1, width=10, until=10)
    assert "7" in inside.splitlines()[1]


def test_timeline_accepts_trace_events():
    """The ASCII timeline is a view over the obs event stream."""
    from repro.machine import Simulator
    from repro.isa import assemble
    from repro.obs import RingTracer

    tracer = RingTracer()
    config = MachineConfig(
        model=SwitchModel.SWITCH_ON_LOAD, threads_per_processor=2, latency=200
    )
    sim = Simulator(assemble(WORKLOAD), config, [0] * 64, [{}, {}], tracer=tracer)
    sim.run()
    from_events = render_timeline(tracer.events(), 1, width=40)
    from_tuples = render_timeline(sim.timeline, 1, width=40)
    assert from_events == from_tuples
    assert timeline_summary(tracer.events(), 1) == timeline_summary(sim.timeline, 1)


# -- jitter ----------------------------------------------------------------------


def test_jitter_is_deterministic():
    walls = {
        run_asm(
            WORKLOAD,
            model=SwitchModel.SWITCH_ON_LOAD,
            latency=200,
            latency_jitter=100,
        ).wall_cycles
        for _ in range(3)
    }
    assert len(walls) == 1


def test_jitter_increases_latency():
    base = run_asm(WORKLOAD, model=SwitchModel.SWITCH_ON_LOAD, latency=200)
    jittered = run_asm(
        WORKLOAD, model=SwitchModel.SWITCH_ON_LOAD, latency=200, latency_jitter=200
    )
    assert jittered.wall_cycles > base.wall_cycles
    # Jitter is bounded: never more than latency + jitter per trip.
    assert jittered.wall_cycles < base.wall_cycles * 2.2


def test_apps_stay_correct_under_jitter():
    """Out-of-order response delivery must not break any application."""
    from repro.apps import get_app, app_names
    from repro.compiler import prepare_for_model
    from repro.harness.sizes import SCALES
    from repro.runtime import run_app

    for name in app_names():
        spec = get_app(name)
        app = spec.build(4, **SCALES["tiny"][name])
        for model in (SwitchModel.EXPLICIT_SWITCH, SwitchModel.CONDITIONAL_SWITCH):
            program = prepare_for_model(app.program, model)
            config = MachineConfig(
                model=model,
                num_processors=2,
                threads_per_processor=2,
                latency=200,
                latency_jitter=150,
                max_cycles=300_000_000,
            )
            run_app(app, config, program=program)  # raises if wrong


def test_faa_atomicity_survives_jitter():
    asm = """
        li  r1, 1
        li  r9, 20
    loop:
        faa r2, 0(r0), r1
        addi r9, r9, -1
        bne r9, r0, loop
        halt
    """
    result = run_asm(
        asm,
        model=SwitchModel.SWITCH_ON_LOAD,
        processors=2,
        threads=3,
        latency=200,
        latency_jitter=180,
    )
    assert result.shared[0] == 20 * 6
