"""Figure 4: the sor inner loop before and after grouping."""

from repro.harness.figures import figure4
from conftest import emit


def test_figure4(benchmark, ctx):
    text, data = benchmark.pedantic(figure4, args=(ctx,), rounds=1, iterations=1)
    emit(text)
    # Paper: the five stencil loads collapse into a single switch group.
    assert data["loads"] == 5
    assert data["switch_instructions"] == 1
