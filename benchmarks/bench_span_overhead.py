"""Disabled span-recording overhead on the engine dispatch path.

The contract (DESIGN §5h): a :class:`SpanRecorder` whose ``enabled``
flag is false is normalised to ``None`` by :func:`repro.obs.spans.
active`, so every instrumented layer — engine cache lookup, dispatch,
worker-side simulate — pays one local load plus one ``is not None``
check per probe site.  This benchmark times a full ``Engine.run`` both
ways, interleaving the two configurations so machine drift hits them
equally, and asserts the disabled-recorder median stays within 3% of
the no-recorder baseline (the same budget the cycle tracer carries in
``bench_tracer_overhead.py``).
"""

import time

from repro.engine.executor import Engine
from repro.engine.spec import RunSpec
from repro.obs.spans import NullSpanRecorder, SpanRecorder

REPS = 15


def _spec():
    return RunSpec.create(
        "sieve", model="explicit-switch", processors=4, level=4, scale="small"
    )


def _time_once(spans):
    # A fresh engine per rep keeps the memo cold, so every timing runs
    # the simulation for real; the program builds themselves stay warm
    # in _build's lru_cache for both configurations alike.
    engine = Engine(cache=None, spans=spans)
    spec = _spec()
    start = time.perf_counter()
    engine.run(spec)
    elapsed = time.perf_counter() - start
    engine.close()
    return elapsed


def test_disabled_span_overhead_under_3_percent():
    for _ in range(3):  # warm the interpreter, allocator and _build cache
        _time_once(None)
    baseline, disabled = [], []
    for _ in range(REPS):  # interleaved A/B: drift cancels out
        baseline.append(_time_once(None))
        disabled.append(_time_once(NullSpanRecorder()))
    # Minimum over reps: the classic noise-robust estimate of the true
    # cost (scheduler blips only ever add time).
    overhead = min(disabled) / min(baseline) - 1.0
    print(f"\nbaseline {min(baseline) * 1e3:.1f}ms, disabled-spans "
          f"{min(disabled) * 1e3:.1f}ms, overhead {overhead * 100:+.1f}%")
    assert overhead < 0.03, (
        f"disabled span recorder costs {overhead * 100:.1f}% (> 3% budget)"
    )


def test_enabled_recorder_captures_dispatch_tree():
    """Enabled recording is allowed to cost real time — sanity-check the
    span tree it produces rather than bound it."""
    recorder = SpanRecorder()
    elapsed = _time_once(recorder)
    assert elapsed > 0
    spans = recorder.spans()
    names = {span.name for span in spans}
    assert {"cache-lookup", "dispatch", "simulate", "build", "run"} <= names
    assert len({span.trace_id for span in spans}) == 1
