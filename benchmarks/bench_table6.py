"""Table 6: inter-block grouping estimate (Section 5.2 one-line cache)."""

from repro.harness.tables import table6
from conftest import emit


def test_table6(benchmark, ctx):
    text, data = benchmark.pedantic(table6, args=(ctx,), rounds=1, iterations=1)
    emit(text)
    # Paper: the estimator raises the grouping factor further; locus
    # (structure fields split across blocks) benefits notably.
    assert data["locus"]["grouping"] > 1.5
    assert 0.0 <= data["locus"]["hit_rate"] <= 1.0
