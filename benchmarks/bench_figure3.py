"""Figure 3: sieve under multithreading (efficiency vs processors)."""

from repro.harness.figures import figure3
from conftest import emit, SCALE


def test_figure3(benchmark, ctx):
    text, data = benchmark.pedantic(figure3, args=(ctx,), rounds=1, iterations=1)
    emit(text)
    # More threads per processor -> higher efficiency at fixed P.
    assert data["12"][4] > data["4"][4] > data["1"][4]
    if SCALE in ("bench", "medium"):
        assert data["12"][2] > 0.8  # near-ideal with enough threads
