"""Shared fixtures for the benchmark harness.

Every ``bench_*`` file regenerates one table or figure of the paper at
the ``REPRO_BENCH_SCALE`` problem scale (default ``bench`` — calibrated
so the 80-90% efficiency columns are reachable, see
``repro.harness.sizes``).  Set ``REPRO_BENCH_SCALE=tiny`` for a fast
smoke run.
"""

import os

import pytest

from repro.harness import ExperimentContext

SCALE = os.environ.get("REPRO_BENCH_SCALE", "bench")
PROCESSORS = int(os.environ.get("REPRO_BENCH_PROCESSORS", "2"))
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE") or None


@pytest.fixture(scope="module")
def ctx() -> ExperimentContext:
    context = ExperimentContext(
        scale=SCALE, processors=PROCESSORS, workers=WORKERS, cache=CACHE_DIR
    )
    yield context
    context.close()


def emit(text: str) -> None:
    """Print a rendered table under pytest's captured output."""
    print("\n" + text)
