"""Disabled-tracing overhead on the interpreter hot loop.

The contract (DESIGN §5c): with no tracer attached — or a tracer whose
``enabled`` flag is false — the simulator's per-instruction cost is one
local load plus one ``is not None`` check.  This benchmark measures a
reference sieve run both ways, interleaving the two configurations so
machine drift hits them equally, and asserts the disabled-tracer median
stays within 3% of the no-tracer baseline.
"""

import time

from repro.engine.executor import _build
from repro.engine.spec import RunSpec
from repro.machine.models import SwitchModel
from repro.obs import NullTracer, RingTracer
from repro.runtime.execution import run_app

REPS = 15


def _sieve():
    app, program = _build("sieve", 16, SwitchModel.EXPLICIT_SWITCH.value, "small")
    spec = RunSpec.create(
        "sieve", model="explicit-switch", processors=4, level=4, scale="small"
    )
    return app, program, spec.machine_config()


def _time_once(app, program, config, tracer):
    start = time.perf_counter()
    run_app(app, config, program=program, tracer=tracer)
    return time.perf_counter() - start


def test_disabled_tracer_overhead_under_3_percent():
    app, program, config = _sieve()
    for _ in range(3):  # warm the interpreter and allocator
        _time_once(app, program, config, None)
    baseline, disabled = [], []
    for _ in range(REPS):  # interleaved A/B: drift cancels out
        baseline.append(_time_once(app, program, config, None))
        disabled.append(_time_once(app, program, config, NullTracer()))
    # Minimum over reps: the classic noise-robust estimate of the true
    # cost (scheduler blips only ever add time).
    overhead = min(disabled) / min(baseline) - 1.0
    print(f"\nbaseline {min(baseline) * 1e3:.1f}ms, disabled-tracer "
          f"{min(disabled) * 1e3:.1f}ms, overhead {overhead * 100:+.1f}%")
    assert overhead < 0.03, (
        f"disabled tracer costs {overhead * 100:.1f}% (> 3% budget)"
    )


def test_enabled_tracer_records_everything(benchmark):
    """Enabled tracing is allowed to cost real time — measure it and
    sanity-check the stream rather than bound it."""
    app, program, config = _sieve()
    tracer = RingTracer()

    def traced():
        tracer.clear()
        return _time_once(app, program, config, tracer)

    elapsed = benchmark.pedantic(traced, rounds=1, iterations=1)
    assert elapsed > 0
    assert tracer.total_events > 0
