"""Table 7 (Section 6.1): hit rates and network bandwidth."""

from repro.harness.tables import table7
from conftest import emit


def test_table7(benchmark, ctx):
    text, data = benchmark.pedantic(table7, args=(ctx,), rounds=1, iterations=1)
    emit(text)
    # Paper: hit rates above 90% for most applications; mp3d's poor
    # locality leaves it benefiting little from caching.
    high = [a for a, row in data.items() if row["hit_rate"] > 0.8]
    assert len(high) >= 4
    assert data["mp3d"]["hit_rate"] < 0.5
    assert (
        data["ugray"]["cached_bits_per_cycle"]
        < data["ugray"]["uncached_bits_per_cycle"] / 2
    )
