"""Figure 2: efficiency vs processors on the ideal machine."""

from repro.harness.figures import figure2
from conftest import emit


def test_figure2(benchmark, ctx):
    text, data = benchmark.pedantic(figure2, args=(ctx,), rounds=1, iterations=1)
    emit(text)
    for app, series in data.items():
        assert series[1] > 0.95, app  # one processor is ~perfect
        # Fixed-size problems: efficiency never improves with more procs.
        assert series[16] <= series[1] + 0.05
