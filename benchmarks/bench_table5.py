"""Table 5: explicit-switch MT levels + reorganisation penalty."""

from repro.harness.tables import table5
from conftest import emit, SCALE


def test_table5(benchmark, ctx):
    text, data = benchmark.pedantic(table5, args=(ctx,), rounds=1, iterations=1)
    emit(text)
    for app, row in data.items():
        # Paper: the penalty is a few percent, overshadowed by grouping.
        assert row["penalty"] < 0.12, app
    if SCALE in ("bench", "medium"):
        # Paper: with grouping, 70%+ efficiency everywhere with modest
        # levels; sor improves dramatically over switch-on-load.
        assert data["sor"][ "levels"][0.7] is not None
        assert data["sor"]["levels"][0.7] <= 10
