"""Table 1: application inventory and single-processor cycle counts."""

from repro.apps.registry import app_names
from repro.harness.tables import table1
from conftest import emit


def test_table1(benchmark, ctx):
    text, data = benchmark.pedantic(table1, args=(ctx,), rounds=1, iterations=1)
    emit(text)
    assert set(data) == set(app_names())
    for row in data.values():
        assert row["cycles"] > 0
        assert row["instructions"] > 30
