"""Table 2: run-length distributions under switch-on-load."""

from repro.harness.tables import table2
from conftest import emit


def test_table2(benchmark, ctx):
    text, data = benchmark.pedantic(table2, args=(ctx,), rounds=1, iterations=1)
    emit(text)
    # Paper: sor is dominated by one- and two-cycle run lengths...
    assert data["sor"]["1"] + data["sor"]["2"] > 50.0
    # ...while blkmat's private block copies give it an exceptionally
    # high mean run length, and sieve is fairly constant.
    assert data["blkmat"]["mean"] > 2 * data["sor"]["mean"]
    assert data["sieve"]["11-100"] > 60.0
