"""Table 3: switch-on-load — multithreading level per efficiency target."""

from repro.harness.tables import table3
from conftest import emit, SCALE


def test_table3(benchmark, ctx):
    text, data = benchmark.pedantic(table3, args=(ctx,), rounds=1, iterations=1)
    emit(text)
    if SCALE in ("bench", "medium"):
        # Paper: sieve reaches high efficiency with a modest level, while
        # sor's short run lengths leave it stuck near 50-60%.
        assert data["sieve"][0.8] is not None and data["sieve"][0.8] <= 12
        assert data["sor"][0.8] is None
