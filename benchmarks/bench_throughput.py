"""Simulator throughput (simulated cycles per wall-clock second).

Unlike the other ``bench_*`` files, this one measures the *simulator*,
not the simulated machine: how many cycles/sec each execution backend
(:mod:`repro.jit`) sustains across the full application × switch-model
grid.  It is a script, not a pytest module::

    PYTHONPATH=src python benchmarks/bench_throughput.py            # full grid
    PYTHONPATH=src python benchmarks/bench_throughput.py --quick    # CI subset

Each invocation writes one ``BENCH_<backend>.json`` per measured
backend into ``--out-dir`` (repo root by default).  When the compiled
backend is measured and ``BENCH_interpreter.json`` already exists on
disk, the compiled report also records per-cell and geomean speedups
against that committed baseline — the baseline is captured once, before
backend optimization work, and stays frozen so speedups are measured
against the interpreter the project started from (see the EXPERIMENTS
throughput appendix).

Within a single invocation that measures both backends, every cell's
``SimStats`` are additionally cross-checked for bit-identity — a cheap
standing instance of the equivalence contract pinned for real by
``tests/test_jit_equivalence.py``.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from typing import Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import list_apps, list_models
from repro.engine.executor import _build
from repro.engine.spec import RunSpec
from repro.jit import resolve_backend
from repro.runtime.execution import make_simulator

#: CI subset: two Table 1 applications plus one fixed synthetic kernel
#: (seeded, so its code is identical on every host — a stable probe of
#: generated-code throughput alongside the hand-written apps).
QUICK_APPS = ("blkmat", "mp3d", "synth:1:dense")


def _measure_cell(
    spec: RunSpec, backend: str, repeats: int
) -> Dict[str, object]:
    """Best-of-*repeats* wall seconds for one (app, model, backend) cell."""
    app, program = _build(
        spec.app, spec.total_threads, spec.effective_code_model.value, spec.scale
    )
    config = spec.machine_config()
    best = math.inf
    stats = None
    cycles = 0
    for _ in range(repeats):
        sim = make_simulator(app, config, program=program, backend=backend)
        start = time.perf_counter()
        result = sim.run()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
        stats = result.stats.to_dict()
        cycles = stats["wall_cycles"]
    return {
        "app": spec.app,
        "model": spec.model,
        "wall_cycles": cycles,
        "seconds": best,
        "cycles_per_sec": cycles / best if best > 0 else 0.0,
        "_stats": stats,
    }


def _geomean(values: List[float]) -> float:
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_grid(
    backend: str,
    apps: List[str],
    models: List[str],
    scale: str,
    processors: int,
    level: int,
    repeats: int,
    verbose: bool = True,
) -> Dict[str, object]:
    cells = []
    for app in apps:
        for model in models:
            spec = RunSpec(
                app=app,
                model=model,
                processors=processors,
                level=level,
                scale=scale,
            )
            cell = _measure_cell(spec, backend, repeats)
            cells.append(cell)
            if verbose:
                print(
                    f"  {backend:>11s}  {app:>7s} {model:<19s} "
                    f"{cell['wall_cycles']:>9d} cyc  "
                    f"{cell['seconds'] * 1e3:8.2f} ms  "
                    f"{cell['cycles_per_sec'] / 1e6:7.3f} Mcyc/s",
                    flush=True,
                )
    return {
        "benchmark": "throughput",
        "backend": backend,
        "scale": scale,
        "processors": processors,
        "level": level,
        "repeats": repeats,
        "cells": cells,
        "geomean_cycles_per_sec": _geomean(
            [c["cycles_per_sec"] for c in cells]
        ),
    }


def _cross_check(reports: Dict[str, Dict]) -> None:
    """Backends must produce bit-identical SimStats per cell."""
    names = sorted(reports)
    if len(names) < 2:
        return
    base = reports[names[0]]
    for other_name in names[1:]:
        other = reports[other_name]
        for ca, cb in zip(base["cells"], other["cells"]):
            if ca["_stats"] != cb["_stats"]:
                raise SystemExit(
                    f"stats mismatch: {ca['app']}/{ca['model']} differs "
                    f"between {names[0]} and {other_name}"
                )
    print("cross-check: SimStats bit-identical across backends")


def _attach_baseline(report: Dict, out_dir: str) -> None:
    """Record speedups vs the committed interpreter baseline, if any."""
    path = os.path.join(out_dir, "BENCH_interpreter.json")
    if report["backend"] == "interpreter" or not os.path.exists(path):
        return
    with open(path) as fh:
        baseline = json.load(fh)
    base_cells = {
        (c["app"], c["model"]): c["cycles_per_sec"]
        for c in baseline["cells"]
    }
    ratios = []
    for cell in report["cells"]:
        ref = base_cells.get((cell["app"], cell["model"]))
        if ref:
            cell["speedup_vs_baseline"] = cell["cycles_per_sec"] / ref
            ratios.append(cell["speedup_vs_baseline"])
    if ratios:
        report["baseline"] = "BENCH_interpreter.json"
        report["geomean_speedup_vs_baseline"] = _geomean(ratios)


def _write(report: Dict, out_dir: str) -> str:
    for cell in report["cells"]:
        cell.pop("_stats", None)
    path = os.path.join(out_dir, f"BENCH_{report['backend']}.json")
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"2-app CI subset ({', '.join(QUICK_APPS)}) instead of the full grid",
    )
    parser.add_argument(
        "--backends",
        nargs="+",
        default=["interpreter", "compiled"],
        help="backends to measure (default: both)",
    )
    parser.add_argument("--apps", nargs="+", default=None)
    parser.add_argument("--models", nargs="+", default=None)
    parser.add_argument("--scale", default="small")
    parser.add_argument("--processors", type=int, default=2)
    parser.add_argument("--level", type=int, default=4)
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N per cell"
    )
    parser.add_argument(
        "--out-dir",
        default=os.path.join(os.path.dirname(__file__), ".."),
        help="where BENCH_<backend>.json files land (default: repo root)",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.0,
        help="fail unless compiled/interpreter geomean ratio (measured "
        "in this invocation) is at least this",
    )
    args = parser.parse_args(argv)

    apps = args.apps or (list(QUICK_APPS) if args.quick else list_apps())
    models = args.models or list_models()
    backends = [resolve_backend(b) for b in args.backends]

    reports: Dict[str, Dict] = {}
    for backend in backends:
        print(f"measuring backend={backend} on {len(apps)}x{len(models)} grid "
              f"(scale={args.scale}, best of {args.repeats})", flush=True)
        reports[backend] = run_grid(
            backend, apps, models, args.scale, args.processors,
            args.level, args.repeats,
        )
    _cross_check(reports)

    for report in reports.values():
        _attach_baseline(report, args.out_dir)
        path = _write(report, args.out_dir)
        line = (
            f"{report['backend']}: geomean "
            f"{report['geomean_cycles_per_sec'] / 1e6:.3f} Mcyc/s"
        )
        if "geomean_speedup_vs_baseline" in report:
            line += (
                f", {report['geomean_speedup_vs_baseline']:.2f}x vs "
                "committed baseline"
            )
        print(f"{line}  -> {os.path.relpath(path)}")

    if "interpreter" in reports and "compiled" in reports:
        ratio = (
            reports["compiled"]["geomean_cycles_per_sec"]
            / reports["interpreter"]["geomean_cycles_per_sec"]
        )
        print(f"live compiled/interpreter geomean ratio: {ratio:.2f}x")
        if args.min_ratio and ratio < args.min_ratio:
            print(f"FAIL: ratio {ratio:.2f}x < required {args.min_ratio}x")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
