"""Figure 1: the multithreading-model taxonomy."""

import networkx as nx

from repro.harness.figures import figure1
from conftest import emit


def test_figure1(benchmark):
    text, graph = benchmark.pedantic(figure1, rounds=1, iterations=1)
    emit(text)
    assert nx.is_directed_acyclic_graph(graph)
    assert "conditional-switch" in graph
    # Every model in the diagram descends from switch-every-cycle.
    for node in graph:
        if node != "switch-every-cycle":
            assert nx.has_path(graph, "switch-every-cycle", node)
