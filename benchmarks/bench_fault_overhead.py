"""Inert fault-config overhead on the simulation hot paths.

The contract (DESIGN §5d, extended by §5i): with no ``FaultConfig`` — or
an inert one — the memory-transaction path costs one extra ``is None``
check per issue and nothing per instruction, and the same holds for a
*lifecycle* config that never transitions (``mean_healthy=0``): the
availability ledger is reported post-run, but the simulated hot paths
stay untouched.  This benchmark measures a reference sieve run each way,
interleaving the configurations so machine drift hits them equally, and
asserts each inert median stays within 3% of the no-config baseline.
"""

import dataclasses
import time

from repro.engine.executor import _build
from repro.engine.spec import RunSpec
from repro.faults import FaultConfig, LifecycleConfig
from repro.machine.models import SwitchModel
from repro.runtime.execution import run_app

REPS = 15


def _sieve():
    app, program = _build("sieve", 16, SwitchModel.EXPLICIT_SWITCH.value, "small")
    spec = RunSpec.create(
        "sieve", model="explicit-switch", processors=4, level=4, scale="small"
    )
    return app, program, spec.machine_config()


def _time_once(app, program, config):
    start = time.perf_counter()
    run_app(app, config, program=program)
    return time.perf_counter() - start


def test_inert_fault_config_overhead_under_3_percent():
    app, program, config = _sieve()
    inert = dataclasses.replace(config, faults=FaultConfig())
    for _ in range(3):  # warm the interpreter and allocator
        _time_once(app, program, config)
    baseline, attached = [], []
    for _ in range(REPS):  # interleaved A/B: drift cancels out
        baseline.append(_time_once(app, program, config))
        attached.append(_time_once(app, program, inert))
    # Minimum over reps: the classic noise-robust estimate of the true
    # cost (scheduler blips only ever add time).
    overhead = min(attached) / min(baseline) - 1.0
    print(f"\nbaseline {min(baseline) * 1e3:.1f}ms, inert-faults "
          f"{min(attached) * 1e3:.1f}ms, overhead {overhead * 100:+.1f}%")
    assert overhead < 0.03, (
        f"inert fault config costs {overhead * 100:.1f}% (> 3% budget)"
    )


def test_inert_lifecycle_overhead_under_3_percent():
    """Lifecycles configured, zero transitions: the run must stay on the
    fast paths (and byte-identical — pinned separately by
    :func:`repro.check.zero_lifecycle_equivalence`); here we pin the
    *time* side of that contract."""
    app, program, config = _sieve()
    inert = dataclasses.replace(
        config,
        faults=FaultConfig(lifecycle=LifecycleConfig(mean_healthy=0)),
    )
    for _ in range(3):
        _time_once(app, program, config)
    baseline, attached = [], []
    for _ in range(REPS):
        baseline.append(_time_once(app, program, config))
        attached.append(_time_once(app, program, inert))
    overhead = min(attached) / min(baseline) - 1.0
    print(f"\nbaseline {min(baseline) * 1e3:.1f}ms, inert-lifecycle "
          f"{min(attached) * 1e3:.1f}ms, overhead {overhead * 100:+.1f}%")
    assert overhead < 0.03, (
        f"inert lifecycle config costs {overhead * 100:.1f}% (> 3% budget)"
    )


def test_disabled_and_inert_lifecycle_stats_identical():
    """Byte-level side of the fast-path contract, at the run_app level:
    an inert lifecycle changes nothing but the (all-up) availability
    ledger it reports."""
    from repro.check.golden import canonical_stats

    app, program, config = _sieve()
    inert = dataclasses.replace(
        config,
        faults=FaultConfig(lifecycle=LifecycleConfig(mean_healthy=0)),
    )
    bare = run_app(app, config, program=program).stats.to_dict()
    dressed = run_app(app, inert, program=program).stats.to_dict()
    ledger = dressed.pop("component_availability")
    bare.pop("component_availability")
    assert bare == dressed
    wall = dressed["wall_cycles"]
    assert [
        (comp["uptime_cycles"], comp["failures"]) for comp in ledger
    ] == [(wall, 0)] * len(ledger)
    # And the canonical serialization itself is deterministic.
    repeat = run_app(app, inert, program=program)
    again = run_app(app, inert, program=program)
    assert canonical_stats(repeat.stats) == canonical_stats(again.stats)


def test_active_faults_cost_is_measured_not_bounded(benchmark):
    """Jitter + loss are allowed to cost real time — measure one faulty
    run and sanity-check the retry machinery actually engaged."""
    app, program, config = _sieve()
    faulty = dataclasses.replace(
        config,
        faults=FaultConfig(latency_model="uniform", jitter=100, loss_rate=0.01),
    )

    def run_faulty():
        return run_app(app, faulty, program=program)

    result = benchmark.pedantic(run_faulty, rounds=1, iterations=1)
    assert result.stats.mem_issued == result.stats.mem_completed
    assert result.stats.retries == result.stats.nacks
