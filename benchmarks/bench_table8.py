"""Table 8: conditional-switch MT levels (cached machine)."""

from repro.harness.tables import table8
from conftest import emit, SCALE


def test_table8(benchmark, ctx):
    text, data = benchmark.pedantic(table8, args=(ctx,), rounds=1, iterations=1)
    emit(text)
    if SCALE in ("bench", "medium"):
        # Paper: 80%+ efficiency with 6 threads or fewer for most apps.
        reached = [
            app
            for app, levels in data.items()
            if levels[0.8] is not None and levels[0.8] <= 6
        ]
        assert len(reached) >= 4, reached
