"""Ablations: latency sweep, model shoot-out, flush cost, forced interval."""

from repro.harness.ablations import (
    latency_sweep,
    model_shootout,
    switch_cost_sensitivity,
    forced_interval_study,
)
from conftest import emit


def test_latency_sweep(benchmark, ctx):
    text, data = benchmark.pedantic(
        latency_sweep, args=(ctx,), rounds=1, iterations=1
    )
    emit(text)
    explicit = data["explicit-switch"]
    sol = data["switch-on-load"]
    # Grouping tolerates latency better: the gap widens with latency.
    assert explicit[400] > sol[400]
    # Efficiency decays as the round trip grows, for the uncached models.
    assert sol[50] > sol[400]


def test_model_shootout(benchmark, ctx):
    text, data = benchmark.pedantic(
        model_shootout, args=(ctx,), rounds=1, iterations=1
    )
    emit(text)
    assert data["explicit-switch"]["efficiency"] > data["switch-on-load"]["efficiency"]
    assert data["conditional-switch"]["mean_run"] > data["explicit-switch"]["mean_run"]


def test_switch_cost_sensitivity(benchmark, ctx):
    text, data = benchmark.pedantic(
        switch_cost_sensitivity, args=(ctx,), rounds=1, iterations=1
    )
    emit(text)
    assert data[0] >= data[16]  # flush cycles only ever hurt


def test_forced_interval(benchmark, ctx):
    text, data = benchmark.pedantic(
        forced_interval_study, args=(ctx,), rounds=1, iterations=1
    )
    emit(text)
    # Section 6.2: some bounded interval must do at least as well as an
    # enormous one (lock holders stop being starved).
    best_bounded = max(data[i]["efficiency"] for i in (100, 200, 400))
    assert best_bounded >= data[800]["efficiency"] - 0.05


def test_jitter_robustness(benchmark, ctx):
    from repro.harness.ablations import jitter_study

    text, data = benchmark.pedantic(
        jitter_study, args=(ctx,), rounds=1, iterations=1
    )
    emit(text)
    explicit = data["explicit-switch"]
    # Grouping's advantage survives latency variance, degrading smoothly.
    assert explicit[200] > data["switch-on-load"][200]
    assert explicit[0] >= explicit[200] - 0.05
