"""Table 4: run-length distributions after grouping (explicit-switch)."""

from repro.harness.tables import table4
from conftest import emit


def test_table4(benchmark, ctx):
    text, data = benchmark.pedantic(table4, args=(ctx,), rounds=1, iterations=1)
    emit(text)
    # Paper: grouping eliminates the troublesome short run lengths and
    # groups sor's five stencil loads.
    for app, row in data.items():
        assert row["1"] + row["2"] < 10.0, app
    assert data["sor"]["grouping"] > 3.5
    assert data["locus"]["grouping"] < 1.6  # little intra-block benefit
