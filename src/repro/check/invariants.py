"""Conservation-law oracle over completed simulation results.

The laws hold by construction of the NACK/retry protocol
(DESIGN §5d); checking them after every run catches protocol
regressions — a dropped reply nobody retried, a double-applied retry, a
thread that halted while a load was still in flight — that application
result validators can miss (a lucky memory image can look correct).
"""

from __future__ import annotations

from typing import List, Optional

from repro.machine.simulator import SimulationResult


class CheckFailure(AssertionError):
    """One or more invariants failed; the message lists every violation."""


def result_problems(result: SimulationResult) -> List[str]:
    """Every invariant violation found in *result* (empty = clean).

    Works on both live results and cache-restored ones (restored results
    carry no thread contexts, so the per-thread checks are skipped).
    """
    stats = result.stats
    config = result.config
    problems: List[str] = []

    if stats.halted_threads != config.total_threads:
        problems.append(
            f"{stats.halted_threads} of {config.total_threads} threads halted"
        )
    if stats.mem_issued != stats.mem_completed:
        problems.append(
            "transaction conservation: issued "
            f"{stats.mem_issued} != completed {stats.mem_completed}"
        )
    if stats.nacks != stats.replies_dropped:
        problems.append(
            f"every dropped reply must NACK: dropped {stats.replies_dropped} "
            f"!= nacks {stats.nacks}"
        )
    if stats.retries != stats.nacks:
        problems.append(
            f"every NACK must retry: nacks {stats.nacks} "
            f"!= retries {stats.retries}"
        )
    if sum(stats.per_proc_busy) != stats.busy_cycles:
        problems.append(
            f"busy-cycle ledger: per-processor sum {sum(stats.per_proc_busy)} "
            f"!= total {stats.busy_cycles}"
        )
    if stats.wall_cycles > config.max_cycles:
        problems.append(
            f"wall cycles {stats.wall_cycles} exceed max_cycles "
            f"{config.max_cycles}"
        )

    faults = config.faults
    if faults is None or not faults.injects_faults:
        fired = {
            name: getattr(stats, name)
            for name in (
                "replies_dropped", "replies_delayed", "nacks", "retries",
                "backoff_cycles", "faa_replays",
            )
            if getattr(stats, name)
        }
        if fired:
            problems.append(
                f"fault machinery fired with faults off: {fired}"
            )

    for thread in result.threads:  # empty for cache-restored results
        if not thread.halted:
            problems.append(f"thread {thread.tid} never halted")
        if thread.inflight:
            problems.append(
                f"thread {thread.tid} holds in-flight registers at halt: "
                f"{dict(thread.inflight)}"
            )
    return problems


def check_result(
    result: SimulationResult, label: Optional[str] = None
) -> SimulationResult:
    """Raise :class:`CheckFailure` listing every violated invariant;
    returns *result* unchanged when clean (so call sites can chain)."""
    problems = result_problems(result)
    if problems:
        prefix = f"{label}: " if label else ""
        raise CheckFailure(
            prefix + "invariant check failed:\n  - " + "\n  - ".join(problems)
        )
    return result
