"""Conservation-law oracle over completed simulation results.

The laws hold by construction of the NACK/retry protocol
(DESIGN §5d); checking them after every run catches protocol
regressions — a dropped reply nobody retried, a double-applied retry, a
thread that halted while a load was still in flight — that application
result validators can miss (a lucky memory image can look correct).

Every violation carries a stable machine-readable ``invariant`` name
(:class:`Violation`) so automation — the fuzz harness's repro bundles,
dashboards — can key on *which* law broke without parsing the rendered
message; :func:`result_problems` keeps returning the exact same strings
it always has.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.machine.simulator import SimulationResult


class CheckFailure(AssertionError):
    """One or more invariants failed; the message lists every violation."""


@dataclasses.dataclass(frozen=True)
class Violation:
    """One violated invariant: a stable id plus the human-readable
    message (``str()`` renders exactly the legacy problem text)."""

    invariant: str
    message: str

    def __str__(self) -> str:
        return self.message


def result_violations(result: SimulationResult) -> List[Violation]:
    """Every invariant violation found in *result* (empty = clean).

    Works on both live results and cache-restored ones (restored results
    carry no thread contexts, so the per-thread checks are skipped).
    """
    stats = result.stats
    config = result.config
    violations: List[Violation] = []

    def found(invariant: str, message: str) -> None:
        violations.append(Violation(invariant, message))

    if stats.halted_threads != config.total_threads:
        found(
            "threads-halted",
            f"{stats.halted_threads} of {config.total_threads} threads halted",
        )
    if stats.mem_issued != stats.mem_completed:
        found(
            "transaction-conservation",
            "transaction conservation: issued "
            f"{stats.mem_issued} != completed {stats.mem_completed}",
        )
    if stats.nacks != stats.replies_dropped:
        found(
            "drop-nack-conservation",
            f"every dropped reply must NACK: dropped {stats.replies_dropped} "
            f"!= nacks {stats.nacks}",
        )
    if stats.retries != stats.nacks:
        found(
            "nack-retry-conservation",
            f"every NACK must retry: nacks {stats.nacks} "
            f"!= retries {stats.retries}",
        )
    if sum(stats.per_proc_busy) != stats.busy_cycles:
        found(
            "busy-cycle-ledger",
            f"busy-cycle ledger: per-processor sum {sum(stats.per_proc_busy)} "
            f"!= total {stats.busy_cycles}",
        )
    if stats.wall_cycles > config.max_cycles:
        found(
            "wall-cycle-bound",
            f"wall cycles {stats.wall_cycles} exceed max_cycles "
            f"{config.max_cycles}",
        )

    faults = config.faults
    if faults is None or not (faults.injects_faults or faults.drives_lifecycles):
        # Active lifecycles legitimately drop replies (component outages
        # NACK) — only then may the retry machinery fire without
        # loss/delay rates.
        fired = {
            name: getattr(stats, name)
            for name in (
                "replies_dropped", "replies_delayed", "nacks", "retries",
                "backoff_cycles", "faa_replays",
            )
            if getattr(stats, name)
        }
        if fired:
            found(
                "fault-machinery-off",
                f"fault machinery fired with faults off: {fired}",
            )

    violations.extend(_lifecycle_violations(stats, faults))

    for thread in result.threads:  # empty for cache-restored results
        if not thread.halted:
            found("thread-halt", f"thread {thread.tid} never halted")
        if thread.inflight:
            found(
                "thread-inflight-at-halt",
                f"thread {thread.tid} holds in-flight registers at halt: "
                f"{dict(thread.inflight)}",
            )
    return violations


def result_problems(result: SimulationResult) -> List[str]:
    """The violations as plain strings (the historical surface — render
    output is unchanged)."""
    return [violation.message for violation in result_violations(result)]


def _lifecycle_violations(stats, faults) -> List[Violation]:
    """Conservation laws of the component-availability ledger
    (repro.faults.lifecycle): the ledger exists iff a lifecycle is
    configured, covers every component, and attributes every cycle of
    ``[0, wall)`` to exactly one of uptime / downtime / repair."""
    violations: List[Violation] = []

    def found(invariant: str, message: str) -> None:
        violations.append(Violation(invariant, message))

    ledger = stats.component_availability
    lifecycle = faults.lifecycle if faults is not None else None
    if lifecycle is None:
        if ledger:
            found(
                "ledger-without-lifecycle",
                f"availability ledger present ({len(ledger)} components) "
                "without a lifecycle config",
            )
        return violations
    if len(ledger) != lifecycle.components:
        found(
            "ledger-coverage",
            f"availability ledger covers {len(ledger)} components, "
            f"config has {lifecycle.components}",
        )
        return violations
    wall = stats.wall_cycles
    for comp in ledger:
        ident = f"component {comp['component']}"
        total = (
            comp["uptime_cycles"] + comp["downtime_cycles"] + comp["repair_cycles"]
        )
        if total != wall:
            found(
                "availability-conservation",
                f"availability conservation: {ident} accounts {total} "
                f"cycles != wall {wall}",
            )
        if comp["degraded_cycles"] > comp["uptime_cycles"]:
            found(
                "degraded-within-uptime",
                f"{ident} degraded {comp['degraded_cycles']} cycles "
                f"exceed uptime {comp['uptime_cycles']}",
            )
        if not comp["failures"] >= comp["repairs"] >= comp["failures"] - 1:
            found(
                "failure-repair-pairing",
                f"{ident} repairs {comp['repairs']} inconsistent with "
                f"failures {comp['failures']} (at most one outage open)",
            )
        if any(value < 0 for key, value in comp.items() if key != "component"):
            found(
                "availability-nonnegative",
                f"{ident} has negative availability counters",
            )
    if not lifecycle.active and (
        stats.lifecycle_failures or stats.lifecycle_degraded_cycles
    ):
        found(
            "inactive-lifecycle-quiet",
            "inactive lifecycle reported failures/degradation: "
            f"failures={stats.lifecycle_failures} "
            f"degraded={stats.lifecycle_degraded_cycles}",
        )
    return violations


def check_result(
    result: SimulationResult, label: Optional[str] = None
) -> SimulationResult:
    """Raise :class:`CheckFailure` listing every violated invariant;
    returns *result* unchanged when clean (so call sites can chain)."""
    problems = result_problems(result)
    if problems:
        prefix = f"{label}: " if label else ""
        raise CheckFailure(
            prefix + "invariant check failed:\n  - " + "\n  - ".join(problems)
        )
    return result
