"""Conservation-law oracle over completed simulation results.

The laws hold by construction of the NACK/retry protocol
(DESIGN §5d); checking them after every run catches protocol
regressions — a dropped reply nobody retried, a double-applied retry, a
thread that halted while a load was still in flight — that application
result validators can miss (a lucky memory image can look correct).
"""

from __future__ import annotations

from typing import List, Optional

from repro.machine.simulator import SimulationResult


class CheckFailure(AssertionError):
    """One or more invariants failed; the message lists every violation."""


def result_problems(result: SimulationResult) -> List[str]:
    """Every invariant violation found in *result* (empty = clean).

    Works on both live results and cache-restored ones (restored results
    carry no thread contexts, so the per-thread checks are skipped).
    """
    stats = result.stats
    config = result.config
    problems: List[str] = []

    if stats.halted_threads != config.total_threads:
        problems.append(
            f"{stats.halted_threads} of {config.total_threads} threads halted"
        )
    if stats.mem_issued != stats.mem_completed:
        problems.append(
            "transaction conservation: issued "
            f"{stats.mem_issued} != completed {stats.mem_completed}"
        )
    if stats.nacks != stats.replies_dropped:
        problems.append(
            f"every dropped reply must NACK: dropped {stats.replies_dropped} "
            f"!= nacks {stats.nacks}"
        )
    if stats.retries != stats.nacks:
        problems.append(
            f"every NACK must retry: nacks {stats.nacks} "
            f"!= retries {stats.retries}"
        )
    if sum(stats.per_proc_busy) != stats.busy_cycles:
        problems.append(
            f"busy-cycle ledger: per-processor sum {sum(stats.per_proc_busy)} "
            f"!= total {stats.busy_cycles}"
        )
    if stats.wall_cycles > config.max_cycles:
        problems.append(
            f"wall cycles {stats.wall_cycles} exceed max_cycles "
            f"{config.max_cycles}"
        )

    faults = config.faults
    if faults is None or not (faults.injects_faults or faults.drives_lifecycles):
        # Active lifecycles legitimately drop replies (component outages
        # NACK) — only then may the retry machinery fire without
        # loss/delay rates.
        fired = {
            name: getattr(stats, name)
            for name in (
                "replies_dropped", "replies_delayed", "nacks", "retries",
                "backoff_cycles", "faa_replays",
            )
            if getattr(stats, name)
        }
        if fired:
            problems.append(
                f"fault machinery fired with faults off: {fired}"
            )

    problems.extend(_lifecycle_problems(stats, faults))

    for thread in result.threads:  # empty for cache-restored results
        if not thread.halted:
            problems.append(f"thread {thread.tid} never halted")
        if thread.inflight:
            problems.append(
                f"thread {thread.tid} holds in-flight registers at halt: "
                f"{dict(thread.inflight)}"
            )
    return problems


def _lifecycle_problems(stats, faults) -> List[str]:
    """Conservation laws of the component-availability ledger
    (repro.faults.lifecycle): the ledger exists iff a lifecycle is
    configured, covers every component, and attributes every cycle of
    ``[0, wall)`` to exactly one of uptime / downtime / repair."""
    problems: List[str] = []
    ledger = stats.component_availability
    lifecycle = faults.lifecycle if faults is not None else None
    if lifecycle is None:
        if ledger:
            problems.append(
                f"availability ledger present ({len(ledger)} components) "
                "without a lifecycle config"
            )
        return problems
    if len(ledger) != lifecycle.components:
        problems.append(
            f"availability ledger covers {len(ledger)} components, "
            f"config has {lifecycle.components}"
        )
        return problems
    wall = stats.wall_cycles
    for comp in ledger:
        ident = f"component {comp['component']}"
        total = (
            comp["uptime_cycles"] + comp["downtime_cycles"] + comp["repair_cycles"]
        )
        if total != wall:
            problems.append(
                f"availability conservation: {ident} accounts {total} "
                f"cycles != wall {wall}"
            )
        if comp["degraded_cycles"] > comp["uptime_cycles"]:
            problems.append(
                f"{ident} degraded {comp['degraded_cycles']} cycles "
                f"exceed uptime {comp['uptime_cycles']}"
            )
        if not comp["failures"] >= comp["repairs"] >= comp["failures"] - 1:
            problems.append(
                f"{ident} repairs {comp['repairs']} inconsistent with "
                f"failures {comp['failures']} (at most one outage open)"
            )
        if any(value < 0 for key, value in comp.items() if key != "component"):
            problems.append(f"{ident} has negative availability counters")
    if not lifecycle.active and (
        stats.lifecycle_failures or stats.lifecycle_degraded_cycles
    ):
        problems.append(
            "inactive lifecycle reported failures/degradation: "
            f"failures={stats.lifecycle_failures} "
            f"degraded={stats.lifecycle_degraded_cycles}"
        )
    return problems


def check_result(
    result: SimulationResult, label: Optional[str] = None
) -> SimulationResult:
    """Raise :class:`CheckFailure` listing every violated invariant;
    returns *result* unchanged when clean (so call sites can chain)."""
    problems = result_problems(result)
    if problems:
        prefix = f"{label}: " if label else ""
        raise CheckFailure(
            prefix + "invariant check failed:\n  - " + "\n  - ".join(problems)
        )
    return result
