"""Differential invariants across switch models and execution backends.

Where :mod:`repro.check.invariants` judges one run in isolation, this
module judges a *grid* of runs of the same kernel — every switch model,
both backends — against each other.  The paper's eight models differ in
*when* they context-switch, never in *what* the program computes, so a
family of observables must be model-independent:

======================================  =====================================
invariant                               law
======================================  =====================================
``memory-model-independent``            final shared memory is identical
                                        across every model × backend
``backend-stats-identical``             interpreter and compiled backends
                                        serialize bit-identical ``SimStats``
                                        per model
``traffic-loads-model-independent``     non-sync shared-load work
                                        (``READ + READ2 + cache hits +
                                        cache misses``) is constant across
                                        the seven message-issuing models
``traffic-faa-model-independent``       non-sync ``FAA`` message count is
                                        constant across those models
``traffic-store-words-model-independent``  non-sync stored words (``WRITE +
                                        WRITE_THROUGH + WRITE_COMBINED +
                                        2·WRITE2``) is constant across them
``instructions-model-independent``      retired instruction totals agree
                                        across the six models that execute
                                        switch-free code — including the
                                        use models, whose switch-stripped
                                        grouped code must cost exactly the
                                        original instruction count
``instructions-grouped-pair``           explicit- and conditional-switch
                                        run the *same* grouped code, so
                                        their retired totals (switches
                                        included) must match
``per-thread-instructions``             per-thread retired non-``SWITCH``
                                        instruction counts are identical
                                        under every model
======================================  =====================================

Scope notes: the IDEAL machine executes shared operations inline without
issuing messages, so the traffic laws compare the other seven models;
instruction-count laws require a deterministic per-thread schedule (no
spin loops — the caller says so via *deterministic*), and traffic laws
require fault-free runs (NACK retries legitimately re-count messages).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.check.invariants import Violation
from repro.machine.network import MsgKind
from repro.machine.simulator import SimulationResult

#: Models whose prepared code contains SWITCH instructions.
GROUPED_MODELS = ("explicit-switch", "conditional-switch")
#: Models that execute switch-free code (original or switch-stripped).
SWITCH_FREE_MODELS = (
    "ideal",
    "switch-every-cycle",
    "switch-on-load",
    "switch-on-use",
    "switch-on-miss",
    "switch-on-use-miss",
)
#: Models that issue network messages (IDEAL executes shared ops inline).
MESSAGE_MODELS = tuple(
    model for model in SWITCH_FREE_MODELS + GROUPED_MODELS if model != "ideal"
)

#: Stable ids of every inter-model invariant this module can check.
INVARIANTS = (
    "memory-model-independent",
    "backend-stats-identical",
    "traffic-loads-model-independent",
    "traffic-faa-model-independent",
    "traffic-store-words-model-independent",
    "instructions-model-independent",
    "instructions-grouped-pair",
    "per-thread-instructions",
)

#: results-grid type: ``grid[model_value][backend] -> SimulationResult``
ResultGrid = Mapping[str, Mapping[str, SimulationResult]]


def shared_loads(result: SimulationResult) -> int:
    """Non-sync shared-load work: messages on uncached machines plus
    cache hits/misses on cached ones — one unit per retired load."""
    counts = result.stats.msg_counts
    return (
        counts[MsgKind.READ]
        + counts[MsgKind.READ2]
        + result.stats.cache_hits
        + result.stats.cache_misses
    )


def faa_messages(result: SimulationResult) -> int:
    """Non-sync Fetch-and-Add transactions (always one per FAA)."""
    return result.stats.msg_counts[MsgKind.FAA]


def stored_words(result: SimulationResult) -> int:
    """Non-sync words written to shared memory, counted in words because
    write-combining splits a Store-Double into per-word messages."""
    counts = result.stats.msg_counts
    return (
        counts[MsgKind.WRITE]
        + counts[MsgKind.WRITE_THROUGH]
        + counts[MsgKind.WRITE_COMBINED]
        + 2 * counts[MsgKind.WRITE2]
    )


def _constant(
    violations: List[Violation],
    invariant: str,
    label: str,
    values: Dict[str, int],
) -> None:
    if len(set(values.values())) > 1:
        rendered = ", ".join(
            f"{model}={value}" for model, value in sorted(values.items())
        )
        violations.append(
            Violation(invariant, f"{label} differs across models: {rendered}")
        )


def cross_model_violations(
    grid: ResultGrid,
    *,
    deterministic: bool = True,
    faulty: bool = False,
    per_thread: Optional[Mapping[str, Mapping[int, int]]] = None,
) -> List[Violation]:
    """Every violated cross-model invariant over *grid* (empty = clean).

    :param grid: ``grid[model][backend] -> SimulationResult`` for one
        kernel; missing cells are simply not compared.
    :param deterministic: the kernel's per-thread schedule is
        model-independent (no spin loops), enabling the
        instruction-count laws.
    :param faulty: fault injection was active — retries re-count
        messages, so the traffic laws are skipped.
    :param per_thread: optional ``{model: {tid: retired non-SWITCH
        instructions}}`` collected by a tracer, enabling the per-thread
        law.
    """
    violations: List[Violation] = []

    # -- backend equivalence: bit-identical stats per model ------------------
    for model in sorted(grid):
        backends = grid[model]
        names = sorted(backends)
        if len(names) < 2:
            continue
        reference = backends[names[0]].stats.to_dict()
        for other in names[1:]:
            if backends[other].stats.to_dict() != reference:
                violations.append(
                    Violation(
                        "backend-stats-identical",
                        f"{model}: SimStats differ between backend "
                        f"{names[0]} and {other}",
                    )
                )

    # -- final memory identical everywhere -----------------------------------
    images = {}
    for model in sorted(grid):
        for backend in sorted(grid[model]):
            shared = grid[model][backend].shared
            if shared is not None:
                images[f"{model}/{backend}"] = tuple(shared)
    if len(set(images.values())) > 1:
        reference_key = sorted(images)[0]
        reference = images[reference_key]
        differing = sorted(
            key for key, image in images.items() if image != reference
        )
        violations.append(
            Violation(
                "memory-model-independent",
                "final shared memory diverges: "
                f"{', '.join(differing)} differ from {reference_key}",
            )
        )

    def cell(model: str) -> Optional[SimulationResult]:
        backends = grid.get(model, {})
        if not backends:
            return None
        return backends[sorted(backends)[0]]

    # -- traffic conservation (fault-free runs only) -------------------------
    if not faulty:
        for invariant, label, measure in (
            ("traffic-loads-model-independent", "shared-load traffic",
             shared_loads),
            ("traffic-faa-model-independent", "FAA traffic", faa_messages),
            ("traffic-store-words-model-independent", "stored words",
             stored_words),
        ):
            values = {
                model: measure(cell(model))
                for model in MESSAGE_MODELS
                if cell(model) is not None
            }
            if len(values) > 1:
                _constant(violations, invariant, label, values)

    # -- instruction-count laws (deterministic schedules only) ---------------
    if deterministic and not faulty:
        totals = {
            model: cell(model).stats.instructions
            for model in SWITCH_FREE_MODELS
            if cell(model) is not None
        }
        _constant(
            violations,
            "instructions-model-independent",
            "retired instructions (switch-free code)",
            totals,
        )
        grouped = {
            model: cell(model).stats.instructions
            for model in GROUPED_MODELS
            if cell(model) is not None
        }
        _constant(
            violations,
            "instructions-grouped-pair",
            "retired instructions (grouped code)",
            grouped,
        )
        if per_thread:
            reference_model = sorted(per_thread)[0]
            reference = dict(per_thread[reference_model])
            for model in sorted(per_thread):
                if dict(per_thread[model]) != reference:
                    violations.append(
                        Violation(
                            "per-thread-instructions",
                            "per-thread retired instruction counts differ: "
                            f"{model} disagrees with {reference_model}",
                        )
                    )
    return violations
