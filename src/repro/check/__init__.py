"""Invariant oracle and golden-replay checks for simulation results.

``repro.check`` answers "can this run be trusted?" independently of any
per-application result validator:

* :func:`check_result` — conservation laws over a completed
  :class:`~repro.machine.simulator.SimulationResult` (every issued
  transaction completed, every drop was NACKed, every NACK retried, no
  thread halted mid-flight, and — with faults off — the fault machinery
  never fired);
* :func:`replay_check` — the same spec and fault seed must serialize to
  byte-identical :class:`~repro.machine.stats.SimStats` at any engine
  worker count and across cache cold/warm runs;
* :func:`zero_fault_equivalence` — an *inert* fault config must be
  indistinguishable from no fault config at all;
* :func:`zero_lifecycle_equivalence` — a lifecycle that never
  transitions must change no simulated observable beyond reporting an
  all-up availability ledger (and active lifecycles must satisfy the
  per-component conservation law ``uptime + downtime + repair == wall``,
  enforced by :func:`check_result`).
"""

from repro.check.crossmodel import (
    INVARIANTS as CROSS_MODEL_INVARIANTS,
    cross_model_violations,
)
from repro.check.golden import (
    canonical_stats,
    replay_check,
    zero_fault_equivalence,
    zero_lifecycle_equivalence,
)
from repro.check.invariants import (
    CheckFailure,
    Violation,
    check_result,
    result_problems,
    result_violations,
)

__all__ = [
    "CheckFailure",
    "Violation",
    "check_result",
    "result_problems",
    "result_violations",
    "cross_model_violations",
    "CROSS_MODEL_INVARIANTS",
    "canonical_stats",
    "replay_check",
    "zero_fault_equivalence",
    "zero_lifecycle_equivalence",
]
