"""Golden-replay checks: the same seed must reproduce the same run.

Fault decisions are pure hashes of ``(seed, transaction, attempt)`` and
latency draws of ``(seed, time, addr)`` (see :mod:`repro.faults.rng`),
so a spec's :class:`~repro.machine.stats.SimStats` must serialize to the
same bytes no matter how the engine executed it — serially, across a
worker pool, or restored from the on-disk cache.  These helpers make
that property checkable (and :mod:`tests.test_check_oracle` enforces it).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Optional, Sequence

from repro.check.invariants import CheckFailure
from repro.engine.executor import Engine
from repro.engine.spec import RunSpec
from repro.machine.simulator import SimulationResult
from repro.machine.stats import SimStats


def canonical_stats(stats: SimStats) -> str:
    """Byte-stable serialization of *stats* (canonical JSON)."""
    return json.dumps(stats.to_dict(), sort_keys=True, separators=(",", ":"))


def replay_check(
    spec: RunSpec,
    workers: Sequence[int] = (1, 2),
    cache_dir: Optional[str] = None,
    backends: Sequence[str] = (),
) -> str:
    """Run *spec* under each worker count (each in a fresh engine) and
    assert the serialized stats are byte-identical; with *cache_dir*,
    additionally assert a cache-warm rerun reproduces the cache-cold one,
    and with *backends* (e.g. ``("interpreter", "compiled")``) that every
    execution backend reproduces the same stats.

    Returns the canonical stats string; raises :class:`CheckFailure` on
    any divergence.
    """
    reference: Optional[str] = None
    reference_tag = ""
    runs = [(f"workers={count}", count, None, None) for count in workers]
    if cache_dir is not None:
        runs += [
            ("cache-cold", 1, cache_dir, None),
            ("cache-warm", 1, cache_dir, None),
        ]
    runs += [(f"backend={name}", 1, None, name) for name in backends]
    for tag, count, cache, backend in runs:
        with Engine(workers=count, cache=cache, backend=backend) as engine:
            result = engine.run(spec)
            serialized = canonical_stats(result.stats)
        if reference is None:
            reference, reference_tag = serialized, tag
        elif serialized != reference:
            raise CheckFailure(
                f"golden replay diverged for {spec.label()}: "
                f"{tag} != {reference_tag}"
            )
    return reference


def zero_fault_equivalence(spec: RunSpec) -> SimulationResult:
    """An *inert* fault config must be invisible.

    Runs *spec* twice — once with any ``faults`` override stripped, once
    with an inert :class:`~repro.faults.config.FaultConfig` attached —
    and asserts identical serialized stats and wall cycles.  This pins
    the zero-perturbation contract at the wiring level: attaching the
    fault subsystem without enabling anything changes no observable.
    """
    from repro.faults import FaultConfig

    overrides = {key: value for key, value in spec.overrides if key != "faults"}
    bare = dataclasses.replace(spec, overrides=tuple(sorted(overrides.items())))
    inert = dataclasses.replace(
        bare,
        overrides=tuple(sorted({**overrides, "faults": FaultConfig()}.items())),
    )
    with Engine() as engine:
        bare_result = engine.run(bare)
        inert_result = engine.run(inert)
    if canonical_stats(bare_result.stats) != canonical_stats(inert_result.stats):
        raise CheckFailure(
            f"inert fault config perturbed the run: {spec.label()}"
        )
    return bare_result


def zero_lifecycle_equivalence(spec: RunSpec) -> SimulationResult:
    """An *inert* lifecycle must not perturb the simulation.

    Runs *spec* twice — once with any ``faults`` override stripped, once
    with a lifecycle that never transitions (``mean_healthy=0``) — and
    asserts identical stats apart from the availability ledger itself,
    which must report every component fully up.  This pins the
    fast-path-preservation contract: configuring lifecycles without
    scheduling any transition changes no simulated observable.
    """
    from repro.faults import FaultConfig, LifecycleConfig

    overrides = {key: value for key, value in spec.overrides if key != "faults"}
    bare = dataclasses.replace(spec, overrides=tuple(sorted(overrides.items())))
    inert_faults = FaultConfig(lifecycle=LifecycleConfig(mean_healthy=0))
    inert = dataclasses.replace(
        bare,
        overrides=tuple(sorted({**overrides, "faults": inert_faults}.items())),
    )
    with Engine() as engine:
        bare_result = engine.run(bare)
        inert_result = engine.run(inert)
    bare_dict = bare_result.stats.to_dict()
    inert_dict = inert_result.stats.to_dict()
    ledger = inert_dict.pop("component_availability")
    bare_dict.pop("component_availability")
    if bare_dict != inert_dict:
        raise CheckFailure(
            f"inert lifecycle perturbed the run: {spec.label()}"
        )
    wall = inert_result.stats.wall_cycles
    if len(ledger) != inert_faults.lifecycle.components or any(
        comp["uptime_cycles"] != wall or comp["failures"]
        for comp in ledger
    ):
        raise CheckFailure(
            f"inert lifecycle availability ledger is wrong: {spec.label()}"
        )
    return bare_result
