"""``repro-bench`` — regenerate the paper's tables and figures.

Examples::

    repro-bench table2                    # run-length distributions, small scale
    repro-bench table5 --scale medium
    repro-bench all --workers 8           # every table/figure, fanned out
    repro-bench figure3 --processors 8
    repro-bench table2 --json results.json
    repro-bench ablations --no-cache

Completed simulations persist to an on-disk cache (``~/.cache/repro`` or
``--cache-dir``), keyed by configuration *and* code version, so repeated
and interrupted invocations resume instantly; ``--no-cache`` disables
persistence.  ``--workers N`` runs each sweep across N worker processes
— the rendered output is byte-identical to a serial run.
"""

from __future__ import annotations

import argparse
import enum
import json
import sys
import time
from typing import Dict, List

from repro.engine.cache import ResultCache, default_cache_dir
from repro.engine.executor import Engine, stderr_progress
from repro.faults.cliargs import add_fault_arguments, fault_config_from_args
from repro.harness.cliargs import add_backend_argument
from repro.harness.context import ExperimentContext
from repro.harness.tables import ALL_TABLES
from repro.harness.figures import ALL_FIGURES
from repro.harness.ablations import ALL_ABLATIONS


def _targets() -> List[str]:
    return (
        sorted(ALL_TABLES)
        + sorted(ALL_FIGURES)
        + sorted(ALL_ABLATIONS)
        + ["ablations", "all"]
    )


def _jsonify(value):
    """Best-effort conversion of generator data to JSON-native types
    (float/enum dictionary keys, tuples, graphs...)."""
    if isinstance(value, dict):
        return {
            (key.value if isinstance(key, enum.Enum) else str(key)): _jsonify(item)
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple, set)):
        return [_jsonify(item) for item in value]
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate tables/figures from Boothe & Ranade (ISCA 1992).",
    )
    parser.add_argument(
        "target",
        nargs="?",
        choices=_targets(),
        help="what to regenerate",
    )
    parser.add_argument(
        "--list-backends",
        action="store_true",
        help="list the execution backends (repro.jit) and exit",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=("tiny", "small", "medium", "bench"),
        help="problem-size scale (default: small)",
    )
    parser.add_argument(
        "--processors",
        type=int,
        default=2,
        help="processor count for the multithreading-level tables",
    )
    parser.add_argument(
        "--latency", type=int, default=200, help="round-trip latency in cycles"
    )
    parser.add_argument(
        "--apps",
        nargs="+",
        default=None,
        metavar="APP",
        help="restrict every table/figure to these applications (Table 1 "
        "names or synth:<seed>[:<preset>] kernels; default: all seven)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for sweep execution (default: 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help=f"result-cache directory (default: {default_cache_dir()})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the on-disk result cache",
    )
    parser.add_argument(
        "--json",
        nargs="?",
        const="results.json",
        default=None,
        metavar="PATH",
        help="also write structured results + engine report as JSON "
        "(default path: results.json)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-run progress lines on stderr",
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="statically verify every program (repro.lint) before "
        "simulating it; lint errors fail the run",
    )
    add_backend_argument(parser)
    add_fault_arguments(parser)
    args = parser.parse_args(argv)

    if args.list_backends:
        from repro.api import backends

        for info in backends():
            marker = "*" if info["default"] else " "
            print(f"{marker} {info['name']:<12s} {info['description']}")
        print("(* = default; backends produce bit-identical results)")
        return 0
    if args.target is None:
        parser.error("target is required (or use --list-backends)")
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    try:
        faults = fault_config_from_args(args, args.latency)
    except ValueError as error:
        parser.error(str(error))
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    engine = Engine(
        workers=args.workers,
        cache=cache,
        progress=None if args.quiet else stderr_progress,
        lint=args.lint,
        backend=args.backend,
    )
    ctx = ExperimentContext(
        scale=args.scale,
        latency=args.latency,
        processors=args.processors,
        engine=engine,
        faults=faults,
        check=args.check,
        apps=args.apps,
    )

    if args.target == "all":
        names = sorted(ALL_TABLES) + sorted(ALL_FIGURES) + list(ALL_ABLATIONS)
    elif args.target == "ablations":
        names = list(ALL_ABLATIONS)
    else:
        names = [args.target]

    targets_out: Dict[str, Dict] = {}
    try:
        for name in names:
            start = time.time()
            if name in ALL_TABLES:
                text, data = ALL_TABLES[name](ctx)
            elif name in ALL_FIGURES:
                text, data = ALL_FIGURES[name](ctx)
            else:
                text, data = ALL_ABLATIONS[name](ctx)
            elapsed = time.time() - start
            print(text)
            print()
            # Timing is run-dependent noise — keep stdout byte-identical
            # across worker counts and cache states.
            print(f"[{name}: {elapsed:.1f}s]", file=sys.stderr)
            targets_out[name] = {
                "text": text,
                "data": _jsonify(data),
                "seconds": round(elapsed, 3),
            }
        print(engine.summary_line(), file=sys.stderr)
        if engine.runlog_path is not None:
            print(f"[engine] run log: {engine.runlog_path}", file=sys.stderr)
        if args.json:
            document = {
                "target": args.target,
                "options": {
                    "scale": args.scale,
                    "processors": args.processors,
                    "latency": args.latency,
                    "workers": args.workers,
                    "backend": args.backend,
                    "cache": not args.no_cache,
                    "check": args.check,
                    "faults": faults.to_dict() if faults is not None else None,
                },
                "targets": targets_out,
                "engine": engine.report(),
            }
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2)
            print(f"[engine] wrote {args.json}", file=sys.stderr)
    finally:
        ctx.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
