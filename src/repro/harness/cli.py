"""``repro-bench`` — regenerate the paper's tables and figures.

Examples::

    repro-bench table2                # run-length distributions, small scale
    repro-bench table5 --scale medium
    repro-bench all                   # every table and figure
    repro-bench figure3 --processors 8
    repro-bench ablations
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.harness.experiment import ExperimentContext
from repro.harness.tables import ALL_TABLES
from repro.harness.figures import ALL_FIGURES
from repro.harness.ablations import ALL_ABLATIONS


def _targets() -> List[str]:
    return (
        sorted(ALL_TABLES)
        + sorted(ALL_FIGURES)
        + ["ablations", "all"]
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate tables/figures from Boothe & Ranade (ISCA 1992).",
    )
    parser.add_argument("target", choices=_targets(), help="what to regenerate")
    parser.add_argument(
        "--scale",
        default="small",
        choices=("tiny", "small", "medium", "bench"),
        help="problem-size scale (default: small)",
    )
    parser.add_argument(
        "--processors",
        type=int,
        default=2,
        help="processor count for the multithreading-level tables",
    )
    parser.add_argument(
        "--latency", type=int, default=200, help="round-trip latency in cycles"
    )
    args = parser.parse_args(argv)

    ctx = ExperimentContext(
        scale=args.scale, latency=args.latency, processors=args.processors
    )

    if args.target == "all":
        names = sorted(ALL_TABLES) + sorted(ALL_FIGURES) + list(ALL_ABLATIONS)
    elif args.target == "ablations":
        names = list(ALL_ABLATIONS)
    else:
        names = [args.target]

    for name in names:
        start = time.time()
        if name in ALL_TABLES:
            text, _data = ALL_TABLES[name](ctx)
        elif name in ALL_FIGURES:
            text, _data = ALL_FIGURES[name](ctx)
        else:
            text, _data = ALL_ABLATIONS[name](ctx)
        print(text)
        print(f"[{name}: {time.time() - start:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
