"""Ablation studies beyond the paper's tables.

These probe the design choices DESIGN.md calls out:

* *latency sweep* — how each model's efficiency scales as the round trip
  grows from 50 to 400 cycles (the paper argues grouping matters *more*
  at longer latencies);
* *model shoot-out* — all eight taxonomy models on one application at a
  fixed machine;
* *switch-cost sensitivity* — what pipeline-flush cost does to the
  switch-on-miss model (the paper's Section 3 zero-cost argument);
* *forced-interval study* — Section 6.2's critical-section fix: turn the
  200-cycle cap off and watch lock-heavy ugray degrade;
* *fault sensitivity* — latency jitter, hot-spot contention and dropped
  replies (NACK/retry) vs the explicit- vs conditional-switch ranking;
* *degradation sweep* — seed-deterministic component lifecycles
  (HEALTHY→DEGRADED→FAILED→REPAIRING, DESIGN §5i): efficiency and
  availability vs the number of degrading memory components, per switch
  model — does multithreading's latency tolerance extend to *partial
  outages*?
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.tablefmt import TextTable
from repro.machine.models import SwitchModel
from repro.harness.context import ExperimentContext

_SWEEP_MODELS = [
    SwitchModel.SWITCH_ON_LOAD,
    SwitchModel.EXPLICIT_SWITCH,
    SwitchModel.CONDITIONAL_SWITCH,
]


def latency_sweep(
    ctx: ExperimentContext,
    app_name: str = "sor",
    latencies: List[int] = (50, 100, 200, 400),
    level: int = 6,
) -> Tuple[str, Dict]:
    """Efficiency vs round-trip latency, per model, at fixed M."""
    table = TextTable(
        f"Ablation: {app_name} efficiency vs latency "
        f"(P={ctx.processors}, M={level})",
        ["model"] + [f"{lat} cy" for lat in latencies],
    )
    data: Dict[str, Dict[int, float]] = {}
    ctx.prefetch(
        ctx.spec(app_name, model, ctx.processors, level, latency=latency)
        for model in _SWEEP_MODELS
        for latency in latencies
    )
    for model in _SWEEP_MODELS:
        series = {}
        for latency in latencies:
            result = ctx.run(
                app_name, model, ctx.processors, level, latency=latency
            )
            series[latency] = ctx.efficiency(result, app_name)
        table.add_row(
            [model.value] + [f"{series[lat]:.2f}" for lat in latencies]
        )
        data[model.value] = series
    return table.render(), data


def model_shootout(
    ctx: ExperimentContext, app_name: str = "sor", level: int = 6
) -> Tuple[str, Dict]:
    """Every taxonomy model on one application."""
    table = TextTable(
        f"Ablation: all switch models on {app_name} "
        f"(P={ctx.processors}, M={level}, latency={ctx.latency})",
        ["model", "efficiency", "mean run", "switches"],
    )
    data: Dict[str, Dict] = {}
    ctx.prefetch(
        ctx.spec(app_name, model, ctx.processors, level)
        for model in SwitchModel
        if model is not SwitchModel.IDEAL
    )
    for model in SwitchModel:
        if model is SwitchModel.IDEAL:
            continue
        result = ctx.run(app_name, model, ctx.processors, level)
        efficiency = ctx.efficiency(result, app_name)
        table.add_row(
            [
                model.value,
                f"{efficiency:.2f}",
                f"{result.stats.mean_run_length:.1f}",
                result.stats.switches,
            ]
        )
        data[model.value] = {
            "efficiency": efficiency,
            "mean_run": result.stats.mean_run_length,
            "switches": result.stats.switches,
        }
    return table.render(), data


def switch_cost_sensitivity(
    ctx: ExperimentContext,
    app_name: str = "sor",
    costs: List[int] = (0, 2, 4, 8, 16),
    level: int = 6,
) -> Tuple[str, Dict]:
    """switch-on-miss efficiency vs pipeline-flush cost."""
    table = TextTable(
        f"Ablation: switch-on-miss flush cost, {app_name} "
        f"(P={ctx.processors}, M={level})",
        ["flush cost"] + ["efficiency"],
    )
    data: Dict[int, float] = {}
    ctx.prefetch(
        ctx.spec(
            app_name, SwitchModel.SWITCH_ON_MISS, ctx.processors, level,
            switch_cost=cost,
        )
        for cost in costs
    )
    for cost in costs:
        result = ctx.run(
            app_name,
            SwitchModel.SWITCH_ON_MISS,
            ctx.processors,
            level,
            switch_cost=cost,
        )
        efficiency = ctx.efficiency(result, app_name)
        table.add_row([f"{cost} cy", f"{efficiency:.2f}"])
        data[cost] = efficiency
    return table.render(), data


def forced_interval_study(
    ctx: ExperimentContext,
    app_name: str = "ugray",
    intervals: List[int] = (0, 100, 200, 400, 800),
    level: int = 4,
) -> Tuple[str, Dict]:
    """Section 6.2: the forced-switch cap vs lock contention under
    conditional-switch (interval 0 disables the mechanism)."""
    table = TextTable(
        f"Ablation: conditional-switch forced interval, {app_name} "
        f"(P={ctx.processors}, M={level})",
        ["interval", "efficiency", "forced switches"],
    )
    data: Dict[int, Dict] = {}
    # Without the cap a thread spinning on cache hits can starve the lock
    # holder forever (the very problem Section 6.2 fixes), so bound the
    # simulation (generously: ~40x the zero-latency serial time) and
    # report a livelock as zero efficiency.
    budget = 40 * ctx.t1(app_name)
    from repro.machine.simulator import SimulationTimeout

    # Prefetch with failures recorded, not raised: a livelocked interval
    # surfaces as the memoised SimulationTimeout below, exactly where the
    # serial loop would hit it.
    ctx.prefetch(
        ctx.spec(
            app_name,
            SwitchModel.CONDITIONAL_SWITCH,
            ctx.processors,
            level,
            forced_switch_interval=interval,
            max_cycles=budget,
        )
        for interval in intervals
    )
    for interval in intervals:
        try:
            result = ctx.run(
                app_name,
                SwitchModel.CONDITIONAL_SWITCH,
                ctx.processors,
                level,
                forced_switch_interval=interval,
                max_cycles=budget,
            )
        except SimulationTimeout:
            table.add_row([interval if interval else "off", "livelock", "-"])
            data[interval] = {"efficiency": 0.0, "forced": None}
            continue
        efficiency = ctx.efficiency(result, app_name)
        table.add_row(
            [
                interval if interval else "off",
                f"{efficiency:.2f}",
                result.stats.forced_switches,
            ]
        )
        data[interval] = {
            "efficiency": efficiency,
            "forced": result.stats.forced_switches,
        }
    return table.render(), data


def jitter_study(
    ctx: ExperimentContext,
    app_name: str = "sor",
    jitters: List[int] = (0, 50, 100, 200),
    level: int = 8,
) -> Tuple[str, Dict]:
    """Latency-variance robustness (beyond the paper).

    The paper models a constant round trip but notes real networks have
    "a large variance in latency"; with variance, delivery is no longer
    ordered and round-robin scheduling is no longer provably optimal.
    This sweep adds deterministic return-path jitter U[0, J] and watches
    how far the constant-latency conclusions degrade.
    """
    table = TextTable(
        f"Ablation: return-path latency jitter, {app_name} "
        f"(P={ctx.processors}, M={level}, base latency {ctx.latency})",
        ["model"] + [f"+U[0,{j}]" for j in jitters],
    )
    data: Dict[str, Dict[int, float]] = {}
    ctx.prefetch(
        ctx.spec(app_name, model, ctx.processors, level, latency_jitter=jitter)
        for model in (SwitchModel.SWITCH_ON_LOAD, SwitchModel.EXPLICIT_SWITCH)
        for jitter in jitters
    )
    for model in (SwitchModel.SWITCH_ON_LOAD, SwitchModel.EXPLICIT_SWITCH):
        series = {}
        for jitter in jitters:
            result = ctx.run(
                app_name, model, ctx.processors, level, latency_jitter=jitter
            )
            series[jitter] = ctx.efficiency(result, app_name)
        table.add_row(
            [model.value] + [f"{series[j]:.2f}" for j in jitters]
        )
        data[model.value] = series
    return table.render(), data


def fault_sensitivity(
    ctx: ExperimentContext,
    app_name: str = "sor",
    level: int = 8,
) -> Tuple[str, Dict]:
    """Latency variance and reply loss vs the switch-model ranking.

    The paper's conclusions assume a constant, reliable round trip.
    This study perturbs both assumptions with the seeded fault models of
    :mod:`repro.faults` — uniform and geometric return-path jitter, a
    hot-spot contention queue per memory module, and 1% dropped replies
    (recovered via NACK + capped-backoff retry) — and watches whether
    explicit-switch keeps its edge over conditional-switch once its
    carefully grouped remote accesses no longer return in lockstep.
    """
    from repro.faults import FaultConfig

    jitter = max(1, ctx.latency // 2)
    scenarios = [
        ("constant", None),
        (
            f"uniform +U[0,{jitter}]",
            FaultConfig(latency_model="uniform", jitter=jitter),
        ),
        (
            f"geometric mean~{jitter}",
            FaultConfig(latency_model="geometric", jitter=jitter),
        ),
        ("hot-spot modules", FaultConfig(latency_model="hotspot")),
        ("1% reply loss", FaultConfig(loss_rate=0.01)),
    ]
    models = (SwitchModel.EXPLICIT_SWITCH, SwitchModel.CONDITIONAL_SWITCH)
    table = TextTable(
        f"Ablation: fault-model sensitivity, {app_name} "
        f"(P={ctx.processors}, M={level}, base latency {ctx.latency})",
        ["scenario"] + [f"{model.value} eff" for model in models] + ["retries"],
    )

    def extra(config):
        return {} if config is None else {"faults": config}

    ctx.prefetch(
        ctx.spec(app_name, model, ctx.processors, level, **extra(config))
        for _, config in scenarios
        for model in models
    )
    data: Dict[str, Dict] = {}
    for name, config in scenarios:
        row = [name]
        retries = 0
        entry = {}
        for model in models:
            result = ctx.run(
                app_name, model, ctx.processors, level, **extra(config)
            )
            efficiency = ctx.efficiency(result, app_name)
            row.append(f"{efficiency:.2f}")
            retries += result.stats.retries
            entry[model.value] = {
                "efficiency": efficiency,
                "retries": result.stats.retries,
            }
        row.append(retries)
        table.add_row(row)
        data[name] = entry
    return table.render(), data


def degradation_sweep(
    ctx: ExperimentContext,
    app_name: str = "sieve",
    affected_counts: List[int] = (0, 1, 2, 4),
    level: int = 4,
    components: int = 8,
) -> Tuple[str, Dict]:
    """Efficiency and availability vs the number of degrading components.

    Every scenario walks the same seeded lifecycle schedule
    (:mod:`repro.faults.lifecycle`); only ``affected`` — how many of the
    ``components`` interleaved memory components actually degrade and
    fail — varies.  ``affected=0`` is the inert control: lifecycles
    configured, zero transitions, byte-identical simulation (the
    fast-path contract :func:`repro.check.zero_lifecycle_equivalence`
    pins).  The means are short relative to these small runs so every
    scenario sees several full degrade/fail/repair cycles.
    """
    from repro.faults import FaultConfig, LifecycleConfig

    def faults_for(affected: int) -> FaultConfig:
        return FaultConfig(
            lifecycle=LifecycleConfig(
                components=components,
                seed=7,
                mean_healthy=4_000,
                mean_degraded=2_000,
                mean_failed=800,
                mean_repair=1_200,
                affected=affected,
            )
        )

    models = (SwitchModel.EXPLICIT_SWITCH, SwitchModel.CONDITIONAL_SWITCH)
    table = TextTable(
        f"Ablation: component degradation, {app_name} "
        f"(P={ctx.processors}, M={level}, {components} components)",
        ["degrading"]
        + [f"{model.value} eff" for model in models]
        + ["failures", "downtime cy", "nacks"],
    )
    ctx.prefetch(
        ctx.spec(app_name, model, ctx.processors, level,
                 faults=faults_for(affected))
        for affected in affected_counts
        for model in models
    )
    data: Dict[int, Dict] = {}
    for affected in affected_counts:
        row = [f"{affected}/{components}"]
        failures = downtime = nacks = 0
        entry: Dict = {}
        for model in models:
            result = ctx.run(
                app_name, model, ctx.processors, level,
                faults=faults_for(affected),
            )
            efficiency = ctx.efficiency(result, app_name)
            row.append(f"{efficiency:.2f}")
            stats = result.stats
            failures += stats.lifecycle_failures
            downtime += stats.lifecycle_downtime_cycles
            nacks += stats.nacks
            entry[model.value] = {
                "efficiency": efficiency,
                "failures": stats.lifecycle_failures,
                "downtime_cycles": stats.lifecycle_downtime_cycles,
                "degraded_cycles": stats.lifecycle_degraded_cycles,
                "nacks": stats.nacks,
                "mttf": stats.mttf(),
                "mttr": stats.mttr(),
            }
        row += [failures, downtime, nacks]
        table.add_row(row)
        data[affected] = entry
    return table.render(), data


ALL_ABLATIONS = {
    "latency": latency_sweep,
    "shootout": model_shootout,
    "switch-cost": switch_cost_sensitivity,
    "forced-interval": forced_interval_study,
    "jitter": jitter_study,
    "faults": fault_sensitivity,
    "degradation": degradation_sweep,
}
