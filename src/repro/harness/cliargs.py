"""Shared single-spec command-line surface.

``repro-trace run`` and ``repro-serve submit`` describe one simulation
point the same way: an app name plus ``--model``, ``--processors``,
``--level``, ``--scale``, ``--latency`` and the fault-injection flags
from :mod:`repro.faults.cliargs`.  This module keeps the spelling and
defaults in one place and translates parsed arguments into a
:class:`~repro.engine.spec.RunSpec`.
"""

from __future__ import annotations

import argparse

from repro.engine.spec import DEFAULT_LATENCY, RunSpec
from repro.faults.cliargs import add_fault_arguments, fault_config_from_args
from repro.jit import BACKENDS
from repro.machine.models import SwitchModel


def add_backend_argument(parser: argparse.ArgumentParser) -> None:
    """Install the shared ``--backend`` flag (one definition for
    ``repro-bench``, ``repro-trace run`` and ``repro-serve submit``)."""
    parser.add_argument(
        "--backend",
        default=None,
        choices=sorted(BACKENDS),
        help="execution backend (bit-identical results; default: "
        "interpreter — see repro-bench --list-backends)",
    )


def add_spec_arguments(
    parser: argparse.ArgumentParser, faults: bool = True
) -> None:
    """Install the one-simulation-point flags on *parser*."""
    parser.add_argument("app", help="registered application name (e.g. sieve)")
    parser.add_argument(
        "--model",
        default=SwitchModel.SWITCH_ON_LOAD.value,
        help="switch model (canonical name or paper alias, e.g. eswitch)",
    )
    parser.add_argument("--processors", type=int, default=2)
    parser.add_argument(
        "--level", type=int, default=4, help="threads per processor"
    )
    parser.add_argument(
        "--scale", default="tiny", choices=("tiny", "small", "medium", "bench")
    )
    parser.add_argument(
        "--latency", type=int, default=DEFAULT_LATENCY, help="round-trip cycles"
    )
    add_backend_argument(parser)
    if faults:
        add_fault_arguments(parser)


def spec_from_args(args) -> RunSpec:
    """The :class:`RunSpec` the parsed *args* describe (fault flags, when
    present, become a ``faults`` override; the ideal machine forces the
    default latency to 0, matching :func:`repro.api.simulate`).

    Raises ``ValueError`` for an unknown model spelling or latency-model
    name — callers print it and exit 2.
    """
    model = SwitchModel.parse(args.model)
    latency = args.latency
    if model is SwitchModel.IDEAL and latency == DEFAULT_LATENCY:
        latency = 0
    overrides = {}
    if hasattr(args, "latency_model"):
        faults = fault_config_from_args(args, latency)
        if faults is not None:
            overrides["faults"] = faults
    return RunSpec.create(
        args.app,
        model=model,
        processors=args.processors,
        level=args.level,
        scale=args.scale,
        latency=latency,
        backend=getattr(args, "backend", None),
        **overrides,
    )
