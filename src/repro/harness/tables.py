"""Generators for every table in the paper's evaluation.

Each ``tableN`` function returns ``(text, data)``: a rendered text block
(what the CLI and the benchmark harness print) and the structured numbers
(what the tests assert on).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.analysis.runlength import run_length_row, format_row_cells, RUN_BIN_LABELS
from repro.analysis.tablefmt import TextTable
from repro.apps.registry import get_app
from repro.compiler.passes import grouping_report
from repro.machine.models import SwitchModel
from repro.harness.context import ExperimentContext
from repro.harness.sizes import PAPER_SIZES

#: Multithreading level used when measuring run-length distributions and
#: bandwidth (a representative mid-scale machine).
_DIST_LEVEL = 4
_EFF_HEADERS = ["application", "50%", "60%", "70%", "80%", "90%"]


def _fmt_level(value) -> str:
    return "-" if value is None else str(value)


def table1(ctx: ExperimentContext) -> Tuple[str, Dict]:
    """Application inventory: static size, single-processor cycles."""
    table = TextTable(
        f"Table 1: parallel applications (scale={ctx.scale!r})",
        ["application", "instrs", "cycles", "problem size (ours)", "paper size"],
    )
    data: Dict[str, Dict] = {}
    ctx.prefetch(ctx.t1_specs())
    for spec in ctx.apps():
        app = spec.build(1, **ctx.size_of(spec.name))
        cycles = ctx.t1(spec.name)
        size_text = ", ".join(f"{k}={v}" for k, v in ctx.size_of(spec.name).items())
        table.add_row(
            [spec.name, len(app.program), cycles, size_text, PAPER_SIZES[spec.name]]
        )
        data[spec.name] = {"instructions": len(app.program), "cycles": cycles}
    return table.render(), data


def table2(ctx: ExperimentContext) -> Tuple[str, Dict]:
    """Run-length distributions under switch-on-load."""
    return _run_length_table(
        ctx,
        SwitchModel.SWITCH_ON_LOAD,
        "Table 2: switch-on-load run lengths (cycles between switches)",
    )


def _run_length_table(
    ctx: ExperimentContext, model: SwitchModel, title: str
) -> Tuple[str, Dict]:
    headers = ["application"] + RUN_BIN_LABELS + ["mean"]
    if model is SwitchModel.EXPLICIT_SWITCH:
        headers.append("grouping")
    table = TextTable(title, headers)
    data: Dict[str, Dict] = {}
    ctx.prefetch(
        ctx.spec(spec.name, model, ctx.processors, _DIST_LEVEL)
        for spec in ctx.apps()
    )
    for spec in ctx.apps():
        result = ctx.run(spec.name, model, ctx.processors, _DIST_LEVEL)
        row = run_length_row(result.stats)
        cells = [spec.name] + format_row_cells(row)
        if model is SwitchModel.EXPLICIT_SWITCH:
            row["grouping"] = result.stats.grouping_factor()
            cells.append(f"{row['grouping']:.2f}")
        table.add_row(cells)
        data[spec.name] = row
    return table.render(), data


def table3(ctx: ExperimentContext) -> Tuple[str, Dict]:
    """Switch-on-load: multithreading level per efficiency target."""
    return _mt_table(
        ctx,
        SwitchModel.SWITCH_ON_LOAD,
        "Table 3: switch-on-load — multithreading needed for % efficiency "
        f"(P={ctx.processors})",
    )


def _mt_table(
    ctx: ExperimentContext,
    model: SwitchModel,
    title: str,
    oracle: bool = False,
) -> Tuple[str, Dict]:
    table = TextTable(title, _EFF_HEADERS)
    data: Dict[str, Dict] = {}
    ctx.prefetch(ctx.t1_specs())
    for spec in ctx.apps():
        levels = ctx.mt_levels(spec.name, model, oracle=oracle)
        table.add_row(
            [spec.name] + [_fmt_level(levels[t]) for t in (0.5, 0.6, 0.7, 0.8, 0.9)]
        )
        data[spec.name] = levels
    return table.render(), data


def table4(ctx: ExperimentContext) -> Tuple[str, Dict]:
    """Run-length distributions after grouping (explicit-switch)."""
    return _run_length_table(
        ctx,
        SwitchModel.EXPLICIT_SWITCH,
        "Table 4: explicit-switch run lengths after grouping",
    )


def table5(ctx: ExperimentContext) -> Tuple[str, Dict]:
    """Explicit-switch MT levels + reorganisation penalty."""
    table = TextTable(
        "Table 5: explicit-switch — multithreading needed for % efficiency "
        f"(P={ctx.processors})",
        _EFF_HEADERS + ["penalty"],
    )
    data: Dict[str, Dict] = {}
    ctx.prefetch(ctx.t1_specs())
    for spec in ctx.apps():
        levels = ctx.mt_levels(spec.name, SwitchModel.EXPLICIT_SWITCH)
        original = ctx.t1(spec.name)
        # Grouped code on the ideal machine — the pure instruction-overhead
        # component of the reorganisation penalty (engine-cached like any
        # other run, via RunSpec.code_model).
        reorganised = ctx.reorganised_t1(spec.name)
        penalty = (reorganised - original) / original
        table.add_row(
            [spec.name]
            + [_fmt_level(levels[t]) for t in (0.5, 0.6, 0.7, 0.8, 0.9)]
            + [f"{100 * penalty:.1f}%"]
        )
        data[spec.name] = {"levels": levels, "penalty": penalty}
    return table.render(), data


def table6(ctx: ExperimentContext) -> Tuple[str, Dict]:
    """Inter-block grouping estimate (Section 5.2's one-line cache)."""
    table = TextTable(
        "Table 6: explicit-switch with estimated inter-block grouping "
        f"(P={ctx.processors})",
        ["application", "1-line hit", "grouping", "50%", "60%", "70%", "80%", "90%"],
    )
    data: Dict[str, Dict] = {}
    ctx.prefetch(ctx.t1_specs())
    ctx.prefetch(
        ctx.spec(
            spec.name,
            SwitchModel.EXPLICIT_SWITCH,
            ctx.processors,
            _DIST_LEVEL,
            oracle=True,
        )
        for spec in ctx.apps()
    )
    for spec in ctx.apps():
        probe = ctx.run(
            spec.name,
            SwitchModel.EXPLICIT_SWITCH,
            ctx.processors,
            _DIST_LEVEL,
            oracle=True,
        )
        levels = ctx.mt_levels(spec.name, SwitchModel.EXPLICIT_SWITCH, oracle=True)
        hit = probe.stats.oracle_hit_rate
        grouping = probe.stats.grouping_factor()
        table.add_row(
            [spec.name, f"{100 * hit:.0f}%", f"{grouping:.2f}"]
            + [_fmt_level(levels[t]) for t in (0.5, 0.6, 0.7, 0.8, 0.9)]
        )
        data[spec.name] = {
            "hit_rate": hit,
            "grouping": grouping,
            "levels": levels,
        }
    return table.render(), data


def table7(ctx: ExperimentContext) -> Tuple[str, Dict]:
    """Cache hit rates and network bandwidth (Section 6.1)."""
    table = TextTable(
        "Table 7: per-processor network bandwidth, uncached vs cached "
        f"(P={ctx.processors}, M={_DIST_LEVEL})",
        [
            "application",
            "uncached bits/cy",
            "hit rate",
            "cached bits/cy",
            "reduction",
        ],
    )
    data: Dict[str, Dict] = {}
    ctx.prefetch(
        ctx.spec(spec.name, model, ctx.processors, _DIST_LEVEL)
        for spec in ctx.apps()
        for model in (SwitchModel.EXPLICIT_SWITCH, SwitchModel.CONDITIONAL_SWITCH)
    )
    for spec in ctx.apps():
        uncached = ctx.run(
            spec.name, SwitchModel.EXPLICIT_SWITCH, ctx.processors, _DIST_LEVEL
        )
        cached = ctx.run(
            spec.name, SwitchModel.CONDITIONAL_SWITCH, ctx.processors, _DIST_LEVEL
        )
        bw_u = uncached.stats.bandwidth_bits_per_cycle()
        bw_c = cached.stats.bandwidth_bits_per_cycle()
        hit = cached.stats.hit_rate
        reduction = bw_u / bw_c if bw_c else float("inf")
        table.add_row(
            [
                spec.name,
                f"{bw_u:.2f}",
                f"{100 * hit:.0f}%",
                f"{bw_c:.2f}",
                f"{reduction:.1f}x",
            ]
        )
        data[spec.name] = {
            "uncached_bits_per_cycle": bw_u,
            "cached_bits_per_cycle": bw_c,
            "hit_rate": hit,
        }
    return table.render(), data


def table8(ctx: ExperimentContext) -> Tuple[str, Dict]:
    """Conditional-switch MT levels (cached machine)."""
    return _mt_table(
        ctx,
        SwitchModel.CONDITIONAL_SWITCH,
        "Table 8: conditional-switch — multithreading needed for % efficiency "
        f"(P={ctx.processors})",
    )


def grouping_static_table(ctx: ExperimentContext) -> Tuple[str, Dict]:
    """Supplementary: static post-processor statistics per application."""
    table = TextTable(
        "Static grouping statistics (Section 5.1 post-processor)",
        ["application", "shared loads", "groups", "static factor", "moved"],
    )
    data: Dict[str, Dict] = {}
    for spec in ctx.apps():
        app = spec.build(1, **ctx.size_of(spec.name))
        report = grouping_report(app.program)
        table.add_row(
            [
                spec.name,
                report.shared_loads,
                report.groups,
                f"{report.grouping_factor:.2f}",
                report.moved,
            ]
        )
        data[spec.name] = {
            "loads": report.shared_loads,
            "groups": report.groups,
            "factor": report.grouping_factor,
        }
    return table.render(), data


ALL_TABLES = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "table7": table7,
    "table8": table8,
    "grouping": grouping_static_table,
}
