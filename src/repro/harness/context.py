"""Experiment context: shared configuration on top of the engine.

Every table/figure generator works through an :class:`ExperimentContext`,
which pins the scale (problem sizes), the machine defaults (200-cycle
latency, experiment processor count) and delegates every simulation to a
:class:`repro.engine.Engine` — which memoises results in-process,
optionally persists them to the on-disk cache, and fans prefetched
sweeps out across worker processes.

Parallelism never changes results: generators *prefetch* the spec grid
they are about to consume (filling the engine memo concurrently) and
then read the same memoised values the serial path would compute, in the
same order.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.apps.registry import ALL_APPS, app_names, get_app
from repro.engine.executor import Engine
from repro.engine.spec import RunSpec
from repro.machine.config import MachineConfig
from repro.machine.models import SwitchModel
from repro.machine.simulator import SimulationResult
from repro.harness.sizes import scale_sizes


class ExperimentContext:
    """Scale + machine defaults + engine-backed simulation results."""

    def __init__(
        self,
        scale: str = "small",
        latency: int = 200,
        processors: int = 2,
        max_level: int = 24,
        *,
        workers: int = 1,
        cache=None,
        engine: Optional[Engine] = None,
        faults=None,
        check: bool = False,
        apps: Optional[Iterable[str]] = None,
    ):
        self.scale = scale
        self.sizes = scale_sizes(scale)
        #: Application names every table/figure iterates (``None`` =
        #: the full Table 1 roster).  Accepts ``synth:`` scheme names,
        #: so generated kernels slot into any experiment.
        self._apps = list(apps) if apps is not None else None
        self.latency = latency
        #: Processor count used by the multithreading-level tables.
        self.processors = processors
        self.max_level = max_level
        #: Fault-injection scenario (a :class:`repro.faults.FaultConfig`)
        #: applied to every non-ideal machine this context builds; the
        #: IDEAL baseline keeps the plain machine so efficiency stays
        #: measured against the paper's reference.
        self.faults = faults
        #: Run the :mod:`repro.check` invariant oracle after every
        #: :meth:`run` (raises on any conservation-law violation).
        self.check = check
        #: The execution backbone.  *cache* may be a
        #: :class:`repro.engine.ResultCache` or a directory path; ``None``
        #: keeps everything in-process (hermetic — the default for tests).
        self.engine = engine if engine is not None else Engine(
            workers=workers, cache=cache
        )
        self._t1: Dict[str, int] = {}

    @property
    def workers(self) -> int:
        return self.engine.workers

    def close(self) -> None:
        self.engine.close()

    def __enter__(self) -> "ExperimentContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- building blocks ---------------------------------------------------------

    def apps(self):
        if self._apps is not None:
            return [get_app(name) for name in self._apps]
        return list(ALL_APPS)

    def app_names(self):
        if self._apps is not None:
            return list(self._apps)
        return app_names()

    def size_of(self, app_name: str) -> Dict:
        # Apps outside the scale tables (synth: kernels) take no size
        # keywords — same contract as repro.harness.sizes.sizes_for.
        return dict(self.sizes.get(app_name, {}))

    def config(self, model: SwitchModel, processors: int, level: int, **extra):
        return MachineConfig(
            model=model,
            num_processors=processors,
            threads_per_processor=level,
            latency=0 if model is SwitchModel.IDEAL else self.latency,
            **extra,
        )

    def spec(
        self,
        app_name: str,
        model: SwitchModel,
        processors: int,
        level: int,
        oracle: bool = False,
        latency: Optional[int] = None,
        code_model: Optional[SwitchModel] = None,
        **config_extra,
    ) -> RunSpec:
        """The :class:`RunSpec` for one configuration under this context's
        defaults (the memo/cache key covers latency and every override)."""
        effective_latency = (
            latency
            if latency is not None
            else (0 if SwitchModel(model) is SwitchModel.IDEAL else self.latency)
        )
        if (
            self.faults is not None
            and "faults" not in config_extra
            and SwitchModel(model) is not SwitchModel.IDEAL
        ):
            config_extra["faults"] = self.faults
        return RunSpec(
            app=app_name,
            model=model,
            processors=processors,
            level=level,
            scale=self.scale,
            latency=effective_latency,
            oracle=oracle,
            code_model=code_model,
            overrides=tuple(sorted(config_extra.items())),
        )

    # -- cached simulation ---------------------------------------------------------

    def run(
        self,
        app_name: str,
        model: SwitchModel,
        processors: int,
        level: int,
        oracle: bool = False,
        latency: Optional[int] = None,
        **config_extra,
    ) -> SimulationResult:
        """Simulate one configuration (memoised by the engine)."""
        spec = self.spec(
            app_name, model, processors, level,
            oracle=oracle, latency=latency, **config_extra,
        )
        result = self.engine.run(spec)
        if self.check:
            from repro.check import check_result

            check_result(result, label=spec.label())
        return result

    def prefetch(self, specs: Iterable[RunSpec]) -> None:
        """Warm the engine memo for an upcoming sweep.

        With ``workers > 1`` the specs execute across the worker pool;
        failures are recorded (not raised) so the consuming loop hits
        them exactly where the serial path would.  A serial engine skips
        the warm-up entirely — the consuming loop's own calls do the
        work, keeping the serial path unchanged.
        """
        specs = list(specs)
        if self.workers > 1 and len(specs) > 1:
            self.engine.run_many(specs, on_error="record")

    def t1(self, app_name: str) -> int:
        """Single-processor zero-latency cycles (efficiency baseline)."""
        if app_name not in self._t1:
            result = self.run(app_name, SwitchModel.IDEAL, 1, 1)
            self._t1[app_name] = result.wall_cycles
        return self._t1[app_name]

    def t1_specs(self) -> list:
        """Specs of every application's efficiency baseline (prefetchable)."""
        return [
            self.spec(spec.name, SwitchModel.IDEAL, 1, 1) for spec in self.apps()
        ]

    def reorganised_t1(self, app_name: str) -> int:
        """Single-processor zero-latency cycles of the *grouped* code
        (Table 5's reorganisation-penalty numerator)."""
        result = self.engine.run(
            self.spec(
                app_name,
                SwitchModel.IDEAL,
                1,
                1,
                code_model=SwitchModel.EXPLICIT_SWITCH,
            )
        )
        return result.wall_cycles

    def efficiency(self, result: SimulationResult, app_name: str) -> float:
        return result.efficiency(self.t1(app_name))

    # -- multithreading-level search ----------------------------------------------

    def mt_levels(
        self,
        app_name: str,
        model: SwitchModel,
        targets=(0.5, 0.6, 0.7, 0.8, 0.9),
        oracle: bool = False,
    ) -> Dict[float, Optional[int]]:
        """Threads/processor needed for each efficiency target
        (``None`` = unreachable at this problem size).

        The search is adaptive (stop once every target is met or
        efficiency plateaus for three levels), so with ``workers > 1`` it
        speculatively prefetches one *wave* of levels at a time; the
        stopping rule is then applied level-by-level in ascending order,
        so the returned levels are identical to the serial search — the
        wave only overlaps the simulations.
        """
        needed: Dict[float, Optional[int]] = {t: None for t in targets}
        best = -1.0
        stale = 0
        level = 1
        while level <= self.max_level:
            wave_end = (
                min(level + self.workers - 1, self.max_level)
                if self.workers > 1
                else level
            )
            self.prefetch(
                self.spec(app_name, model, self.processors, wave_level, oracle=oracle)
                for wave_level in range(level, wave_end + 1)
            )
            for wave_level in range(level, wave_end + 1):
                result = self.run(
                    app_name, model, self.processors, wave_level, oracle=oracle
                )
                efficiency = self.efficiency(result, app_name)
                for target in targets:
                    if needed[target] is None and efficiency >= target:
                        needed[target] = wave_level
                if all(value is not None for value in needed.values()):
                    return needed
                if efficiency > best + 1e-9:
                    best = efficiency
                    stale = 0
                else:
                    stale += 1
                    if stale >= 3:
                        return needed
            level = wave_end + 1
        return needed
