"""Benchmark harness: regenerates every table and figure of the paper.

Entry points (also exposed as the ``repro-bench`` CLI and as
``benchmarks/bench_*.py``):

* :func:`repro.harness.tables.table1` ... :func:`~repro.harness.tables.table8`
* :func:`repro.harness.figures.figure1` ... :func:`~repro.harness.figures.figure4`
* :func:`repro.harness.ablations.latency_sweep` and friends

Each returns a rendered text block plus structured data, so tests can
assert on the numbers and the CLI can print the table.
"""

from repro.harness.context import ExperimentContext
from repro.harness.sizes import SCALES, scale_sizes

__all__ = ["ExperimentContext", "SCALES", "scale_sizes"]
