"""Deprecated module — the context now lives in :mod:`repro.harness.context`.

``from repro.harness.experiment import ExperimentContext`` still works
but emits a :class:`DeprecationWarning`; import it from
:mod:`repro.harness` (or use the :mod:`repro.api` facade, which covers
the common cases without a context object at all).
"""

from __future__ import annotations

import warnings


def __getattr__(name):
    if name == "ExperimentContext":
        warnings.warn(
            "repro.harness.experiment.ExperimentContext is deprecated; import "
            "it from repro.harness (or use repro.api.simulate / repro.api.sweep)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.harness.context import ExperimentContext

        return ExperimentContext
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(list(globals()) + ["ExperimentContext"])
