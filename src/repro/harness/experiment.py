"""Experiment context: shared configuration plus a result cache.

Every table/figure generator works through an :class:`ExperimentContext`,
which pins the scale (problem sizes), the machine defaults (200-cycle
latency, experiment processor count) and memoises simulation results —
the multithreading-level searches of Tables 3/5/6/8 revisit many of the
same configurations.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.apps.base import AppSpec
from repro.apps.registry import ALL_APPS, get_app
from repro.compiler.passes import prepare_for_model
from repro.isa.program import Program
from repro.machine.config import MachineConfig
from repro.machine.models import SwitchModel
from repro.machine.simulator import SimulationResult
from repro.runtime.loader import run_app
from repro.harness.sizes import scale_sizes


class ExperimentContext:
    """Scale + machine defaults + memoised simulation results."""

    def __init__(
        self,
        scale: str = "small",
        latency: int = 200,
        processors: int = 2,
        max_level: int = 24,
    ):
        self.scale = scale
        self.sizes = scale_sizes(scale)
        self.latency = latency
        #: Processor count used by the multithreading-level tables.
        self.processors = processors
        self.max_level = max_level
        self._results: Dict[Tuple, SimulationResult] = {}
        self._t1: Dict[str, int] = {}
        self._programs: Dict[Tuple[str, int, SwitchModel], Program] = {}

    # -- building blocks ---------------------------------------------------------

    def apps(self):
        return list(ALL_APPS)

    def size_of(self, app_name: str) -> Dict:
        return dict(self.sizes[app_name])

    def config(self, model: SwitchModel, processors: int, level: int, **extra):
        return MachineConfig(
            model=model,
            num_processors=processors,
            threads_per_processor=level,
            latency=0 if model is SwitchModel.IDEAL else self.latency,
            **extra,
        )

    def _program_for(self, spec: AppSpec, nthreads: int, model: SwitchModel):
        key = (spec.name, nthreads, model)
        if key not in self._programs:
            app = spec.build(nthreads, **self.size_of(spec.name))
            self._programs[key] = (app, prepare_for_model(app.program, model))
        return self._programs[key]

    # -- cached simulation ---------------------------------------------------------

    def run(
        self,
        app_name: str,
        model: SwitchModel,
        processors: int,
        level: int,
        oracle: bool = False,
        latency: Optional[int] = None,
        **config_extra,
    ) -> SimulationResult:
        """Simulate one configuration (memoised)."""
        effective_latency = (
            latency
            if latency is not None
            else (0 if model is SwitchModel.IDEAL else self.latency)
        )
        key = (
            app_name,
            model,
            processors,
            level,
            oracle,
            effective_latency,
            tuple(sorted(config_extra.items())),
        )
        if key in self._results:
            return self._results[key]
        spec = get_app(app_name)
        app, program = self._program_for(spec, processors * level, model)
        config = MachineConfig(
            model=model,
            num_processors=processors,
            threads_per_processor=level,
            latency=effective_latency,
            interblock_oracle=oracle,
            **config_extra,
        )
        result = run_app(app, config, program=program)
        self._results[key] = result
        return result

    def t1(self, app_name: str) -> int:
        """Single-processor zero-latency cycles (efficiency baseline)."""
        if app_name not in self._t1:
            result = self.run(app_name, SwitchModel.IDEAL, 1, 1)
            self._t1[app_name] = result.wall_cycles
        return self._t1[app_name]

    def efficiency(self, result: SimulationResult, app_name: str) -> float:
        return result.efficiency(self.t1(app_name))

    # -- multithreading-level search ----------------------------------------------

    def mt_levels(
        self,
        app_name: str,
        model: SwitchModel,
        targets=(0.5, 0.6, 0.7, 0.8, 0.9),
        oracle: bool = False,
    ) -> Dict[float, Optional[int]]:
        """Threads/processor needed for each efficiency target
        (``None`` = unreachable at this problem size)."""
        needed: Dict[float, Optional[int]] = {t: None for t in targets}
        best = -1.0
        stale = 0
        for level in range(1, self.max_level + 1):
            result = self.run(app_name, model, self.processors, level, oracle=oracle)
            efficiency = self.efficiency(result, app_name)
            for target in targets:
                if needed[target] is None and efficiency >= target:
                    needed[target] = level
            if all(value is not None for value in needed.values()):
                break
            if efficiency > best + 1e-9:
                best = efficiency
                stale = 0
            else:
                stale += 1
                if stale >= 3:
                    break
        return needed
