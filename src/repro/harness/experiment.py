"""Removed module — the context lives in :mod:`repro.harness.context`.

``repro.harness.experiment`` spent one release as a
``DeprecationWarning`` shim; it now fails fast so stale imports surface
at import time instead of silently forwarding forever.
"""

from __future__ import annotations

raise ImportError(
    "repro.harness.experiment was removed; import ExperimentContext "
    "from repro.harness (or use repro.api.simulate / repro.api.sweep)"
)
