"""Generators for the paper's figures (text renderings + data series)."""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from repro.analysis.tablefmt import TextTable
from repro.analysis.asciiplot import efficiency_chart
from repro.apps.registry import get_app
from repro.compiler.cfg import build_blocks
from repro.compiler.grouping import group_block
from repro.compiler.passes import prepare_for_model
from repro.isa.opcodes import Op
from repro.machine.models import SwitchModel
from repro.harness.context import ExperimentContext

#: The paper's Figure 1: evolution of multithreading models.
_FIGURE1_EDGES = [
    ("switch-every-cycle", "switch-on-load", "compiler hides pipeline delays"),
    ("switch-on-load", "switch-on-use", "split-phase: issue early, wait at use"),
    ("switch-on-use", "explicit-switch", "group loads; one explicit switch"),
    ("switch-on-load", "switch-on-miss", "add caches"),
    ("switch-on-use", "switch-on-use-miss", "add caches"),
    ("explicit-switch", "conditional-switch", "add caches"),
    ("switch-on-miss", "switch-on-use-miss", "split-phase"),
    ("switch-on-use-miss", "conditional-switch", "group loads"),
]


def figure1() -> Tuple[str, "nx.DiGraph"]:
    """The multithreading-model taxonomy as a topologically-ordered list."""
    graph = nx.DiGraph()
    for src, dst, why in _FIGURE1_EDGES:
        graph.add_edge(src, dst, reason=why)
    lines = ["Figure 1: evolution of multithreading models", ""]
    for node in nx.topological_sort(graph):
        preds = list(graph.predecessors(node))
        if not preds:
            lines.append(f"  {node}")
        for pred in preds:
            reason = graph.edges[pred, node]["reason"]
            lines.append(f"  {pred} -> {node}   [{reason}]")
    return "\n".join(lines), graph


def figure2(
    ctx: ExperimentContext, processor_counts: List[int] = (1, 2, 4, 8, 16)
) -> Tuple[str, Dict]:
    """Efficiency vs processors on the ideal (zero-latency) machine."""
    table = TextTable(
        f"Figure 2: efficiency on an ideal shared memory machine "
        f"(scale={ctx.scale!r})",
        ["application"] + [f"P={p}" for p in processor_counts],
    )
    data: Dict[str, Dict[int, float]] = {}
    ctx.prefetch(
        ctx.spec(spec.name, SwitchModel.IDEAL, processors, 1)
        for spec in ctx.apps()
        for processors in processor_counts
    )
    for spec in ctx.apps():
        series = {}
        for processors in processor_counts:
            result = ctx.run(spec.name, SwitchModel.IDEAL, processors, 1)
            series[processors] = ctx.efficiency(result, spec.name)
        table.add_row(
            [spec.name] + [f"{series[p]:.2f}" for p in processor_counts]
        )
        data[spec.name] = series
    chart = efficiency_chart(
        data, list(processor_counts), "efficiency vs processors (ideal machine)"
    )
    return table.render() + "\n\n" + chart, data


def figure3(
    ctx: ExperimentContext,
    levels: List[int] = (1, 2, 4, 8, 12),
    processor_counts: List[int] = (1, 2, 4, 8, 16),
) -> Tuple[str, Dict]:
    """sieve under switch-on-load: efficiency vs processors per MT level,
    with the ideal curve on top (the paper's Figure 3)."""
    table = TextTable(
        "Figure 3: sieve, multithreaded performance (200-cycle latency)",
        ["series"] + [f"P={p}" for p in processor_counts],
    )
    data: Dict[str, Dict[int, float]] = {}
    ctx.prefetch(
        [
            ctx.spec("sieve", SwitchModel.IDEAL, processors, 1)
            for processors in processor_counts
        ]
        + [
            ctx.spec("sieve", SwitchModel.SWITCH_ON_LOAD, processors, level)
            for level in levels
            for processors in processor_counts
        ]
    )
    ideal = {}
    for processors in processor_counts:
        result = ctx.run("sieve", SwitchModel.IDEAL, processors, 1)
        ideal[processors] = ctx.efficiency(result, "sieve")
    table.add_row(["ideal"] + [f"{ideal[p]:.2f}" for p in processor_counts])
    data["ideal"] = ideal
    for level in levels:
        series = {}
        for processors in processor_counts:
            result = ctx.run(
                "sieve", SwitchModel.SWITCH_ON_LOAD, processors, level
            )
            series[processors] = ctx.efficiency(result, "sieve")
        table.add_row(
            [f"{level} thread(s)"] + [f"{series[p]:.2f}" for p in processor_counts]
        )
        data[str(level)] = series
    chart = efficiency_chart(
        data, list(processor_counts),
        "sieve: efficiency vs processors per multithreading level",
    )
    return table.render() + "\n\n" + chart, data


def figure4(ctx: ExperimentContext) -> Tuple[str, Dict]:
    """The sor inner loop before and after grouping (paper Figure 4)."""
    spec = get_app("sor")
    app = spec.build(1, **ctx.size_of("sor"))
    blocks = build_blocks(app.program)
    stencil = max(
        blocks, key=lambda blk: sum(1 for ins in blk.instructions if ins.op is Op.LWS)
    )
    before = [ins.to_asm() for ins in stencil.instructions]
    after = [ins.to_asm() for ins in group_block(stencil.instructions)]
    width = max(len(line) for line in before) + 4
    lines = [
        "Figure 4: sor inner loop, (a) original vs (b) grouped",
        "",
        f"{'(a) switch-on-load order':<{width}}(b) grouped + explicit switch",
    ]
    for index in range(max(len(before), len(after))):
        left = before[index] if index < len(before) else ""
        right = after[index] if index < len(after) else ""
        lines.append(f"{left:<{width}}{right}")
    loads = sum(1 for ins in stencil.instructions if ins.op is Op.LWS)
    switches = sum(1 for line in after if line.startswith("switch"))
    return "\n".join(lines), {"loads": loads, "switch_instructions": switches}


ALL_FIGURES = {
    "figure1": lambda ctx: figure1(),
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
}
