"""Problem sizes per experiment scale.

The paper's inputs (sieve of 4,000,000; 200x200 matrices; 100,000
particles) would take days in a pure-Python instruction-level simulator,
so every experiment runs at a scaled-down size (DESIGN.md §2).  Three
scales are provided:

* ``tiny`` — unit/integration tests (sub-second per simulation);
* ``small`` — the default for the benchmark harness (seconds);
* ``medium`` — closer-to-paper shapes for a longer evaluation run.
"""

from __future__ import annotations

from typing import Dict

SCALES: Dict[str, Dict[str, Dict]] = {
    "tiny": {
        "sieve": {"limit": 600},
        "blkmat": {"n": 8, "block": 4},
        "sor": {"n": 8, "iterations": 2},
        "ugray": {"width": 6, "height": 4, "grid": 4, "spheres": 5, "steps": 8},
        "water": {"molecules": 10, "iterations": 1},
        "locus": {"width": 12, "height": 8, "wires": 8},
        "mp3d": {"particles": 48, "steps": 2, "cells": 4},
    },
    "small": {
        "sieve": {"limit": 3000},
        "blkmat": {"n": 24, "block": 8},
        "sor": {"n": 20, "iterations": 3},
        "ugray": {"width": 12, "height": 8, "grid": 5, "spheres": 10, "steps": 12},
        "water": {"molecules": 24, "iterations": 2},
        "locus": {"width": 24, "height": 16, "wires": 32},
        "mp3d": {"particles": 192, "steps": 3, "cells": 4},
    },
    "medium": {
        "sieve": {"limit": 8000},
        "blkmat": {"n": 32, "block": 8},
        "sor": {"n": 32, "iterations": 4},
        "ugray": {"width": 16, "height": 12, "grid": 6, "spheres": 14, "steps": 14},
        "water": {"molecules": 37, "iterations": 2},
        "locus": {"width": 32, "height": 20, "wires": 48},
        "mp3d": {"particles": 256, "steps": 3, "cells": 4},
    },
    # Calibrated so T1 is a few hundred thousand cycles per application:
    # enough per-thread work for the 80-90% efficiency columns of the
    # multithreading-level tables to be reachable, as in the paper.
    "bench": {
        "sieve": {"limit": 40000},
        "blkmat": {"n": 32, "block": 8},
        "sor": {"n": 64, "iterations": 4},
        "ugray": {"width": 32, "height": 24, "grid": 6, "spheres": 14, "steps": 16},
        "water": {"molecules": 65, "iterations": 2},
        "locus": {"width": 48, "height": 32, "wires": 256},
        "mp3d": {"particles": 512, "steps": 5, "cells": 4},
    },
}

#: Paper problem sizes, for the Table 1 description column.
PAPER_SIZES: Dict[str, str] = {
    "sieve": "counts primes < 4,000,000",
    "blkmat": "200 x 200 matrices",
    "sor": "192 x 192 grid",
    "ugray": "gears (7169 faces), 20 x 512 slice",
    "water": "343 molecules, 2 iterations",
    "locus": "Primary2 (1250 cells x 20 channels)",
    "mp3d": "100,000 particles, 10 iterations",
}


def scale_sizes(scale: str) -> Dict[str, Dict]:
    """Sizes for every application at *scale*."""
    try:
        return SCALES[scale]
    except KeyError:
        known = ", ".join(sorted(SCALES))
        raise KeyError(f"unknown scale {scale!r} (known: {known})") from None


def sizes_for(app: str, scale: str) -> Dict:
    """Size keywords for one application at *scale*.

    Applications outside the scale tables — the seed-parameterised
    ``synth:`` kernels — take no size keywords, so unknown app names map
    to ``{}`` while unknown *scales* still raise."""
    return dict(scale_sizes(scale).get(app, {}))
