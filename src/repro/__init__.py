"""Reproduction of Boothe & Ranade (ISCA 1992).

The supported programmatic surface is re-exported here — users never
need to import submodules::

    import repro

    repro.list_apps()
    result = repro.simulate("sieve", model="explicit-switch",
                            processors=2, level=4, scale="tiny")
    results = repro.sweep([...], workers=4, cache="~/.cache/repro")

See :mod:`repro.api` for the facade, :mod:`repro.engine` for the sweep
engine underneath it, and ``repro-bench --help`` for the CLI.
"""

from repro.api import backends, list_apps, list_models, simulate, sweep
from repro.check import (
    CheckFailure,
    Violation,
    check_result,
    cross_model_violations,
    replay_check,
    result_violations,
    zero_lifecycle_equivalence,
)
from repro.engine import Engine, ResultCache, RunSpec
from repro.faults import FaultConfig, LifecycleConfig
from repro.lint import LintError, LintReport, lint_pair, lint_program
from repro.machine import (
    CacheConfig,
    MachineConfig,
    NetworkConfig,
    SimStats,
    SimulationResult,
    SwitchModel,
)
from repro.obs import MetricsRegistry, RingTracer, Tracer, write_chrome_trace
from repro import serve, synth
from repro.synth import SynthConfig, generate_app

__version__ = "1.0.0"

__all__ = [
    "simulate",
    "sweep",
    "backends",
    "list_apps",
    "list_models",
    "RunSpec",
    "Engine",
    "ResultCache",
    "SwitchModel",
    "MachineConfig",
    "CacheConfig",
    "NetworkConfig",
    "FaultConfig",
    "LifecycleConfig",
    "CheckFailure",
    "Violation",
    "check_result",
    "result_violations",
    "cross_model_violations",
    "replay_check",
    "zero_lifecycle_equivalence",
    "LintError",
    "LintReport",
    "lint_program",
    "lint_pair",
    "SimStats",
    "SimulationResult",
    "Tracer",
    "RingTracer",
    "MetricsRegistry",
    "write_chrome_trace",
    "serve",
    "synth",
    "SynthConfig",
    "generate_app",
    "__version__",
]
