"""Blocking HTTP client for the simulation service (stdlib ``urllib``).

::

    from repro.serve import Client

    client = Client("http://127.0.0.1:8023")
    job = client.submit({"app": "sieve", "model": "eswitch", "level": 4})
    payload = client.result(job)           # blocks until the job settles
    print(payload[0]["wall_cycles"])

``submit`` accepts a :class:`~repro.engine.spec.RunSpec`, a keyword
dictionary, or a list of either; results come back as the server's
per-spec :meth:`SimulationResult.to_dict` payloads, byte-identical to a
direct :func:`repro.api.simulate` of the same specs.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple, Union

from repro.engine.spec import RunSpec
from repro.obs.spans import SpanContext, new_span_id, new_trace_id
from repro.obs.spans import active as active_spans

SpecLike = Union[RunSpec, Dict]


class ServeError(RuntimeError):
    """A non-success response from the server; carries the HTTP status
    and decoded body (``payload``)."""

    def __init__(self, status: int, payload):
        message = (
            payload.get("error", str(payload))
            if isinstance(payload, dict)
            else str(payload)
        )
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class JobRejected(ServeError):
    """Admission control refused the submission (429/503);
    ``retry_after`` carries the server's backoff hint in seconds."""

    def __init__(self, status: int, payload):
        super().__init__(status, payload)
        self.retry_after = (
            payload.get("retry_after", 1) if isinstance(payload, dict) else 1
        )


def _encode_spec(spec: SpecLike) -> Dict:
    if isinstance(spec, RunSpec):
        return spec.to_dict()
    if isinstance(spec, dict):
        return spec
    raise TypeError(f"expected RunSpec or dict, got {type(spec).__name__}")


class Client:
    """Thin blocking wrapper over the ``/v1`` HTTP API.

    :param base_url: server address, e.g. ``http://127.0.0.1:8023``.
    :param timeout: socket timeout per request in seconds.
    :param spans: optional :class:`~repro.obs.spans.SpanRecorder`; when
        enabled, every :meth:`submit` is wrapped in a ``client-submit``
        span whose trace the server joins.  Submissions always carry a
        ``traceparent`` header either way — a span-recording server
        correlates them even when the client keeps no spans itself.
    """

    def __init__(self, base_url: str, timeout: float = 30.0, spans=None):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.spans = active_spans(spans)

    # -- transport -------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], object]:
        data = (
            json.dumps(body, separators=(",", ":")).encode("utf-8")
            if body is not None
            else None
        )
        request_headers = {"Content-Type": "application/json"} if data else {}
        if headers:
            request_headers.update(headers)
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers=request_headers,
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                status = reply.status
                headers = dict(reply.headers.items())
                raw = reply.read()
        except urllib.error.HTTPError as error:
            status = error.code
            headers = dict(error.headers.items())
            raw = error.read()
        content_type = headers.get("Content-Type", "")
        if content_type.startswith("application/json"):
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        else:
            payload = raw.decode("utf-8")
        return status, headers, payload

    def _get_json(self, path: str) -> Dict:
        status, _headers, payload = self._request("GET", path)
        if status >= 400:
            raise ServeError(status, payload)
        return payload

    # -- API -------------------------------------------------------------------

    def submit(
        self,
        specs: Union[SpecLike, List[SpecLike]],
        timeout: Union[float, None, str] = "inherit",
        retries: int = 0,
    ) -> Dict:
        """POST a job; returns the acceptance payload (``job``,
        ``coalesced``, ``status_url``...).

        *retries* > 0 re-submits after a 429/503, sleeping the server's
        ``Retry-After`` hint between attempts; past the budget the last
        :class:`JobRejected` propagates.

        The submission stamps a fresh ``traceparent`` header (one trace
        across all retry attempts — the job coalesces server-side), so a
        span-recording server threads its whole pipeline under this
        call's trace id even when the client records nothing.
        """
        if isinstance(specs, (RunSpec, dict)):
            specs = [specs]
        body: Dict = {"specs": [_encode_spec(spec) for spec in specs]}
        if timeout != "inherit":
            body["timeout"] = timeout
        span = None
        if self.spans is not None:
            span = self.spans.start(
                "client-submit", attributes={"specs": len(specs)}
            )
            context = span.context
        else:
            context = SpanContext(new_trace_id(), new_span_id())
        headers = {"traceparent": context.to_traceparent()}
        attempt = 0
        try:
            while True:
                status, _headers, payload = self._request(
                    "POST", "/v1/jobs", body, headers=headers
                )
                if status in (429, 503):
                    rejection = JobRejected(status, payload)
                    if attempt >= retries:
                        raise rejection
                    attempt += 1
                    time.sleep(rejection.retry_after)
                    continue
                if status >= 400:
                    raise ServeError(status, payload)
                if span is not None:
                    span.set(
                        job=payload.get("job"),
                        coalesced=payload.get("coalesced"),
                    )
                    self.spans.finish(span)
                    span = None
                return payload
        finally:
            if span is not None:
                self.spans.finish(span, status="error")

    def status(self, job: Union[str, Dict]) -> Dict:
        """``GET /v1/jobs/<id>`` — the job's status dictionary."""
        return self._get_json(f"/v1/jobs/{_job_id(job)}")

    def wait(
        self,
        job: Union[str, Dict],
        timeout: Optional[float] = None,
        poll: float = 0.05,
    ) -> Dict:
        """Poll until the job settles; returns its final status (raises
        ``TimeoutError`` if *timeout* seconds elapse first)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(job)
            if status["state"] in ("done", "failed"):
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {_job_id(job)} still {status['state']} "
                    f"after {timeout}s"
                )
            time.sleep(poll)

    def result(
        self,
        job: Union[str, Dict],
        wait: bool = True,
        timeout: Optional[float] = None,
    ) -> List[Dict]:
        """The job's per-spec result payloads (blocks until settled by
        default); raises :class:`ServeError` for failed jobs."""
        if wait:
            self.wait(job, timeout=timeout)
        status, _headers, payload = self._request(
            "GET", f"/v1/jobs/{_job_id(job)}/result"
        )
        if status != 200:
            raise ServeError(status, payload)
        return payload["results"]

    def health(self) -> Dict:
        return self._get_json("/healthz")

    def metrics(self) -> str:
        """The raw Prometheus exposition text."""
        status, _headers, payload = self._request("GET", "/metrics")
        if status >= 400:
            raise ServeError(status, payload)
        return payload

    def shutdown(self) -> Dict:
        """Ask the server to drain and exit."""
        status, _headers, payload = self._request("POST", "/v1/shutdown")
        if status >= 400:
            raise ServeError(status, payload)
        return payload


def _job_id(job: Union[str, Dict]) -> str:
    return job["job"] if isinstance(job, dict) else job
