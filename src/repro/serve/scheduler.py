"""Admission control, singleflight coalescing and engine dispatch.

The scheduler is the paper's latency-hiding discipline applied one level
up: many outstanding requests, one busy executor.  Clients submit
:class:`~repro.serve.jobs.Job` batches concurrently; a single worker
thread drains a bounded FIFO queue onto the
:class:`~repro.engine.executor.Engine`, which fans each batch out over
its process pool.  Serializing engine access through one thread is what
makes the (deliberately unsynchronized) engine safe to share between
request handlers.

Three mechanisms keep the server healthy under load:

* **admission control** — a bounded queue depth and an in-flight
  request-byte budget; past either, submission raises
  :class:`AdmissionError` (the HTTP layer turns it into 429/503 with a
  ``Retry-After`` hint) instead of queueing unboundedly;
* **singleflight** — job identity is content-derived, so N concurrent
  submissions of the same spec batch attach to one job: one engine
  execution, N result fan-outs (cache-stampede protection, counted in
  ``serve.jobs.coalesced``);
* **journal recovery** — every admitted job is journaled; on restart the
  journal is replayed through the queue, so finished jobs are re-served
  from the engine's disk cache (zero recomputation) and interrupted jobs
  complete.
"""

from __future__ import annotations

import collections
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.engine.executor import Engine
from repro.obs.metrics import MetricsRegistry, labeled_key
from repro.obs.spans import STAGE_FLOOR, STAGE_HISTOGRAM
from repro.obs.spans import active as active_spans
from repro.serve.jobs import Job, JobJournal, JobState

#: Counter names registered up front so ``/metrics`` is complete (and
#: stable) from the first scrape, before any traffic arrives.
_COUNTERS = {
    "serve.jobs.submitted": "Jobs admitted to the queue",
    "serve.jobs.coalesced": "Submissions absorbed into an in-flight or finished job",
    "serve.jobs.rejected": "Submissions refused by admission control",
    "serve.jobs.completed": "Jobs finished successfully",
    "serve.jobs.failed": "Jobs finished with an error",
    "serve.jobs.recovered": "Jobs re-enqueued from the journal at startup",
    "serve.specs.resolved": "Individual specs resolved across all jobs",
    "lint.programs_checked": "Programs statically linted by the check oracle",
}


class AdmissionError(RuntimeError):
    """The scheduler refused a submission (full queue, byte budget, or
    draining); carries the HTTP status and a ``Retry-After`` hint."""

    def __init__(self, reason: str, status: int, retry_after: int):
        super().__init__(reason)
        self.reason = reason
        self.status = status
        self.retry_after = retry_after


class JobScheduler:
    """Bounded job queue feeding one :class:`Engine` worker thread.

    :param engine: the (exclusively owned) execution engine.
    :param max_queue_depth: jobs allowed in QUEUED state before 429.
    :param max_inflight_bytes: summed request-body bytes of unfinished
        jobs allowed before 429 (0 disables the budget).
    :param default_timeout: per-spec engine deadline inherited by jobs
        that do not set their own.
    :param journal: a :class:`JobJournal`, a path, or ``None``.
    :param check: run the :mod:`repro.check` invariant oracle on every
        successful result; an oracle failure fails the job.
    :param spans: a :class:`~repro.obs.spans.SpanRecorder` (or ``None``)
        receiving the scheduler-side stages of every traced job —
        admit/coalesce at submission, queue-wait/execute/serialize/
        journal as the worker thread drains it.  A disabled recorder is
        normalised to ``None`` (the usual zero-overhead contract); an
        enabled one without a metrics sink adopts the scheduler's
        registry, so stage latencies surface at ``/metrics``.
    """

    def __init__(
        self,
        engine: Engine,
        max_queue_depth: int = 16,
        max_inflight_bytes: int = 8 * 1024 * 1024,
        default_timeout: Optional[float] = None,
        journal=None,
        check: bool = False,
        spans=None,
    ):
        self.engine = engine
        self.max_queue_depth = max_queue_depth
        self.max_inflight_bytes = max_inflight_bytes
        self.default_timeout = default_timeout
        self.check = check
        if journal is not None and not isinstance(journal, JobJournal):
            journal = JobJournal(journal)
        self.journal = journal
        self.metrics = MetricsRegistry()
        for name, help_text in _COUNTERS.items():
            self.metrics.counter(name, help=help_text)
        self.spans = active_spans(spans)
        if self.spans is not None and self.spans.metrics is None:
            self.spans.metrics = self.metrics
        self.jobs: Dict[str, Job] = {}
        self._queue: collections.deque = collections.deque()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._inflight_bytes = 0
        self._elapsed: collections.deque = collections.deque(maxlen=16)
        self.draining = False
        self._stopped = False
        self._idle = threading.Event()
        self._idle.set()
        self._worker = threading.Thread(
            target=self._run, name="repro-serve-scheduler", daemon=True
        )
        self._worker.start()

    # -- admission -------------------------------------------------------------

    def _retry_after(self) -> int:
        """Seconds a rejected client should back off: the queue depth
        times a per-job time estimate (floor 1s).  The estimate is the
        p95 of the ``execute`` stage-latency histogram when span
        recording has populated it — a tail estimate survives a bimodal
        mix of cache hits and cold runs that would drag a mean down —
        and falls back to the recent mean job time (or 1s) before any
        traced job has finished."""
        estimate = 0.0
        if labeled_key(STAGE_HISTOGRAM, {"stage": "execute"}) in self.metrics:
            hist = self.metrics.histogram(
                STAGE_HISTOGRAM, labels={"stage": "execute"}, floor=STAGE_FLOOR
            )
            if hist.count:
                estimate = hist.quantile(0.95)
        if not estimate:
            estimate = (
                sum(self._elapsed) / len(self._elapsed) if self._elapsed else 1.0
            )
        return max(1, round(estimate * (len(self._queue) + 1)))

    def submit(
        self,
        specs,
        nbytes: int = 0,
        timeout="inherit",
        trace=None,
    ) -> Tuple[Job, bool]:
        """Admit (or coalesce) a batch; returns ``(job, coalesced)``.

        Coalescing is checked *before* admission control: attaching to an
        existing job creates no new work, so it succeeds even when the
        queue is full — that is the stampede-protection point.

        *trace* is the submitting request's span context (or ``None``);
        an admitted job carries it so queue-wait/execute/serialize spans
        parent under the request.  A coalesced submission records only an
        instant ``coalesce`` span on its *own* trace — the job keeps the
        admitter's.
        """
        if timeout == "inherit":
            timeout = self.default_timeout
        job = Job(list(specs), nbytes=nbytes, timeout=timeout)
        recorder = self.spans
        with self._wake:
            existing = self.jobs.get(job.job_id)
            if existing is not None and existing.state is not JobState.FAILED:
                existing.clients += 1
                self.metrics.counter("serve.jobs.coalesced").inc()
                if recorder is not None:
                    recorder.finish(recorder.start(
                        "coalesce", parent=trace,
                        attributes={"job": existing.job_id,
                                    "clients": existing.clients},
                    ))
                return existing, True
            admit = None
            if recorder is not None:
                admit = recorder.start(
                    "admit", parent=trace,
                    attributes={"job": job.job_id, "specs": job.total,
                                "nbytes": nbytes},
                )
            try:
                if self._stopped or self.draining:
                    self.metrics.counter("serve.jobs.rejected").inc()
                    raise AdmissionError(
                        "server is draining", status=503,
                        retry_after=self._retry_after(),
                    )
                depth = sum(
                    1 for queued in self._queue
                    if self.jobs[queued].state is JobState.QUEUED
                )
                if depth >= self.max_queue_depth:
                    self.metrics.counter("serve.jobs.rejected").inc()
                    raise AdmissionError(
                        f"queue full ({depth} jobs queued)", status=429,
                        retry_after=self._retry_after(),
                    )
                if (
                    self.max_inflight_bytes
                    and nbytes
                    and self._inflight_bytes + nbytes > self.max_inflight_bytes
                ):
                    self.metrics.counter("serve.jobs.rejected").inc()
                    raise AdmissionError(
                        "in-flight byte budget exceeded", status=429,
                        retry_after=self._retry_after(),
                    )
            except AdmissionError as error:
                if admit is not None:
                    admit.set(reason=error.reason)
                    recorder.finish(admit, status="rejected")
                raise
            job.trace = trace
            self._admit(job)
            if admit is not None:
                recorder.finish(admit)
        return job, False

    def _admit(self, job: Job) -> None:
        """Register + enqueue *job*; caller holds the lock."""
        self.jobs[job.job_id] = job
        self._queue.append(job.job_id)
        self._inflight_bytes += job.nbytes
        self.metrics.counter("serve.jobs.submitted").inc()
        self._idle.clear()
        if self.journal is not None:
            self.journal.record_submit(job)
        self._wake.notify()

    def recover(self) -> int:
        """Replay the journal: re-enqueue every job it records (finished
        ones re-serve from the disk cache; interrupted ones complete).
        Returns the number of jobs re-enqueued."""
        if self.journal is None:
            return 0
        recovered = 0
        for record in self.journal.load():
            with self._wake:
                job = Job(record["specs"], nbytes=0, timeout=self.default_timeout)
                if job.job_id in self.jobs:
                    continue
                self._admit(job)
            self.metrics.counter("serve.jobs.recovered").inc()
            recovered += 1
        return recovered

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self.jobs.get(job_id)

    # -- worker ----------------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._wake:
                while not self._queue and not self._stopped:
                    if not any(
                        not job.settled for job in self.jobs.values()
                    ):
                        self._idle.set()
                    self._wake.wait(timeout=0.1)
                if self._stopped and not self._queue:
                    self._idle.set()
                    return
                job = self.jobs[self._queue.popleft()]
            self._execute(job)
            with self._lock:
                self._inflight_bytes -= job.nbytes
                self._elapsed.append(
                    (job.finished or time.time()) - (job.started or job.created)
                )

    def _execute(self, job: Job) -> None:
        recorder = self.spans
        if recorder is not None:
            # Backdated: the wait started the instant the job was admitted.
            recorder.finish(recorder.start(
                "queue-wait", parent=job.trace, start=job.created,
                attributes={"job": job.job_id},
            ))
        job.mark_running()

        def on_progress(event: Dict) -> None:
            job.done += 1
            job.last_label = event.get("label")
            self.metrics.counter("serve.specs.resolved").inc()

        execute = serialize = None
        try:
            if recorder is not None:
                execute = recorder.start(
                    "execute", parent=job.trace,
                    attributes={"job": job.job_id, "specs": job.total},
                )
            # Thread the trace only while recording, so engine stand-ins
            # built against the pre-span run_many signature keep working.
            extra = {"trace": execute.context} if execute is not None else {}
            results = self.engine.run_many(
                job.specs,
                on_error="record",
                progress=on_progress,
                timeout=job.timeout,
                **extra,
            )
            if recorder is not None:
                recorder.finish(execute)
                execute = None
                serialize = recorder.start(
                    "serialize", parent=job.trace,
                    attributes={"job": job.job_id},
                )
            payloads: List[Dict] = []
            for spec, key, result in zip(job.specs, job.keys, results):
                if result is None:
                    error = self.engine.failure(key) or {
                        "type": "EngineRunError",
                        "message": f"{spec.label()}: unknown failure",
                    }
                    raise _JobFailure(error)
                if self.check:
                    from repro.check import check_result

                    self._lint_spec(spec)
                    check_result(result, label=spec.label())
                self._fold_availability(getattr(result, "stats", None))
                payload = result.to_dict()
                payload["predicted"] = self._predict_spec(spec)
                payloads.append(payload)
            if serialize is not None:
                recorder.finish(serialize)
                serialize = None
        except _JobFailure as failure:
            job.mark_failed(failure.error)
        except Exception as error:  # noqa: BLE001 — worker must survive
            job.mark_failed(
                {"type": type(error).__name__, "message": str(error)}
            )
        else:
            job.mark_done(payloads)
        finally:
            # Whichever stage was open when the job failed is the one
            # that failed it.
            for span in (execute, serialize):
                if span is not None:
                    recorder.finish(span, status="error")
        if job.state is JobState.DONE:
            self.metrics.counter("serve.jobs.completed").inc()
        else:
            self.metrics.counter("serve.jobs.failed").inc()
        if self.journal is not None:
            try:
                if recorder is not None:
                    with recorder.span(
                        "journal", parent=job.trace,
                        attributes={"job": job.job_id},
                    ):
                        self.journal.record_finish(job)
                else:
                    self.journal.record_finish(job)
            except OSError:  # pragma: no cover - disk full etc.
                pass

    def _fold_availability(self, stats) -> None:
        """Chaos-scenario observability: accumulate each result's
        component-availability ledger into the serve registry, so
        degradation/outage totals can be read straight off ``/metrics``
        (the README walkthrough does exactly that).  Results without a
        ledger — the overwhelmingly common case — cost one truthiness
        check."""
        if not getattr(stats, "component_availability", None):
            return
        self.metrics.counter(
            "serve.lifecycle.failures",
            help="Component hard failures across all served results",
        ).inc(stats.lifecycle_failures)
        self.metrics.counter(
            "serve.lifecycle.repairs",
            help="Component repairs across all served results",
        ).inc(stats.lifecycle_repairs)
        self.metrics.counter(
            "serve.lifecycle.degraded_cycles",
            help="Degraded-service cycles across all served results",
        ).inc(stats.lifecycle_degraded_cycles)
        self.metrics.counter(
            "serve.lifecycle.downtime_cycles",
            help="Outage + repair cycles across all served results",
        ).inc(stats.lifecycle_downtime_cycles)

    def _predict_spec(self, spec) -> Optional[Dict]:
        """The ``predicted`` block for one result payload: static
        run-length/switch/utilization bounds for the program the spec
        ran (:mod:`repro.lint.predict`, memoised per (app, model,
        shape)).  ``None`` when the predictor cannot analyse the
        program — prediction must never fail serving."""
        from repro.lint import predict_spec_cached

        try:
            return predict_spec_cached(
                spec.app,
                spec.model,
                spec.processors,
                spec.level,
                spec.scale,
                spec.effective_latency,
                spec.machine_config().forced_switch_interval,
                spec.effective_code_model.value,
            ).to_dict()
        except Exception:  # noqa: BLE001 - advisory output only
            return None

    def _lint_spec(self, spec) -> None:
        """Part of the check oracle: statically verify the program a
        spec runs (memoised per (app, model, threads, scale) — sweeps
        repeat those, so the marginal cost is a dict lookup).  Findings
        land in ``lint.diagnostics_total{rule,severity}``; errors fail
        the job like any other oracle violation."""
        from repro.lint import lint_spec

        report = lint_spec(spec)
        self.metrics.counter("lint.programs_checked").inc()
        for diagnostic in report.diagnostics:
            self.metrics.counter(
                "lint.diagnostics",
                help="Lint diagnostics observed by the check oracle",
                labels={
                    "rule": diagnostic.rule_id,
                    "severity": diagnostic.severity.label,
                },
            ).inc()
        if not report.ok:
            raise _JobFailure({
                "type": "LintError",
                "message": f"{spec.label()}: {report.summary_line()}",
            })

    # -- lifecycle -------------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting and wait for every queued/running job to
        settle; ``True`` when the scheduler went idle in time."""
        with self._wake:
            self.draining = True
            self._wake.notify_all()
        return self._idle.wait(timeout)

    def stop(self, drain: bool = True, timeout: Optional[float] = 30.0) -> bool:
        """Drain (optionally), stop the worker, close journal + engine."""
        drained = self.drain(timeout) if drain else False
        with self._wake:
            self._stopped = True
            if not drain:
                self._queue.clear()
            self._wake.notify_all()
        self._worker.join(timeout=timeout)
        if self.journal is not None:
            self.journal.close()
        self.engine.close()
        return drained

    def metrics_text(self) -> str:
        """The ``/metrics`` body: serve counters plus the engine's
        lifetime counts, one Prometheus document with stable ordering."""
        report = self.engine.report()
        for name in ("executed", "cached", "memo_hits", "failed", "deduped"):
            counter = self.metrics.counter(
                f"serve.engine.{name}", help=f"Engine lifetime {name} count"
            )
            counter.value = report[name]
        cycles = self.metrics.counter(
            "serve.engine.simulated_cycles",
            help="Simulated cycles executed by the engine",
        )
        cycles.value = report["simulated_cycles"]
        return self.metrics.to_prometheus()

    def status_dict(self) -> Dict:
        """The ``/healthz`` scheduler view."""
        with self._lock:
            states: Dict[str, int] = {}
            for job in self.jobs.values():
                states[job.state.value] = states.get(job.state.value, 0) + 1
            return {
                "status": "draining" if self.draining else "ok",
                "jobs": states,
                "queued": len(self._queue),
                "inflight_bytes": self._inflight_bytes,
                "queue_depth_limit": self.max_queue_depth,
            }


class _JobFailure(Exception):
    """Internal: carries a spec's error payload out of the result loop."""

    def __init__(self, error: Dict):
        super().__init__(error.get("message", "job failed"))
        self.error = error
