"""``repro.serve`` — simulation-as-a-service.

A long-lived, stdlib-only serving layer over the experiment engine: a
bounded job queue with admission control and backpressure, singleflight
request coalescing on the engine's content-addressed cache keys, an HTTP
JSON API with live telemetry (``/healthz``, Prometheus ``/metrics``),
graceful drain and a crash-safe job journal.

Server side::

    repro-serve serve --port 8023 --workers 4        # or python -m repro.serve

Client side::

    from repro.serve import Client

    client = Client("http://127.0.0.1:8023")
    job = client.submit({"app": "sieve", "model": "eswitch", "level": 4})
    stats = client.result(job)[0]["stats"]

Embedded (tests, notebooks)::

    from repro.serve import ReproServer, ServerConfig

    with ReproServer(ServerConfig(port=0, quiet=True)) as server:
        Client(server.url).health()
"""

from repro.serve.client import Client, JobRejected, ServeError
from repro.serve.jobs import Job, JobJournal, JobState, job_id_for
from repro.serve.scheduler import AdmissionError, JobScheduler
from repro.serve.server import (
    ReproServer,
    ServerConfig,
    serve,
    specs_from_payload,
)
from repro.serve.validation import (
    SpecValidationError,
    validate_fault_spec,
    validate_lifecycle_spec,
)

__all__ = [
    "Client",
    "ServeError",
    "JobRejected",
    "Job",
    "JobState",
    "JobJournal",
    "job_id_for",
    "JobScheduler",
    "AdmissionError",
    "ReproServer",
    "ServerConfig",
    "serve",
    "specs_from_payload",
    "SpecValidationError",
    "validate_fault_spec",
    "validate_lifecycle_spec",
]
