"""``python -m repro.serve`` — same surface as the ``repro-serve``
console script."""

import sys

from repro.serve.cli import main

if __name__ == "__main__":
    sys.exit(main())
