"""``repro-serve`` — run and talk to the simulation service.

Examples::

    repro-serve serve --port 8023 --workers 4 --cache-dir ~/.cache/repro
    repro-serve submit sieve --model eswitch --level 4 --url http://127.0.0.1:8023
    repro-serve status j5b3c0ffee1234567 --url http://127.0.0.1:8023
    repro-serve shutdown --url http://127.0.0.1:8023

``serve`` blocks until SIGTERM/SIGINT, then drains gracefully (stops
admitting, settles in-flight jobs, flushes the journal and run log).
``submit`` shares the spec flags of ``repro-trace run`` — including the
fault-injection and component-lifecycle (chaos scenario) groups — and
by default blocks until the result is back.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.engine.cache import default_cache_dir
from repro.harness.cliargs import add_spec_arguments, spec_from_args
from repro.serve.client import Client, ServeError
from repro.serve.server import ServerConfig, serve


def _add_url(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--url",
        default="http://127.0.0.1:8023",
        help="server address (default: http://127.0.0.1:8023)",
    )


def _cmd_serve(args) -> int:
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        queue_depth=args.queue_depth,
        byte_budget=args.byte_budget,
        timeout=args.timeout,
        check=args.check,
        journal=args.journal,
        quiet=args.quiet,
        spans=args.spans,
    )
    return serve(config)


def _cmd_submit(args) -> int:
    try:
        spec = spec_from_args(args)
    except ValueError as error:
        print(f"repro-serve: {error}", file=sys.stderr)
        return 2
    client = Client(args.url)
    accepted = client.submit(spec, retries=args.retries)
    print(
        f"[serve] job {accepted['job']} "
        f"({'coalesced' if accepted['coalesced'] else 'admitted'})",
        file=sys.stderr,
    )
    if args.no_wait:
        print(json.dumps(accepted, indent=2))
        return 0
    results = client.result(accepted, timeout=args.wait_timeout)
    print(json.dumps(results[0] if len(results) == 1 else results, indent=2))
    return 0


def _cmd_status(args) -> int:
    client = Client(args.url)
    print(json.dumps(client.status(args.job), indent=2))
    return 0


def _cmd_shutdown(args) -> int:
    client = Client(args.url)
    print(json.dumps(client.shutdown(), indent=2))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Simulation-as-a-service: job server, submitter, control.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("serve", help="run the HTTP job server")
    run.add_argument("--host", default="127.0.0.1")
    run.add_argument("--port", type=int, default=8023)
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="engine worker processes (default: 1 = serial)",
    )
    run.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help=f"result-cache directory (default: {default_cache_dir()})",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the on-disk result cache",
    )
    run.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="jobs allowed in the queue before 429 (default: 16)",
    )
    run.add_argument(
        "--byte-budget",
        type=int,
        default=8 * 1024 * 1024,
        help="in-flight request-byte budget before 429 (default: 8 MiB)",
    )
    run.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-spec engine deadline inherited by every job",
    )
    run.add_argument(
        "--check",
        action="store_true",
        help="run the repro.check invariant oracle on every served result",
    )
    run.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="job journal path (default: <cache-dir>/serve-journal.jsonl)",
    )
    run.add_argument(
        "--spans",
        nargs="?",
        const=True,
        default=None,
        metavar="PATH",
        help="record wall-clock spans per request (JSONL log at PATH; "
        "bare flag logs to <cache-dir>/spans.jsonl)",
    )
    run.add_argument("--quiet", action="store_true", help="no request logging")
    run.set_defaults(func=_cmd_serve)

    submit = commands.add_parser(
        "submit", help="submit one spec and print its result"
    )
    add_spec_arguments(submit)
    _add_url(submit)
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="print the acceptance payload instead of blocking for the result",
    )
    submit.add_argument(
        "--retries",
        type=int,
        default=0,
        help="re-submissions after 429/503, honouring Retry-After (default: 0)",
    )
    submit.add_argument(
        "--wait-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="give up waiting for the result after this long",
    )
    submit.set_defaults(func=_cmd_submit)

    status = commands.add_parser("status", help="print one job's status")
    status.add_argument("job", help="job id (from submit)")
    _add_url(status)
    status.set_defaults(func=_cmd_status)

    shutdown = commands.add_parser(
        "shutdown", help="ask the server to drain and exit"
    )
    _add_url(shutdown)
    shutdown.set_defaults(func=_cmd_shutdown)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ServeError as error:
        print(f"repro-serve: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # pragma: no cover - `... | head`
        sys.stderr.close()
        return 0
    except OSError as error:  # URLError subclasses OSError
        print(f"repro-serve: cannot reach server: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
