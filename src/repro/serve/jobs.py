"""Job model and crash-safe journal of the simulation service.

A *job* is one admitted batch of :class:`~repro.engine.spec.RunSpec`
points.  Its identity is content-derived — a hash of the sorted spec
keys — so two clients submitting the same work name the same job, which
is what makes singleflight coalescing (and restart re-serving) a lookup
rather than a protocol.

The :class:`JobJournal` appends one JSONL line when a job is admitted
and one when it finishes.  Replaying the journal after a crash or a
restart yields every job the server ever accepted; re-enqueueing them
lets a fresh server re-serve finished results straight from the engine's
content-addressed disk cache (no recomputation) and *complete* jobs that
were accepted but unfinished when the process died.
"""

from __future__ import annotations

import enum
import hashlib
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.engine.spec import RunSpec
from repro.obs.runlog import RunLogWriter, read_runlog


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


def job_id_for(keys: List[str]) -> str:
    """Deterministic job id for a set of spec keys (order-insensitive)."""
    digest = hashlib.sha256("\n".join(sorted(keys)).encode("ascii"))
    return "j" + digest.hexdigest()[:16]


class Job:
    """One admitted batch of specs moving through the scheduler."""

    def __init__(self, specs: List[RunSpec], nbytes: int = 0,
                 timeout: Optional[float] = None):
        self.specs = specs
        self.keys = [spec.key() for spec in specs]
        self.job_id = job_id_for(self.keys)
        self.nbytes = nbytes
        self.timeout = timeout
        self.state = JobState.QUEUED
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        #: Progress: engine events seen / specs in the batch.  Memo and
        #: dedupe hits emit no event, so ``done`` may end below ``total``
        #: on a warm engine — ``state`` is the completion authority.
        self.done = 0
        self.total = len(specs)
        self.last_label: Optional[str] = None
        #: Submissions coalesced into this job (1 = the admitting one).
        self.clients = 1
        #: Trace context of the admitting request (a
        #: :class:`~repro.obs.spans.SpanContext` or ``None``).  Coalesced
        #: submissions keep the admitter's trace — one job, one trace.
        self.trace = None
        self.error: Optional[Dict] = None
        self.results: Optional[List[Dict]] = None
        self._event = threading.Event()

    # -- state transitions (scheduler-owned) -----------------------------------

    def mark_running(self) -> None:
        self.state = JobState.RUNNING
        self.started = time.time()

    def mark_done(self, results: List[Dict]) -> None:
        self.results = results
        self.state = JobState.DONE
        self.finished = time.time()
        self._event.set()

    def mark_failed(self, error: Dict) -> None:
        self.error = error
        self.state = JobState.FAILED
        self.finished = time.time()
        self._event.set()

    # -- waiting ---------------------------------------------------------------

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job finishes (either way); ``True`` if it did."""
        return self._event.wait(timeout)

    @property
    def settled(self) -> bool:
        return self.state in (JobState.DONE, JobState.FAILED)

    # -- views -----------------------------------------------------------------

    def status_dict(self) -> Dict:
        """The ``GET /v1/jobs/<id>`` payload."""
        out = {
            "job": self.job_id,
            "state": self.state.value,
            "specs": self.total,
            "done": self.done,
            "clients": self.clients,
            "created": round(self.created, 3),
            "labels": [spec.label() for spec in self.specs[:8]],
        }
        if self.started is not None:
            out["started"] = round(self.started, 3)
        if self.finished is not None:
            out["finished"] = round(self.finished, 3)
            out["elapsed"] = round(self.finished - (self.started or self.created), 3)
        if self.last_label is not None:
            out["last"] = self.last_label
        if self.error is not None:
            out["error"] = self.error
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Job {self.job_id} {self.state.value} {self.done}/{self.total}>"


class JobJournal:
    """Append-only JSONL record of admitted and finished jobs.

    Entries (reusing the crash-tolerant :class:`RunLogWriter` — one
    flush per line, torn tails skipped on read):

    .. code-block:: json

        {"event": "submit", "job": "j5b3c...", "ts": 1754515200.1,
         "specs": [{"app": "sieve", ...}]}
        {"event": "finish", "job": "j5b3c...", "state": "done", "ts": ...}
    """

    def __init__(self, path):
        self.path = Path(path)
        self._writer: Optional[RunLogWriter] = None
        self._lock = threading.Lock()

    def _append(self, entry: Dict) -> None:
        with self._lock:
            if self._writer is None:
                self._writer = RunLogWriter(self.path)
            self._writer.append(entry)

    def record_submit(self, job: Job) -> None:
        self._append(
            {
                "event": "submit",
                "job": job.job_id,
                "ts": round(time.time(), 3),
                "specs": [spec.to_dict() for spec in job.specs],
            }
        )

    def record_finish(self, job: Job) -> None:
        entry = {
            "event": "finish",
            "job": job.job_id,
            "state": job.state.value,
            "ts": round(time.time(), 3),
        }
        if job.error is not None:
            entry["error"] = job.error
        self._append(entry)

    def close(self) -> None:
        with self._lock:
            if self._writer is not None:
                self._writer.close()
                self._writer = None

    def load(self) -> List[Dict]:
        """Replay the journal into one record per job (submission order,
        duplicates collapsed, last finish state wins)::

            {"job": id, "specs": [RunSpec, ...], "state": "queued"|...}

        Jobs whose ``submit`` line is missing or unparseable are skipped
        — the journal is an optimization, never a correctness gate.
        """
        try:
            entries = read_runlog(self.path)
        except OSError:
            return []
        records: Dict[str, Dict] = {}
        order: List[str] = []
        for entry in entries:
            job_id = entry.get("job")
            if not job_id:
                continue
            if entry.get("event") == "submit":
                try:
                    specs = [RunSpec.from_dict(d) for d in entry["specs"]]
                except (KeyError, TypeError, ValueError):
                    continue
                if job_id not in records:
                    order.append(job_id)
                records[job_id] = {
                    "job": job_id,
                    "specs": specs,
                    "state": JobState.QUEUED.value,
                }
            elif entry.get("event") == "finish" and job_id in records:
                records[job_id]["state"] = entry.get("state", JobState.DONE.value)
        return [records[job_id] for job_id in order]
