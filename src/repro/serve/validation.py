"""Strict validation of client-supplied fault/lifecycle spec payloads.

:meth:`FaultConfig.from_dict` is deliberately lenient — it ignores
unknown keys so old payloads keep loading — but a *service* should not
silently drop a typo'd chaos knob (``"los_rate"``) or let a malformed
value surface as a 500 from deep inside a dataclass constructor.  This
module lifts the curl-friendly ``{"faults": {...}}`` mapping of
``POST /v1/jobs`` into a :class:`~repro.faults.config.FaultConfig`
strictly: unknown keys, wrong types and out-of-range values all raise
:class:`SpecValidationError` naming the offending key, which the HTTP
layer answers with a structured 400.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.faults.config import FaultConfig, LifecycleConfig

#: Fields accepting floats (ints coerce fine); everything else numeric
#: is integer-only.
_FLOAT_FIELDS = frozenset(
    ("loss_rate", "delay_rate", "degraded_scale")
)
#: Fields that are not plain numbers.
_STRING_FIELDS = frozenset(("latency_model",))
_OPTIONAL_INT_FIELDS = frozenset(("affected",))
_NESTED_FIELDS = frozenset(("lifecycle",))


class SpecValidationError(ValueError):
    """A client spec payload was rejected; ``key`` names the offending
    field when one can be identified."""

    def __init__(self, message: str, key: Optional[str] = None):
        super().__init__(message)
        self.key = key


def _offending_key(message: str, names) -> Optional[str]:
    """Best-effort mapping of a dataclass ``ValueError`` message back to
    the field it complains about (constructor messages lead with the
    field name, e.g. ``"loss_rate must be in [0, 1]"`` — when several
    fields appear, the earliest mention is the subject)."""
    hits = [(message.find(name), name) for name in names if name in message]
    if hits:
        return min(hits)[1]
    if "latency model" in message:
        return "latency_model"
    return None


def _check_fields(mapping: Dict, cls, what: str) -> None:
    names = {field.name for field in dataclasses.fields(cls)}
    for key, value in mapping.items():
        if key not in names:
            raise SpecValidationError(
                f"unknown {what} field {key!r}", key=key
            )
        if key in _NESTED_FIELDS:
            continue  # validated recursively
        if key in _STRING_FIELDS:
            if not isinstance(value, str):
                raise SpecValidationError(
                    f"{what} field {key!r} must be a string", key=key
                )
            continue
        if value is None and key in _OPTIONAL_INT_FIELDS:
            continue
        if isinstance(value, bool) or not isinstance(
            value, (int, float) if key in _FLOAT_FIELDS else int
        ):
            kind = "a number" if key in _FLOAT_FIELDS else "an integer"
            raise SpecValidationError(
                f"{what} field {key!r} must be {kind}, "
                f"got {type(value).__name__}",
                key=key,
            )


def validate_lifecycle_spec(mapping) -> LifecycleConfig:
    """Lift a client-supplied lifecycle mapping strictly."""
    if not isinstance(mapping, dict):
        raise SpecValidationError(
            "lifecycle must be a JSON object", key="lifecycle"
        )
    _check_fields(mapping, LifecycleConfig, "lifecycle")
    try:
        return LifecycleConfig(**mapping)
    except ValueError as error:
        names = [field.name for field in dataclasses.fields(LifecycleConfig)]
        raise SpecValidationError(
            str(error), key=_offending_key(str(error), names)
        ) from None


def validate_fault_spec(mapping) -> FaultConfig:
    """Lift a client-supplied ``faults`` mapping strictly (unknown keys,
    wrong types and out-of-range values are rejected with the offending
    key attached, instead of being dropped or surfacing as a 500)."""
    if not isinstance(mapping, dict):
        raise SpecValidationError("faults must be a JSON object", key="faults")
    _check_fields(mapping, FaultConfig, "fault")
    kwargs = dict(mapping)
    if kwargs.get("lifecycle") is not None:
        kwargs["lifecycle"] = validate_lifecycle_spec(kwargs["lifecycle"])
    try:
        return FaultConfig(**kwargs)
    except ValueError as error:
        names = [field.name for field in dataclasses.fields(FaultConfig)]
        raise SpecValidationError(
            str(error), key=_offending_key(str(error), names)
        ) from None
