"""The HTTP face of the simulation service (stdlib ``http.server``).

Endpoints (JSON in, JSON out, ``/metrics`` excepted):

* ``POST /v1/jobs`` — submit one spec (``{"spec": {...}}``) or a sweep
  (``{"specs": [...]}``); returns 202 with the job id, or 429/503 with a
  ``Retry-After`` header when admission control refuses.
* ``GET /v1/jobs/<id>`` — job status (state, progress, coalesced client
  count), derived from the scheduler + the engine's run-log progress
  events.
* ``GET /v1/jobs/<id>/result`` — the per-spec result payloads
  (:meth:`SimulationResult.to_dict` exactly as a direct
  :func:`repro.api.simulate` would return, plus a ``predicted`` block
  of static performance bounds from :mod:`repro.lint.predict`); 202
  while pending, 500 for failed jobs.
* ``GET /healthz`` — liveness + queue/job counts + engine report.
* ``GET /metrics`` — Prometheus text exposition
  (:meth:`MetricsRegistry.to_prometheus`).
* ``POST /v1/shutdown`` — graceful drain then exit (also ``SIGTERM``).

Spec payloads accept either the exact :meth:`RunSpec.to_dict` form (what
:class:`repro.serve.Client` sends) or curl-friendly keyword form
(``{"app": "sieve", "model": "eswitch", "level": 4}``), including a
``faults`` mapping which is lifted *strictly* into a
:class:`~repro.faults.config.FaultConfig` by
:mod:`repro.serve.validation` — unknown keys, wrong types and
out-of-range values come back as a structured 400 naming the offending
key rather than a 500 (or a silently dropped chaos knob).
"""

from __future__ import annotations

import dataclasses
import json
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.engine.cache import default_cache_dir
from repro.engine.executor import Engine
from repro.engine.spec import RunSpec
from repro.jit import DEFAULT_BACKEND
from repro.machine.models import SwitchModel
from repro.obs.spans import SpanContext, SpanRecorder
from repro.serve.jobs import JobState
from repro.serve.scheduler import AdmissionError, JobScheduler
from repro.serve.validation import SpecValidationError, validate_fault_spec

#: Request bodies past this size are refused outright (413) before any
#: JSON parsing — admission control for a single oversized request.
MAX_BODY_BYTES = 4 * 1024 * 1024


@dataclasses.dataclass
class ServerConfig:
    """Everything ``repro-serve serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8023
    workers: int = 1
    cache_dir: Union[str, Path, None] = None
    no_cache: bool = False
    queue_depth: int = 16
    byte_budget: int = 8 * 1024 * 1024
    timeout: Optional[float] = None
    check: bool = False
    journal: Union[str, Path, None] = None
    quiet: bool = False
    #: Span recording: ``None``/``False`` off, ``True`` on (log lands
    #: next to the cache), or a path for the JSONL span log.
    spans: Union[str, Path, bool, None] = None

    def resolved_cache_dir(self) -> Optional[Path]:
        if self.no_cache:
            return None
        return Path(self.cache_dir) if self.cache_dir else default_cache_dir()

    def resolved_journal(self) -> Optional[Path]:
        if self.journal is not None:
            return Path(self.journal)
        cache_dir = self.resolved_cache_dir()
        return cache_dir / "serve-journal.jsonl" if cache_dir else None

    def resolved_spans(self) -> Optional[Path]:
        """The span-log path (``None`` = spans off, or on without a log
        when recording is requested but no cache directory exists)."""
        if not self.spans:
            return None
        if self.spans is True:
            cache_dir = self.resolved_cache_dir()
            return cache_dir / "spans.jsonl" if cache_dir else None
        return Path(self.spans)


def specs_from_payload(payload) -> List[RunSpec]:
    """Parse a ``POST /v1/jobs`` body into specs (raises ``ValueError``
    on anything malformed — the handler answers 400)."""
    if not isinstance(payload, dict):
        raise ValueError("body must be a JSON object")
    if "spec" in payload:
        raw_specs = [payload["spec"]]
    elif "specs" in payload:
        raw_specs = payload["specs"]
    else:
        raise ValueError('body must carry "spec" or "specs"')
    if not isinstance(raw_specs, list) or not raw_specs:
        raise ValueError('"specs" must be a non-empty list')
    specs = []
    for raw in raw_specs:
        if not isinstance(raw, dict):
            raise ValueError("each spec must be a JSON object")
        try:
            specs.append(_decode_spec(raw))
        except SpecValidationError:
            raise  # already names the offending key; don't re-wrap
        except (TypeError, ValueError, KeyError) as error:
            raise ValueError(f"bad spec {raw!r}: {error}") from None
    return specs


def _decode_spec(raw: Dict) -> RunSpec:
    if isinstance(raw.get("overrides"), list):
        return RunSpec.from_dict(raw)  # exact to_dict round-trip form
    raw = dict(raw)
    if "model" in raw:  # accept paper aliases (eswitch, sol, ...)
        raw["model"] = SwitchModel.parse(raw["model"])
    if raw.get("faults") is not None:
        raw["faults"] = validate_fault_spec(raw["faults"])
    return RunSpec.create(**raw)


class _ServeHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, app: "ReproServer"):
        self.app = app
        super().__init__(address, handler)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # -- plumbing --------------------------------------------------------------

    @property
    def app(self) -> "ReproServer":
        return self.server.app

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.app.config.quiet:
            sys.stderr.write(
                "[serve] %s %s\n" % (self.address_string(), format % args)
            )

    def _send(
        self,
        status: int,
        body: Union[Dict, bytes, str],
        content_type: str = "application/json",
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        if isinstance(body, dict):
            body = json.dumps(body, separators=(",", ":")).encode("utf-8")
        elif isinstance(body, str):
            body = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str, **extra) -> None:
        self._send(status, {"error": message, **extra})

    def _read_body(self) -> Optional[bytes]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            # Drain (bounded) so the client sees the 413 rather than a
            # broken pipe mid-upload, then drop the connection.
            remaining = length
            while remaining > 0:
                chunk = self.rfile.read(min(65536, remaining))
                if not chunk:
                    break
                remaining -= len(chunk)
            self.close_connection = True
            self._error(413, f"body exceeds {MAX_BODY_BYTES} bytes")
            return None
        return self.rfile.read(length)

    # -- routes ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib dispatch name
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            return self._send(200, self.app.health_dict())
        if path == "/metrics":
            return self._send(
                200,
                self.app.metrics_text(),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        if path.startswith("/v1/jobs/"):
            parts = path[len("/v1/jobs/"):].split("/")
            if len(parts) == 1:
                return self._job_status(parts[0])
            if len(parts) == 2 and parts[1] == "result":
                return self._job_result(parts[0])
        return self._error(404, f"no route for GET {path}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib dispatch name
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/v1/jobs":
            return self._submit()
        if path == "/v1/shutdown":
            self._send(202, {"status": "draining"})
            threading.Thread(
                target=self.app.shutdown, name="repro-serve-shutdown",
                daemon=True,
            ).start()
            return None
        return self._error(404, f"no route for POST {path}")

    def _submit(self) -> None:
        recorder = self.app.spans
        if recorder is None:
            return self._handle_submit(None)
        # Join the caller's trace when it sent a well-formed traceparent
        # header; otherwise this request roots a fresh trace.
        http_span = recorder.start(
            "http",
            parent=SpanContext.from_traceparent(self.headers.get("traceparent")),
            attributes={"method": "POST", "path": "/v1/jobs"},
        )
        try:
            self._handle_submit(http_span)
        except BaseException:
            recorder.finish(http_span, status="error")
            raise
        recorder.finish(http_span)

    def _handle_submit(self, http_span) -> None:
        body = self._read_body()
        if body is None:
            return
        try:
            payload = json.loads(body.decode("utf-8"))
            specs = specs_from_payload(payload)
        except SpecValidationError as error:
            if http_span is not None:
                http_span.set(http_status=400)
            extra = {"key": error.key} if error.key else {}
            return self._error(400, str(error), **extra)
        except (ValueError, UnicodeDecodeError) as error:
            if http_span is not None:
                http_span.set(http_status=400)
            return self._error(400, str(error))
        timeout = payload.get("timeout", "inherit")
        if timeout is not None and timeout != "inherit":
            try:
                timeout = float(timeout)
            except (TypeError, ValueError):
                if http_span is not None:
                    http_span.set(http_status=400)
                return self._error(400, "timeout must be a number")
        try:
            job, coalesced = self.app.scheduler.submit(
                specs, nbytes=len(body), timeout=timeout,
                trace=http_span.context if http_span is not None else None,
            )
        except AdmissionError as refused:
            if http_span is not None:
                http_span.set(http_status=refused.status)
            return self._send(
                refused.status,
                {"error": refused.reason, "retry_after": refused.retry_after},
                headers={"Retry-After": str(refused.retry_after)},
            )
        accepted = {
            "job": job.job_id,
            "coalesced": coalesced,
            "specs": job.total,
            "state": job.state.value,
            "status_url": f"/v1/jobs/{job.job_id}",
            "result_url": f"/v1/jobs/{job.job_id}/result",
        }
        if http_span is not None:
            http_span.set(http_status=202, job=job.job_id)
            accepted["trace"] = http_span.trace_id
        self._send(202, accepted)

    def _job_status(self, job_id: str) -> None:
        job = self.app.scheduler.get(job_id)
        if job is None:
            return self._error(404, f"unknown job {job_id!r}")
        self._send(200, job.status_dict())

    def _job_result(self, job_id: str) -> None:
        job = self.app.scheduler.get(job_id)
        if job is None:
            return self._error(404, f"unknown job {job_id!r}")
        if job.state is JobState.FAILED:
            return self._send(500, {"job": job.job_id, "error": job.error})
        if job.state is not JobState.DONE:
            return self._send(202, job.status_dict())
        self._send(200, {"job": job.job_id, "results": job.results})


class ReproServer:
    """One bound server: engine + scheduler + HTTP front end.

    Usable embedded (tests call :meth:`start` / :meth:`shutdown`) or via
    :func:`serve`, which adds signal handling and blocks.
    """

    def __init__(self, config: Optional[ServerConfig] = None, **overrides):
        if config is None:
            config = ServerConfig(**overrides)
        elif overrides:
            config = dataclasses.replace(config, **overrides)
        self.config = config
        cache_dir = config.resolved_cache_dir()
        # One recorder shared by every layer: the handler's http span,
        # the scheduler's stage spans and the engine's dispatch tree all
        # land in one log.  The scheduler wires its metrics registry in,
        # so stage latencies also surface at /metrics.
        self.spans: Optional[SpanRecorder] = (
            SpanRecorder(log=config.resolved_spans()) if config.spans else None
        )
        self.engine = Engine(
            workers=config.workers,
            cache=str(cache_dir) if cache_dir else None,
            spans=self.spans,
        )
        self.scheduler = JobScheduler(
            self.engine,
            max_queue_depth=config.queue_depth,
            max_inflight_bytes=config.byte_budget,
            default_timeout=config.timeout,
            journal=config.resolved_journal(),
            check=config.check,
            spans=self.spans,
        )
        self.started = time.time()
        self.httpd = _ServeHTTPServer((config.host, config.port), _Handler, self)
        self._serve_thread: Optional[threading.Thread] = None
        self._shutdown_lock = threading.Lock()
        self._shut_down = False
        self._shutdown_done = threading.Event()
        self.recovered = self.scheduler.recover()

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def health_dict(self) -> Dict:
        health = self.scheduler.status_dict()
        health["uptime"] = round(time.time() - self.started, 3)
        health["recovered"] = self.recovered
        health["engine"] = self.engine.report()
        if self.spans is not None:
            health["spans"] = {
                "recorded": self.spans.recorded,
                "dropped": self.spans.dropped,
            }
        return health

    def metrics_text(self) -> str:
        """The ``/metrics`` body: process-level gauges stamped fresh per
        scrape, then the scheduler/engine document."""
        from repro import __version__

        registry = self.scheduler.metrics
        registry.gauge(
            "process.uptime_seconds",
            help="Seconds since the server process started",
        ).set(round(time.time() - self.started, 3))
        registry.gauge(
            "repro.build_info",
            help="Constant 1; version and default backend ride as labels",
            labels={"version": __version__, "backend": DEFAULT_BACKEND},
        ).set(1)
        return self.scheduler.metrics_text()

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ReproServer":
        """Serve in a background thread (embedded / test use)."""
        self._serve_thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-serve-http",
            daemon=True,
        )
        self._serve_thread.start()
        return self

    def shutdown(self, drain: bool = True, timeout: Optional[float] = 30.0) -> bool:
        """Graceful exit: stop admitting, settle in-flight jobs, flush
        journal + run log, stop the HTTP loop.  Idempotent — concurrent
        callers block until the first caller's shutdown completes."""
        with self._shutdown_lock:
            first = not self._shut_down
            self._shut_down = True
        if not first:
            self._shutdown_done.wait(timeout)
            return True
        try:
            drained = self.scheduler.stop(drain=drain, timeout=timeout)
            if self.spans is not None:
                self.spans.close()
            self.httpd.shutdown()
            self.httpd.server_close()
            if self._serve_thread is not None:
                self._serve_thread.join(timeout=5.0)
        finally:
            self._shutdown_done.set()
        return drained

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def serve(config: ServerConfig) -> int:
    """Run a server in the foreground until SIGTERM/SIGINT (the
    ``repro-serve serve`` entry); returns a process exit code."""
    server = ReproServer(config)

    def handle_signal(signum, _frame):
        if not config.quiet:
            print(
                f"[serve] {signal.Signals(signum).name}: draining...",
                file=sys.stderr,
                flush=True,
            )
        threading.Thread(
            target=server.shutdown, name="repro-serve-signal", daemon=True
        ).start()

    previous: List[Tuple[int, object]] = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous.append((signum, signal.signal(signum, handle_signal)))
    if not config.quiet:
        extras = []
        if server.recovered:
            extras.append(f"{server.recovered} job(s) recovered from journal")
        cache_dir = config.resolved_cache_dir()
        extras.append(f"cache {cache_dir}" if cache_dir else "cache disabled")
        if config.spans:
            span_log = config.resolved_spans()
            extras.append(f"spans {span_log}" if span_log else "spans in-memory")
        print(
            f"[serve] listening on {server.url} "
            f"({config.workers} worker(s), {', '.join(extras)})",
            file=sys.stderr,
            flush=True,
        )
    try:
        server.httpd.serve_forever()
    finally:
        server.shutdown()
        for signum, handler in previous:
            signal.signal(signum, handler)
        if not config.quiet:
            print("[serve] drained; bye", file=sys.stderr, flush=True)
    return 0
