"""Parallel experiment engine: sweeps as data, execution as a service.

Exports the three building blocks:

* :class:`~repro.engine.spec.RunSpec` — one hashable, picklable,
  JSON-serializable simulation point;
* :class:`~repro.engine.cache.ResultCache` — content-addressed on-disk
  persistence, invalidated by code version;
* :class:`~repro.engine.executor.Engine` — memoising executor that fans
  sweeps out over worker processes with deterministic result ordering.
"""

from repro.engine.spec import RunSpec, DEFAULT_LATENCY
from repro.engine.cache import ResultCache, code_version, default_cache_dir
from repro.engine.executor import (
    Engine,
    EngineRunError,
    execute_spec,
    stderr_progress,
)

__all__ = [
    "RunSpec",
    "DEFAULT_LATENCY",
    "ResultCache",
    "code_version",
    "default_cache_dir",
    "Engine",
    "EngineRunError",
    "execute_spec",
    "stderr_progress",
]
