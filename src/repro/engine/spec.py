"""Self-describing simulation points: the unit of work of the engine.

A :class:`RunSpec` names everything needed to reproduce one simulation —
application, problem scale, switch model, machine shape, latency,
config overrides — *without* holding any live objects, so it can be
hashed (for the on-disk result cache), pickled (to worker processes)
and serialized to JSON (for ``results.json``).  Every sweep in the
harness is "a list of RunSpecs"; the engine owns how that list gets
executed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, Optional, Tuple, Union

from repro.faults.config import FaultConfig
from repro.machine.config import (
    CacheConfig,
    MachineConfig,
    NetworkConfig,
    normalize_config_kwargs,
)
from repro.machine.models import SwitchModel

#: The paper's round-trip shared-memory latency, used when a spec leaves
#: ``latency`` unresolved.
DEFAULT_LATENCY = 200

#: Override values may be dataclass configs; they are tagged on the way
#: into JSON so ``from_dict`` can rebuild them.
_OVERRIDE_KINDS = {
    "CacheConfig": CacheConfig,
    "NetworkConfig": NetworkConfig,
    "FaultConfig": FaultConfig,
}


def _encode_override(value):
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {"__kind__": type(value).__name__, **dataclasses.asdict(value)}
    return value


def _decode_override(value):
    if isinstance(value, dict) and "__kind__" in value:
        payload = dict(value)
        kind = payload.pop("__kind__")
        try:
            return _OVERRIDE_KINDS[kind](**payload)
        except KeyError:
            raise ValueError(f"unknown override kind {kind!r}") from None
    return value


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """One point of an experiment sweep.

    ``model`` is stored as the :class:`SwitchModel` *value* string so the
    spec stays JSON-native; use :attr:`switch_model` for the enum.
    ``code_model`` optionally lowers the program for a *different* model
    than the machine runs (e.g. Table 5's "grouped code on the ideal
    machine" reorganisation-penalty run).  ``overrides`` are extra
    :class:`MachineConfig` keyword arguments as a sorted tuple of pairs.

    ``backend`` picks the execution backend (:mod:`repro.jit`):
    ``"interpreter"``, ``"compiled"``, ``"auto"``, or ``None`` for "no
    preference" (the engine's — then the global — default applies).
    Backends are bit-identical by contract, so the backend is carried on
    the wire but deliberately **excluded** from :meth:`key`: a cached
    result answers requests from every backend.
    """

    app: str
    model: str = SwitchModel.SWITCH_ON_LOAD.value
    processors: int = 1
    level: int = 1
    scale: str = "small"
    latency: Optional[int] = None
    oracle: bool = False
    code_model: Optional[str] = None
    overrides: Tuple[Tuple[str, object], ...] = ()
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if isinstance(self.model, SwitchModel):
            object.__setattr__(self, "model", self.model.value)
        else:
            SwitchModel(self.model)  # validate the spelling early
        if isinstance(self.code_model, SwitchModel):
            object.__setattr__(self, "code_model", self.code_model.value)
        elif self.code_model is not None:
            SwitchModel(self.code_model)
        if isinstance(self.overrides, dict):
            object.__setattr__(
                self, "overrides", tuple(sorted(self.overrides.items()))
            )
        else:
            object.__setattr__(self, "overrides", tuple(self.overrides))
        if self.processors < 1 or self.level < 1:
            raise ValueError("processors and level must be >= 1")
        if self.backend is not None:
            from repro.jit import resolve_backend

            resolve_backend(self.backend)  # validate the spelling early

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(
        cls,
        app: str,
        model: Union[str, SwitchModel] = SwitchModel.SWITCH_ON_LOAD,
        **kwargs,
    ) -> "RunSpec":
        """Build a spec accepting either keyword spelling
        (``processors``/``num_processors``, ``level``/``threads_per_processor``);
        unknown keywords become config ``overrides``."""
        kwargs = normalize_config_kwargs(kwargs)
        if "num_processors" in kwargs:
            kwargs["processors"] = kwargs.pop("num_processors")
        if "threads_per_processor" in kwargs:
            kwargs["level"] = kwargs.pop("threads_per_processor")
        fields = {field.name for field in dataclasses.fields(cls)}
        overrides = dict(kwargs.pop("overrides", ()))
        for key in list(kwargs):
            if key not in fields:
                overrides[key] = kwargs.pop(key)
        return cls(app=app, model=model, overrides=tuple(sorted(overrides.items())), **kwargs)

    # -- derived ---------------------------------------------------------------

    @property
    def switch_model(self) -> SwitchModel:
        return SwitchModel(self.model)

    @property
    def effective_latency(self) -> int:
        """Concrete round-trip latency: explicit value, else the paper
        default (0 on the ideal machine)."""
        if self.latency is not None:
            return self.latency
        return 0 if self.switch_model is SwitchModel.IDEAL else DEFAULT_LATENCY

    @property
    def effective_code_model(self) -> SwitchModel:
        """Model the program is lowered for (defaults to the machine model)."""
        return SwitchModel(self.code_model) if self.code_model else self.switch_model

    @property
    def total_threads(self) -> int:
        return self.processors * self.level

    def machine_config(self) -> MachineConfig:
        """The :class:`MachineConfig` this spec describes."""
        return MachineConfig(
            model=self.switch_model,
            num_processors=self.processors,
            threads_per_processor=self.level,
            latency=self.effective_latency,
            interblock_oracle=self.oracle,
            **dict(self.overrides),
        )

    # -- serialization / hashing ----------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "app": self.app,
            "model": self.model,
            "processors": self.processors,
            "level": self.level,
            "scale": self.scale,
            "latency": self.effective_latency,
            "oracle": self.oracle,
            "code_model": self.code_model,
            "overrides": [
                [key, _encode_override(value)] for key, value in self.overrides
            ],
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RunSpec":
        return cls(
            app=data["app"],
            model=data["model"],
            processors=data.get("processors", 1),
            level=data.get("level", 1),
            scale=data.get("scale", "small"),
            latency=data.get("latency"),
            oracle=data.get("oracle", False),
            code_model=data.get("code_model"),
            overrides=tuple(
                (key, _decode_override(value))
                for key, value in data.get("overrides", [])
            ),
            backend=data.get("backend"),
        )

    def key(self) -> str:
        """Stable content hash (latency resolved, overrides sorted) —
        the memo / cache-file key.

        The ``backend`` field is dropped first: backends are execution
        strategies, not result identity (bit-identical by contract), so
        interpreter and compiled requests share one cache entry.
        """
        payload = self.to_dict()
        del payload["backend"]
        canonical = json.dumps(
            payload, sort_keys=True, separators=(",", ":"), default=repr
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]

    def label(self) -> str:
        """Short human-readable tag for progress lines."""
        extras = ""
        if self.oracle:
            extras += " oracle"
        if self.overrides:
            extras += " +" + ",".join(key for key, _ in self.overrides)
        return (
            f"{self.app}/{self.model} P{self.processors} M{self.level} "
            f"L{self.effective_latency} ({self.scale}){extras}"
        )
