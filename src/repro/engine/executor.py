"""Fan-out execution of :class:`RunSpec` sweeps.

The :class:`Engine` is the single funnel every simulation goes through:

* **memo** — each spec key resolves to the same live
  :class:`~repro.machine.simulator.SimulationResult` object within one
  engine (what :class:`~repro.harness.context.ExperimentContext`'s
  in-process memoisation used to do);
* **disk cache** — completed runs are persisted through a
  :class:`~repro.engine.cache.ResultCache`, so repeated or interrupted
  sweeps resume instantly across processes;
* **worker pool** — :meth:`Engine.run_many` executes cache-missing specs
  across a ``ProcessPoolExecutor``; results are collected back in *input
  order* regardless of completion order, so any sweep is byte-for-byte
  identical to its serial execution.  With ``workers=1``, or on
  platforms/sandboxes where a pool cannot be created, execution falls
  back to a plain serial loop — same results, same order.

Deterministic failures (a :class:`SimulationTimeout` from a bounded
ablation run) are memoised and cached like results, and re-raised on
every subsequent request for the same spec.
"""

from __future__ import annotations

import concurrent.futures
import functools
import multiprocessing
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import dataclasses

from repro.engine.cache import ResultCache
from repro.engine.spec import RunSpec
from repro.jit import resolve_backend
from repro.machine.simulator import SimulationResult, SimulationTimeout
from repro.obs.runlog import RunLogWriter, peak_rss_kb
from repro.obs.spans import SpanContext, SpanRecorder, new_span_id, new_trace_id
from repro.obs.spans import active as active_spans

ProgressFn = Callable[[Dict], None]


class EngineRunError(RuntimeError):
    """A run failed inside the engine (worker crash, bad spec, per-run
    timeout); the original error type/message is in ``args[0]``."""


@functools.lru_cache(maxsize=64)
def _build(app_name: str, nthreads: int, code_model: str, scale: str,
           lint: bool = False):
    """Build (and lower) one application — cached per process, so level
    sweeps inside a worker reuse the expensive program construction.
    With ``lint=True`` the lowered code is statically verified
    (:mod:`repro.lint`) and a :class:`repro.lint.LintError` aborts the
    build."""
    from repro.apps.registry import get_app
    from repro.compiler.passes import prepare_for_model
    from repro.harness.sizes import sizes_for
    from repro.machine.models import SwitchModel

    spec = get_app(app_name)
    sizes = sizes_for(app_name, scale)
    app = spec.build(nthreads, **sizes)
    program = prepare_for_model(app.program, SwitchModel(code_model), lint=lint)
    return app, program


def _execute_payload(
    spec: RunSpec,
    include_shared: bool = False,
    lint: bool = False,
    span_context=None,
) -> Tuple[Optional[SimulationResult], Dict]:
    """Simulate one spec; returns ``(live result | None, payload)``.

    The single execution funnel behind both the pool worker
    (:func:`execute_spec`) and the in-process serial path.  Never
    raises: failures come back as ``{"error": {...}}`` payloads.

    *span_context* is a ``(trace_id, parent_span_id)`` pair — the
    submitting request's trace crossing the ``ProcessPoolExecutor``
    boundary.  When present, the worker opens a ``simulate`` span
    parented on it (children: ``build``, ``jit-compile``, ``run``) and
    ships the finished spans back inside the payload under ``"spans"``
    for the parent-side recorder to absorb.
    """
    from repro.runtime.execution import run_app

    recorder = simulate_span = None
    if span_context is not None:
        recorder = SpanRecorder(capacity=None)
        simulate_span = recorder.start(
            "simulate",
            parent=tuple(span_context),
            attributes={"spec": spec.label(), "worker": os.getpid()},
        )
    start = time.perf_counter()
    try:
        if recorder is not None:
            build_span = recorder.start("build", parent=simulate_span)
        app, program = _build(
            spec.app,
            spec.total_threads,
            spec.effective_code_model.value,
            spec.scale,
            lint,
        )
        if recorder is not None:
            from repro.jit import compile_seconds_for

            recorder.finish(build_span)
            compile_before = compile_seconds_for(program)
            run_span = recorder.start(
                "run",
                parent=simulate_span,
                attributes={"backend": resolve_backend(spec.backend)},
            )
        result = run_app(
            app, spec.machine_config(), program=program, backend=spec.backend
        )
        if recorder is not None:
            recorder.finish(run_span)
            # Lazy block compilation happens *inside* the run; the delta
            # of the program's accumulator splits compile-vs-run out as
            # sibling spans (the compile span overlaps its run sibling).
            compile_delta = compile_seconds_for(program) - compile_before
            if compile_delta > 0.0:
                jit_span = recorder.start(
                    "jit-compile",
                    parent=simulate_span,
                    start=run_span.start,
                    attributes={"accumulated": True},
                )
                jit_span.end = run_span.start + compile_delta
                recorder.record(jit_span)
            recorder.finish(simulate_span)
        payload = {
            "spec": spec.to_dict(),
            "result": result.to_dict(include_shared=include_shared),
            "elapsed": time.perf_counter() - start,
            "worker": os.getpid(),
            "peak_rss_kb": peak_rss_kb(),
        }
        if recorder is not None:
            payload["spans"] = [span.to_dict() for span in recorder.spans()]
        return result, payload
    except Exception as error:  # noqa: BLE001 — must cross process boundary
        payload = {
            "spec": spec.to_dict(),
            # The spec label makes the payload triageable from the
            # runlog alone (which app/model/shape failed, not just why).
            "error": {
                "type": type(error).__name__,
                "message": f"{spec.label()}: {error}",
            },
            "elapsed": time.perf_counter() - start,
            "worker": os.getpid(),
            "peak_rss_kb": peak_rss_kb(),
        }
        if recorder is not None:
            recorder.finish(simulate_span, status="error")
            payload["spans"] = [span.to_dict() for span in recorder.spans()]
        return None, payload


def execute_spec(
    spec: RunSpec,
    include_shared: bool = False,
    lint: bool = False,
    span_context=None,
) -> Dict:
    """Simulate one spec and return its payload dictionary.

    Runs in worker processes (top-level so it pickles) and in-process for
    the serial path; see :func:`_execute_payload` for the semantics.
    """
    _live, payload = _execute_payload(spec, include_shared, lint, span_context)
    return payload


def _raise_payload_error(error: Dict) -> None:
    if error["type"] == "SimulationTimeout":
        raise SimulationTimeout(error["message"])
    raise EngineRunError(f"{error['type']}: {error['message']}")


def stderr_progress(event: Dict) -> None:
    """Default progress sink: one line per completed run on stderr."""
    print(
        "[engine] {done}/{total} ({source}) {label} {elapsed:.2f}s".format(**event),
        file=sys.stderr,
        flush=True,
    )


class Engine:
    """Memoising, caching, parallel executor of simulation specs.

    :param workers: worker processes for :meth:`run_many`; ``1`` means
        serial in-process execution.
    :param cache: a :class:`ResultCache`, a cache-directory path, or
        ``None`` to disable on-disk persistence.
    :param timeout: optional per-run wall-clock budget in seconds
        (parallel mode only; a run exceeding it is recorded as failed).
    :param progress: optional callback receiving one event dictionary
        per completed/cached/failed run (see :func:`stderr_progress`).
    :param runlog: where the per-run JSONL telemetry log goes.  ``None``
        (default) puts it next to the result cache
        (:attr:`ResultCache.runlog_path`) when a cache is configured and
        disables it otherwise; ``False`` disables it explicitly; a path
        sends it there.  Memo hits are not logged (they touch nothing).
    :param lint: statically verify every program before simulating it
        (:mod:`repro.lint`); error-severity findings fail the run the
        same way a simulation error would.
    :param backend: default execution backend (``"interpreter"``,
        ``"compiled"``, ``"auto"``; see :mod:`repro.jit`) for specs that
        do not name one themselves.  A spec's own ``backend`` field wins.
        ``None`` (default) defers to the global default.  Backends are
        bit-identical, so this only changes wall-clock speed — never
        results, and never cache keys.
    :param spans: a :class:`~repro.obs.spans.SpanRecorder` receiving
        wall-clock stage spans (cache-lookup / dispatch / simulate /
        deserialize) per resolved spec.  Disabled recorders are
        normalised to ``None`` (the tracer contract), so the default
        costs one ``is not None`` check per stage.  Spans never enter
        the result cache — payloads are stripped before persisting.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Union[ResultCache, str, None] = None,
        timeout: Optional[float] = None,
        progress: Optional[ProgressFn] = None,
        runlog: Union[str, Path, bool, None] = None,
        lint: bool = False,
        backend: Optional[str] = None,
        spans: Optional[SpanRecorder] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.lint = lint
        self.spans = active_spans(spans)
        #: Trace context engine-emitted spans parent under (set per
        #: :meth:`run_many` call via its ``trace`` argument).
        self._trace = None
        if backend is not None:
            resolve_backend(backend)  # reject unknown spellings up front
        self.backend = backend
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.timeout = timeout
        self.progress = progress
        if runlog is None:
            self.runlog_path = cache.runlog_path if cache is not None else None
        elif runlog is False:
            self.runlog_path = None
        else:
            self.runlog_path = Path(runlog)
        self._runlog_writer: Optional[RunLogWriter] = None
        self._peak_rss_kb: Optional[int] = None
        self._memo: Dict[str, SimulationResult] = {}
        self._failures: Dict[str, Dict] = {}
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._pool_broken = False
        self._counts = {
            "executed": 0,
            "cached": 0,
            "memo_hits": 0,
            "failed": 0,
            "deduped": 0,
        }
        self._executed_by_backend: Dict[str, int] = {}
        self._simulated_cycles = 0
        self._wall_time = 0.0
        self._started = time.perf_counter()
        #: Distinct (program, machine shape) combos resolved so far —
        #: the inputs :meth:`predicted` feeds the static predictor.
        self._predict_keys: Dict[Tuple, str] = {}

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._runlog_writer is not None:
            self._runlog_writer.close()
            self._runlog_writer = None

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self) -> Optional[concurrent.futures.ProcessPoolExecutor]:
        """Build the worker pool lazily; fall back to serial on platforms
        (or sandboxes) that cannot fork/spawn worker processes."""
        if self.workers <= 1 or self._pool_broken:
            return None
        if self._pool is None:
            try:
                methods = multiprocessing.get_all_start_methods()
                context = multiprocessing.get_context(
                    "fork" if "fork" in methods else None
                )
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=context
                )
            except (OSError, ValueError, NotImplementedError) as error:
                print(
                    f"[engine] worker pool unavailable ({error}); "
                    "falling back to serial execution",
                    file=sys.stderr,
                )
                self._pool_broken = True
                return None
        return self._pool

    # -- bookkeeping -----------------------------------------------------------

    def _effective(self, spec: RunSpec) -> RunSpec:
        """The spec as it will execute: the engine-level default backend
        is stamped onto specs that carry none.  Memo and cache keys
        ignore the backend, so this never changes what a spec resolves
        to — only which engine simulates a miss."""
        if spec.backend is None and self.backend is not None:
            return dataclasses.replace(spec, backend=self.backend)
        return spec

    def _notify(self, spec: RunSpec, source: str, elapsed: float, total: int) -> None:
        if self.progress is None:
            return
        done = sum(
            self._counts[name] for name in ("executed", "cached", "failed")
        )
        self.progress(
            {
                "label": spec.label(),
                "source": source,
                "elapsed": elapsed,
                "done": done,
                "total": total,
            }
        )

    def predicted(self) -> Dict[str, Dict]:
        """Static performance bounds (:mod:`repro.lint.predict`) for
        every distinct program this engine resolved, keyed by spec
        label.  Memoised per (app, model, shape); a program the
        predictor cannot analyse is skipped — prediction must never
        fail a sweep."""
        from repro.lint import predict_spec_cached

        out: Dict[str, Dict] = {}
        for key, label in self._predict_keys.items():
            try:
                prediction = predict_spec_cached(*key)
            except Exception:  # noqa: BLE001 - advisory output only
                continue
            out[label] = prediction.to_dict()
        return out

    def _record_predict_key(self, spec: RunSpec) -> None:
        try:
            forced = spec.machine_config().forced_switch_interval
        except Exception:  # noqa: BLE001 - bad overrides already failed the run
            return
        key = (
            spec.app,
            spec.model,
            spec.processors,
            spec.level,
            spec.scale,
            spec.effective_latency,
            forced,
            spec.effective_code_model.value,
        )
        self._predict_keys.setdefault(key, spec.label())

    def report(self) -> Dict:
        """Machine-readable summary of everything this engine did."""
        completed = self._counts["executed"] + self._counts["cached"]
        return {
            "predicted": self.predicted(),
            "executed": self._counts["executed"],
            "executed_by_backend": dict(
                sorted(self._executed_by_backend.items())
            ),
            "cached": self._counts["cached"],
            "memo_hits": self._counts["memo_hits"],
            "failed": self._counts["failed"],
            "deduped": self._counts["deduped"],
            "completed": completed,
            "cache_fraction": (
                self._counts["cached"] / completed if completed else 0.0
            ),
            "simulated_cycles": self._simulated_cycles,
            "run_seconds": round(self._wall_time, 3),
            "wall_seconds": round(time.perf_counter() - self._started, 3),
            "workers": self.workers,
            "quarantined": self.cache.quarantined if self.cache else 0,
            "cache_dir": str(self.cache.root) if self.cache else None,
            "runlog": str(self.runlog_path) if self.runlog_path else None,
            "peak_rss_kb": self._peak_rss_kb,
        }

    def summary_line(self) -> str:
        """One-line human rendering of :meth:`report` (for stderr)."""
        report = self.report()
        cache_part = (
            f", {report['cached']} from cache ({100 * report['cache_fraction']:.0f}%)"
            if self.cache
            else ""
        )
        quarantine_part = (
            f"; {report['quarantined']} corrupt cache entr"
            f"{'y' if report['quarantined'] == 1 else 'ies'} quarantined"
            if report["quarantined"]
            else ""
        )
        # Every execution is attributed to the backend that ran it, so a
        # mixed sweep reads e.g. "12 simulated [10 compiled, 2 interpreter]".
        backend_part = (
            " [" + ", ".join(
                f"{count} {name}"
                for name, count in report["executed_by_backend"].items()
            ) + "]"
            if report["executed_by_backend"]
            else ""
        )
        return (
            f"[engine] {report['completed']} runs "
            f"({report['executed']} simulated{backend_part}{cache_part}, "
            f"{report['failed']} failed, {report['memo_hits']} memo hits), "
            f"{report['simulated_cycles']:,} cycles in {report['wall_seconds']:.1f}s "
            f"with {report['workers']} worker(s){quarantine_part}"
        )

    # -- payload plumbing ------------------------------------------------------

    def _log_run(
        self,
        spec: RunSpec,
        key: str,
        payload: Dict,
        source: str,
        wall_cycles: Optional[int],
    ) -> None:
        """Append one telemetry entry for a resolved spec (never raises —
        telemetry must not fail a sweep)."""
        rss = payload.get("peak_rss_kb")
        if source != "cached":  # cached payloads carry the *original* run's RSS
            if rss is not None and (
                self._peak_rss_kb is None or rss > self._peak_rss_kb
            ):
                self._peak_rss_kb = rss
        if self.runlog_path is None:
            return
        try:
            if self._runlog_writer is None:
                self._runlog_writer = RunLogWriter(self.runlog_path)
            entry = {
                "ts": round(time.time(), 3),
                "spec": spec.label(),
                "key": key,
                "app": spec.app,
                "model": spec.model,
                "source": source,
                "elapsed": round(float(payload.get("elapsed", 0.0)), 4),
                "worker": payload.get("worker"),
                "peak_rss_kb": rss,
                "wall_cycles": wall_cycles,
            }
            if "error" in payload:
                entry["error"] = payload["error"]
            self._runlog_writer.append(entry)
        except OSError as error:  # pragma: no cover - disk-full etc.
            print(f"[engine] run log unavailable ({error})", file=sys.stderr)
            self.runlog_path = None

    def _absorb(
        self, spec: RunSpec, key: str, payload: Dict, source: str, total: int
    ) -> Optional[SimulationResult]:
        """Fold one payload into the memo + counters; returns the restored
        result, or ``None`` (and records the failure) for error payloads."""
        recorder = self.spans
        if recorder is not None and payload.get("spans"):
            # Worker-side spans came back inside the payload; they
            # already carry the submitting request's trace id.
            recorder.absorb(payload["spans"])
        elapsed = float(payload.get("elapsed", 0.0))
        self._wall_time += elapsed if source == "run" else 0.0
        if "error" in payload:
            self._failures[key] = payload["error"]
            self._counts["failed"] += 1
            self._log_run(spec, key, payload, "failed", None)
            self._notify(spec, "failed", elapsed, total)
            return None
        if recorder is not None:
            deserialize_span = recorder.start(
                "deserialize", parent=self._trace,
                attributes={"spec": spec.label(), "source": source},
            )
        result = SimulationResult.from_dict(payload["result"])
        if recorder is not None:
            recorder.finish(deserialize_span)
        self._memo[key] = result
        self._record_predict_key(spec)
        if source == "run":
            self._counts["executed"] += 1
            backend = resolve_backend(spec.backend)
            self._executed_by_backend[backend] = (
                self._executed_by_backend.get(backend, 0) + 1
            )
            self._simulated_cycles += result.wall_cycles
        else:
            self._counts["cached"] += 1
        self._log_run(spec, key, payload, source, result.wall_cycles)
        self._notify(spec, source, elapsed, total)
        return result

    def _from_disk(self, key: str) -> Optional[Dict]:
        return self.cache.get(key) if self.cache is not None else None

    def _persist(self, key: str, payload: Dict) -> None:
        if self.cache is not None:
            if "spans" in payload:
                # Spans are per-request wall-clock telemetry, not part
                # of the result: cached payloads must stay byte-stable
                # regardless of who asked with tracing on.
                payload = {
                    name: value for name, value in payload.items()
                    if name != "spans"
                }
            self.cache.put(key, payload)

    # -- execution -------------------------------------------------------------

    def failure(self, key: str) -> Optional[Dict]:
        """The recorded error payload (``{"type", "message"}``) for a
        spec key, or ``None`` — how callers using ``on_error="record"``
        (and the serve layer) recover *why* a slot came back ``None``."""
        return self._failures.get(key)

    def run(self, spec: RunSpec) -> SimulationResult:
        """Execute (or recall) one spec; raises on failure."""
        saved = self._trace
        if self.spans is not None and saved is None:
            # No ambient trace: root a fresh one so this call's spans
            # (cache-lookup, dispatch, simulate...) share a trace id.
            self._trace = SpanContext(new_trace_id(), new_span_id())
        try:
            return self._run_one(spec)
        finally:
            self._trace = saved

    def _run_one(self, spec: RunSpec) -> SimulationResult:
        spec = self._effective(spec)
        key = spec.key()
        recorder = self.spans
        lookup = (
            recorder.start(
                "cache-lookup", parent=self._trace,
                attributes={"spec": spec.label()},
            )
            if recorder is not None
            else None
        )
        if key in self._memo:
            self._counts["memo_hits"] += 1
            if lookup is not None:
                recorder.finish(lookup.set(outcome="memo"))
            return self._memo[key]
        if key in self._failures:
            if lookup is not None:
                recorder.finish(lookup.set(outcome="memo"))
            _raise_payload_error(self._failures[key])
        payload = self._from_disk(key)
        if lookup is not None:
            recorder.finish(
                lookup.set(outcome="hit" if payload is not None else "miss")
            )
        if payload is not None:
            result = self._absorb(spec, key, payload, "cached", total=1)
            if result is None:
                _raise_payload_error(self._failures[key])
            return result
        live, payload = self._execute_local(spec)
        self._persist(key, payload)
        restored = self._absorb(spec, key, payload, "run", total=1)
        if restored is None:
            _raise_payload_error(self._failures[key])
        # In-process execution produced a live result (shared memory and
        # thread contexts attached); prefer it over the JSON round-trip so
        # direct callers keep full fidelity.  Cached/parallel paths return
        # the restored object — the analysis layer never needs more.
        if live is not None:
            self._memo[key] = live
            return live
        return restored

    def _execute_local(
        self, spec: RunSpec
    ) -> Tuple[Optional[SimulationResult], Dict]:
        """In-process execution returning (live result | None, payload).

        When spans are recording, the execution is wrapped in a
        ``dispatch`` span exactly like a pool submission, so serial and
        pooled runs produce the same span tree shape.
        """
        recorder = self.spans
        if recorder is None:
            return _execute_payload(spec, lint=self.lint)
        dispatch = recorder.start(
            "dispatch", parent=self._trace,
            attributes={"spec": spec.label(), "mode": "serial"},
        )
        live, payload = _execute_payload(
            spec, lint=self.lint,
            span_context=(dispatch.trace_id, dispatch.span_id),
        )
        recorder.finish(dispatch, status="ok" if "error" not in payload else "error")
        return live, payload

    def _run_serial_one(self, spec: RunSpec, key: str, total: int) -> None:
        live, payload = self._execute_local(spec)
        self._persist(key, payload)
        self._absorb(spec, key, payload, "run", total)
        if live is not None:
            self._memo[key] = live

    #: Fresh worker pools tried after a pool death before degrading to
    #: serial execution (one transient crash — an OOM-killed worker —
    #: should not serialise a whole sweep).
    _POOL_RESTARTS = 1

    def _run_pooled(
        self, pending: List[Tuple[int, RunSpec, str]], total: int
    ) -> None:
        """Execute *pending* on the worker pool, surviving worker deaths.

        Each future gets a wall-clock deadline stamped at *submission* —
        a true per-run budget.  (Collection happens in input order, so a
        per-collection ``result(timeout=...)`` would let earlier waits
        eat later runs' budgets; with deadlines, time spent waiting on
        run A also counts against run B, which has been executing — or
        queued — just as long.)  A result that already landed is never
        discarded, even if collected after its deadline.

        On ``BrokenProcessPool`` the not-yet-resolved specs are
        resubmitted to a fresh pool (:attr:`_POOL_RESTARTS` times), then
        executed serially — a worker crash degrades throughput, never
        completeness.
        """
        restarts = 0
        remaining = list(pending)
        while remaining:
            pool = self._ensure_pool()
            if pool is None:
                for index, spec, key in remaining:
                    self._run_serial_one(spec, key, total)
                return
            recorder = self.spans
            submitted = []
            for index, spec, key in remaining:
                # Extra args only when spans/linting are on: test doubles
                # (and older pickled workers) keep the plain (spec)
                # signature.
                if recorder is not None:
                    dispatch = recorder.start(
                        "dispatch", parent=self._trace,
                        attributes={"spec": spec.label(), "mode": "pool"},
                    )
                    future = pool.submit(
                        execute_spec, spec, False, self.lint,
                        (dispatch.trace_id, dispatch.span_id),
                    )
                elif self.lint:
                    dispatch = None
                    future = pool.submit(execute_spec, spec, False, True)
                else:
                    dispatch = None
                    future = pool.submit(execute_spec, spec)
                deadline = (
                    time.monotonic() + self.timeout
                    if self.timeout is not None
                    else None
                )
                submitted.append((index, spec, key, future, deadline, dispatch))
            leftovers: List[Tuple[int, RunSpec, str]] = []
            broken = False
            for index, spec, key, future, deadline, dispatch in submitted:
                try:
                    budget = (
                        None
                        if deadline is None
                        else max(0.0, deadline - time.monotonic())
                    )
                    payload = future.result(timeout=budget)
                except concurrent.futures.TimeoutError:
                    future.cancel()
                    if dispatch is not None:
                        recorder.finish(dispatch, status="timeout")
                    payload = {
                        "spec": spec.to_dict(),
                        "error": {
                            "type": "EngineRunError",
                            "message": (
                                f"{spec.label()}: per-run timeout "
                                f"after {self.timeout}s"
                            ),
                        },
                        "elapsed": self.timeout or 0.0,
                    }
                    # Wall-clock timeouts are machine load, not physics:
                    # never persisted, so a retry gets a fresh chance.
                    self._absorb(spec, key, payload, "run", total)
                    continue
                except (
                    concurrent.futures.process.BrokenProcessPool,
                    concurrent.futures.CancelledError,
                ):
                    # The pool died under this spec (or cancelled it
                    # while dying); queue it for the retry round.
                    if dispatch is not None:
                        recorder.finish(dispatch, status="retry")
                    broken = True
                    leftovers.append((index, spec, key))
                    continue
                if dispatch is not None:
                    recorder.finish(
                        dispatch,
                        status="ok" if "error" not in payload else "error",
                    )
                self._persist(key, payload)
                self._absorb(spec, key, payload, "run", total)
            if not leftovers:
                return
            if broken and self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
            if restarts < self._POOL_RESTARTS:
                restarts += 1
                print(
                    f"[engine] worker pool died; retrying {len(leftovers)} "
                    "unresolved run(s) in a fresh pool",
                    file=sys.stderr,
                )
            else:
                print(
                    "[engine] worker pool died again; finishing "
                    f"{len(leftovers)} run(s) serially",
                    file=sys.stderr,
                )
                self._pool_broken = True
            remaining = leftovers

    def run_many(
        self,
        specs: Sequence[RunSpec],
        on_error: str = "raise",
        progress: Union[ProgressFn, None, bool] = False,
        timeout: Union[float, None, bool] = False,
        trace=None,
    ) -> List[Optional[SimulationResult]]:
        """Execute a sweep; results come back in input order.

        ``on_error="raise"`` re-raises the first failure (after the whole
        sweep has been collected); ``on_error="record"`` leaves ``None``
        in the failed slots — callers that *expect* timeouts (the
        forced-interval ablation) use this and re-raise per spec later.

        *progress* and *timeout* override the engine-level settings for
        this call only (``False``, the default, means "inherit"; ``None``
        disables) — the hook long-lived callers (the serve scheduler)
        use to give each batch its own deadline and progress sink.

        *trace* is an optional :class:`~repro.obs.spans.SpanContext`
        (or ``(trace_id, span_id)`` pair) the batch's spans parent
        under — how one served job's engine work joins the submitting
        request's trace.
        """
        if on_error not in ("raise", "record"):
            raise ValueError("on_error must be 'raise' or 'record'")
        saved = (self.progress, self.timeout, self._trace)
        if progress is not False:
            self.progress = progress
        if timeout is not False:
            self.timeout = timeout
        if trace is None and self.spans is not None:
            trace = self._trace or SpanContext(new_trace_id(), new_span_id())
        self._trace = trace
        try:
            return self._run_many(specs, on_error)
        finally:
            self.progress, self.timeout, self._trace = saved

    def _run_many(
        self, specs: Sequence[RunSpec], on_error: str
    ) -> List[Optional[SimulationResult]]:
        specs = [self._effective(spec) for spec in specs]
        keys = [spec.key() for spec in specs]
        total = len(specs)

        # Resolve memo + disk hits first, and dedupe what remains: a
        # batch containing N copies of one spec submits it to the pool
        # (and writes the cache) exactly once; the other N-1 slots are
        # fanned out from the memo at collection time below.
        pending: List[Tuple[int, RunSpec, str]] = []
        claimed = set()
        recorder = self.spans
        for index, (spec, key) in enumerate(zip(specs, keys)):
            lookup = (
                recorder.start(
                    "cache-lookup", parent=self._trace,
                    attributes={"spec": spec.label()},
                )
                if recorder is not None
                else None
            )
            if key in self._memo or key in self._failures:
                self._counts["memo_hits"] += 1
                if lookup is not None:
                    recorder.finish(lookup.set(outcome="memo"))
                continue
            payload = self._from_disk(key)
            if payload is not None:
                if lookup is not None:
                    recorder.finish(lookup.set(outcome="hit"))
                self._absorb(spec, key, payload, "cached", total)
                continue
            if key not in claimed:
                claimed.add(key)
                pending.append((index, spec, key))
                if lookup is not None:
                    recorder.finish(lookup.set(outcome="miss"))
            else:
                self._counts["deduped"] += 1
                if lookup is not None:
                    recorder.finish(lookup.set(outcome="deduped"))

        if len(pending) > 1 and self._ensure_pool() is not None:
            self._run_pooled(pending, total)
        else:
            for index, spec, key in pending:
                self._run_serial_one(spec, key, total)

        results: List[Optional[SimulationResult]] = []
        first_failure: Optional[Dict] = None
        for spec, key in zip(specs, keys):
            if key in self._failures:
                if first_failure is None:
                    first_failure = self._failures[key]
                results.append(None)
            else:
                results.append(self._memo[key])
        if first_failure is not None and on_error == "raise":
            _raise_payload_error(first_failure)
        return results
