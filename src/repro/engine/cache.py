"""Content-addressed on-disk cache of completed simulation runs.

Each completed :class:`~repro.engine.spec.RunSpec` is persisted as one
JSON file under ``<root>/<code-version>/<spec-key>.json``, where the
code version is a hash of every ``repro`` source file.  Keying by code
version means a rebuilt simulator silently invalidates *all* prior
results (stale numbers can never leak into a table), while repeated or
interrupted sweeps at the same version resume instantly.

Writes are atomic (temp file + ``os.replace``), so a run killed
mid-write leaves no corrupt entries.  Entries that are nonetheless
unreadable (disk corruption, a foreign writer) are *quarantined* — moved
to ``<root>/quarantine/`` and counted — rather than silently re-missed:
the bytes stay available for diagnosis and the sweep proceeds as if the
entry were absent.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


@functools.lru_cache(maxsize=1)
def code_version() -> str:
    """Hash of every ``repro/**/*.py`` source file (sorted by relative
    path) — the cache-invalidation fence."""
    import repro

    package_root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


class ResultCache:
    """Persistent spec-keyed store of run payloads (JSON dictionaries).

    *version* defaults to :func:`code_version`; tests override it to
    exercise invalidation without editing source files.
    """

    def __init__(self, root: Optional[Path] = None, version: Optional[str] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.version = version if version is not None else code_version()
        self.hits = 0
        self.misses = 0
        #: Corrupt entries moved aside by :meth:`get` this session.
        self.quarantined = 0

    @property
    def _bucket(self) -> Path:
        return self.root / self.version

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt entries end up (shared across code versions;
        the original version prefixes each file name)."""
        return self.root / "quarantine"

    @property
    def runlog_path(self) -> Path:
        """Where the engine's run log lives (shared across code versions,
        since the log records history rather than reusable results)."""
        return self.root / "runlog.jsonl"

    def _path(self, key: str) -> Path:
        return self._bucket / f"{key}.json"

    def get(self, key: str) -> Optional[Dict]:
        """Stored payload for *key*, or ``None``.

        A present-but-undecodable entry is moved to
        :attr:`quarantine_dir` and counted in :attr:`quarantined` (it
        still reads as a miss, so the spec simply re-executes)."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            self.misses += 1
            self._quarantine(path, key)
            return None
        self.hits += 1
        return payload

    def _quarantine(self, path: Path, key: str) -> None:
        """Move a corrupt entry aside (best effort — a cache must never
        fail a sweep, so a failed move degrades to a plain miss)."""
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / f"{self.version}-{key}.json")
            self.quarantined += 1
        except OSError:
            pass

    def put(self, key: str, payload: Dict) -> None:
        """Atomically persist *payload* under *key*."""
        self._bucket.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(
            dir=self._bucket, prefix=f".{key}.", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(temp_name, self._path(key))
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        if not self._bucket.is_dir():
            return 0
        return sum(1 for _ in self._bucket.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry at the current code version; returns the
        number removed."""
        removed = 0
        if self._bucket.is_dir():
            for path in self._bucket.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
