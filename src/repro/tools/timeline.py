"""ASCII processor-occupancy timelines.

This is one of the views over the :mod:`repro.obs` event stream (the
Chrome ``trace_event`` exporter in :mod:`repro.obs.chrome` is another).
Both functions here accept either

* the classic burst tuples ``(start, pid, tid, end, outcome)`` — what
  ``Simulator.timeline`` returns under ``record_timeline=True``, or
* a stream of :class:`~repro.obs.events.TraceEvent` objects (for
  example ``RingTracer.events()``), from which the BURST events are
  extracted automatically.

:func:`render_timeline` buckets the bursts into a fixed-width chart,
one row per processor, marking each bucket with the thread that was
busiest in it (``.`` = idle).

This is the fastest way to *see* the paper's Section 6.2 anomaly: under
conditional-switch without the forced interval, one thread's mark fills
a processor's whole row while its siblings — one of them holding the
work-queue lock everyone else spins on — never appear.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.obs.events import TraceEvent, bursts

_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

BurstEvent = Tuple[int, int, int, int, int]  # start, pid, tid, end, outcome


def _as_bursts(events: Iterable) -> List[BurstEvent]:
    """Normalize either burst tuples or a TraceEvent stream to bursts."""
    events = list(events)
    if events and isinstance(events[0], TraceEvent):
        return list(bursts(events))
    return events


def render_timeline(
    events: Sequence[BurstEvent],
    num_processors: int,
    width: int = 72,
    until: "int | None" = None,
) -> str:
    """Render the burst *events* as one occupancy row per processor."""
    events = _as_bursts(events)
    if not events:
        return "(empty timeline)"
    horizon = until if until is not None else max(end for _s, _p, _t, end, _o in events)
    horizon = max(horizon, 1)
    bucket = max(1, -(-horizon // width))
    # busy[pid][col][tid] = cycles of tid in that bucket
    busy: List[List[Dict[int, int]]] = [
        [dict() for _ in range(width)] for _ in range(num_processors)
    ]
    for start, pid, tid, end, _outcome in events:
        # Widen degenerate (zero-length) bursts to one cycle *before*
        # clamping to the horizon — the other order used to push a
        # one-cycle mark past ``until``.  Events at/after the horizon
        # are simply outside the chart.
        if end <= start:
            end = start + 1
        if start >= horizon:
            continue
        end = min(end, horizon)
        col = start // bucket
        position = start
        while position < end and col < width:
            span = min(end, (col + 1) * bucket) - position
            cell = busy[pid][col]
            cell[tid] = cell.get(tid, 0) + span
            position += span
            col += 1
    lines = [
        f"processor occupancy, {horizon} cycles in {width} buckets of "
        f"{bucket} (glyph = busiest thread, '.' = idle)"
    ]
    for pid in range(num_processors):
        row = []
        for col in range(width):
            cell = busy[pid][col]
            if not cell:
                row.append(".")
            else:
                tid = max(cell, key=cell.get)
                row.append(_GLYPHS[tid % len(_GLYPHS)])
        lines.append(f"P{pid}: " + "".join(row))
    return "\n".join(lines)


def timeline_summary(
    events: Sequence[BurstEvent], num_processors: int
) -> Dict[int, Dict[int, int]]:
    """Busy cycles per thread per processor: {pid: {tid: cycles}}."""
    events = _as_bursts(events)
    summary: Dict[int, Dict[int, int]] = {pid: {} for pid in range(num_processors)}
    for start, pid, tid, end, _outcome in events:
        summary[pid][tid] = summary[pid].get(tid, 0) + max(0, end - start)
    return summary
