"""ASCII processor-occupancy timelines.

Enable recording with ``MachineConfig(record_timeline=True)``; the
simulator then appends one ``(start, processor, thread, end, outcome)``
tuple per burst.  :func:`render_timeline` buckets those bursts into a
fixed-width chart, one row per processor, marking each bucket with the
thread that was busiest in it (``.`` = idle).

This is the fastest way to *see* the paper's Section 6.2 anomaly: under
conditional-switch without the forced interval, one thread's mark fills
a processor's whole row while its siblings — one of them holding the
work-queue lock everyone else spins on — never appear.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

BurstEvent = Tuple[int, int, int, int, int]  # start, pid, tid, end, outcome


def render_timeline(
    events: Sequence[BurstEvent],
    num_processors: int,
    width: int = 72,
    until: "int | None" = None,
) -> str:
    """Render the burst *events* as one occupancy row per processor."""
    if not events:
        return "(empty timeline)"
    horizon = until if until is not None else max(end for _s, _p, _t, end, _o in events)
    horizon = max(horizon, 1)
    bucket = max(1, -(-horizon // width))
    # busy[pid][col][tid] = cycles of tid in that bucket
    busy: List[List[Dict[int, int]]] = [
        [dict() for _ in range(width)] for _ in range(num_processors)
    ]
    for start, pid, tid, end, _outcome in events:
        end = min(end, horizon)
        if end <= start:
            end = start + 1
        col = start // bucket
        position = start
        while position < end and col < width:
            span = min(end, (col + 1) * bucket) - position
            cell = busy[pid][col]
            cell[tid] = cell.get(tid, 0) + span
            position += span
            col += 1
    lines = [
        f"processor occupancy, {horizon} cycles in {width} buckets of "
        f"{bucket} (glyph = busiest thread, '.' = idle)"
    ]
    for pid in range(num_processors):
        row = []
        for col in range(width):
            cell = busy[pid][col]
            if not cell:
                row.append(".")
            else:
                tid = max(cell, key=cell.get)
                row.append(_GLYPHS[tid % len(_GLYPHS)])
        lines.append(f"P{pid}: " + "".join(row))
    return "\n".join(lines)


def timeline_summary(
    events: Sequence[BurstEvent], num_processors: int
) -> Dict[int, Dict[int, int]]:
    """Busy cycles per thread per processor: {pid: {tid: cycles}}."""
    summary: Dict[int, Dict[int, int]] = {pid: {} for pid in range(num_processors)}
    for start, pid, tid, end, _outcome in events:
        summary[pid][tid] = summary[pid].get(tid, 0) + max(0, end - start)
    return summary
