"""Inspection tools for simulation runs.

* :mod:`repro.tools.timeline` — ASCII Gantt charts of which thread held
  each processor over time (built from ``MachineConfig.record_timeline``
  data); makes scheduling pathologies like the Section 6.2 starvation
  visible at a glance.
"""

from repro.tools.timeline import render_timeline, timeline_summary

__all__ = ["render_timeline", "timeline_summary"]
