"""Minimal plain-text table renderer for the benchmark harness output."""

from __future__ import annotations

from typing import List, Sequence


class TextTable:
    """Fixed-column text table with a title, rendered ruler-style.

    >>> t = TextTable("demo", ["app", "value"])
    >>> t.add_row(["sor", 1.5])
    >>> print(t.render())  # doctest: +ELLIPSIS
    demo
    ...
    """

    def __init__(self, title: str, headers: Sequence[str]):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, cells: Sequence) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([self._format(cell) for cell in cells])

    @staticmethod
    def _format(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title]
        ruler = "-+-".join("-" * w for w in widths)
        lines.append(ruler)
        lines.append(
            " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append(ruler)
        for row in self.rows:
            lines.append(
                " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
            )
        lines.append(ruler)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
