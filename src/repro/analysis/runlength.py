"""Run-length distribution rows in the paper's Table 2 / Table 4 format.

The paper bins run lengths (busy cycles between taken context switches)
as 1, 2, 3-5, 6-10, 11-100 and >100 cycles, plus the mean.
"""

from __future__ import annotations

from typing import Dict, List

from repro.machine.stats import SimStats

#: Inclusive upper bin bounds used by the paper.
RUN_BINS: List[int] = [1, 2, 5, 10, 100]

#: Column labels derived from RUN_BINS.
RUN_BIN_LABELS: List[str] = ["1", "2", "3-5", "6-10", "11-100", ">100"]


def run_length_row(stats: SimStats) -> Dict[str, float]:
    """One application's run-length distribution as percentages + mean.

    Keys match :data:`RUN_BIN_LABELS`, plus ``'mean'``.
    """
    fractions = stats.run_length_fractions(RUN_BINS)
    row = {label: 100.0 * fractions[label] for label in RUN_BIN_LABELS}
    row["mean"] = stats.mean_run_length
    return row


def format_row_cells(row: Dict[str, float]) -> List[str]:
    """Render a :func:`run_length_row` as table cells (percentages)."""
    cells = [f"{row[label]:.0f}%" for label in RUN_BIN_LABELS]
    cells.append(f"{row['mean']:.1f}")
    return cells
