"""Efficiency measurement and multithreading-level search.

The paper's efficiency metric is ``speedup / processors`` relative to a
single *zero-latency* processor (Section 3.2).  Tables 3, 5, 6 and 8
report, per application, the multithreading level (threads per
processor) needed to reach 50/60/70/80/90% efficiency at a fixed
processor count; the level search here mirrors that: raise M until the
target is met, or until adding threads stops helping (the fixed-size
problem has run out of parallelism, exactly the effect the paper
describes).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps.base import AppSpec
from repro.compiler.passes import prepare_for_model
from repro.machine.config import MachineConfig
from repro.machine.models import SwitchModel
from repro.machine.simulator import SimulationResult
from repro.runtime.execution import run_app

EFFICIENCY_TARGETS: List[float] = [0.5, 0.6, 0.7, 0.8, 0.9]


def single_thread_cycles(spec: AppSpec, size: Dict) -> int:
    """Cycles on the ideal single processor (Table 1's "Cycles")."""
    app = spec.build(1, **size)
    config = MachineConfig(model=SwitchModel.IDEAL)
    return run_app(app, config).wall_cycles


def run_model(
    spec: AppSpec,
    size: Dict,
    config: MachineConfig,
    check: bool = True,
) -> SimulationResult:
    """Build the application for *config*'s thread count, lower the code
    for the model, simulate, verify."""
    app = spec.build(config.total_threads, **size)
    program = prepare_for_model(app.program, config.model)
    return run_app(app, config, program=program, check=check)


def mt_levels_for_efficiency(
    spec: AppSpec,
    size: Dict,
    base_config: MachineConfig,
    targets: Sequence[float] = tuple(EFFICIENCY_TARGETS),
    max_level: int = 32,
    t1: Optional[int] = None,
) -> Dict[float, Optional[int]]:
    """Smallest threads-per-processor reaching each efficiency target.

    ``None`` means the target was not reachable before *max_level* or
    before efficiency stopped improving (paper: "the applications enter
    the domain where the problem sizes are too small for the number of
    threads").
    """
    if t1 is None:
        t1 = single_thread_cycles(spec, size)
    needed: Dict[float, Optional[int]] = {target: None for target in targets}
    best = -1.0
    stale_rounds = 0
    for level in range(1, max_level + 1):
        config = base_config.replace(threads_per_processor=level)
        result = run_model(spec, size, config)
        efficiency = result.efficiency(t1)
        for target in targets:
            if needed[target] is None and efficiency >= target:
                needed[target] = level
        if all(value is not None for value in needed.values()):
            break
        if efficiency > best + 1e-9:
            best = efficiency
            stale_rounds = 0
        else:
            stale_rounds += 1
            if stale_rounds >= 3:  # adding threads has stopped helping
                break
    return needed


def reorganization_penalty(spec: AppSpec, size: Dict) -> float:
    """Table 5's last column: extra single-processor time of the grouped
    code (added SWITCH slots + scheduling changes) over the original."""
    app = spec.build(1, **size)
    config = MachineConfig(model=SwitchModel.IDEAL)
    original = run_app(app, config).wall_cycles
    grouped = prepare_for_model(app.program, SwitchModel.EXPLICIT_SWITCH)
    # The IDEAL machine executes SWITCH as a one-cycle no-op, exposing
    # exactly the instruction-overhead component of the penalty.
    reorganised = run_app(app, config, program=grouped).wall_cycles
    return (reorganised - original) / original
