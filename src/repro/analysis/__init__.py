"""Analysis: turning simulation statistics into the paper's tables.

* :mod:`repro.analysis.tablefmt` — plain-text table rendering;
* :mod:`repro.analysis.runlength` — run-length distribution rows
  (Tables 2 and 4);
* :mod:`repro.analysis.efficiency` — efficiency, multithreading-level
  search (Tables 3, 5, 6, 8), reorganisation penalty (Table 5);
* :mod:`repro.analysis.bandwidth` — hit-rate / bits-per-cycle rows
  (Section 6.1's bandwidth table).
"""

from repro.analysis.tablefmt import TextTable
from repro.analysis.asciiplot import efficiency_chart
from repro.analysis.runlength import RUN_BINS, run_length_row
from repro.analysis.efficiency import (
    single_thread_cycles,
    run_model,
    mt_levels_for_efficiency,
    reorganization_penalty,
    EFFICIENCY_TARGETS,
)
from repro.analysis.bandwidth import bandwidth_row

__all__ = [
    "TextTable",
    "efficiency_chart",
    "RUN_BINS",
    "run_length_row",
    "single_thread_cycles",
    "run_model",
    "mt_levels_for_efficiency",
    "reorganization_penalty",
    "EFFICIENCY_TARGETS",
    "bandwidth_row",
]
