"""Minimal ASCII line charts for the efficiency figures.

The paper's Figures 2 and 3 are efficiency-vs-processors curves; the
harness renders them both as data tables (exact values) and as an ASCII
chart (shape at a glance).  No plotting dependency is needed.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

_MARKS = "ox+*#@%&"


def efficiency_chart(
    series: Dict[str, Dict[int, float]],
    x_values: Sequence[int],
    title: str,
    width: int = 60,
    height: int = 16,
    x_label: str = "processors",
) -> str:
    """Render efficiency curves (y in [0, 1]) over *x_values*.

    *series* maps a curve name to ``{x: efficiency}``.  X positions are
    spread evenly (the paper's processor axes are logarithmic-ish steps,
    so even spacing reads better than linear scaling).
    """
    if not series or not x_values:
        return title + "\n(no data)"
    canvas: List[List[str]] = [[" "] * width for _ in range(height)]
    positions = {
        x: round(index * (width - 1) / max(1, len(x_values) - 1))
        for index, x in enumerate(x_values)
    }

    def row_of(value: float) -> int:
        clamped = min(1.0, max(0.0, value))
        return (height - 1) - round(clamped * (height - 1))

    legend = []
    for index, (name, points) in enumerate(series.items()):
        mark = _MARKS[index % len(_MARKS)]
        legend.append(f"{mark} {name}")
        for x in x_values:
            if x not in points:
                continue
            row = row_of(points[x])
            col = positions[x]
            canvas[row][col] = mark

    lines = [title]
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            label = "1.0 |"
        elif row_index == height - 1:
            label = "0.0 |"
        elif row_index == row_of(0.5):
            label = "0.5 |"
        else:
            label = "    |"
        lines.append(label + "".join(row))
    lines.append("    +" + "-" * width)
    ticks = [" "] * width
    for x, col in positions.items():
        text = str(x)
        start = min(col, width - len(text))
        for offset, char in enumerate(text):
            ticks[start + offset] = char
    lines.append("     " + "".join(ticks) + f"   ({x_label})")
    lines.append("     " + "   ".join(legend))
    return "\n".join(lines)
