"""Bandwidth and hit-rate rows for the Section 6.1 table.

The paper reports, per application, the cache hit rate on shared loads
and the per-processor network bandwidth in bits per cycle (forward plus
return traffic, spin-synchronisation messages excluded).  The headline:
with caching, every application except mp3d drops well under 4 bits per
cycle.
"""

from __future__ import annotations

from typing import Dict

from repro.machine.simulator import SimulationResult


def bandwidth_row(result: SimulationResult) -> Dict[str, float]:
    """Hit rate / bandwidth summary of one run."""
    stats = result.stats
    return {
        "hit_rate": stats.hit_rate,
        "bits_per_cycle": stats.bandwidth_bits_per_cycle(),
        "messages": sum(stats.msg_counts.values()),
        "sync_messages_excluded": stats.sync_msgs,
    }
