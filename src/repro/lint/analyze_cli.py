"""``repro-analyze`` — static performance prediction and validation.

Examples::

    repro-analyze sieve                    # per-model bound table
    repro-analyze --all --json pred.json   # machine-readable predictions
    repro-analyze sor --sarif sor.sarif    # lint findings as SARIF
    repro-analyze --all --validate         # predicted vs measured gate
    repro-analyze --validate --seeds 25    # + differential synth seeds
    repro-analyze --selftest               # prove the validator's teeth

Exit status: 0 on success, 1 when validation (or the self-test) found
violations, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys


def _bound(value) -> str:
    return "inf" if value is None else str(value)


def _render_prediction(name: str, prediction) -> str:
    header = (
        f"{name} @ P={prediction.processors} M={prediction.level} "
        f"L={prediction.latency}"
    )
    lines = [header]
    lines.append(
        f"  {'model':22s} {'run[min,max]':>14s} {'sw[min,max]':>14s} "
        f"{'util<=':>8s} {'sites':>6s} {'mean~':>7s}"
    )
    for model_name, model in sorted(prediction.models.items()):
        runs = f"[{model.run_min},{_bound(model.run_max)}]"
        switches = f"[{model.switch_min},{_bound(model.switch_max)}]"
        lines.append(
            f"  {model_name:22s} {runs:>14s} {switches:>14s} "
            f"{model.utilization_bound:8.3f} "
            f"{model.static_switch_sites:6d} "
            f"{model.mean_run_estimate:7.1f}"
        )
    functions = prediction.call_graph.get("functions", [])
    if functions:
        lines.append(f"  call graph: {len(functions)} function(s)")
        for fn in functions:
            label = fn["label"] or f"pc {fn['entry_pc']}"
            lines.append(
                f"    {label}: {len(fn['callers'])} call site(s), "
                f"{fn['instructions']} instruction(s), "
                f"{fn['shared_loads']} shared load(s)"
            )
    bounded = sum(
        1 for loop in prediction.loops if loop.trips is not None
    )
    if prediction.loops:
        lines.append(
            f"  loops: {len(prediction.loops)} "
            f"({bounded} with static trip counts)"
        )
    return "\n".join(lines)


def _cmd_analyze(args) -> int:
    from repro.apps.registry import app_names, get_app
    from repro.harness.sizes import sizes_for
    from repro.lint.predict import predict_program
    from repro.machine.models import SwitchModel

    apps = args.apps or (app_names() if args.all else None)
    if not apps:
        print(
            "repro-analyze: name at least one application or pass --all",
            file=sys.stderr,
        )
        return 2
    try:
        models = (
            [SwitchModel.parse(m) for m in args.model]
            or list(SwitchModel)
        )
        nthreads = args.processors * args.level
        predictions = {}
        for name in apps:
            spec = get_app(name)
            app = spec.build(nthreads, **sizes_for(spec.name, args.scale))
            predictions[name] = predict_program(
                app.program,
                models,
                latency=args.latency,
                processors=args.processors,
                level=args.level,
            )
    except (KeyError, ValueError) as error:
        print(f"repro-analyze: {error}", file=sys.stderr)
        return 2

    for name, prediction in predictions.items():
        print(_render_prediction(name, prediction))

    status = 0
    payload = {
        "scale": args.scale,
        "predictions": {
            name: prediction.to_dict()
            for name, prediction in predictions.items()
        },
    }
    if args.validate or args.seeds:
        payload["validation"] = _run_validation(args, apps, models)
        if not payload["validation"]["ok"]:
            status = 1
    if args.json:
        if args.json == "-":
            json.dump(payload, sys.stdout, indent=2, sort_keys=True)
            print()
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            print(f"[analyze] wrote {args.json}", file=sys.stderr)
    if args.sarif:
        _write_sarif(args, apps, models)
    return status


def _run_validation(args, apps, models) -> dict:
    """Differential predicted-vs-measured gate (apps + synth seeds)."""
    from repro.lint.validate import validate_apps, validate_synth_seeds

    summary: dict = {"ok": True}
    if args.validate:
        app_summary = validate_apps(
            apps,
            [m.value for m in models],
            scale=args.scale,
            processors=args.processors,
            level=args.level,
            latency=args.latency,
        )
        summary["apps"] = app_summary
        summary["ok"] = summary["ok"] and app_summary["ok"]
        print(
            f"[analyze] apps: {len(app_summary['cells'])} cell(s), "
            f"{len(app_summary['violations'])} violation(s)",
            file=sys.stderr,
        )
        for violation in app_summary["violations"]:
            print(
                f"  {violation['invariant']}: {violation['message']}",
                file=sys.stderr,
            )
    if args.seeds:
        from repro.synth.fuzz import FuzzOptions

        synth_summary = validate_synth_seeds(
            range(args.seeds),
            options=FuzzOptions(models=tuple(m.value for m in models)),
            bundle_dir=args.bundle_dir,
        )
        summary["synth"] = synth_summary
        summary["ok"] = summary["ok"] and synth_summary["ok"]
        print(
            f"[analyze] synth: {synth_summary['seeds']} seed(s), "
            f"{synth_summary['failures']} failure(s)",
            file=sys.stderr,
        )
        for path in synth_summary["bundles"]:
            print(f"  bundle: {path}", file=sys.stderr)
    return summary


def _write_sarif(args, apps, models) -> None:
    from repro.lint import lint_matrix
    from repro.lint.sarif import write_sarif

    reports = list(
        lint_matrix(
            apps,
            models,
            nthreads=args.processors * args.level,
            scale=args.scale,
        )
    )
    write_sarif(args.sarif, reports, tool_name="repro-analyze")
    print(f"[analyze] wrote {args.sarif}", file=sys.stderr)


def _cmd_selftest(args) -> int:
    from repro.lint.validate import SelfTestError, run_selftest

    try:
        summary = run_selftest(seed=args.seed)
    except SelfTestError as error:
        print(f"repro-analyze: selftest FAILED: {error}", file=sys.stderr)
        return 1
    print(
        f"[analyze] selftest passed: {len(summary)} unsound bound(s) "
        "caught and shrunk",
        file=sys.stderr,
    )
    for name, entry in sorted(summary.items()):
        print(
            f"  {name}: {entry['invariant']} "
            f"({entry['original_segments']}->"
            f"{entry['shrunk_segments']} segments)"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Interprocedural static performance prediction: "
        "run-length/switch bounds per switch model, with differential "
        "validation against the simulator.",
    )
    parser.add_argument(
        "apps",
        nargs="*",
        help="applications to analyze (Table 1 names or synth:<seed>)",
    )
    parser.add_argument(
        "--all", action="store_true", help="analyze every Table 1 application"
    )
    parser.add_argument(
        "--model",
        action="append",
        default=[],
        metavar="MODEL",
        help="switch model(s) to predict (repeatable; default: all eight)",
    )
    parser.add_argument(
        "--scale", default="tiny", help="problem scale (default: tiny)"
    )
    parser.add_argument(
        "--processors", type=int, default=2, help="processor count (P)"
    )
    parser.add_argument(
        "--level", type=int, default=2, help="threads per processor (M)"
    )
    parser.add_argument(
        "--latency", type=int, default=200,
        help="memory round-trip latency in cycles (default: 200)",
    )
    parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="dump predictions (and validation) as JSON "
        "(to stdout with no PATH)",
    )
    parser.add_argument(
        "--sarif",
        default=None,
        metavar="PATH",
        help="also lint the selected apps and export SARIF 2.1.0",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="simulate every cell and gate the static bounds against "
        "measured statistics",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=0,
        metavar="N",
        help="also validate N synthetic fuzz kernels (seeds 0..N-1)",
    )
    parser.add_argument(
        "--bundle-dir",
        default=None,
        metavar="DIR",
        help="write shrunk repro bundles for failing seeds here",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="corrupt the predictor deliberately and prove the "
        "validator catches it",
    )
    parser.add_argument(
        "--seed", type=int, default=3, help="selftest victim seed"
    )
    args = parser.parse_args(argv)
    try:
        if args.selftest:
            return _cmd_selftest(args)
        return _cmd_analyze(args)
    except BrokenPipeError:  # e.g. `repro-analyze --all | head`
        sys.stderr.close()
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
