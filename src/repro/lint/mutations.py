"""Mutation self-tests: prove every lint rule actually fires.

A linter whose rules never trigger is indistinguishable from one that
works.  This module builds a small *victim* program that lints fully
clean (zero diagnostics of any severity, under every switch model), then
applies one deliberate, seeded corruption per rule and asserts the rule
reports it.  :func:`run_selftest` is wired into the ``repro-lint
--selftest`` CLI and the ``tests/test_lint_mutations.py`` suite.

Corruptions are applied *in place* on a finalized copy — exactly the
kind of breakage the linter exists to catch, since ``finalize()`` can
only validate what it can see at assembly time.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from repro.compiler.passes import prepare_for_model
from repro.isa.builder import ProgramBuilder
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    Op,
    OP_SIG,
    Sig,
    BLOCK_TERMINATORS,
    SHARED_STORES,
)
from repro.isa.program import Program
from repro.isa.registers import NUM_REGS, TID_REG
from repro.machine.models import SwitchModel
from repro.runtime.sync import (
    emit_barrier,
    emit_lock_acquire,
    emit_lock_release,
)
from repro.lint import lint_pair, lint_program
from repro.lint.diagnostics import LintReport
from repro.lint.rules import RULES


class SelfTestError(AssertionError):
    """A lint rule failed to fire (or the victim was not clean)."""


def build_victim() -> Program:
    """A small, fully clean SPMD kernel: two groupable shared loads, FP
    arithmetic, a loop, and a shared store to a thread-unique address."""
    b = ProgramBuilder()
    base = b.int_reg("base")
    b.add(base, "args", "tid")  # per-thread slot address (tid-derived)
    a = b.int_reg("a")
    c = b.int_reg("c")
    b.lws(a, "args", 0)  # independent loads: one group, one SWITCH
    b.lws(c, "args", 1)
    total = b.int_reg("total")
    b.add(total, a, c)
    x = b.fp_reg("x")
    y = b.fp_reg("y")
    b.fli(x, 1.5)
    b.cvtif(y, total)
    b.fadd(x, x, y)
    out = b.int_reg("out")
    b.cvtfi(out, x)
    i = b.int_reg("i")
    with b.for_range(i, 0, 4):
        b.addi(out, out, 1)
    b.sws(out, base, 8)
    b.halt()
    return b.build("victim")


def build_sync_victim() -> Program:
    """A kernel exercising the synchronisation exemptions of the race
    rule: a barrier, then a store to a *shared global* (address not
    thread-unique) inside a ticket-lock critical section — clean only
    because the sync-marked FAA of the lock dominates the store."""
    b = ProgramBuilder()
    emit_barrier(b, "args", "ntid")
    lock = b.int_reg("lock")
    b.addi(lock, "args", 2)
    ticket = emit_lock_acquire(b, lock)
    value = b.int_reg("value")
    b.li(value, 7)
    b.sws(value, "args", 4)  # global address; guarded by the lock
    emit_lock_release(b, lock, ticket)
    b.halt()
    return b.build("sync-victim")


def _mutable_copy(program: Program) -> Program:
    """Finalized deep copy whose instructions we are allowed to corrupt."""
    return program.copy()


def _pick(rng: random.Random, candidates: List[int], what: str) -> int:
    if not candidates:
        raise SelfTestError(f"victim has no mutation site for {what}")
    return rng.choice(candidates)


# ---------------------------------------------------------------------------
# one corruption per rule; each returns the report of the broken program
# ---------------------------------------------------------------------------

def _mutate_operand_range(rng: random.Random) -> LintReport:
    victim = _mutable_copy(build_victim())
    pc = _pick(rng, [
        index for index, ins in enumerate(victim.instructions)
        if OP_SIG[ins.op] is Sig.R3
    ], "an R3 instruction")
    victim.instructions[pc].rs2 = NUM_REGS + rng.randrange(1, 32)
    return lint_program(victim)


def _mutate_operand_kind(rng: random.Random) -> LintReport:
    victim = _mutable_copy(build_victim())
    pc = _pick(rng, [
        index for index, ins in enumerate(victim.instructions)
        if ins.op in (Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV)
    ], "an FP arithmetic instruction")
    victim.instructions[pc].rs1 = rng.randrange(1, 32)  # integer file
    return lint_program(victim)


def _mutate_arity(rng: random.Random) -> LintReport:
    victim = _mutable_copy(build_victim())
    pc = _pick(rng, [
        index for index, ins in enumerate(victim.instructions)
        if ins.op is Op.HALT
    ], "a HALT")
    victim.instructions[pc].rd = rng.randrange(1, 32)
    return lint_program(victim)


def _mutate_branch_target(rng: random.Random) -> LintReport:
    victim = _mutable_copy(build_victim())
    pc = _pick(rng, [
        index for index, ins in enumerate(victim.instructions)
        if OP_SIG[ins.op] in (Sig.BR2, Sig.JMP)
    ], "a branch")
    victim.instructions[pc].target = len(victim.instructions) + rng.randrange(1, 9)
    return lint_program(victim)


def _mutate_fall_off_end(rng: random.Random) -> LintReport:
    victim = _mutable_copy(build_victim())
    halt_pc = max(
        index for index, ins in enumerate(victim.instructions)
        if ins.op is Op.HALT
    )
    victim.instructions[halt_pc] = Instruction(Op.NOP)
    return lint_program(victim)


def _mutate_no_halt(rng: random.Random) -> LintReport:
    victim = _mutable_copy(build_victim())
    halt_pc = max(
        index for index, ins in enumerate(victim.instructions)
        if ins.op is Op.HALT
    )
    spin = Instruction(Op.J)  # halt becomes an infinite self-loop
    spin.target = halt_pc
    victim.instructions[halt_pc] = spin
    return lint_program(victim)


def _mutate_unreachable(rng: random.Random) -> LintReport:
    victim = _mutable_copy(build_victim())
    instructions = victim.instructions
    targeted = {ins.target for ins in instructions} | set(victim.labels.values())
    pc = _pick(rng, [
        index for index in range(len(instructions) - 2)
        if instructions[index].op not in BLOCK_TERMINATORS
        and instructions[index + 1].op not in BLOCK_TERMINATORS
        and index + 1 not in targeted
    ], "a skippable instruction")
    jump = Instruction(Op.J)  # jump over pc+1, stranding it
    jump.target = pc + 2
    instructions[pc] = jump
    return lint_program(victim)


def _mutate_use_before_def(rng: random.Random) -> LintReport:
    victim = _mutable_copy(build_victim())
    pc = _pick(rng, [
        index for index, ins in enumerate(victim.instructions)
        if ins.op in (Op.LI, Op.FLI)
    ], "an immediate load")
    victim.instructions[pc] = Instruction(Op.NOP)
    return lint_program(victim)


def _mutate_dead_write(rng: random.Random) -> LintReport:
    victim = _mutable_copy(build_victim())
    pc = _pick(rng, [
        index for index, ins in enumerate(victim.instructions)
        if ins.op in SHARED_STORES
    ], "a shared store")
    victim.instructions[pc] = Instruction(Op.NOP)  # orphans its inputs
    return lint_program(victim)


def _mutate_group_switch(rng: random.Random) -> LintReport:
    model = SwitchModel.EXPLICIT_SWITCH
    prepared = _mutable_copy(prepare_for_model(build_victim(), model))
    pc = _pick(rng, [
        index for index, ins in enumerate(prepared.instructions)
        if ins.op is Op.SWITCH
    ], "a SWITCH")
    prepared.instructions[pc] = Instruction(Op.NOP)  # group never closes
    return lint_program(prepared, model, prepared=True)


def _mutate_use_model_switch(rng: random.Random) -> LintReport:
    model = SwitchModel.SWITCH_ON_USE
    prepared = _mutable_copy(prepare_for_model(build_victim(), model))
    pc = _pick(rng, [
        index for index, ins in enumerate(prepared.instructions)
        if ins.op is Op.NOP or OP_SIG[ins.op] is Sig.R3
    ], "a replaceable instruction")
    prepared.instructions[pc] = Instruction(Op.SWITCH)
    return lint_program(prepared, model, prepared=True)


def _mutate_grouping_permutation(rng: random.Random) -> LintReport:
    from repro.isa.instruction import instr_reads, instr_writes

    model = SwitchModel.SWITCH_ON_USE  # stripped code: no SWITCH rules
    original = build_victim()
    prepared = _mutable_copy(prepare_for_model(original, model))
    instructions = prepared.instructions
    targeted = {ins.target for ins in instructions} | set(prepared.labels.values())
    candidates = [
        index for index in range(len(instructions) - 1)
        if instructions[index].op not in BLOCK_TERMINATORS
        and instructions[index + 1].op not in BLOCK_TERMINATORS
        and index + 1 not in targeted
        and (set(instr_writes(instructions[index])) - {0})
        & set(instr_reads(instructions[index + 1]))
    ]
    pc = _pick(rng, candidates, "an adjacent RAW pair")
    instructions[pc], instructions[pc + 1] = instructions[pc + 1], instructions[pc]
    return lint_pair(original, prepared, model)


def _mutate_shared_store_race(rng: random.Random) -> LintReport:
    victim = _mutable_copy(build_victim())
    pcs = [
        index for index, ins in enumerate(victim.instructions)
        if TID_REG in (ins.rs1, ins.rs2) and ins.op not in BLOCK_TERMINATORS
    ]
    pc = _pick(rng, pcs, "a tid read")
    ins = victim.instructions[pc]  # sever the thread-unique derivation
    if ins.rs1 == TID_REG:
        ins.rs1 = 0
    if ins.rs2 == TID_REG:
        ins.rs2 = 0
    return lint_program(victim)


def _mutate_lock_order(rng: random.Random) -> LintReport:
    """Two ticket locks taken as A->B on one path and B->A later: the
    classic deadlock-capable ordering cycle."""
    b = ProgramBuilder()
    lock_a = b.int_reg("lock_a")
    lock_b = b.int_reg("lock_b")
    b.addi(lock_a, "args", 2)
    b.addi(lock_b, "args", 4)
    first = emit_lock_acquire(b, lock_a)
    second = emit_lock_acquire(b, lock_b)
    emit_lock_release(b, lock_b, second)
    emit_lock_release(b, lock_a, first)
    second = emit_lock_acquire(b, lock_b)  # reverse order this time
    first = emit_lock_acquire(b, lock_a)
    emit_lock_release(b, lock_a, first)
    emit_lock_release(b, lock_b, second)
    b.halt()
    return lint_program(b.build("lock-order-victim"))


def _mutate_unreleased_lock(rng: random.Random) -> LintReport:
    """A critical section that halts without ever releasing its lock —
    every other thread spins on the serving word forever."""
    b = ProgramBuilder()
    lock = b.int_reg("lock")
    b.addi(lock, "args", 2)
    emit_lock_acquire(b, lock)
    value = b.int_reg("value")
    b.li(value, 7)
    b.sws(value, "args", 4)
    b.halt()  # missing emit_lock_release
    return lint_program(b.build("unreleased-victim"))


def _mutate_barrier_participation(rng: random.Random) -> LintReport:
    """A barrier guarded by ``if tid == 0`` — only one thread arrives,
    and it spins on the generation word forever."""
    b = ProgramBuilder()
    only = b.int_reg("only")
    b.li(only, 0)
    with b.if_cmp("eq", "tid", only):
        emit_barrier(b, "args", "ntid")
    b.halt()
    return lint_program(b.build("barrier-victim"))


def _mutate_group_advice(rng: random.Random) -> LintReport:
    """Original (unprepared) code bound for a grouping model with two
    independent shared loads separated by unrelated work — the exact
    shape Section 5.1 grouping improves."""
    b = ProgramBuilder()
    a = b.int_reg("a")
    c = b.int_reg("c")
    filler = b.int_reg("filler")
    b.lws(a, "args", 0)
    b.li(filler, 3)  # unrelated work keeps the loads apart
    b.lws(c, "args", 1)
    total = b.int_reg("total")
    b.add(total, a, c)
    b.add(total, total, filler)
    base = b.int_reg("base")
    b.add(base, "args", "tid")
    b.sws(total, base, 8)
    b.halt()
    return lint_program(
        b.build("advice-victim"), SwitchModel.EXPLICIT_SWITCH,
        prepared=False,
    )


MUTATIONS: Dict[str, Callable[[random.Random], LintReport]] = {
    "isa-operand-range": _mutate_operand_range,
    "isa-operand-kind": _mutate_operand_kind,
    "isa-arity": _mutate_arity,
    "isa-branch-target": _mutate_branch_target,
    "isa-fall-off-end": _mutate_fall_off_end,
    "isa-no-halt": _mutate_no_halt,
    "isa-unreachable-code": _mutate_unreachable,
    "df-use-before-def": _mutate_use_before_def,
    "df-dead-write": _mutate_dead_write,
    "paper-group-switch": _mutate_group_switch,
    "paper-use-model-switch": _mutate_use_model_switch,
    "paper-grouping-permutation": _mutate_grouping_permutation,
    "paper-shared-store-race": _mutate_shared_store_race,
    "sync-lock-order": _mutate_lock_order,
    "sync-unreleased-lock": _mutate_unreleased_lock,
    "sync-barrier-participation": _mutate_barrier_participation,
    "advice-group-loads": _mutate_group_advice,
}


def run_selftest(seed: int = 0) -> Dict:
    """Assert the victims lint clean and every rule fires post-mutation.

    Returns a summary dictionary (consumed by ``repro-lint --selftest``);
    raises :class:`SelfTestError` on the first failure.
    """
    missing = set(RULES) - set(MUTATIONS)
    if missing:
        raise SelfTestError(f"rules without a mutation: {sorted(missing)}")

    for program in (build_victim(), build_sync_victim()):
        for model in SwitchModel:
            report = lint_pair(
                program, prepare_for_model(program, model), model
            )
            if report.diagnostics:
                raise SelfTestError(
                    f"victim not clean: {report.render()}"
                )

    rng = random.Random(seed)
    fired: Dict[str, int] = {}
    for rule_id, mutate in sorted(MUTATIONS.items()):
        report = mutate(rng)
        hits = report.by_rule(rule_id)
        if not hits:
            raise SelfTestError(
                f"rule {rule_id} did not fire on its mutation; "
                f"report: {report.render()}"
            )
        fired[rule_id] = len(hits)
    return {
        "seed": seed,
        "rules_proven": len(fired),
        "diagnostics": fired,
    }
