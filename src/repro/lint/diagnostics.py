"""Structured lint diagnostics and the report container.

Every finding is a :class:`Diagnostic` — a rule id, a severity, the
program counter and basic block it anchors to, the rendered assembly of
the offending line, and a human message.  A :class:`LintReport` collects
the findings for one (program, model) pair and renders them as text or
JSON; :meth:`LintReport.raise_on_error` is the gate used by
``prepare_for_model(..., lint=True)`` and ``Engine(lint=True)``.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterable, List, Optional


class Severity(enum.IntEnum):
    """Diagnostic severity.  Only ERROR findings fail a lint gate."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: "str | Severity") -> "Severity":
        if isinstance(text, cls):
            return text
        try:
            return cls[text.strip().upper()]
        except KeyError:
            known = ", ".join(member.label for member in cls)
            raise ValueError(
                f"unknown severity {text!r} (known: {known})"
            ) from None


@dataclasses.dataclass(frozen=True)
class Rule:
    """Metadata of one lint rule (the registry lives in
    :mod:`repro.lint.rules`)."""

    rule_id: str
    severity: Severity
    summary: str


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One finding, anchored to a program location when one exists."""

    rule_id: str
    severity: Severity
    message: str
    program: str
    pc: Optional[int] = None  # instruction index, None for program-level
    block: Optional[int] = None  # basic-block index
    asm: Optional[str] = None  # rendered offending line

    def render(self) -> str:
        """``error[isa-branch-target] pc 42 (block 7) `beq ...`: ...``"""
        where = ""
        if self.pc is not None:
            where += f" pc {self.pc}"
        if self.block is not None:
            where += f" (block {self.block})"
        line = f" `{self.asm}`" if self.asm else ""
        return (
            f"{self.severity.label}[{self.rule_id}]{where}{line}: "
            f"{self.message}"
        )

    def to_dict(self) -> Dict:
        return {
            "rule": self.rule_id,
            "severity": self.severity.label,
            "message": self.message,
            "program": self.program,
            "pc": self.pc,
            "block": self.block,
            "asm": self.asm,
        }


def apply_rule_filters(
    report: "LintReport",
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    overrides: Optional[Dict[str, Severity]] = None,
) -> "LintReport":
    """A new report with rule-id filters applied.

    *select* keeps only the named rules (``None`` keeps all), *ignore*
    drops the named rules, and *overrides* re-levels findings per rule
    id — so a policy can e.g. promote ``advice-group-loads`` to a gating
    error or silence a known-noisy warning without touching the rules.
    """
    selected = set(select) if select is not None else None
    ignored = set(ignore or ())
    levels = overrides or {}
    kept = []
    for diagnostic in report.diagnostics:
        if selected is not None and diagnostic.rule_id not in selected:
            continue
        if diagnostic.rule_id in ignored:
            continue
        if diagnostic.rule_id in levels:
            diagnostic = dataclasses.replace(
                diagnostic, severity=levels[diagnostic.rule_id]
            )
        kept.append(diagnostic)
    return LintReport(
        report.program,
        report.model,
        kept,
        instructions=report.instructions,
        blocks=report.blocks,
    )


class LintError(Exception):
    """Raised by a lint gate when error-severity diagnostics exist; the
    offending :class:`LintReport` is attached as ``report``."""

    def __init__(self, report: "LintReport"):
        self.report = report
        errors = report.by_severity(Severity.ERROR)
        preview = "; ".join(d.render() for d in errors[:3])
        if len(errors) > 3:
            preview += f"; ... {len(errors) - 3} more"
        super().__init__(
            f"lint failed for {report.subject()}: "
            f"{len(errors)} error(s): {preview}"
        )


class LintReport:
    """All diagnostics for one linted program (or transform pair)."""

    def __init__(
        self,
        program: str,
        model: Optional[str] = None,
        diagnostics: Optional[Iterable[Diagnostic]] = None,
        instructions: int = 0,
        blocks: int = 0,
    ):
        self.program = program
        self.model = model
        self.diagnostics: List[Diagnostic] = []
        self._seen: set = set()
        self.instructions = instructions
        self.blocks = blocks
        self.extend(diagnostics or ())

    # -- accounting ----------------------------------------------------------

    @staticmethod
    def _order_key(diagnostic: Diagnostic):
        return (
            diagnostic.pc if diagnostic.pc is not None else -1,
            diagnostic.rule_id,
        )

    def add(self, diagnostic: Diagnostic) -> None:
        """Record one finding.  Identical (rule, pc, message) findings
        collapse to a single entry, and the report stays sorted stably
        by (pc, rule) so JSON output is byte-deterministic regardless of
        rule execution order."""
        key = (diagnostic.rule_id, diagnostic.pc, diagnostic.message)
        if key in self._seen:
            return
        self._seen.add(key)
        order = self._order_key(diagnostic)
        position = len(self.diagnostics)
        while position > 0 and self._order_key(
            self.diagnostics[position - 1]
        ) > order:
            position -= 1
        self.diagnostics.insert(position, diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        for diagnostic in diagnostics:
            self.add(diagnostic)

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule_id == rule_id]

    @property
    def rules_fired(self) -> List[str]:
        return sorted({d.rule_id for d in self.diagnostics})

    @property
    def errors(self) -> int:
        return len(self.by_severity(Severity.ERROR))

    @property
    def warnings(self) -> int:
        return len(self.by_severity(Severity.WARNING))

    @property
    def infos(self) -> int:
        return len(self.by_severity(Severity.INFO))

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostics exist."""
        return self.errors == 0

    def raise_on_error(self) -> "LintReport":
        """Gate: raise :class:`LintError` when errors exist; chains."""
        if not self.ok:
            raise LintError(self)
        return self

    # -- rendering -----------------------------------------------------------

    def subject(self) -> str:
        if self.model:
            return f"{self.program} [{self.model}]"
        return self.program

    def summary_line(self) -> str:
        verdict = "ok" if self.ok else "FAIL"
        return (
            f"{self.subject()}: {verdict} "
            f"({self.errors}E {self.warnings}W {self.infos}I, "
            f"{self.instructions} instructions, {self.blocks} blocks)"
        )

    def render(self, min_severity: Severity = Severity.INFO) -> str:
        """Summary line plus one indented line per finding at or above
        *min_severity*, in program order."""
        lines = [self.summary_line()]
        shown = [
            d for d in self.diagnostics if d.severity >= min_severity
        ]
        shown.sort(
            key=lambda d: (
                d.pc if d.pc is not None else -1,
                -int(d.severity),
                d.rule_id,
            )
        )
        lines.extend(f"  {d.render()}" for d in shown)
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "program": self.program,
            "model": self.model,
            "instructions": self.instructions,
            "blocks": self.blocks,
            "errors": self.errors,
            "warnings": self.warnings,
            "infos": self.infos,
            "ok": self.ok,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LintReport {self.summary_line()}>"
