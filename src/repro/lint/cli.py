"""``repro-lint`` — static analysis of benchmark programs.

Examples::

    repro-lint --all                      # every app x every model
    repro-lint sieve mp3d --model eswitch --model sou
    repro-lint --all --scale small --threads 8 --json report.json
    repro-lint --selftest                 # prove every rule fires

Exit status: 0 when no error-severity diagnostics exist, 1 when any do
(warnings and infos never fail the gate), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.lint import lint_matrix
from repro.lint.diagnostics import Severity, apply_rule_filters


def _check_rule_ids(ids) -> None:
    """Reject unknown rule ids, listing the valid vocabulary."""
    from repro.lint.rules import RULES

    unknown = sorted(set(ids) - set(RULES))
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(unknown)} "
            f"(valid: {', '.join(sorted(RULES))})"
        )


def parse_rule_filters(args):
    """(select, ignore, overrides) from ``--select``/``--ignore``/
    ``--severity RULE=LEVEL`` flags; raises ``ValueError`` on unknown
    rule ids or malformed overrides."""
    select = set(args.select) if args.select else None
    if select is not None:
        _check_rule_ids(select)
    ignore = set(args.ignore)
    _check_rule_ids(ignore)
    overrides = {}
    for item in args.severity:
        rule, sep, level = item.partition("=")
        if not sep:
            raise ValueError(
                f"--severity expects RULE=LEVEL, got {item!r}"
            )
        _check_rule_ids([rule])
        overrides[rule] = Severity.parse(level)
    return select, ignore, overrides


def _cmd_lint(args) -> int:
    from repro.apps.registry import app_names
    from repro.machine.models import SwitchModel

    apps = args.apps or (app_names() if args.all else None)
    if not apps:
        print(
            "repro-lint: name at least one application or pass --all",
            file=sys.stderr,
        )
        return 2
    try:
        select, ignore, overrides = parse_rule_filters(args)
        models = [SwitchModel.parse(m) for m in args.model] or list(SwitchModel)
        reports = list(
            lint_matrix(apps, models, nthreads=args.threads, scale=args.scale)
        )
    except (KeyError, ValueError) as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return 2
    if select is not None or ignore or overrides:
        reports = [
            apply_rule_filters(report, select, ignore, overrides)
            for report in reports
        ]

    min_severity = Severity.INFO if args.verbose else Severity.WARNING
    failed = 0
    for report in reports:
        if report.diagnostics or args.verbose:
            print(report.render(min_severity))
        else:
            print(report.summary_line())
        if not report.ok:
            failed += 1
    total_diags = sum(len(report.diagnostics) for report in reports)
    print(
        f"[lint] {len(reports)} program(s) checked: "
        f"{len(reports) - failed} clean, {failed} failing, "
        f"{total_diags} diagnostic(s) total",
        file=sys.stderr,
    )
    if args.json:
        payload = {
            "programs": len(reports),
            "failing": failed,
            "reports": [report.to_dict() for report in reports],
        }
        if args.json == "-":
            json.dump(payload, sys.stdout, indent=2)
            print()
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
            print(f"[lint] wrote {args.json}", file=sys.stderr)
    if args.sarif:
        from repro.lint.sarif import write_sarif

        write_sarif(args.sarif, reports)
        print(f"[lint] wrote {args.sarif}", file=sys.stderr)
    return 1 if failed else 0


def _cmd_selftest(args) -> int:
    from repro.lint.mutations import SelfTestError, run_selftest

    try:
        summary = run_selftest(seed=args.seed)
    except SelfTestError as error:
        print(f"repro-lint: selftest FAILED: {error}", file=sys.stderr)
        return 1
    print(
        f"[lint] selftest passed: {summary['rules_proven']} rule(s) "
        f"proven live (seed {summary['seed']})",
        file=sys.stderr,
    )
    for rule_id, count in sorted(summary["diagnostics"].items()):
        print(f"  {rule_id}: fired {count}x")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Statically verify benchmark programs and the "
        "compiler's paper invariants.",
    )
    parser.add_argument(
        "apps", nargs="*", help="applications to lint (default: see --all)"
    )
    parser.add_argument(
        "--all", action="store_true", help="lint every Table 1 application"
    )
    parser.add_argument(
        "--model",
        action="append",
        default=[],
        metavar="MODEL",
        help="switch model(s) to prepare code for (repeatable; "
        "default: all eight)",
    )
    parser.add_argument(
        "--scale", default="tiny", help="problem scale (default: tiny)"
    )
    parser.add_argument(
        "--threads", type=int, default=2, help="thread count to build for"
    )
    parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="dump the full report as JSON (to stdout with no PATH)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULE",
        help="keep only the named rule id(s) (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULE",
        help="drop the named rule id(s) (repeatable)",
    )
    parser.add_argument(
        "--severity",
        action="append",
        default=[],
        metavar="RULE=LEVEL",
        help="override one rule's severity (info/warning/error; "
        "repeatable)",
    )
    parser.add_argument(
        "--sarif",
        default=None,
        metavar="PATH",
        help="also export the findings as a SARIF 2.1.0 document",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="show info-severity findings and clean reports in full",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="run the mutation self-test instead of linting apps",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="selftest mutation seed"
    )
    args = parser.parse_args(argv)
    try:
        if args.selftest:
            return _cmd_selftest(args)
        return _cmd_lint(args)
    except BrokenPipeError:  # e.g. `repro-lint --all | head`
        sys.stderr.close()
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
