"""Static analysis of ISA programs and compiler-pass invariants.

The linter verifies — without simulating a single cycle — that a
finalized :class:`~repro.isa.program.Program` is well-formed and that the
Section 5.1 post-processor upheld the paper's contracts:

* ``isa-*`` rules: operand ranges/kinds, arity hygiene, branch targets,
  reachability of a HALT, unreachable code;
* ``df-*`` rules: use-before-def and dead writes via bitset dataflow
  over the CFG (:mod:`repro.lint.dataflow`);
* ``paper-*`` rules: grouped code closes every shared-load group with a
  SWITCH before a use, use-model code carries no SWITCH, grouping is a
  dependence-preserving permutation per block, and shared stores target
  thread-unique or sync-guarded addresses.

Entry points:

* :func:`lint_program` — one program (optionally as *prepared* code for
  a model, enabling the model-specific rules);
* :func:`lint_pair` — original + prepared code, adding the permutation
  cross-check; this is the ``prepare_for_model(..., lint=True)`` gate;
* :func:`lint_app_model` / :func:`lint_spec` — build a benchmark app,
  lower it for a model, and lint the pair (``lint_spec_cached`` memoises
  per process for the serve scheduler's hot path);
* the ``repro-lint`` CLI (``python -m repro.lint``).

The rules themselves are proven live by seeded mutation self-tests
(:mod:`repro.lint.mutations`): each rule must fire on a deliberately
broken program and stay silent on the clean one.
"""

from __future__ import annotations

import functools
from typing import Iterable, Iterator, List, Optional, Union

from repro.isa.program import Program
from repro.machine.models import SwitchModel
from repro.lint.diagnostics import (
    Diagnostic,
    LintError,
    LintReport,
    Rule,
    Severity,
    apply_rule_filters,
)
from repro.lint.predict import (
    ModelPrediction,
    Prediction,
    ProgramAnalysis,
    call_graph,
    predict_prepared,
    predict_program,
)
from repro.lint.rules import RULES, check_transform, run_rules

__all__ = [
    "Diagnostic",
    "LintError",
    "LintReport",
    "ModelPrediction",
    "Prediction",
    "ProgramAnalysis",
    "Rule",
    "RULES",
    "Severity",
    "apply_rule_filters",
    "call_graph",
    "lint_program",
    "lint_pair",
    "lint_app_model",
    "lint_spec",
    "lint_spec_cached",
    "lint_matrix",
    "predict_prepared",
    "predict_program",
    "predict_spec_cached",
]


def lint_program(
    program: Program,
    model: Union[str, SwitchModel, None] = None,
    prepared: bool = False,
) -> LintReport:
    """Lint one finalized program.

    With *prepared* true, *program* is treated as the output of
    :func:`repro.compiler.passes.prepare_for_model` for *model*, which
    enables the model-specific SWITCH-discipline rules.
    """
    resolved = SwitchModel.parse(model) if model is not None else None
    report = LintReport(
        program.name, resolved.value if resolved else None
    )
    return run_rules(program, resolved, report, prepared=prepared)


def lint_pair(
    original: Program,
    prepared: Program,
    model: Union[str, SwitchModel],
) -> LintReport:
    """Lint *prepared* (the code the machine runs) and cross-check it
    against *original* with the grouping-permutation rule."""
    resolved = SwitchModel.parse(model)
    report = LintReport(prepared.name, resolved.value)
    run_rules(prepared, resolved, report, prepared=True)
    if resolved.wants_grouped_code and report.ok:
        # The permutation check needs trustworthy CFGs on both sides;
        # existing errors mean the prepared code is already condemned.
        check_transform(original, prepared, resolved, report)
    return report


def lint_app_model(
    app: str,
    model: Union[str, SwitchModel],
    nthreads: int = 2,
    scale: str = "tiny",
) -> LintReport:
    """Build benchmark *app* at *scale*, lower it for *model*, and lint
    original + prepared as a pair."""
    from repro.apps.registry import get_app
    from repro.compiler.passes import prepare_for_model
    from repro.harness.sizes import sizes_for

    resolved = SwitchModel.parse(model)
    spec = get_app(app)
    built = spec.build(nthreads, **sizes_for(app, scale))
    prepared = prepare_for_model(built.program, resolved)
    return lint_pair(built.program, prepared, resolved)


@functools.lru_cache(maxsize=128)
def lint_spec_cached(
    app: str, model: str, nthreads: int, scale: str
) -> LintReport:
    """Per-process memo of :func:`lint_app_model` — the serve scheduler
    lints every admitted spec, and sweeps repeat (app, model) pairs."""
    return lint_app_model(app, model, nthreads=nthreads, scale=scale)


def lint_spec(spec) -> LintReport:
    """Lint the program a :class:`~repro.engine.spec.RunSpec` would run
    (same build parameters as the engine's ``_build``)."""
    return lint_spec_cached(
        spec.app,
        spec.effective_code_model.value,
        spec.total_threads,
        spec.scale,
    )


@functools.lru_cache(maxsize=128)
def predict_spec_cached(
    app: str,
    model: str,
    processors: int,
    level: int,
    scale: str,
    latency: int,
    forced_interval: int = 200,
    code_model: Optional[str] = None,
) -> ModelPrediction:
    """Per-process memo of the static performance bounds for the program
    a :class:`~repro.engine.spec.RunSpec` would run — the engine and the
    serve scheduler attach these to every report, and sweeps repeat
    (app, model, shape) triples.  *code_model* lowers the program for a
    different model than the machine runs (the reorganisation-penalty
    experiments); the bounds always describe the *machine* model's
    switching semantics over that code."""
    from repro.apps.registry import get_app
    from repro.compiler.passes import prepare_for_model
    from repro.harness.sizes import sizes_for

    resolved = SwitchModel.parse(model)
    lowered = SwitchModel.parse(code_model) if code_model else resolved
    spec = get_app(app)
    built = spec.build(processors * level, **sizes_for(app, scale))
    prepared = prepare_for_model(built.program, lowered)
    return predict_prepared(
        prepared,
        resolved,
        latency=latency,
        processors=processors,
        level=level,
        forced_interval=forced_interval,
    )


def lint_matrix(
    apps: Optional[Iterable[str]] = None,
    models: Optional[Iterable[Union[str, SwitchModel]]] = None,
    nthreads: int = 2,
    scale: str = "tiny",
) -> Iterator[LintReport]:
    """Yield a report per (app, model) combination — all seven Table 1
    applications across all eight Figure 1 models by default."""
    from repro.apps.registry import app_names

    app_list: List[str] = list(apps) if apps else app_names()
    model_list = (
        [SwitchModel.parse(m) for m in models] if models else list(SwitchModel)
    )
    for app in app_list:
        for model in model_list:
            yield lint_app_model(app, model, nthreads=nthreads, scale=scale)
