"""Differential validation of the static predictor against the machine.

:mod:`repro.lint.predict` promises *bounds*: every fault-free simulation
of a program must land inside the predicted run-length window, below the
predicted switch ceiling and utilization/efficiency bounds.  This module
closes the loop the same way :mod:`repro.synth.fuzz` does for functional
invariants — run the real simulator, compare, and treat any escape as a
``predict-*`` violation.

Soundness caveats the checks encode:

* ``predict-run-min`` only binds on lint-clean code: the lower bound
  assumes the must-switch classification is exact, which warnings (e.g.
  ungrouped code under an explicit-switch model) explicitly void.
* ``predict-run-max`` / ``predict-switch-max`` are skipped when the
  static analysis reported ``None`` (statically unbounded).
* Only complete runs count — a timed-out or faulted simulation has no
  meaningful run-length census.

Failing synthetic seeds are shrunk with the fuzzer's segment-level
ddmin (:func:`repro.synth.generator.prune_plan`) and written as the
same JSON repro bundles ``repro-fuzz`` produces, so a predictor bug
arrives as a minimal kernel plus the first violated invariant.

:func:`run_selftest` proves the harness has teeth: it corrupts the
predictor's output three ways (a run-length ceiling of 1, a switch
ceiling of 0, a near-zero utilization bound) and asserts each unsound
table is caught *and* shrunk.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.check import Violation
from repro.compiler.passes import prepare_for_model
from repro.machine.config import MachineConfig
from repro.machine.models import SwitchModel
from repro.machine.simulator import SimulationResult
from repro.runtime.execution import run_app
from repro.lint.predict import ModelPrediction, predict_prepared

EPSILON = 1e-9

#: Grid order, every switch model.
ALL_MODELS = tuple(model.value for model in SwitchModel)


class SelfTestError(AssertionError):
    """The validator failed to catch (or shrink) an injected bug."""


#: Hook corrupting a prediction before it is checked — the self-test's
#: stand-in for a predictor bug.
Doctor = Callable[[ModelPrediction], ModelPrediction]


def prediction_violations(
    prediction: ModelPrediction,
    result: SimulationResult,
    t1: Optional[int] = None,
    lint_clean: bool = True,
    where: str = "",
) -> List[Violation]:
    """Every way *result* escapes *prediction*'s static bounds.

    Returns an empty list for incomplete runs (not all threads halted):
    bounds quantify over finished executions only.
    """
    stats = result.stats
    config = result.config
    if stats.halted_threads != config.total_threads:
        return []
    prefix = f"{where}: " if where else ""
    violations: List[Violation] = []
    runs = stats.run_lengths
    measured_max = max(runs) if runs else None
    measured_min = min(runs) if runs else None
    if (
        prediction.run_max is not None
        and measured_max is not None
        and measured_max > prediction.run_max
    ):
        violations.append(Violation(
            "predict-run-max",
            f"{prefix}measured run length {measured_max} exceeds the "
            f"static ceiling {prediction.run_max}",
        ))
    if (
        lint_clean
        and measured_min is not None
        and measured_min < prediction.run_min
    ):
        violations.append(Violation(
            "predict-run-min",
            f"{prefix}measured run length {measured_min} undercuts the "
            f"static floor {prediction.run_min}",
        ))
    if (
        prediction.switch_max is not None
        and stats.switches > prediction.switch_max
    ):
        violations.append(Violation(
            "predict-switch-max",
            f"{prefix}measured {stats.switches} switches exceed the "
            f"static ceiling {prediction.switch_max}",
        ))
    if stats.switches < prediction.switch_min:
        violations.append(Violation(
            "predict-switch-min",
            f"{prefix}measured {stats.switches} switches undercut the "
            f"static floor {prediction.switch_min}",
        ))
    if result.wall_cycles:
        utilization = stats.busy_cycles / (
            result.wall_cycles * config.num_processors
        )
        if utilization > prediction.utilization_bound + EPSILON:
            violations.append(Violation(
                "predict-utilization",
                f"{prefix}measured utilization {utilization:.4f} exceeds "
                f"the static bound {prediction.utilization_bound:.4f}",
            ))
    if t1 is not None:
        efficiency = result.efficiency(t1)
        if efficiency > prediction.efficiency_bound + EPSILON:
            violations.append(Violation(
                "predict-efficiency",
                f"{prefix}measured efficiency {efficiency:.4f} exceeds "
                f"the static bound {prediction.efficiency_bound:.4f}",
            ))
    return violations


# ---------------------------------------------------------------------------
# one (program, model) cell
# ---------------------------------------------------------------------------


def _model_config(
    model: SwitchModel, processors: int, level: int, latency: int
) -> MachineConfig:
    return MachineConfig.create(
        model=model,
        processors=processors,
        level=level,
        latency=0 if model is SwitchModel.IDEAL else latency,
    )


def check_cell(
    app,
    model: "SwitchModel | str",
    processors: int = 2,
    level: int = 2,
    latency: int = 200,
    t1: Optional[int] = None,
    doctor: Optional[Doctor] = None,
    where: str = "",
) -> Dict:
    """Predict + simulate one (built app, model) cell and compare.

    Returns a JSON-native record carrying both sides of the comparison
    (for the predicted-vs-measured tables) plus any violations.
    """
    from repro.lint import lint_pair

    resolved = SwitchModel.parse(model)
    prepared = prepare_for_model(app.program, resolved)
    config = _model_config(resolved, processors, level, latency)
    prediction = predict_prepared(
        prepared,
        resolved,
        latency=config.latency,
        processors=processors,
        level=level,
        forced_interval=config.forced_switch_interval,
    )
    if doctor is not None:
        prediction = doctor(prediction)
    lint_clean = not lint_pair(app.program, prepared, resolved).diagnostics
    result = run_app(app, config, program=prepared, check=False)
    violations = prediction_violations(
        prediction,
        result,
        t1=t1,
        lint_clean=lint_clean,
        where=where or f"{app.program.name}/{resolved.value}",
    )
    stats = result.stats
    runs = stats.run_lengths
    measured: Dict = {
        "run_min": min(runs) if runs else None,
        "run_max": max(runs) if runs else None,
        "mean_run_length": round(stats.mean_run_length, 2),
        "switches": stats.switches,
        "utilization": round(
            stats.busy_cycles / (result.wall_cycles * config.num_processors)
            if result.wall_cycles else 0.0,
            6,
        ),
        "wall_cycles": result.wall_cycles,
    }
    if t1 is not None:
        measured["efficiency"] = round(result.efficiency(t1), 6)
    return {
        "model": resolved.value,
        "lint_clean": lint_clean,
        "predicted": prediction.to_dict(),
        "measured": measured,
        "violations": [
            {"invariant": v.invariant, "message": v.message}
            for v in violations
        ],
        "_violations": violations,  # live objects, stripped by callers
    }


# ---------------------------------------------------------------------------
# the seven applications
# ---------------------------------------------------------------------------


def validate_apps(
    apps: Optional[Iterable[str]] = None,
    models: Optional[Iterable[str]] = None,
    scale: str = "tiny",
    processors: int = 2,
    level: int = 2,
    latency: int = 200,
) -> Dict:
    """Differential soundness over the benchmark grid.

    Every (application, model) cell is predicted and simulated; the
    returned summary lists every ``predict-*`` escape (an empty list is
    the gate's green light) and keeps the per-cell numbers for the
    predicted-vs-measured tables.
    """
    from repro.analysis.efficiency import single_thread_cycles
    from repro.apps.registry import app_names, get_app
    from repro.harness.sizes import sizes_for

    names = list(apps) if apps is not None else app_names()
    wanted = [
        SwitchModel.parse(m).value
        for m in (models if models is not None else ALL_MODELS)
    ]
    rows: List[Dict] = []
    violations: List[Violation] = []
    for name in names:
        spec = get_app(name)
        size = sizes_for(spec.name, scale)
        app = spec.build(processors * level, **size)
        t1 = single_thread_cycles(spec, size)
        for model in wanted:
            cell = check_cell(
                app,
                model,
                processors=processors,
                level=level,
                latency=latency,
                t1=t1,
                where=f"{name}/{model}",
            )
            violations.extend(cell.pop("_violations"))
            cell["app"] = name
            rows.append(cell)
    return {
        "scale": scale,
        "processors": processors,
        "level": level,
        "latency": latency,
        "cells": rows,
        "violations": [
            {"invariant": v.invariant, "message": v.message}
            for v in violations
        ],
        "ok": not violations,
    }


# ---------------------------------------------------------------------------
# synthetic kernels — reuse the fuzzer's plans, shrinking and bundles
# ---------------------------------------------------------------------------


def _plan_violations(
    plan: Dict,
    options,
    doctor: Optional[Doctor] = None,
) -> List[Violation]:
    """Every predict-* escape of *plan* across the model grid.

    Generated kernels are lint-clean by construction (the fuzz gate
    enforces it per seed), so the run-length floor binds everywhere.
    """
    from repro.synth.generator import build_synth_app

    app = build_synth_app(plan, options.nthreads)
    violations: List[Violation] = []
    for model in options.models:
        resolved = SwitchModel(model)
        prepared = prepare_for_model(app.program, resolved)
        config = _model_config(
            resolved, options.processors, options.level, options.latency
        )
        prediction = predict_prepared(
            prepared,
            resolved,
            latency=config.latency,
            processors=options.processors,
            level=options.level,
            forced_interval=config.forced_switch_interval,
        )
        if doctor is not None:
            prediction = doctor(prediction)
        try:
            result = run_app(app, config, program=prepared, check=False)
        except Exception as error:  # noqa: BLE001 - recorded, not raised
            violations.append(Violation(
                "run-error",
                f"{model}: {type(error).__name__}: {error}",
            ))
            continue
        violations.extend(prediction_violations(
            prediction, result, lint_clean=True, where=model
        ))
    return violations


def shrink_predict_plan(
    plan: Dict,
    invariant: str,
    options,
    doctor: Optional[Doctor] = None,
) -> Dict:
    """Minimal plan (ddmin over top-level segments, exactly the fuzzer's
    strategy) still violating *invariant*."""
    from repro.synth.generator import plan_segment_ids, prune_plan

    def still_fails(candidate: Dict) -> bool:
        return any(
            v.invariant == invariant
            for v in _plan_violations(candidate, options, doctor)
        )

    kept = plan_segment_ids(plan)
    chunk = max(1, len(kept) // 2)
    while True:
        removed_any = False
        index = 0
        while index < len(kept):
            candidate_ids = kept[:index] + kept[index + chunk:]
            if still_fails(prune_plan(plan, set(candidate_ids))):
                kept = candidate_ids
                removed_any = True
            else:
                index += chunk
        if chunk == 1:
            if not removed_any:
                break
        else:
            chunk = max(1, chunk // 2)
    return prune_plan(plan, set(kept))


def validate_synth_seed(
    seed: int,
    preset: str = "default",
    options=None,
    doctor: Optional[Doctor] = None,
):
    """One differential predictor experiment for one generated kernel;
    returns a :class:`repro.synth.fuzz.SeedOutcome` whose bundle (on
    failure) replays through the standard fuzz tooling."""
    from repro.synth.config import get_preset
    from repro.synth.fuzz import FuzzOptions, SeedOutcome, make_bundle
    from repro.synth.generator import (
        build_synth_app,
        generate_plan,
        program_fingerprint,
    )
    from repro.synth.registry import format_synth_name

    options = options or FuzzOptions()
    plan = generate_plan(seed, get_preset(preset))
    app = build_synth_app(plan, options.nthreads)
    violations = _plan_violations(plan, options, doctor)
    outcome = SeedOutcome(
        seed=seed,
        preset=preset,
        name=format_synth_name(seed, preset),
        fingerprint=program_fingerprint(app.program),
        runs=len(options.models),
        violations=violations,
    )
    if violations:
        shrunk = None
        if options.shrink:
            shrunk = shrink_predict_plan(
                plan, violations[0].invariant, options, doctor
            )
        outcome.bundle = make_bundle(outcome, plan, options, shrunk)
    return outcome


def validate_synth_seeds(
    seeds: Iterable[int],
    preset: str = "default",
    options=None,
    bundle_dir: Union[str, Path, None] = None,
    progress: Optional[Callable] = None,
) -> Dict:
    """Differential predictor campaign over generated kernels."""
    from repro.synth.fuzz import FuzzOptions, write_bundle

    options = options or FuzzOptions()
    outcomes = []
    bundles: List[str] = []
    for seed in seeds:
        outcome = validate_synth_seed(seed, preset=preset, options=options)
        outcomes.append(outcome)
        if outcome.bundle is not None and bundle_dir is not None:
            bundles.append(str(write_bundle(outcome.bundle, bundle_dir)))
        if progress is not None:
            progress(outcome)
    failures = [outcome for outcome in outcomes if not outcome.ok]
    return {
        "preset": preset,
        "options": options.to_dict(),
        "seeds": len(outcomes),
        "runs": sum(outcome.runs for outcome in outcomes),
        "failures": len(failures),
        "bundles": bundles,
        "outcomes": [outcome.to_dict() for outcome in outcomes],
        "ok": not failures,
    }


# ---------------------------------------------------------------------------
# self-test — prove an unsound predictor is caught and shrunk
# ---------------------------------------------------------------------------

def _doctor_run_max(prediction: ModelPrediction) -> ModelPrediction:
    return dataclasses.replace(prediction, run_max=1)


def _doctor_switch_max(prediction: ModelPrediction) -> ModelPrediction:
    return dataclasses.replace(prediction, switch_max=0)


def _doctor_utilization(prediction: ModelPrediction) -> ModelPrediction:
    return dataclasses.replace(prediction, utilization_bound=1e-4)


DOCTORS: Dict[str, Doctor] = {
    "run-max-unsound": _doctor_run_max,
    "switch-max-unsound": _doctor_switch_max,
    "utilization-unsound": _doctor_utilization,
}

_EXPECTED_INVARIANT = {
    "run-max-unsound": "predict-run-max",
    "switch-max-unsound": "predict-switch-max",
    "utilization-unsound": "predict-utilization",
}


def run_selftest(seed: int = 3, preset: str = "quick", options=None) -> Dict:
    """Corrupt the predictor's output three ways; assert each unsound
    cost table is caught by the right ``predict-*`` invariant and shrunk
    to a no-larger reproducer.  Raises :class:`SelfTestError` on a miss."""
    from repro.synth.fuzz import FuzzOptions
    from repro.synth.generator import generate_plan, plan_segment_ids
    from repro.synth.config import get_preset

    options = options or FuzzOptions()
    plan = generate_plan(seed, get_preset(preset))
    original_segments = len(plan_segment_ids(plan))
    if _plan_violations(plan, options):
        raise SelfTestError(
            "victim seed violates the honest predictor; "
            "pick a clean seed for the self-test"
        )
    report: Dict[str, Dict] = {}
    problems: List[str] = []
    for name, doctor in sorted(DOCTORS.items()):
        expected = _EXPECTED_INVARIANT[name]
        violations = _plan_violations(plan, options, doctor)
        caught = [v for v in violations if v.invariant == expected]
        if not caught:
            problems.append(
                f"{name}: unsound bound produced no {expected} violation"
            )
            report[name] = {"caught": False}
            continue
        shrunk = shrink_predict_plan(plan, expected, options, doctor)
        shrunk_segments = len(plan_segment_ids(shrunk))
        if shrunk_segments > original_segments:
            problems.append(
                f"{name}: shrink grew the plan "
                f"({original_segments} -> {shrunk_segments} segments)"
            )
        report[name] = {
            "caught": True,
            "invariant": expected,
            "violations": len(caught),
            "original_segments": original_segments,
            "shrunk_segments": shrunk_segments,
        }
    if problems:
        raise SelfTestError(
            "predictor validation self-test failed:\n  - "
            + "\n  - ".join(problems)
        )
    return report
