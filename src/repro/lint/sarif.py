"""SARIF 2.1.0 export for lint diagnostics.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format code-scanning UIs (GitHub, VS Code, ...)
ingest.  One :func:`reports_to_sarif` document holds a single run of the
``repro-lint`` driver over any number of programs; each
:class:`~repro.lint.diagnostics.Diagnostic` becomes a ``result`` whose
location line number is the 1-based program counter and whose snippet is
the rendered assembly of the offending instruction.

The container can't install ``jsonschema``, so :func:`validate_sarif`
structurally checks the invariants the official schema would — version
pin, driver shape, rule-table consistency, level vocabulary, location
anchoring — and the test suite runs every exported document through it.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from repro.lint.diagnostics import Diagnostic, LintReport, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: SARIF ``level`` vocabulary for each severity.
_LEVELS = {
    Severity.INFO: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}

_VALID_LEVELS = frozenset({"none", "note", "warning", "error"})


def severity_level(severity: Severity) -> str:
    """SARIF ``level`` string for *severity*."""
    return _LEVELS[severity]


def _artifact_uri(program: str) -> str:
    """A stable, URI-safe pseudo-path for one program's listing."""
    safe = "".join(
        ch if ch.isalnum() or ch in "-._" else "_" for ch in program
    )
    return f"programs/{safe or 'program'}.asm"


def _result(diagnostic: Diagnostic, rule_index: Dict[str, int]) -> Dict:
    result: Dict = {
        "ruleId": diagnostic.rule_id,
        "level": severity_level(diagnostic.severity),
        "message": {"text": diagnostic.message},
    }
    if diagnostic.rule_id in rule_index:
        result["ruleIndex"] = rule_index[diagnostic.rule_id]
    location: Dict = {
        "physicalLocation": {
            "artifactLocation": {"uri": _artifact_uri(diagnostic.program)},
        }
    }
    if diagnostic.pc is not None:
        region: Dict = {"startLine": diagnostic.pc + 1}
        if diagnostic.asm:
            region["snippet"] = {"text": diagnostic.asm}
        location["physicalLocation"]["region"] = region
    result["locations"] = [location]
    properties: Dict = {"program": diagnostic.program}
    if diagnostic.block is not None:
        properties["block"] = diagnostic.block
    result["properties"] = properties
    return result


def reports_to_sarif(
    reports: Iterable[LintReport],
    tool_name: str = "repro-lint",
    tool_version: Optional[str] = None,
) -> Dict:
    """One SARIF 2.1.0 document holding every diagnostic of *reports*."""
    from repro.lint.rules import RULES

    report_list = list(reports)
    rules_meta = [
        {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {
                "level": severity_level(rule.severity)
            },
        }
        for rule in sorted(RULES.values(), key=lambda r: r.rule_id)
    ]
    rule_index = {
        meta["id"]: position for position, meta in enumerate(rules_meta)
    }
    driver: Dict = {
        "name": tool_name,
        "informationUri": "https://github.com/oasis-tcs/sarif-spec",
        "rules": rules_meta,
    }
    if tool_version:
        driver["version"] = tool_version
    results = [
        _result(diagnostic, rule_index)
        for report in report_list
        for diagnostic in report.diagnostics
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": results,
                "properties": {
                    "programs": [r.subject() for r in report_list],
                    "errors": sum(r.errors for r in report_list),
                    "warnings": sum(r.warnings for r in report_list),
                    "infos": sum(r.infos for r in report_list),
                },
            }
        ],
    }


def write_sarif(
    path: str,
    reports: Iterable[LintReport],
    tool_name: str = "repro-lint",
) -> Dict:
    """Serialise *reports* to *path* and return the document."""
    document = reports_to_sarif(reports, tool_name=tool_name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


# ---------------------------------------------------------------------------
# structural validation (stand-in for the official JSON schema)
# ---------------------------------------------------------------------------

def validate_sarif(document: Dict) -> List[str]:
    """Check *document* against the load-bearing SARIF 2.1.0 constraints.
    Returns a list of problems — empty means structurally valid."""
    problems: List[str] = []

    def expect(condition: bool, message: str) -> bool:
        if not condition:
            problems.append(message)
        return condition

    if not expect(isinstance(document, dict), "document is not an object"):
        return problems
    expect(
        document.get("version") == SARIF_VERSION,
        f"version must be {SARIF_VERSION!r}, got "
        f"{document.get('version')!r}",
    )
    runs = document.get("runs")
    if not expect(isinstance(runs, list) and runs, "runs must be a non-empty array"):
        return problems

    for run_number, run in enumerate(runs):
        where = f"runs[{run_number}]"
        if not expect(isinstance(run, dict), f"{where} is not an object"):
            continue
        driver = run.get("tool", {}).get("driver")
        if not expect(
            isinstance(driver, dict), f"{where}.tool.driver missing"
        ):
            continue
        expect(
            isinstance(driver.get("name"), str) and driver["name"],
            f"{where}.tool.driver.name must be a non-empty string",
        )
        rules = driver.get("rules", [])
        rule_ids: List[str] = []
        if expect(isinstance(rules, list), f"{where} rules must be an array"):
            for position, rule in enumerate(rules):
                rule_where = f"{where}.rules[{position}]"
                if not expect(
                    isinstance(rule, dict) and isinstance(rule.get("id"), str),
                    f"{rule_where} must have a string id",
                ):
                    continue
                rule_ids.append(rule["id"])
                description = rule.get("shortDescription", {})
                expect(
                    isinstance(description, dict)
                    and isinstance(description.get("text"), str),
                    f"{rule_where}.shortDescription.text missing",
                )
                level = rule.get("defaultConfiguration", {}).get("level")
                expect(
                    level in _VALID_LEVELS,
                    f"{rule_where} default level {level!r} invalid",
                )
        expect(
            len(rule_ids) == len(set(rule_ids)),
            f"{where} rule ids are not unique",
        )

        results = run.get("results")
        if not expect(
            isinstance(results, list), f"{where}.results must be an array"
        ):
            continue
        for position, result in enumerate(results):
            result_where = f"{where}.results[{position}]"
            if not expect(
                isinstance(result, dict), f"{result_where} not an object"
            ):
                continue
            expect(
                isinstance(result.get("ruleId"), str),
                f"{result_where}.ruleId must be a string",
            )
            expect(
                result.get("level") in _VALID_LEVELS,
                f"{result_where}.level {result.get('level')!r} invalid",
            )
            message = result.get("message", {})
            expect(
                isinstance(message, dict)
                and isinstance(message.get("text"), str),
                f"{result_where}.message.text missing",
            )
            if "ruleIndex" in result:
                index = result["ruleIndex"]
                expect(
                    isinstance(index, int)
                    and 0 <= index < len(rule_ids)
                    and rule_ids[index] == result.get("ruleId"),
                    f"{result_where}.ruleIndex does not match the rule table",
                )
            for loc_position, location in enumerate(
                result.get("locations", ())
            ):
                loc_where = f"{result_where}.locations[{loc_position}]"
                physical = (
                    location.get("physicalLocation")
                    if isinstance(location, dict) else None
                )
                if not expect(
                    isinstance(physical, dict),
                    f"{loc_where}.physicalLocation missing",
                ):
                    continue
                artifact = physical.get("artifactLocation", {})
                expect(
                    isinstance(artifact, dict)
                    and isinstance(artifact.get("uri"), str),
                    f"{loc_where} artifact uri missing",
                )
                region = physical.get("region")
                if region is not None:
                    expect(
                        isinstance(region, dict)
                        and isinstance(region.get("startLine"), int)
                        and region["startLine"] >= 1,
                        f"{loc_where}.region.startLine must be >= 1",
                    )
    return problems
