"""Dataflow scaffolding over the compiler's basic blocks.

:class:`LintCFG` lifts :func:`repro.compiler.cfg.build_blocks` into a
real control-flow graph — block successors/predecessors, reachability
from entry, the set of blocks that can fall off the end of the program —
and the classic analyses the rules need on top of it:

* :func:`definitely_assigned` — forward *must* analysis ("on every path
  from entry, which registers have been written?"), the basis of the
  cross-block use-before-def rule;
* :func:`live_out_masks` — backward *may* liveness, the basis of the
  dead-write rule;
* :func:`dominator_masks` — iterative dominators, used by the shared-
  store race rule to recognise lock-guarded regions.

Register sets are bitmasks over the 64-slot register file (ints), which
keeps every transfer function a couple of machine ops.

Indirect jumps (``JR``) are approximated call/return style: their
successors are the blocks that immediately follow a ``JAL``.  A ``JR``
with no such return point gets no successors for the forward analyses
and a fully-live out-set for liveness, so the approximation only ever
suppresses findings, never invents them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

from repro.compiler.cfg import BasicBlock, build_blocks
from repro.isa.instruction import Instruction, instr_reads, instr_writes
from repro.isa.opcodes import Op, OP_SIG, Sig
from repro.isa.program import Program
from repro.isa.registers import NUM_REGS

ALL_REGS_MASK = (1 << NUM_REGS) - 1


def reg_mask(slots: Iterable[int]) -> int:
    """Bitmask of the register *slots* (out-of-range slots are ignored —
    the operand-range rule reports those separately)."""
    mask = 0
    for slot in slots:
        if 0 <= slot < NUM_REGS:
            mask |= 1 << slot
    return mask


class LintCFG:
    """Control-flow graph of a finalized program, built once and shared
    by every rule."""

    def __init__(self, program: Program):
        if not program.finalized:
            raise ValueError("lint requires a finalized program")
        self.program = program
        self.blocks: List[BasicBlock] = build_blocks(program)
        count = len(self.blocks)
        start_to_block: Dict[int, int] = {
            block.start: index for index, block in enumerate(self.blocks)
        }
        #: Blocks that may fall through past the last instruction.
        self.falls_off: List[int] = []
        #: Blocks ending in a JR with no known return points.
        self.indirect_exits: List[int] = []
        self.succs: List[List[int]] = [[] for _ in range(count)]
        self.preds: List[List[int]] = [[] for _ in range(count)]

        return_points = [
            start_to_block[index + 1]
            for index, ins in enumerate(program.instructions)
            if ins.op is Op.JAL and index + 1 in start_to_block
        ]

        for index, block in enumerate(self.blocks):
            for succ in self._successors_of(index, block, start_to_block,
                                            return_points):
                self.succs[index].append(succ)
                self.preds[succ].append(index)

        self.reachable = [False] * count
        if count:
            stack = [0]
            while stack:
                node = stack.pop()
                if self.reachable[node]:
                    continue
                self.reachable[node] = True
                stack.extend(self.succs[node])

    def _successors_of(
        self,
        index: int,
        block: BasicBlock,
        start_to_block: Dict[int, int],
        return_points: List[int],
    ) -> List[int]:
        terminator = block.terminator
        end = block.start + len(block.instructions)
        fall = start_to_block.get(end)

        def fall_through() -> List[int]:
            if fall is None:
                self.falls_off.append(index)
                return []
            return [fall]

        if terminator is None:
            return fall_through()
        op = terminator.op
        if op is Op.HALT:
            return []
        sig = OP_SIG[op]
        if sig is Sig.JMP:  # J, JAL
            target = start_to_block.get(terminator.target)
            return [target] if target is not None else []
        if sig is Sig.BR2:
            out = fall_through()
            target = start_to_block.get(terminator.target)
            if target is not None and target not in out:
                out.append(target)
            return out
        if op is Op.JR:
            if not return_points:
                self.indirect_exits.append(index)
            return list(dict.fromkeys(return_points))
        return fall_through()  # non-terminator opcode (defensive)

    # -- iteration helpers ---------------------------------------------------

    def instructions_of(self, index: int) -> Iterator[Tuple[int, Instruction]]:
        """Yield ``(absolute pc, instruction)`` for one block."""
        block = self.blocks[index]
        for offset, ins in enumerate(block.instructions):
            yield block.start + offset, ins

    def block_of_pc(self, pc: int) -> int:
        """Block index containing instruction *pc*."""
        for index, block in enumerate(self.blocks):
            if block.start <= pc < block.start + len(block.instructions):
                return index
        raise IndexError(pc)

    def __len__(self) -> int:
        return len(self.blocks)


def block_def_masks(cfg: LintCFG) -> List[int]:
    """Registers written anywhere inside each block."""
    defs = []
    for index in range(len(cfg)):
        mask = 0
        for _pc, ins in cfg.instructions_of(index):
            mask |= reg_mask(instr_writes(ins))
        defs.append(mask)
    return defs


def definitely_assigned(cfg: LintCFG, seed: int) -> List[int]:
    """Forward must-analysis: for each block, the registers guaranteed
    written on *every* path from entry when the block is entered.

    *seed* is the entry mask (registers the loader initialises).
    Unreachable blocks keep the TOP mask (everything assigned) so they
    never produce use-before-def noise on top of the unreachable-code
    finding.
    """
    count = len(cfg)
    defs = block_def_masks(cfg)
    in_masks = [ALL_REGS_MASK] * count
    if count:
        in_masks[0] = seed
    changed = True
    while changed:
        changed = False
        for index in range(count):
            if not cfg.reachable[index]:
                continue
            if index == 0:
                new_in = seed
            else:
                new_in = ALL_REGS_MASK
                for pred in cfg.preds[index]:
                    if cfg.reachable[pred]:
                        new_in &= in_masks[pred] | defs[pred]
                if not cfg.preds[index]:
                    new_in = seed
            if new_in != in_masks[index]:
                in_masks[index] = new_in
                changed = True
    return in_masks


def live_out_masks(cfg: LintCFG) -> List[int]:
    """Backward may-liveness: registers possibly read after each block.

    Blocks ending in an unresolvable indirect jump are given a fully
    live out-set, so the dead-write rule stays silent about code whose
    continuation the analysis cannot see.
    """
    count = len(cfg)
    gen = [0] * count  # upward-exposed reads
    kill = [0] * count
    for index in range(count):
        g = k = 0
        for _pc, ins in cfg.instructions_of(index):
            reads = reg_mask(instr_reads(ins))
            g |= reads & ~k
            k |= reg_mask(instr_writes(ins))
        gen[index], kill[index] = g, k
    live_in = [0] * count
    live_out = [0] * count
    pessimistic = set(cfg.indirect_exits)
    changed = True
    while changed:
        changed = False
        for index in range(count - 1, -1, -1):
            out = ALL_REGS_MASK if index in pessimistic else 0
            for succ in cfg.succs[index]:
                out |= live_in[succ]
            new_in = gen[index] | (out & ~kill[index])
            if out != live_out[index] or new_in != live_in[index]:
                live_out[index] = out
                live_in[index] = new_in
                changed = True
    return live_out


def dominator_masks(cfg: LintCFG) -> List[int]:
    """Iterative dominators as block-index bitmasks (``dom[b]`` has bit
    *d* set when every entry path to *b* passes through *d*).
    Unreachable blocks dominate themselves only."""
    count = len(cfg)
    if not count:
        return []
    all_blocks = (1 << count) - 1
    dom = [all_blocks] * count
    dom[0] = 1
    changed = True
    while changed:
        changed = False
        for index in range(1, count):
            if not cfg.reachable[index]:
                continue
            new = all_blocks
            for pred in cfg.preds[index]:
                if cfg.reachable[pred]:
                    new &= dom[pred]
            new |= 1 << index
            if new != dom[index]:
                dom[index] = new
                changed = True
    for index in range(count):
        if not cfg.reachable[index]:
            dom[index] = 1 << index
    return dom
