"""Static performance prediction over the lint CFG.

The paper's argument is analytical: run lengths are determined by where
a model switches, and efficiency follows from run lengths, latency and
switch cost.  This module closes the loop *statically*: from the code a
model actually runs (the output of
:func:`repro.compiler.passes.prepare_for_model`) it derives, without
simulating a cycle,

* a **call graph** over JAL/JR with context-insensitive per-function
  summaries (JR returns are folded into every JAL return point by
  :class:`~repro.lint.dataflow.LintCFG`, so every walk below is already
  interprocedural);
* **bounded-loop trip counts** — the builder's ``for_range``/``while_cmp``
  shape (init ``li``, single ``addi`` step, constant limit) is inferred
  via constant propagation and natural-loop detection, giving each block
  an execution upper bound ``max_exec`` (possibly infinite);
* per switch model, sound **run-length bounds** ``[run_min, run_max]``,
  **switch-count bounds** ``[switch_min, switch_max]`` and a
  **utilization/efficiency upper bound**, plus an (ungated) estimated
  run-length distribution in the paper's Tables 2/4 bins.

Soundness model (enforced by :mod:`repro.lint.validate` against measured
:class:`~repro.machine.stats.SimStats`): bounds hold for fault-free,
jitter-free machines with the Section 5.2 oracle off.  Upper bounds
(``run_max``, ``switch_max``, ``utilization_bound``) hold for arbitrary
programs; the lower bounds (``run_min``, ``switch_min``) additionally
assume the program lints clean for the model (no blocked in-flight uses
outside the use models), which is exactly what ``prepare_for_model``'s
lint gate guarantees.

The per-model site classification mirrors
:mod:`repro.machine.processor` exactly:

=============  =======================================  ==================
model          guaranteed switch (*must* sites)         possible extras
=============  =======================================  ==================
ideal          never                                    blocked uses (L>0)
hep            every instruction (1-cycle bursts)       reply-queue pauses
sol            every shared load / FAA / SWITCH         —
eswitch        every SWITCH opcode                      blocked uses
cswitch        SWITCH with an FAA closer than L cycles  other SWITCHes
som            every FAA (loads may hit)                load misses/forced
sou            every SWITCH opcode (stripped code: —)   first blocked use
soum           never                                    blocked use/forced
=============  =======================================  ==================

Must-site *wait* weights feed the utilization bound: a thread whose walk
has busy cost ``B`` and guaranteed wait ``W`` keeps its processor busy
at most ``B/(B+W)`` of its lifetime, so utilization is at most
``min(1, M * max_walk B/(B+W))`` — the maximum ratio over entry→HALT
walks is found by bisecting ``lambda`` on the weighted longest-walk
feasibility problem ``(1-lambda)*B - lambda*W >= 0``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.isa.instruction import Instruction, instr_reads, instr_writes
from repro.isa.opcodes import (
    Op,
    OP_SIG,
    SHARED_LOADS,
    Sig,
    instruction_cost,
)
from repro.isa.program import Program
from repro.isa.registers import ZERO_REG
from repro.machine.models import SwitchModel
from repro.analysis.runlength import RUN_BIN_LABELS, RUN_BINS
from repro.lint.dataflow import LintCFG, dominator_masks

INF = float("inf")

#: Tolerance for the utilization bisection and the float comparisons in
#: the differential validator.
EPSILON = 1e-6

#: Cap applied to loop trip estimates when weighting the (ungated)
#: run-length distribution estimate; unbounded loops count this often.
_ESTIMATE_TRIP_CAP = 100.0


def _cost(ins: Instruction) -> int:
    """Busy cycles one execution of *ins* charges the processor.  HALT
    breaks out of the dispatch loop *before* charging its cycle, so it
    contributes nothing to run lengths or busy time."""
    if ins.op is Op.HALT:
        return 0
    return instruction_cost(ins.op)


# ---------------------------------------------------------------------------
# constant propagation (trip-count support)
# ---------------------------------------------------------------------------

_CONST_LIMIT = 1 << 40  # fold results past this are dropped (overflow-safe)


def _const_transfer(state: Dict[int, int], ins: Instruction) -> None:
    """Forward transfer of the constant lattice over one instruction.
    *state* maps register slot -> known constant; absent means unknown."""
    op = ins.op
    value: Optional[int] = None
    if op is Op.LI and isinstance(ins.imm, int):
        value = ins.imm
    elif op is Op.MOV:
        value = state.get(ins.rs1)
    elif op is Op.ADDI:
        base = state.get(ins.rs1)
        if base is not None:
            value = base + ins.imm
    elif op is Op.MULI:
        base = state.get(ins.rs1)
        if base is not None:
            value = base * ins.imm
    elif op in (Op.ADD, Op.SUB, Op.MUL):
        lhs, rhs = state.get(ins.rs1), state.get(ins.rs2)
        if lhs is not None and rhs is not None:
            value = (
                lhs + rhs if op is Op.ADD
                else lhs - rhs if op is Op.SUB
                else lhs * rhs
            )
    if value is not None and abs(value) <= _CONST_LIMIT:
        state[ins.rd] = value
        return
    for slot in instr_writes(ins):
        state.pop(slot, None)


def _meet_consts(
    states: Sequence[Optional[Dict[int, int]]]
) -> Dict[int, int]:
    """Lattice meet: keep only registers every (visited) input agrees on."""
    known = [s for s in states if s is not None]
    if not known:
        return {}
    out = dict(known[0])
    for state in known[1:]:
        for slot in list(out):
            if state.get(slot) != out[slot]:
                del out[slot]
    return out


# ---------------------------------------------------------------------------
# per-program structural analysis
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class Loop:
    """One natural loop: header block, member blocks, inferred trip
    bound (``None`` when the counter pattern did not match)."""

    header: int
    blocks: Set[int]
    trips: Optional[int]

    def to_dict(self) -> Dict:
        return {
            "header_block": self.header,
            "blocks": sorted(self.blocks),
            "trips": self.trips,
        }


class ProgramAnalysis:
    """Model-independent structure of one finalized program: CFG, block
    costs, dominators, constant propagation, natural loops with trip
    bounds, and per-block execution bounds (``max_exec``)."""

    def __init__(self, program: Program):
        self.program = program
        self.cfg = LintCFG(program)
        cfg = self.cfg
        n = len(cfg)
        self.block_instrs: List[List[Tuple[int, Instruction]]] = [
            list(cfg.instructions_of(index)) for index in range(n)
        ]
        self.block_cost: List[int] = [
            sum(_cost(ins) for _pc, ins in instrs)
            for instrs in self.block_instrs
        ]
        self.halt_blocks: List[int] = [
            index for index in range(n)
            if any(ins.op is Op.HALT for _pc, ins in self.block_instrs[index])
        ]
        self.entry = 0 if n else None
        self.dom = dominator_masks(cfg)
        self._start_to_block = {
            block.start: index for index, block in enumerate(cfg.blocks)
        }
        self.coreachable = self._coreachable()
        self.const_in, self.const_out = self._propagate_constants()
        self.back_edges = self._back_edges()
        self.loops = self._find_loops()
        self.max_exec = self._max_exec()

    # -- reachability --------------------------------------------------------

    def _coreachable(self) -> List[bool]:
        """Blocks from which some HALT is reachable."""
        n = len(self.cfg)
        co = [False] * n
        stack = list(self.halt_blocks)
        while stack:
            node = stack.pop()
            if co[node]:
                continue
            co[node] = True
            stack.extend(self.cfg.preds[node])
        return co

    # -- constant propagation ------------------------------------------------

    def const_at(self, pc: int, reg: int) -> Optional[int]:
        """Known constant value of *reg* just before *pc*, or ``None``."""
        index = self.cfg.block_of_pc(pc)
        state = dict(self.const_in[index] or {})
        for ins_pc, ins in self.block_instrs[index]:
            if ins_pc == pc:
                break
            _const_transfer(state, ins)
        return state.get(reg)

    def _propagate_constants(
        self,
    ) -> Tuple[List[Optional[Dict[int, int]]], List[Optional[Dict[int, int]]]]:
        cfg = self.cfg
        n = len(cfg)
        const_in: List[Optional[Dict[int, int]]] = [None] * n
        const_out: List[Optional[Dict[int, int]]] = [None] * n
        if not n:
            return const_in, const_out
        const_in[0] = {ZERO_REG: 0}
        work = [0]
        while work:
            index = work.pop()
            state = dict(const_in[index] or {})
            for _pc, ins in self.block_instrs[index]:
                _const_transfer(state, ins)
            if const_out[index] == state:
                continue
            const_out[index] = state
            for succ in cfg.succs[index]:
                merged = _meet_consts(
                    [const_out[p] for p in cfg.preds[succ]]
                )
                if succ == 0:
                    merged = {ZERO_REG: 0}
                if const_in[succ] != merged or const_out[succ] is None:
                    const_in[succ] = merged
                    work.append(succ)
        return const_in, const_out

    # -- natural loops and trip counts --------------------------------------

    def _back_edges(self) -> List[Tuple[int, int]]:
        edges = []
        for u in range(len(self.cfg)):
            if not self.cfg.reachable[u]:
                continue
            for h in self.cfg.succs[u]:
                if self.dom[u] & (1 << h):
                    edges.append((u, h))
        return edges

    def _find_loops(self) -> List[Loop]:
        by_header: Dict[int, Set[int]] = {}
        for u, h in self.back_edges:
            nodes = by_header.setdefault(h, {h})
            stack = [u]
            while stack:
                node = stack.pop()
                if node in nodes:
                    continue
                nodes.add(node)
                stack.extend(self.cfg.preds[node])
        return [
            Loop(header=h, blocks=nodes, trips=self._loop_trips(h, nodes))
            for h, nodes in sorted(by_header.items())
        ]

    def _loop_trips(self, header: int, nodes: Set[int]) -> Optional[int]:
        """Body-execution bound per loop entry for the builder's counted
        shape, or ``None`` (treated as unbounded)."""
        term = self.cfg.blocks[header].terminator
        if term is None or OP_SIG[term.op] is not Sig.BR2:
            return None
        taken = self._start_to_block.get(term.target)
        end = self.cfg.blocks[header].start + len(
            self.cfg.blocks[header].instructions
        )
        fall = self._start_to_block.get(end)
        taken_in = taken in nodes if taken is not None else False
        fall_in = fall in nodes if fall is not None else False
        if taken_in == fall_in:
            return None  # both sides stay in (or leave) the loop
        exit_on_taken = not taken_in

        for counter, limit, swapped in (
            (term.rs1, term.rs2, False),
            (term.rs2, term.rs1, True),
        ):
            trips = self._trips_for_counter(
                header, nodes, term.op, counter, limit, swapped,
                exit_on_taken,
            )
            if trips is not None:
                return trips
        return None

    def _trips_for_counter(
        self,
        header: int,
        nodes: Set[int],
        branch: Op,
        counter: int,
        limit: int,
        swapped: bool,
        exit_on_taken: bool,
    ) -> Optional[int]:
        step: Optional[int] = None
        for index in nodes:
            for _pc, ins in self.block_instrs[index]:
                writes = set(instr_writes(ins))
                if limit in writes:
                    return None  # limit must be loop-invariant
                if counter not in writes:
                    continue
                if (
                    ins.op is Op.ADDI
                    and ins.rd == counter
                    and ins.rs1 == counter
                    and ins.imm != 0
                    and step is None
                ):
                    step = ins.imm
                else:
                    return None  # second write or a non-stride update
        if step is None:
            return None

        entry_preds = [
            p for p in self.cfg.preds[header]
            if (p, header) not in set(self.back_edges)
            and self.cfg.reachable[p]
        ]
        if not entry_preds:
            return None
        init = _meet_consts([self.const_out[p] for p in entry_preds])
        c0 = init.get(counter)
        bound = init.get(limit)
        if c0 is None or bound is None:
            return None

        # Normalise to "exit when counter REL bound".
        rel = branch
        if swapped:
            rel = {
                Op.BLT: Op.BGT, Op.BLE: Op.BGE,
                Op.BGT: Op.BLT, Op.BGE: Op.BLE,
            }.get(rel, rel)
        if not exit_on_taken:
            rel = {
                Op.BEQ: Op.BNE, Op.BNE: Op.BEQ,
                Op.BLT: Op.BGE, Op.BGE: Op.BLT,
                Op.BLE: Op.BGT, Op.BGT: Op.BLE,
            }[rel]
        return _closed_form_trips(rel, c0, bound, step)

    # -- per-block execution bounds ------------------------------------------

    def _max_exec(self) -> List[float]:
        n = len(self.cfg)
        bound: List[float] = [
            1.0 if self.cfg.reachable[index] else 0.0 for index in range(n)
        ]
        for loop in self.loops:
            body = INF if loop.trips is None else float(loop.trips)
            header = INF if loop.trips is None else float(loop.trips + 1)
            for index in loop.blocks:
                factor = header if index == loop.header else body
                bound[index] = _bound_mul(bound[index], factor)
        # Cycles that survive back-edge removal are irreducible: no
        # natural-loop bound applies, so they are unbounded.
        removed = set(self.back_edges)
        color = [0] * n  # 0 unvisited / 1 on stack / 2 done
        in_cycle: Set[int] = set()
        for root in range(n):
            if color[root] or not self.cfg.reachable[root]:
                continue
            stack: List[Tuple[int, int]] = [(root, 0)]
            color[root] = 1
            path = [root]
            while stack:
                node, edge = stack[-1]
                succs = [
                    s for s in self.cfg.succs[node]
                    if (node, s) not in removed and self.cfg.reachable[s]
                ]
                if edge < len(succs):
                    stack[-1] = (node, edge + 1)
                    succ = succs[edge]
                    if color[succ] == 1:
                        at = path.index(succ)
                        in_cycle.update(path[at:])
                    elif color[succ] == 0:
                        color[succ] = 1
                        stack.append((succ, 0))
                        path.append(succ)
                else:
                    color[node] = 2
                    stack.pop()
                    path.pop()
        for index in in_cycle:
            bound[index] = INF
        return bound


def _bound_mul(a: float, b: float) -> float:
    if a == 0.0 or b == 0.0:
        return 0.0
    return a * b


def _closed_form_trips(
    rel: Op, c0: int, bound: int, step: int
) -> Optional[int]:
    """Smallest ``n >= 0`` with ``REL(c0 + n*step, bound)`` true, or
    ``None`` when the exit is never reached."""

    def ceil_div(num: int, den: int) -> int:
        return -((-num) // den)

    if rel is Op.BNE:
        return 0 if c0 != bound else 1
    if rel is Op.BEQ:
        delta = bound - c0
        if delta == 0:
            return 0
        if step != 0 and delta % step == 0 and delta // step > 0:
            return delta // step
        return None
    if step > 0:
        if rel is Op.BGE:
            return 0 if c0 >= bound else ceil_div(bound - c0, step)
        if rel is Op.BGT:
            return 0 if c0 > bound else (bound - c0) // step + 1
        if rel is Op.BLT:
            return 0 if c0 < bound else None
        if rel is Op.BLE:
            return 0 if c0 <= bound else None
    elif step < 0:
        if rel is Op.BLE:
            return 0 if c0 <= bound else ceil_div(c0 - bound, -step)
        if rel is Op.BLT:
            return 0 if c0 < bound else (c0 - bound) // -step + 1
        if rel is Op.BGE:
            return 0 if c0 >= bound else None
        if rel is Op.BGT:
            return 0 if c0 > bound else None
    return None


# ---------------------------------------------------------------------------
# cut-site machinery: run-length bounds over the split segment graph
# ---------------------------------------------------------------------------

class _SplitGraph:
    """Blocks split at *cut* instructions.  A cut-bearing block becomes a
    sink half (entry -> first cut, cut cost included — where a run
    arriving from outside ends) and a source half (after the last cut to
    the block's end — where a resumed run leaves).  Distances between
    consecutive cuts inside one block are reported separately."""

    def __init__(self, analysis: ProgramAnalysis, cuts: Set[int]):
        self.analysis = analysis
        cfg = analysis.cfg
        self.nodes: List[Tuple[str, int]] = []
        self.weight: Dict[Tuple[str, int], float] = {}
        self.internal: List[int] = []  # cut-to-cut spans inside blocks
        self.entry_prefix: Optional[int] = None
        self.has_cut: List[bool] = []

        for index in range(len(cfg)):
            if not cfg.reachable[index]:
                self.has_cut.append(False)
                continue
            spans: List[int] = []
            run = 0
            cut_here = False
            tail = 0
            for _pc, ins in analysis.block_instrs[index]:
                run += _cost(ins)
                if _pc in cuts:
                    spans.append(run)
                    run = 0
                    cut_here = True
            tail = run
            self.has_cut.append(cut_here)
            if cut_here:
                self.weight[("in", index)] = float(spans[0])
                self.weight[("out", index)] = float(tail)
                self.nodes.append(("in", index))
                self.nodes.append(("out", index))
                self.internal.extend(spans[1:])
                if index == analysis.entry:
                    self.entry_prefix = spans[0]
            else:
                self.weight[("w", index)] = float(
                    analysis.block_cost[index]
                )
                self.nodes.append(("w", index))

        self.edges: Dict[Tuple[str, int], List[Tuple[str, int]]] = {
            node: [] for node in self.nodes
        }
        for u in range(len(cfg)):
            if not cfg.reachable[u]:
                continue
            src = ("out", u) if self.has_cut[u] else ("w", u)
            for v in cfg.succs[u]:
                if not cfg.reachable[v]:
                    continue
                dst = ("in", v) if self.has_cut[v] else ("w", v)
                self.edges[src].append(dst)

    def sources(self) -> List[Tuple[str, int]]:
        out = [
            node for node in self.nodes if node[0] == "out"
        ]
        entry = self.analysis.entry
        if entry is not None and not self.has_cut[entry]:
            out.append(("w", entry))
        return out

    def sinks(self) -> List[Tuple[str, int]]:
        result = [node for node in self.nodes if node[0] == "in"]
        for index in self.analysis.halt_blocks:
            node = (
                ("out", index) if self.has_cut[index] else ("w", index)
            )
            if node in self.weight and node not in result:
                result.append(node)
        return result

    # -- longest run (upper bound) -------------------------------------------

    def longest(self) -> float:
        candidates: List[float] = [float(s) for s in self.internal]
        if self.entry_prefix is not None:
            candidates.append(float(self.entry_prefix))
        sccs, scc_of = _tarjan(self.nodes, self.edges)
        max_exec = self.analysis.max_exec
        scc_weight: List[float] = []
        for members in sccs:
            cyclic = len(members) > 1 or any(
                node in self.edges[node] for node in members
            )
            if cyclic:
                total = 0.0
                for node in members:
                    w = self.weight[node]
                    if w <= 0:
                        continue
                    reps = max_exec[node[1]]
                    if reps == INF:
                        total = INF
                        break
                    total += reps * w
                scc_weight.append(total)
            else:
                scc_weight.append(self.weight[members[0]])
        source_sccs = {scc_of[node] for node in self.sources()}
        # Tarjan emits SCCs in reverse topological order, so walking the
        # list backwards visits every SCC before its successors.  ``best``
        # holds the heaviest path weight through an SCC, its own weight
        # included.
        best: List[float] = [-INF] * len(sccs)
        for scc in range(len(sccs) - 1, -1, -1):
            start = max(
                0.0 if scc in source_sccs else -INF, best[scc]
            )
            if start == -INF:
                continue
            total = start + scc_weight[scc]
            best[scc] = total
            for node in sccs[scc]:
                for succ in self.edges[node]:
                    target = scc_of[succ]
                    if target != scc and total > best[target]:
                        best[target] = total
        for node in self.sinks():
            candidates.append(best[scc_of[node]])
        finite = [c for c in candidates if c != -INF]
        return max(finite) if finite else 0.0

    # -- shortest run (lower bound) ------------------------------------------

    def shortest(self) -> Optional[float]:
        import heapq

        candidates: List[float] = [float(s) for s in self.internal]
        if self.entry_prefix is not None:
            candidates.append(float(self.entry_prefix))
        dist: Dict[Tuple[str, int], float] = {}
        heap: List[Tuple[float, Tuple[str, int]]] = []
        for node in self.sources():
            w = self.weight[node]
            if node not in dist or w < dist[node]:
                dist[node] = w
                heapq.heappush(heap, (w, node))
        while heap:
            d, node = heapq.heappop(heap)
            if d > dist.get(node, INF):
                continue
            for succ in self.edges[node]:
                nd = d + self.weight[succ]
                if nd < dist.get(succ, INF):
                    dist[succ] = nd
                    heapq.heappush(heap, (nd, succ))
        for node in self.sinks():
            if node in dist:
                candidates.append(dist[node])
        if not candidates:
            return None
        return min(candidates)


def _tarjan(
    nodes: List[Tuple[str, int]],
    edges: Dict[Tuple[str, int], List[Tuple[str, int]]],
) -> Tuple[List[List[Tuple[str, int]]], Dict[Tuple[str, int], int]]:
    """Iterative Tarjan SCC; components come out in reverse topological
    order (every edge points from a higher SCC index to a lower one)."""
    index_of: Dict[Tuple[str, int], int] = {}
    low: Dict[Tuple[str, int], int] = {}
    on_stack: Set[Tuple[str, int]] = set()
    stack: List[Tuple[str, int]] = []
    sccs: List[List[Tuple[str, int]]] = []
    scc_of: Dict[Tuple[str, int], int] = {}
    counter = [0]

    for root in nodes:
        if root in index_of:
            continue
        work: List[Tuple[Tuple[str, int], int]] = [(root, 0)]
        while work:
            node, edge = work[-1]
            if edge == 0:
                index_of[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            succs = edges[node]
            while edge < len(succs):
                succ = succs[edge]
                edge += 1
                if succ not in index_of:
                    work[-1] = (node, edge)
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            work[-1] = (node, edge)
            if edge >= len(succs):
                work.pop()
                if low[node] == index_of[node]:
                    members = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        members.append(member)
                        scc_of[member] = len(sccs)
                        if member == node:
                            break
                    sccs.append(members)
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
    return sccs, scc_of


# ---------------------------------------------------------------------------
# per-model site classification
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class _Sites:
    """Switch-relevant instruction sites of one (program, model) pair."""

    must: Dict[int, int]  # pc -> guaranteed wait (cycles) at the switch
    may: Set[int]  # pcs where a run *can* end
    checkpoints: Set[int]  # pcs where the forced-interval is checked
    potential: Dict[int, int]  # pc -> max switches one execution causes
    forced_bounded: bool  # run_max = forced + longest checkpoint gap


def _classify_sites(
    analysis: ProgramAnalysis, model: SwitchModel, latency: int,
    forced_interval: int,
) -> _Sites:
    wait = max(0, latency - 1)
    must: Dict[int, int] = {}
    may: Set[int] = set()
    checkpoints: Set[int] = set()
    potential: Dict[int, int] = {}
    forced_bounded = False

    for index in range(len(analysis.cfg)):
        if not analysis.cfg.reachable[index]:
            continue
        instrs = analysis.block_instrs[index]
        if model is SwitchModel.SWITCH_EVERY_CYCLE:
            for pc, ins in instrs:
                if ins.op is Op.HALT:
                    continue
                must[pc] = wait if ins.op in SHARED_LOADS else 0
                # a queued reply can convert one extra pause per load
                potential[pc] = 2 if ins.op in SHARED_LOADS else 1
            continue
        if model is SwitchModel.IDEAL:
            if latency > 0:
                for pc, ins in instrs:
                    if ins.op in SHARED_LOADS:
                        may.add(pc)
                        potential[pc] = 1
            continue
        if model is SwitchModel.SWITCH_ON_LOAD:
            for pc, ins in instrs:
                if ins.op in SHARED_LOADS:
                    must[pc] = wait
                    potential[pc] = 1
                elif ins.op is Op.SWITCH:
                    must[pc] = 0
                    potential[pc] = 1
            continue
        if model is SwitchModel.SWITCH_ON_MISS:
            forced_bounded = forced_interval > 0
            for pc, ins in instrs:
                if ins.op is Op.FAA:
                    must[pc] = wait
                    checkpoints.add(pc)
                    potential[pc] = 1
                elif ins.op in SHARED_LOADS:
                    may.add(pc)
                    if forced_interval > 0:
                        checkpoints.add(pc)
                    potential[pc] = 1
            continue
        if model in (
            SwitchModel.SWITCH_ON_USE, SwitchModel.SWITCH_ON_USE_MISS
        ):
            for pc, ins in instrs:
                if ins.op in SHARED_LOADS:
                    may.add(pc)
                    potential[pc] = 1
                elif (
                    ins.op is Op.SWITCH
                    and model is SwitchModel.SWITCH_ON_USE
                ):
                    must[pc] = 0  # M_USE executes SWITCH unconditionally
                    potential[pc] = 1
            continue
        if model in (
            SwitchModel.EXPLICIT_SWITCH, SwitchModel.CONDITIONAL_SWITCH
        ):
            conditional = model is SwitchModel.CONDITIONAL_SWITCH
            forced_bounded = conditional and forced_interval > 0
            pending_dist: Optional[int] = None  # busy cycles since load
            for pc, ins in instrs:
                op = ins.op
                if op is Op.SWITCH:
                    span = (
                        pending_dist + _cost(ins)
                        if pending_dist is not None else None
                    )
                    guaranteed = span is not None and span < latency
                    if conditional:
                        may.add(pc)
                        checkpoints.add(pc)
                        if guaranteed:
                            must[pc] = latency - span
                    else:
                        must[pc] = (
                            latency - span if guaranteed else 0
                        )
                    potential[pc] = 1
                    pending_dist = None
                    continue
                tracks = (
                    op is Op.FAA if conditional else op in SHARED_LOADS
                )
                if tracks:
                    # The reply lands ``latency`` cycles after issue, and
                    # issue happens *before* the instruction's own cost is
                    # charged — so the busy distance to a later SWITCH
                    # includes this instruction's cost.
                    pending_dist = _cost(ins)
                    potential[pc] = 1
                elif op in SHARED_LOADS:
                    potential[pc] = 1
                    if pending_dist is not None:
                        pending_dist += _cost(ins)
                elif pending_dist is not None:
                    pending_dist += _cost(ins)
            continue
    return _Sites(must, may, checkpoints, potential, forced_bounded)


# ---------------------------------------------------------------------------
# utilization bound
# ---------------------------------------------------------------------------

def _max_walk_ratio(
    analysis: ProgramAnalysis, waits: Dict[int, int]
) -> float:
    """``sup B/(B+W)`` over entry→HALT walks, where ``B`` is the walk's
    busy cost and ``W`` the summed must-site waits on it."""
    cfg = analysis.cfg
    live = [
        index for index in range(len(cfg))
        if cfg.reachable[index] and analysis.coreachable[index]
    ]
    if not live or analysis.entry not in live:
        return 1.0
    wait_of = [0.0] * len(cfg)
    for pc, w in waits.items():
        wait_of[analysis.cfg.block_of_pc(pc)] += w
    if not any(wait_of[index] for index in live):
        return 1.0
    busy = analysis.block_cost
    halts = [index for index in analysis.halt_blocks if index in set(live)]
    live_set = set(live)

    def feasible(lam: float) -> bool:
        weight = [
            (1.0 - lam) * busy[index] - lam * wait_of[index]
            for index in range(len(cfg))
        ]
        dist = [-INF] * len(cfg)
        dist[analysis.entry] = weight[analysis.entry]
        rounds = len(live) + 2
        for _ in range(rounds):
            changed = False
            for u in live:
                if dist[u] == -INF:
                    continue
                for v in cfg.succs[u]:
                    if v not in live_set:
                        continue
                    cand = dist[u] + weight[v]
                    if cand > dist[v] + 1e-12:
                        dist[v] = cand
                        changed = True
            if not changed:
                return any(dist[h] >= -EPSILON for h in halts)
        # Still improving after |V|+2 rounds: a positive cycle that is
        # entry-reachable and HALT-coreachable exists.
        return True

    lo, hi = 0.0, 1.0
    if feasible(1.0 - 1e-9):
        return 1.0
    for _ in range(40):
        mid = (lo + hi) / 2.0
        if feasible(mid):
            lo = mid
        else:
            hi = mid
    return min(1.0, hi + EPSILON)


# ---------------------------------------------------------------------------
# the public prediction objects
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class ModelPrediction:
    """Static bounds for one (prepared program, model, machine shape)."""

    model: str
    run_min: int
    run_max: Optional[int]  # None = statically unbounded
    switch_min: int
    switch_max: Optional[int]
    utilization_bound: float
    efficiency_bound: float
    run_bins: Dict[str, float]  # estimated Tables 2/4 distribution
    mean_run_estimate: float
    static_switch_sites: int
    prepared_program: str

    def to_dict(self) -> Dict:
        return {
            "model": self.model,
            "run_min": self.run_min,
            "run_max": self.run_max,
            "switch_min": self.switch_min,
            "switch_max": self.switch_max,
            "utilization_bound": round(self.utilization_bound, 6),
            "efficiency_bound": round(self.efficiency_bound, 6),
            "run_bins": {
                label: round(value, 4)
                for label, value in self.run_bins.items()
            },
            "mean_run_estimate": round(self.mean_run_estimate, 2),
            "static_switch_sites": self.static_switch_sites,
            "prepared_program": self.prepared_program,
        }


@dataclasses.dataclass
class Prediction:
    """All per-model predictions for one original program."""

    program: str
    latency: int
    processors: int
    level: int
    forced_interval: int
    models: Dict[str, ModelPrediction]
    loops: List[Loop]
    call_graph: Dict

    def to_dict(self) -> Dict:
        return {
            "program": self.program,
            "latency": self.latency,
            "processors": self.processors,
            "level": self.level,
            "forced_interval": self.forced_interval,
            "models": {
                name: pred.to_dict()
                for name, pred in sorted(self.models.items())
            },
            "loops": [loop.to_dict() for loop in self.loops],
            "call_graph": self.call_graph,
        }


def _distribution_estimate(
    analysis: ProgramAnalysis, cuts: Set[int]
) -> Tuple[Dict[str, float], float]:
    """Estimated run-length distribution in the paper's bins: a linear
    layout-order scan cutting at *cuts*, each segment weighted by its
    block's (capped) execution estimate.  This is descriptive output for
    the advisor and the tables — only the min/max bounds are gated."""
    runs: List[Tuple[int, float]] = []
    carry = 0
    for index in range(len(analysis.cfg)):
        if not analysis.cfg.reachable[index]:
            continue
        weight = min(analysis.max_exec[index], _ESTIMATE_TRIP_CAP)
        if weight <= 0:
            continue
        for pc, ins in analysis.block_instrs[index]:
            carry += _cost(ins)
            if pc in cuts:
                runs.append((carry, weight))
                carry = 0
    if carry > 0:
        runs.append((carry, 1.0))
    total = sum(w for _r, w in runs)
    if not runs or total <= 0:
        return {label: 0.0 for label in RUN_BIN_LABELS}, 0.0
    bins = [0.0] * len(RUN_BIN_LABELS)
    for length, weight in runs:
        slot = len(RUN_BINS)
        for position, upper in enumerate(RUN_BINS):
            if length <= upper:
                slot = position
                break
        bins[slot] += weight
    mean = sum(length * weight for length, weight in runs) / total
    return (
        {
            label: bins[position] / total
            for position, label in enumerate(RUN_BIN_LABELS)
        },
        mean,
    )


def predict_prepared(
    prepared: Program,
    model: "SwitchModel | str",
    latency: int = 200,
    processors: int = 1,
    level: int = 1,
    forced_interval: int = 200,
    analysis: Optional[ProgramAnalysis] = None,
) -> ModelPrediction:
    """Static bounds for *prepared* (the code the machine runs) under
    *model* on a ``processors`` x ``level`` machine."""
    resolved = SwitchModel.parse(model)
    analysis = analysis or ProgramAnalysis(prepared)
    sites = _classify_sites(
        analysis, resolved, latency, forced_interval
    )
    threads = processors * level

    # -- run-length bounds ---------------------------------------------------
    rmin_cuts = set(sites.must) | sites.may
    shortest = _SplitGraph(analysis, rmin_cuts).shortest()
    vacuous_min = resolved in (
        SwitchModel.SWITCH_ON_USE, SwitchModel.SWITCH_ON_USE_MISS
    ) or (resolved is SwitchModel.IDEAL and sites.may)
    if vacuous_min and sites.may:
        run_min = 1
    else:
        run_min = max(1, int(shortest)) if shortest is not None else 1

    if sites.forced_bounded:
        gap = _SplitGraph(analysis, sites.checkpoints | set(sites.must)).longest()
        run_max = (
            None if gap == INF else forced_interval + int(gap)
        )
    else:
        gap = _SplitGraph(analysis, set(sites.must)).longest()
        run_max = None if gap == INF else int(gap)

    # -- switch-count bounds -------------------------------------------------
    must_count = [0] * len(analysis.cfg)
    for pc in sites.must:
        must_count[analysis.cfg.block_of_pc(pc)] += 1
    switch_min = threads * _min_walk_count(analysis, must_count)

    total_potential = 0.0
    for pc, count in sites.potential.items():
        reps = analysis.max_exec[analysis.cfg.block_of_pc(pc)]
        if reps == INF and count > 0:
            total_potential = INF
            break
        total_potential += reps * count
    switch_max = (
        None if total_potential == INF
        else threads * int(total_potential)
    )

    # -- utilization / efficiency bound --------------------------------------
    rho = _max_walk_ratio(analysis, sites.must)
    utilization = min(1.0, level * rho)

    bins, mean = _distribution_estimate(
        analysis, set(sites.must) | sites.may
    )
    return ModelPrediction(
        model=resolved.value,
        run_min=run_min,
        run_max=run_max,
        switch_min=switch_min,
        switch_max=switch_max,
        utilization_bound=utilization,
        efficiency_bound=utilization,
        run_bins=bins,
        mean_run_estimate=mean,
        static_switch_sites=len(sites.must) + len(sites.may),
        prepared_program=prepared.name,
    )


def _min_walk_count(
    analysis: ProgramAnalysis, weights: List[int]
) -> int:
    """Minimum summed *weights* over structural entry→HALT walks."""
    import heapq

    cfg = analysis.cfg
    if analysis.entry is None or not analysis.halt_blocks:
        return 0
    dist = {analysis.entry: weights[analysis.entry]}
    heap = [(weights[analysis.entry], analysis.entry)]
    while heap:
        d, node = heapq.heappop(heap)
        if d > dist.get(node, INF):
            continue
        for succ in cfg.succs[node]:
            nd = d + weights[succ]
            if nd < dist.get(succ, INF):
                dist[succ] = nd
                heapq.heappush(heap, (nd, succ))
    reached = [
        dist[h] for h in analysis.halt_blocks if h in dist
    ]
    return min(reached) if reached else 0


# ---------------------------------------------------------------------------
# call graph
# ---------------------------------------------------------------------------

def call_graph(program: Program, analysis: Optional[ProgramAnalysis] = None) -> Dict:
    """Context-insensitive call graph over JAL/JR with per-function
    summaries.  Function bodies are the blocks reachable from a JAL
    target without following a JR's folded return edges."""
    analysis = analysis or ProgramAnalysis(program)
    cfg = analysis.cfg
    label_of = {pc: name for name, pc in program.labels.items()}
    callers: Dict[int, List[int]] = {}
    for pc, ins in enumerate(program.instructions):
        if ins.op is Op.JAL:
            callers.setdefault(ins.target, []).append(pc)
    functions = []
    for entry_pc, sites in sorted(callers.items()):
        try:
            entry_block = cfg.block_of_pc(entry_pc)
        except IndexError:
            continue
        body: Set[int] = set()
        stack = [entry_block]
        while stack:
            node = stack.pop()
            if node in body:
                continue
            body.add(node)
            term = cfg.blocks[node].terminator
            if term is not None and term.op is Op.JR:
                continue  # stop at the return; folded edges are callers'
            stack.extend(cfg.succs[node])
        instructions = sum(
            len(analysis.block_instrs[b]) for b in body
        )
        shared_loads = sum(
            1 for b in body for _pc, ins in analysis.block_instrs[b]
            if ins.op in SHARED_LOADS
        )
        busy = sum(analysis.block_cost[b] for b in body)
        functions.append({
            "entry_pc": entry_pc,
            "label": label_of.get(entry_pc),
            "callers": sites,
            "blocks": sorted(body),
            "instructions": instructions,
            "shared_loads": shared_loads,
            "busy_cost": busy,
        })
    return {
        "functions": functions,
        "indirect_exits": list(cfg.indirect_exits),
    }


# ---------------------------------------------------------------------------
# top-level entry points
# ---------------------------------------------------------------------------

def predict_program(
    program: Program,
    models: Optional[Iterable["SwitchModel | str"]] = None,
    latency: int = 200,
    processors: int = 1,
    level: int = 1,
    forced_interval: int = 200,
) -> Prediction:
    """Predict every requested model for *program* (original code); each
    model is lowered with ``prepare_for_model`` first, so the bounds
    describe the code that model actually executes.  The ideal model is
    predicted at latency 0 — every execution path in the repo (engine,
    fuzzer, benchmark harness) runs it on a zero-latency machine."""
    from repro.compiler.passes import prepare_for_model

    wanted = [
        SwitchModel.parse(m) for m in (models or list(SwitchModel))
    ]
    analyses: Dict[int, ProgramAnalysis] = {}
    predictions: Dict[str, ModelPrediction] = {}
    base_analysis: Optional[ProgramAnalysis] = None
    for model in wanted:
        prepared = prepare_for_model(program, model)
        key = id(prepared)
        if prepared is program:
            if base_analysis is None:
                base_analysis = ProgramAnalysis(program)
            analysis = base_analysis
        else:
            analysis = analyses.get(key) or ProgramAnalysis(prepared)
            analyses[key] = analysis
        predictions[model.value] = predict_prepared(
            prepared, model,
            latency=0 if model is SwitchModel.IDEAL else latency,
            processors=processors, level=level,
            forced_interval=forced_interval, analysis=analysis,
        )
    if base_analysis is None:
        base_analysis = ProgramAnalysis(program)
    return Prediction(
        program=program.name,
        latency=latency,
        processors=processors,
        level=level,
        forced_interval=forced_interval,
        models=predictions,
        loops=base_analysis.loops,
        call_graph=call_graph(program, base_analysis),
    )
