"""The lint rule registry and all rule implementations.

Rules come in three families, mirroring the layers of the repo:

``isa-*``
    Well-formedness of the instruction stream itself — operand ranges and
    register-file kinds, arity hygiene, branch targets, reachability of a
    HALT.  These run on the raw instruction list and need no CFG, so they
    still work on deliberately corrupted programs (the mutation self-test
    relies on that).

``df-*``
    Dataflow findings on the CFG — cross-block use-before-def against the
    must-assigned analysis, and dead writes against liveness.

``paper-*``
    The invariants the paper's Section 5.1 post-processor must uphold:
    grouped code closes every shared-load group with a SWITCH before any
    destination register is used, use-model code carries no SWITCH at
    all, the grouped block is a dependence-preserving permutation of the
    original, and shared stores go to addresses derived from a
    thread-unique value (FAA result or thread id) unless a lock/barrier
    dominates them.

Severities are deliberate: only genuine machine-breakers are errors
(those gate ``prepare_for_model(lint=True)``); stylistic or heuristic
findings stay warnings/infos so real applications lint clean.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.compiler.dependence import block_dependences
from repro.isa.instruction import (
    Instruction,
    instr_reads,
    instr_writes,
    render_asm,
)
from repro.isa.opcodes import (
    Op,
    OP_SIG,
    Sig,
    SHARED_LOADS,
    SHARED_STORES,
    DOUBLE_ACCESSES,
)
from repro.isa.program import Program
from repro.isa.registers import (
    ARGS_REG,
    NTHREADS_REG,
    NUM_REGS,
    SP_REG,
    TID_REG,
    ZERO_REG,
    is_fp_reg,
    reg_name,
)
from repro.machine.models import SwitchModel
from repro.lint.dataflow import (
    LintCFG,
    definitely_assigned,
    dominator_masks,
    live_out_masks,
    reg_mask,
)
from repro.lint.diagnostics import Diagnostic, LintReport, Rule, Severity

#: Registers the loader/conventions guarantee before the first
#: instruction runs: hard-wired zero, thread id, thread count, argument
#: block base, and the stack/scratch base (every register powers up as
#: zero, so ``sp``'s conventional initial value of 0 is real).
ENTRY_DEFINED = frozenset(
    {ZERO_REG, TID_REG, NTHREADS_REG, ARGS_REG, SP_REG}
)

RULES: Dict[str, Rule] = {
    rule.rule_id: rule
    for rule in (
        Rule("isa-operand-range", Severity.ERROR,
             "register operand outside the 64-slot file"),
        Rule("isa-operand-kind", Severity.ERROR,
             "operand in the wrong register file for its opcode"),
        Rule("isa-arity", Severity.WARNING,
             "operand field set but unused by the opcode's signature"),
        Rule("isa-branch-target", Severity.ERROR,
             "branch or jump target outside the program"),
        Rule("isa-fall-off-end", Severity.ERROR,
             "control flow can run past the last instruction"),
        Rule("isa-no-halt", Severity.ERROR,
             "no HALT instruction is reachable from entry"),
        Rule("isa-unreachable-code", Severity.WARNING,
             "basic block unreachable from entry"),
        Rule("df-use-before-def", Severity.WARNING,
             "register read before any assignment on some entry path"),
        Rule("df-dead-write", Severity.INFO,
             "register written but never read afterwards"),
        Rule("paper-group-switch", Severity.ERROR,
             "shared-load group not closed by SWITCH before a use"),
        Rule("paper-use-model-switch", Severity.ERROR,
             "SWITCH opcode present in code for a model without them"),
        Rule("paper-grouping-permutation", Severity.ERROR,
             "grouped block is not a dependence-preserving permutation"),
        Rule("paper-shared-store-race", Severity.WARNING,
             "shared store whose address is not thread-unique or "
             "sync-guarded"),
        Rule("sync-lock-order", Severity.WARNING,
             "locks acquired in inconsistent order (deadlock cycle)"),
        Rule("sync-unreleased-lock", Severity.WARNING,
             "lock may still be held when the thread halts"),
        Rule("sync-barrier-participation", Severity.WARNING,
             "barrier reachable by only a subset of threads"),
        Rule("advice-group-loads", Severity.INFO,
             "ungrouped independent shared loads; grouping would "
             "lengthen static run lengths"),
    )
}


def _diag(
    rule_id: str,
    program: Program,
    message: str,
    pc: Optional[int] = None,
    block: Optional[int] = None,
) -> Diagnostic:
    rule = RULES[rule_id]
    asm = None
    if pc is not None and 0 <= pc < len(program.instructions):
        asm = render_asm(program.instructions[pc])
    return Diagnostic(
        rule_id=rule_id,
        severity=rule.severity,
        message=message,
        program=program.name,
        pc=pc,
        block=block,
        asm=asm,
    )


# ---------------------------------------------------------------------------
# isa-* rules that need no CFG (safe on arbitrarily corrupt programs)
# ---------------------------------------------------------------------------

#: Register fields consumed by each signature (field name -> attribute).
_SIG_REG_FIELDS: Dict[Sig, Tuple[str, ...]] = {
    Sig.R3: ("rd", "rs1", "rs2"),
    Sig.R2I: ("rd", "rs1"),
    Sig.R2: ("rd", "rs1"),
    Sig.RI: ("rd",),
    Sig.LOAD: ("rd", "rs1"),
    Sig.STORE: ("rs2", "rs1"),
    Sig.BR2: ("rs1", "rs2"),
    Sig.JMP: (),
    Sig.JREG: ("rs1",),
    Sig.FAA: ("rd", "rs1", "rs2"),
    Sig.NONE: (),
}

#: Signatures that consume the immediate field.
_SIG_USES_IMM = frozenset(
    {Sig.R2I, Sig.RI, Sig.LOAD, Sig.STORE, Sig.FAA}
)

_FP_ARITH = frozenset(
    {Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV, Op.FNEG, Op.FABS, Op.FSQRT, Op.FMOV}
)
_FP_COMPARES = frozenset({Op.FSLT, Op.FSLE, Op.FSEQ})


def _operand_kinds(op: Op) -> Dict[str, str]:
    """Expected register file per operand field: ``int``, ``fp`` or
    ``any`` (memory data operands serve both files)."""
    sig = OP_SIG[op]
    kinds = {field: "int" for field in _SIG_REG_FIELDS[sig]}
    if op in _FP_ARITH:
        for field in kinds:
            kinds[field] = "fp"
    elif op in _FP_COMPARES:
        kinds.update(rd="int", rs1="fp", rs2="fp")
    elif op is Op.CVTIF:
        kinds.update(rd="fp", rs1="int")
    elif op is Op.CVTFI:
        kinds.update(rd="int", rs1="fp")
    elif op is Op.FLI:
        kinds["rd"] = "fp"
    elif sig is Sig.LOAD:
        kinds["rd"] = "any"  # data destination; address base stays int
    elif sig is Sig.STORE:
        kinds["rs2"] = "any"  # data source; address base stays int
    elif sig is Sig.BR2:
        # The interpreter compares raw slot values, so branches work on
        # either file — but both operands must come from the same one.
        kinds.update(rs1="any", rs2="any")
    return kinds


def _check_instruction_shapes(program: Program, report: LintReport) -> bool:
    """Run the syntactic rules.  Returns True when branch targets are all
    sane — the precondition for building a CFG."""
    count = len(program.instructions)
    targets_ok = True
    for pc, ins in enumerate(program.instructions):
        sig = OP_SIG[ins.op]
        fields = _SIG_REG_FIELDS[sig]

        # isa-operand-range -------------------------------------------------
        in_range: Dict[str, bool] = {}
        for field in fields:
            slot = getattr(ins, field)
            ok = 0 <= slot < NUM_REGS
            if ok and ins.op in DOUBLE_ACCESSES and field in ("rd", "rs2"):
                ok = slot + 1 < NUM_REGS  # pair partner must exist too
            in_range[field] = ok
            if not ok:
                report.add(_diag(
                    "isa-operand-range", program,
                    f"{field} slot {slot} is outside the register file "
                    f"(0..{NUM_REGS - 1})",
                    pc=pc,
                ))

        # isa-operand-kind --------------------------------------------------
        kinds = _operand_kinds(ins.op)
        for field, kind in kinds.items():
            if not in_range.get(field):
                continue  # range finding already covers it
            slot = getattr(ins, field)
            actual = "fp" if is_fp_reg(slot) else "int"
            if kind != "any" and actual != kind:
                report.add(_diag(
                    "isa-operand-kind", program,
                    f"{field} ({reg_name(slot)}) must be a {kind} "
                    f"register for {ins.op.name.lower()}",
                    pc=pc,
                ))
            elif (
                ins.op in DOUBLE_ACCESSES
                and field in ("rd", "rs2")
                and is_fp_reg(slot) != is_fp_reg(slot + 1)
            ):
                report.add(_diag(
                    "isa-operand-kind", program,
                    f"double access pair {reg_name(slot)}/{field}+1 "
                    "crosses the register-file boundary",
                    pc=pc,
                ))
        if (
            sig is Sig.BR2
            and in_range.get("rs1")
            and in_range.get("rs2")
            and is_fp_reg(ins.rs1) != is_fp_reg(ins.rs2)
        ):
            report.add(_diag(
                "isa-operand-kind", program,
                f"{ins.op.name.lower()} compares {reg_name(ins.rs1)} "
                f"against {reg_name(ins.rs2)} across register files",
                pc=pc,
            ))
        if isinstance(ins.imm, float) and ins.op is not Op.FLI:
            report.add(_diag(
                "isa-operand-kind", program,
                f"float immediate {ins.imm!r} is only legal on fli",
                pc=pc,
            ))

        # isa-arity ---------------------------------------------------------
        for field in ("rd", "rs1", "rs2"):
            if field not in fields and getattr(ins, field) != 0:
                report.add(_diag(
                    "isa-arity", program,
                    f"{field}={getattr(ins, field)} is ignored by "
                    f"{ins.op.name.lower()} ({sig.value or 'no operands'})",
                    pc=pc,
                ))
        if sig not in _SIG_USES_IMM and ins.imm != 0:
            report.add(_diag(
                "isa-arity", program,
                f"imm={ins.imm!r} is ignored by {ins.op.name.lower()}",
                pc=pc,
            ))
        if sig not in (Sig.BR2, Sig.JMP) and ins.label is not None:
            report.add(_diag(
                "isa-arity", program,
                f"label={ins.label!r} is ignored by {ins.op.name.lower()}",
                pc=pc,
            ))

        # isa-branch-target -------------------------------------------------
        if sig in (Sig.BR2, Sig.JMP):
            if not 0 <= ins.target < count:
                targets_ok = False
                report.add(_diag(
                    "isa-branch-target", program,
                    f"target {ins.target} is outside the program "
                    f"(valid range 0..{count - 1})",
                    pc=pc,
                ))
    return targets_ok


# ---------------------------------------------------------------------------
# CFG-level rules
# ---------------------------------------------------------------------------

def _check_structure(cfg: LintCFG, report: LintReport) -> None:
    program = cfg.program
    for index in cfg.falls_off:
        block = cfg.blocks[index]
        last_pc = block.start + len(block.instructions) - 1
        report.add(_diag(
            "isa-fall-off-end", program,
            f"block {index} can fall through past the last instruction "
            "(append a halt or an unconditional branch)",
            pc=last_pc, block=index,
        ))

    halt_reachable = any(
        cfg.reachable[index]
        and any(ins.op is Op.HALT for _pc, ins in cfg.instructions_of(index))
        for index in range(len(cfg))
    )
    if not halt_reachable:
        report.add(_diag(
            "isa-no-halt", program,
            "no HALT instruction is reachable from entry "
            "(threads would never terminate)",
        ))

    for index in range(len(cfg)):
        if not cfg.reachable[index] and cfg.blocks[index].instructions:
            report.add(_diag(
                "isa-unreachable-code", program,
                f"block {index} ({len(cfg.blocks[index])} instructions) "
                "is unreachable from entry",
                pc=cfg.blocks[index].start, block=index,
            ))


def _check_dataflow(cfg: LintCFG, report: LintReport) -> None:
    program = cfg.program

    # df-use-before-def ------------------------------------------------------
    in_masks = definitely_assigned(cfg, reg_mask(ENTRY_DEFINED))
    for index in range(len(cfg)):
        if not cfg.reachable[index]:
            continue
        defined = in_masks[index]
        for pc, ins in cfg.instructions_of(index):
            for slot in instr_reads(ins):
                if 0 <= slot < NUM_REGS and not defined & (1 << slot):
                    report.add(_diag(
                        "df-use-before-def", program,
                        f"{reg_name(slot)} is read but not assigned on "
                        "every path from entry",
                        pc=pc, block=index,
                    ))
            defined |= reg_mask(instr_writes(ins))

    # df-dead-write ----------------------------------------------------------
    live_out = live_out_masks(cfg)
    for index in range(len(cfg)):
        if not cfg.reachable[index]:
            continue
        live = live_out[index]
        block = cfg.blocks[index]
        for offset in range(len(block.instructions) - 1, -1, -1):
            ins = block.instructions[offset]
            pc = block.start + offset
            writes = reg_mask(instr_writes(ins))
            if (
                writes
                and not writes & live
                and ins.op is not Op.FAA  # memory side effect matters
                and ins.op is not Op.JAL  # link write is the point
                and not ins.sync  # spin loads discard values by design
            ):
                written = ", ".join(
                    reg_name(slot) for slot in sorted(instr_writes(ins))
                    if 0 <= slot < NUM_REGS
                )
                report.add(_diag(
                    "df-dead-write", program,
                    f"{written} is written but never read afterwards",
                    pc=pc, block=index,
                ))
            live = (live & ~writes) | reg_mask(instr_reads(ins))


# ---------------------------------------------------------------------------
# paper-* rules
# ---------------------------------------------------------------------------

def _check_group_switch(cfg: LintCFG, report: LintReport) -> None:
    """Explicit/conditional-switch code: every shared-load group must be
    closed by a SWITCH before any destination register is read, and no
    group may leak past the end of its block."""
    program = cfg.program
    for index in range(len(cfg)):
        in_flight = 0
        last_pc = None
        for pc, ins in cfg.instructions_of(index):
            last_pc = pc
            hit = reg_mask(instr_reads(ins)) & in_flight
            if hit:
                names = ", ".join(
                    reg_name(slot)
                    for slot in range(NUM_REGS)
                    if hit & (1 << slot)
                )
                report.add(_diag(
                    "paper-group-switch", program,
                    f"{names} read while its shared load is still in "
                    "flight (no SWITCH since the load)",
                    pc=pc, block=index,
                ))
                in_flight &= ~hit
            if ins.op is Op.SWITCH:
                in_flight = 0
            elif ins.op in SHARED_LOADS:
                in_flight |= reg_mask(instr_writes(ins))
            else:
                # Overwriting an in-flight register retires the old value.
                in_flight &= ~reg_mask(instr_writes(ins))
        if in_flight:
            report.add(_diag(
                "paper-group-switch", program,
                f"block {index} ends with a shared-load group not closed "
                "by a SWITCH",
                pc=last_pc, block=index,
            ))


def _check_no_switches(program: Program, report: LintReport,
                       model: SwitchModel) -> None:
    for pc, ins in enumerate(program.instructions):
        if ins.op is Op.SWITCH:
            report.add(_diag(
                "paper-use-model-switch", program,
                f"SWITCH opcode in code prepared for {model.value}, "
                "which never executes explicit switches",
                pc=pc,
            ))


def _instr_key(ins: Instruction) -> Tuple:
    """Identity of one instruction for the permutation check.  Branch
    identity follows the symbolic label (indices shift when SWITCHes are
    inserted); raw targets only matter when no label exists."""
    return (
        ins.op,
        ins.rd,
        ins.rs1,
        ins.rs2,
        ins.imm,
        ins.label,
        ins.sync,
        ins.target if ins.label is None else -1,
    )


def check_transform(
    original: Program,
    prepared: Program,
    model: SwitchModel,
    report: LintReport,
) -> None:
    """paper-grouping-permutation: each prepared block must be a
    permutation of the matching original block (SWITCHes aside) that
    keeps every dependence edge of
    :func:`repro.compiler.dependence.block_dependences` pointing
    forward."""
    original_cfg = LintCFG(original)
    prepared_cfg = LintCFG(prepared)
    if len(original_cfg) != len(prepared_cfg):
        report.add(_diag(
            "paper-grouping-permutation", prepared,
            f"block count changed under grouping: {len(original_cfg)} "
            f"-> {len(prepared_cfg)}",
        ))
        return

    for index in range(len(original_cfg)):
        source = original_cfg.blocks[index].instructions
        result = [
            ins for ins in prepared_cfg.blocks[index].instructions
            if ins.op is not Op.SWITCH
        ]
        block_start = prepared_cfg.blocks[index].start

        # Multiset equality, via greedy in-order matching.  Identical
        # instructions carry WAW edges (or no edges at all), so matching
        # duplicates in order never mislabels a legal schedule.
        position_of: Dict[Tuple, List[int]] = {}
        for position, ins in enumerate(result):
            position_of.setdefault(_instr_key(ins), []).append(position)
        mapping: List[Optional[int]] = []
        matched = True
        for source_pc, ins in enumerate(source):
            bucket = position_of.get(_instr_key(ins))
            if bucket:
                mapping.append(bucket.pop(0))
            else:
                matched = False
                mapping.append(None)
                report.add(_diag(
                    "paper-grouping-permutation", prepared,
                    f"block {index}: `{render_asm(ins)}` from the "
                    "original block is missing after grouping",
                    pc=block_start, block=index,
                ))
        extras = [bucket for bucket in position_of.values() if bucket]
        for bucket in extras:
            matched = False
            for position in bucket:
                report.add(_diag(
                    "paper-grouping-permutation", prepared,
                    f"block {index}: `{render_asm(result[position])}` "
                    "appears in the grouped block but not the original",
                    pc=block_start + position, block=index,
                ))
        if not matched:
            continue  # ordering is meaningless without a bijection

        _preds, succs = block_dependences(source)
        for earlier, followers in enumerate(succs):
            for later in followers:
                if mapping[earlier] > mapping[later]:  # type: ignore[operator]
                    report.add(_diag(
                        "paper-grouping-permutation", prepared,
                        f"block {index}: dependence "
                        f"`{render_asm(source[earlier])}` -> "
                        f"`{render_asm(source[later])}` is reversed by "
                        "the grouped schedule",
                        pc=block_start + mapping[later], block=index,
                    ))


def _check_shared_store_race(cfg: LintCFG, report: LintReport) -> None:
    """Conservative race heuristic: a shared store should target an
    address derived from a thread-unique value (thread id or an FAA
    result), be part of the synchronisation runtime itself, or execute
    under a lock/barrier (dominated by a sync-marked FAA)."""
    program = cfg.program
    instructions = program.instructions

    # Flow-insensitive taint fixpoint: thread id and FAA results are
    # unique per thread; anything computed from them inherits uniqueness.
    tainted = 1 << TID_REG
    for ins in instructions:
        if ins.op is Op.FAA:
            tainted |= reg_mask(instr_writes(ins))
    changed = True
    while changed:
        changed = False
        for ins in instructions:
            writes = reg_mask(instr_writes(ins))
            if not writes or writes & tainted == writes:
                continue
            if reg_mask(instr_reads(ins)) & tainted:
                tainted |= writes
                changed = True

    # Blocks containing a sync-marked FAA (lock acquire / barrier entry).
    sync_faa_blocks = [
        index for index in range(len(cfg))
        if any(
            ins.op is Op.FAA and ins.sync
            for _pc, ins in cfg.instructions_of(index)
        )
    ]
    dom = dominator_masks(cfg)

    for index in range(len(cfg)):
        if not cfg.reachable[index]:
            continue
        guarded = any(
            dom[index] & (1 << sync_block)
            for sync_block in sync_faa_blocks
        )
        for pc, ins in cfg.instructions_of(index):
            if ins.op not in SHARED_STORES or ins.sync or guarded:
                continue
            if tainted & (1 << ins.rs1):
                continue
            report.add(_diag(
                "paper-shared-store-race", program,
                f"store address {reg_name(ins.rs1) if 0 <= ins.rs1 < NUM_REGS else ins.rs1} "
                "is not derived from a thread-unique value (tid or FAA) "
                "and no lock/barrier dominates this store",
                pc=pc, block=index,
            ))


# ---------------------------------------------------------------------------
# sync-* rules: lock/barrier safety over the runtime.sync idioms
# ---------------------------------------------------------------------------

#: How far (in instructions) a spin loop may sit after the sync FAA that
#: opened its lock/barrier.  The ``runtime.sync`` emitters place them 1
#: (ticket lock) and 7 (barrier: count bump, participation branch, and
#: the 4-instruction last-arrival arm) instructions apart.
_SYNC_FAA_SCAN = 10


def _sync_spin_blocks(cfg: LintCFG) -> List[Tuple[int, Op]]:
    """Blocks of the runtime's spin shape — a sync-marked shared load
    followed by a branch back onto it.  A BNE spin waits for a ticket
    lock's serving counter, a BEQ spin waits for a barrier's generation
    word (see :mod:`repro.runtime.sync`)."""
    found = []
    for index in range(len(cfg)):
        block = cfg.blocks[index]
        if len(block.instructions) != 2:
            continue
        load, branch = block.instructions
        if load.op not in (Op.LWS, Op.LDS) or not load.sync:
            continue
        if branch.op not in (Op.BNE, Op.BEQ):
            continue
        if branch.target != block.start:
            continue
        found.append((index, branch.op))
    return found


def _sync_events(cfg: LintCFG):
    """Classify every sync-marked FAA as a lock acquire or a barrier
    entry by the spin loop that follows it, and pair sync stores with the
    lock word they release.

    Returns ``(acquires, releases, barrier_blocks)`` where *acquires*
    maps ``pc -> identity``, *releases* maps ``pc -> identity`` and
    *barrier_blocks* is the set of blocks holding a barrier-entry FAA.
    Identity is the lock word's address when constant propagation can see
    it, else a conservative per-site key (so unrelated locks never
    merge, at the price of missing some aliases).
    """
    from repro.lint.predict import ProgramAnalysis

    analysis = ProgramAnalysis(cfg.program)
    instructions = cfg.program.instructions

    def word_identity(pc: int, base_reg: int, offset: int):
        base = analysis.const_at(pc, base_reg)
        if base is not None:
            return ("addr", base + offset)
        return ("site", base_reg, offset)

    claimed: Dict[int, Op] = {}
    for spin_index, branch_op in _sync_spin_blocks(cfg):
        start = cfg.blocks[spin_index].start
        for pc in range(start - 1, max(-1, start - 1 - _SYNC_FAA_SCAN), -1):
            ins = instructions[pc]
            if ins.op is Op.FAA and ins.sync:
                claimed.setdefault(pc, branch_op)
                break

    acquires: Dict[int, Tuple] = {}
    barrier_blocks: Set[int] = set()
    for pc, branch_op in claimed.items():
        ins = instructions[pc]
        if branch_op is Op.BNE:  # ticket lock: faa on the ticket word
            acquires[pc] = word_identity(pc, ins.rs1, ins.imm)
        else:  # barrier: faa on the arrival counter
            barrier_blocks.add(cfg.block_of_pc(pc))

    # A release stores the next ticket into the serving word, one past
    # the ticket word the acquire FAA bumped.
    releases: Dict[int, Tuple] = {}
    for pc, ins in enumerate(instructions):
        if ins.op in SHARED_STORES and ins.sync:
            releases[pc] = word_identity(pc, ins.rs1, ins.imm - 1)
    return acquires, releases, barrier_blocks


def _check_lock_discipline(cfg: LintCFG, report: LintReport) -> None:
    """sync-lock-order and sync-unreleased-lock: a forward may-held
    dataflow over the acquire/release events.  Held sets meet by union —
    a lock *possibly* held on some entry path is enough to order against
    or to leak at a HALT."""
    program = cfg.program
    acquires, releases, _barriers = _sync_events(cfg)
    if not acquires:
        return

    acquire_site: Dict[Tuple, int] = {}
    for pc, ident in acquires.items():
        acquire_site.setdefault(ident, pc)

    def transfer(held: frozenset, index: int) -> frozenset:
        current = set(held)
        for pc, ins in cfg.instructions_of(index):
            ident = acquires.get(pc)
            if ident is not None:
                for prior in current:
                    if prior != ident:
                        order_edges.setdefault((prior, ident), pc)
                current.add(ident)
            ident = releases.get(pc)
            if ident is not None:
                current.discard(ident)
        return frozenset(current)

    order_edges: Dict[Tuple[Tuple, Tuple], int] = {}
    held_in: List[frozenset] = [frozenset() for _ in range(len(cfg))]
    held_out: List[Optional[frozenset]] = [None] * len(cfg)
    work = [0] if len(cfg) else []
    while work:
        index = work.pop()
        out = transfer(held_in[index], index)
        if held_out[index] == out:
            continue
        held_out[index] = out
        for succ in cfg.succs[index]:
            merged = held_in[succ] | out
            if merged != held_in[succ]:
                held_in[succ] = merged
                work.append(succ)

    # sync-unreleased-lock: a HALT whose may-held set is non-empty.
    for index in range(len(cfg)):
        if not cfg.reachable[index]:
            continue
        current = set(held_in[index])
        for pc, ins in cfg.instructions_of(index):
            if ins.op is Op.HALT and current:
                sites = ", ".join(
                    f"pc {acquire_site[ident]}"
                    for ident in sorted(current, key=repr)
                    if ident in acquire_site
                )
                report.add(_diag(
                    "sync-unreleased-lock", program,
                    f"thread can halt while still holding "
                    f"{len(current)} lock(s) acquired at {sites} "
                    "(no release on this path)",
                    pc=pc, block=index,
                ))
            ident = acquires.get(pc)
            if ident is not None:
                current.add(ident)
            ident = releases.get(pc)
            if ident is not None:
                current.discard(ident)

    # sync-lock-order: an edge a->b means "b acquired while a held"; a
    # cycle in that graph is a deadlock-capable ordering.
    successors: Dict[Tuple, Set[Tuple]] = {}
    for (a, b) in order_edges:
        successors.setdefault(a, set()).add(b)

    def reaches(src: Tuple, dst: Tuple) -> bool:
        seen: Set[Tuple] = set()
        stack = [src]
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(successors.get(node, ()))
        return False

    for (a, b), pc in sorted(order_edges.items(), key=lambda kv: kv[1]):
        if reaches(b, a):
            report.add(_diag(
                "sync-lock-order", program,
                "lock acquired while holding the lock from "
                f"pc {acquire_site.get(a, '?')}; the reverse order also "
                "occurs, so two threads can deadlock",
                pc=pc, block=cfg.block_of_pc(pc),
            ))


def _taint_step(tainted: int, ins: Instruction) -> int:
    """One instruction of the thread-dependence taint transfer: FAA
    results are always thread-unique, loads never are (memory contents
    are not per-thread by mere addressing), and ALU results inherit
    taint from their inputs — writes from clean inputs *kill* taint, so
    a register reused for a uniform counter comes clean again."""
    writes = reg_mask(instr_writes(ins))
    if not writes:
        return tainted
    if ins.op is Op.FAA:
        return tainted | writes
    if OP_SIG[ins.op] is Sig.LOAD:
        return tainted & ~writes
    if reg_mask(instr_reads(ins)) & tainted:
        return tainted | writes
    return tainted & ~writes


def _thread_dependent_in_masks(cfg: LintCFG) -> List[int]:
    """Flow-sensitive may-taint at each block entry: registers whose
    value can differ across threads (thread id and anything computed
    from it or from an FAA result)."""
    count = len(cfg)
    taint_in = [0] * count
    taint_out: List[Optional[int]] = [None] * count
    if not count:
        return taint_in
    taint_in[0] = 1 << TID_REG
    work = [0]
    while work:
        index = work.pop()
        tainted = taint_in[index]
        for _pc, ins in cfg.instructions_of(index):
            tainted = _taint_step(tainted, ins)
        if taint_out[index] == tainted:
            continue
        taint_out[index] = tainted
        for succ in cfg.succs[index]:
            merged = taint_in[succ] | tainted
            if merged != taint_in[succ] or taint_out[succ] is None:
                taint_in[succ] = merged
                work.append(succ)
    return taint_in


def _check_barrier_participation(cfg: LintCFG, report: LintReport) -> None:
    """sync-barrier-participation: after a branch whose condition is
    thread-dependent, a barrier that one arm can reach but the other
    cannot means only a subset of threads would arrive — stranding them
    forever.  Comparing the two arms' reachable sets (rather than
    demanding postdominance) keeps barriers inside loops clean: from a
    loop-header branch both the body arm and the exit arm can reach a
    barrier in the body via the back edge, so participation stays
    symmetric."""
    program = cfg.program
    _acquires, _releases, barrier_blocks = _sync_events(cfg)
    if not barrier_blocks:
        return
    taint_in = _thread_dependent_in_masks(cfg)

    def reachable_from(start: int) -> Set[int]:
        seen: Set[int] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(cfg.succs[node])
        return seen

    for index in range(len(cfg)):
        if not cfg.reachable[index]:
            continue
        term = cfg.blocks[index].terminator
        if term is None or OP_SIG[term.op] is not Sig.BR2:
            continue
        arms = sorted(set(cfg.succs[index]))
        if len(arms) < 2:
            continue
        tainted = taint_in[index]
        for _pc, ins in cfg.instructions_of(index):
            if ins is term:
                break
            tainted = _taint_step(tainted, ins)
        if not (tainted & reg_mask((term.rs1, term.rs2))):
            continue
        arm_reach = [reachable_from(arm) & barrier_blocks for arm in arms]
        asymmetric = set().union(*arm_reach) - set.intersection(*arm_reach)
        for barrier_block in sorted(asymmetric):
            branch_pc = (
                cfg.blocks[index].start
                + len(cfg.blocks[index].instructions) - 1
            )
            report.add(_diag(
                "sync-barrier-participation", program,
                "threads diverge on a thread-dependent condition and "
                f"only one arm reaches the barrier in block "
                f"{barrier_block}; skipping threads would strand the "
                "arriving ones",
                pc=branch_pc, block=index,
            ))


# ---------------------------------------------------------------------------
# advisor
# ---------------------------------------------------------------------------

def _check_group_advice(cfg: LintCFG, report: LintReport) -> None:
    """advice-group-loads: on *original* code bound for a grouping model,
    point out blocks where independent shared loads are separated by
    unrelated work — exactly the situation Section 5.1 grouping fixes —
    and quantify the static run-length gain."""
    from repro.isa.opcodes import instruction_cost

    program = cfg.program
    for index in range(len(cfg)):
        if not cfg.reachable[index]:
            continue
        instrs = list(cfg.instructions_of(index))
        loads = [
            (position, pc, ins)
            for position, (pc, ins) in enumerate(instrs)
            if ins.op in (Op.LWS, Op.LDS) and not ins.sync
        ]
        if len(loads) < 2:
            continue
        groupable_pc = None
        for (pos_a, _pc_a, load_a), (pos_b, pc_b, load_b) in zip(
            loads, loads[1:]
        ):
            if pos_b == pos_a + 1:
                continue  # already adjacent
            between = [ins for _pc, ins in instrs[pos_a + 1:pos_b]]
            dest = set(instr_writes(load_a))
            if any(
                set(instr_reads(ins)) & dest
                or set(instr_writes(ins)) & set(instr_reads(load_b))
                or ins.op is Op.SWITCH
                or ins.op in SHARED_LOADS
                for ins in between
            ):
                continue  # dependence (or another switch point) between
            if set(instr_reads(load_b)) & dest:
                continue  # the second load needs the first's result
            groupable_pc = pc_b
            break
        if groupable_pc is None:
            continue
        # Static run lengths inside this block: cut at every shared load
        # now, versus one cut for the whole grouped block.
        costs = [
            0 if ins.op is Op.HALT else instruction_cost(ins.op)
            for _pc, ins in instrs
        ]
        segments: List[int] = []
        run = 0
        for position, cost in enumerate(costs):
            run += cost
            if instrs[position][1].op in SHARED_LOADS:
                segments.append(run)
                run = 0
        before = (
            sum(segments) // len(segments) if segments else sum(costs)
        )
        after = sum(costs)
        report.add(_diag(
            "advice-group-loads", program,
            f"block {index} issues {len(loads)} independent shared "
            "loads separated by unrelated work; grouping raises the "
            f"static run length {max(1, before)}→{max(1, after)}",
            pc=groupable_pc, block=index,
        ))


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def run_rules(
    program: Program,
    model: Optional[SwitchModel],
    report: LintReport,
    prepared: bool = False,
) -> LintReport:
    """Run every applicable single-program rule over *program*.

    *prepared* marks the program as the output of
    :func:`repro.compiler.passes.prepare_for_model` for *model* — it
    enables the model-specific paper rules.
    """
    report.instructions = len(program.instructions)
    targets_ok = _check_instruction_shapes(program, report)
    if not targets_ok:
        # Corrupt targets make block discovery meaningless; the
        # syntactic findings above already carry the error.
        return report
    cfg = LintCFG(program)
    report.blocks = len(cfg)
    _check_structure(cfg, report)
    _check_dataflow(cfg, report)
    _check_shared_store_race(cfg, report)
    _check_lock_discipline(cfg, report)
    _check_barrier_participation(cfg, report)
    if prepared and model is not None:
        if model.wants_switch_instructions:
            _check_group_switch(cfg, report)
        else:
            _check_no_switches(program, report, model)
    elif model is not None and model.wants_grouped_code:
        _check_group_advice(cfg, report)
    return report
