"""Registry of the seven benchmark applications (paper Table 1).

Beyond the Table 1 names, the registry resolves the ``synth:`` scheme:
``synth:<seed>[:<preset>]`` builds a seed-deterministic synthetic kernel
through :mod:`repro.synth`, so generated workloads are addressable from
every CLI and from :func:`repro.api.simulate` exactly like built-ins.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.base import AppSpec
from repro.apps.sieve import SieveApp
from repro.apps.blkmat import BlkmatApp
from repro.apps.sor import SorApp
from repro.apps.ugray import UgrayApp
from repro.apps.water import WaterApp
from repro.apps.locus import LocusApp
from repro.apps.mp3d import Mp3dApp

#: Table 1 order.
ALL_APPS: List[AppSpec] = [
    SieveApp(),
    BlkmatApp(),
    SorApp(),
    UgrayApp(),
    WaterApp(),
    LocusApp(),
    Mp3dApp(),
]

_BY_NAME: Dict[str, AppSpec] = {spec.name: spec for spec in ALL_APPS}


def get_app(name: str) -> AppSpec:
    """Look an application up by its Table 1 name or ``synth:`` scheme."""
    if name.startswith("synth:"):
        # Deferred import: repro.synth builds on the apps framework.
        from repro.synth.registry import resolve_synth

        try:
            return resolve_synth(name)
        except ValueError as error:
            raise KeyError(str(error)) from None
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(
            f"unknown application {name!r} (known: {known}; synthetic "
            "kernels are addressable as synth:<seed>[:<preset>])"
        ) from None


def app_names() -> List[str]:
    return [spec.name for spec in ALL_APPS]
