"""``ugray`` — ray-casting renderer over a uniform spatial grid.

Paper behaviour to preserve: moderate run lengths with limited
*intra*-block grouping — the fields of small structures (grid-cell
directory entries, sphere records) are loaded in different basic blocks
because condition tests sit between them (Section 5.2 found 42% of
ugray's loads could be grouped inter-block) — plus the Section 6.2
critical-section story: scene data caches extremely well, so under
conditional-switch threads run for thousands of cycles between misses
while other threads wait on the work-queue lock.

The kernel renders a W x H image slice by marching each primary ray
through a G^3 voxel grid in fixed steps.  When a ray enters a new voxel
it loads the voxel's directory entry (offset, count — a Load-Double);
only a non-empty voxel leads to loads of the sphere index list and sphere
records (centre pair, centre z + squared radius).  Rows are dispensed
from a lock-protected counter (a deliberate critical section).  The
scene is read-only, so the image is bit-exactly reproducible in Python.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.apps.base import AppSpec, BuiltApp
from repro.isa.builder import ProgramBuilder
from repro.isa.registers import NTHREADS_REG
from repro.runtime.layout import SharedLayout
from repro.runtime.sync import (
    emit_lock_acquire,
    emit_lock_release,
    LOCK_WORDS,
)


def _build_scene(grid: int, nspheres: int, rng):
    """Sphere records and the voxel directory (offset, count) + index list."""
    spheres = []
    for _ in range(nspheres):
        cx, cy, cz = rng.uniform(0.8, grid - 0.8, size=3)
        radius = rng.uniform(0.35, 0.9)
        spheres.append((float(cx), float(cy), float(cz), float(radius * radius)))
    cell_lists = [[] for _ in range(grid**3)]
    for sid, (cx, cy, cz, r2) in enumerate(spheres):
        radius = math.sqrt(r2)
        for vz in range(max(0, int(cz - radius)), min(grid, int(cz + radius) + 1)):
            for vy in range(max(0, int(cy - radius)), min(grid, int(cy + radius) + 1)):
                for vx in range(
                    max(0, int(cx - radius)), min(grid, int(cx + radius) + 1)
                ):
                    cell_lists[(vz * grid + vy) * grid + vx].append(sid)
    index_list: List[int] = []
    directory = []
    for spheres_here in cell_lists:
        directory.append((len(index_list), len(spheres_here)))
        index_list.extend(spheres_here)
    return spheres, directory, index_list


class UgrayApp(AppSpec):
    name = "ugray"
    description = "ray tracing renderer (paper: gears scene, 20 x 512 slice)"
    default_size = {"width": 16, "height": 12, "grid": 6, "spheres": 14, "steps": 14}

    def build(
        self,
        nthreads: int,
        width: int = 16,
        height: int = 12,
        grid: int = 6,
        spheres: int = 14,
        steps: int = 14,
    ) -> BuiltApp:
        rng = np.random.default_rng(1729)
        sphere_recs, directory, index_list = _build_scene(grid, spheres, rng)

        layout = SharedLayout()
        sph_base = layout.alloc(
            "spheres", 4 * spheres, [v for rec in sphere_recs for v in rec]
        )
        dir_base = layout.alloc(
            "cells", 2 * len(directory), [v for entry in directory for v in entry]
        )
        idx_base = layout.alloc("indices", max(1, len(index_list)), index_list)
        image_base = layout.alloc("image", width * height, [0] * (width * height))
        row_ctr = layout.word("next_row", 0)
        lock = layout.alloc("lock", LOCK_WORDS)

        # Ray geometry constants (kept in (0, grid) by construction).
        kx = (grid - 1.0) / width
        ky = (grid - 1.0) / height
        z0 = 0.3
        sz = (grid - 1.0) / steps
        drift = 0.4 / steps

        b = ProgramBuilder()
        sphr = b.int_reg("sph")
        dirr = b.int_reg("dir")
        idxr = b.int_reg("idx")
        imgr = b.int_reg("img")
        lockr = b.int_reg()
        ctrr = b.int_reg()
        b.li(sphr, sph_base)
        b.li(dirr, dir_base)
        b.li(idxr, idx_base)
        b.li(imgr, image_base)
        b.li(lockr, lock)
        b.li(ctrr, row_ctr)
        heightr = b.int_reg()
        b.li(heightr, height)
        gridr = b.int_reg()
        b.li(gridr, grid)

        kxf = b.fp_reg()
        kyf = b.fp_reg()
        szf = b.fp_reg()
        driftf = b.fp_reg()
        halff = b.fp_reg()
        b.fli(kxf, kx)
        b.fli(kyf, ky)
        b.fli(szf, sz)
        b.fli(driftf, drift)
        b.fli(halff, 0.5)

        row = b.int_reg("row")
        col = b.int_reg("col")
        x = b.fp_reg()
        y = b.fp_reg()
        z = b.fp_reg()
        stepx = b.fp_reg()
        stepy = b.fp_reg()
        tmpf = b.fp_reg()
        prev_cell = b.int_reg()
        cell = b.int_reg()
        coord = b.int_reg()
        k = b.int_reg("k")
        off, count = b.int_pair()
        s = b.int_reg("s")
        sid = b.int_reg()
        saddr = b.int_reg()
        cx, cy = b.fp_pair()
        cz, r2 = b.fp_pair()
        dxf = b.fp_reg()
        d2 = b.fp_reg()
        hit = b.int_reg("hit")
        entry_addr = b.int_reg()

        # ---- row dispatch loop (lock-protected critical section) ----
        next_row = b.fresh("nextrow")
        all_done = b.fresh("alldone")
        b.label(next_row)
        ticket = emit_lock_acquire(b, lockr)
        b.lws(row, ctrr, 0)
        rtmp = b.int_reg()
        b.addi(rtmp, row, 1)
        b.sws(rtmp, ctrr, 0)
        b.release(rtmp)
        emit_lock_release(b, lockr, ticket)
        b.bge(row, heightr, all_done)

        # ---- render one row ----
        widthr = b.int_reg()
        b.li(widthr, width)
        with b.for_range(col, 0, width):
            # origin: x = (col + 0.5)*kx + 0.5 ; y = (row + 0.5)*ky + 0.5
            b.cvtif(x, col)
            b.fadd(x, x, halff)
            b.fmul(x, x, kxf)
            b.fadd(x, x, halff)
            b.cvtif(y, row)
            b.fadd(y, y, halff)
            b.fmul(y, y, kyf)
            b.fadd(y, y, halff)
            b.fli(z, z0)
            # per-pixel lateral drift: ((col % 3) - 1) * drift, same for row
            m = b.int_reg()
            three = b.int_reg()
            b.li(three, 3)
            b.rem(m, col, three)
            b.addi(m, m, -1)
            b.cvtif(stepx, m)
            b.fmul(stepx, stepx, driftf)
            b.rem(m, row, three)
            b.addi(m, m, -1)
            b.cvtif(stepy, m)
            b.fmul(stepy, stepy, driftf)
            b.release(m, three)

            b.li(hit, 0)
            b.li(prev_cell, -1)
            ray_done = b.fresh("raydone")
            with b.for_range(k, 0, steps):
                b.fadd(x, x, stepx)
                b.fadd(y, y, stepy)
                b.fadd(z, z, szf)
                # voxel = (vz*G + vy)*G + vx
                b.cvtfi(cell, z)
                b.mul(cell, cell, gridr)
                b.cvtfi(coord, y)
                b.add(cell, cell, coord)
                b.mul(cell, cell, gridr)
                b.cvtfi(coord, x)
                b.add(cell, cell, coord)
                with b.if_cmp("ne", cell, prev_cell):
                    b.mov(prev_cell, cell)
                    # load the voxel's directory entry (offset, count)
                    b.slli(entry_addr, cell, 1)
                    b.add(entry_addr, entry_addr, dirr)
                    b.lds(off, entry_addr, 0)
                    with b.if_cmp("gt", count, "r0"):
                        b.add(off, off, idxr)
                        send = b.int_reg()
                        b.add(send, off, count)
                        sphere_loop = b.fresh("sphloop")
                        sphere_done = b.fresh("sphdone")
                        b.mov(s, off)
                        b.label(sphere_loop)
                        b.bge(s, send, sphere_done)
                        b.lws(sid, s, 0)  # sphere index
                        b.slli(saddr, sid, 2)
                        b.add(saddr, saddr, sphr)
                        b.lds(cx, saddr, 0)  # centre x, y
                        b.lds(cz, saddr, 2)  # centre z, radius^2
                        b.fsub(dxf, x, cx)
                        b.fmul(d2, dxf, dxf)
                        b.fsub(dxf, y, cy)
                        b.fmul(dxf, dxf, dxf)
                        b.fadd(d2, d2, dxf)
                        b.fsub(dxf, z, cz)
                        b.fmul(dxf, dxf, dxf)
                        b.fadd(d2, d2, dxf)
                        with b.if_cmp("le", d2, r2):
                            b.addi(hit, sid, 1)
                            b.j(ray_done)
                        b.addi(s, s, 1)
                        b.j(sphere_loop)
                        b.label(sphere_done)
                        b.release(send)
            b.label(ray_done)
            # image[row*W + col] = hit
            paddr = b.int_reg()
            b.mul(paddr, row, widthr)
            b.add(paddr, paddr, col)
            b.add(paddr, paddr, imgr)
            b.sws(hit, paddr, 0)
            b.release(paddr)
        b.release(widthr)
        b.j(next_row)
        b.label(all_done)
        b.halt()

        expected = self._reference(
            width, height, grid, steps, sphere_recs, directory, index_list,
            kx, ky, z0, sz, drift,
        )

        def check(memory: List) -> None:
            got = memory[image_base : image_base + width * height]
            assert got == expected, (
                "ugray: image mismatch at pixels "
                f"{[i for i, (a, e) in enumerate(zip(got, expected)) if a != e][:8]}"
            )

        return BuiltApp(
            name=self.name,
            program=b.build("ugray"),
            shared=layout.build_image(),
            nthreads=nthreads,
            check=check,
            meta={"image": f"{width}x{height}", "grid": grid, "spheres": spheres},
        )

    @staticmethod
    def _reference(
        width, height, grid, steps, spheres, directory, index_list,
        kx, ky, z0, sz, drift,
    ) -> List[int]:
        """Exact Python transliteration of the kernel (same float ops)."""
        image = [0] * (width * height)
        for row in range(height):
            for col in range(width):
                x = (float(col) + 0.5) * kx + 0.5
                y = (float(row) + 0.5) * ky + 0.5
                z = z0
                stepx = float(col % 3 - 1) * drift
                stepy = float(row % 3 - 1) * drift
                hit = 0
                prev_cell = -1
                for _ in range(steps):
                    x = x + stepx
                    y = y + stepy
                    z = z + sz
                    vx, vy, vz = math.trunc(x), math.trunc(y), math.trunc(z)
                    assert 0 <= vx < grid and 0 <= vy < grid and 0 <= vz < grid
                    cell = (vz * grid + vy) * grid + vx
                    if cell == prev_cell:
                        continue
                    prev_cell = cell
                    off, count = directory[cell]
                    done = False
                    for s in range(off, off + count):
                        sid = index_list[s]
                        cx, cy, cz, r2 = spheres[sid]
                        dxf = x - cx
                        d2 = dxf * dxf
                        dxf = y - cy
                        d2 = d2 + dxf * dxf
                        dxf = z - cz
                        d2 = d2 + dxf * dxf
                        if d2 <= r2:
                            hit = sid + 1
                            done = True
                            break
                    if done:
                        break
                image[row * width + col] = hit
        return image
