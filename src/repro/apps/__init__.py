"""The seven benchmark applications of the paper's Table 1.

Every application is an SPMD kernel authored against the
:class:`~repro.isa.builder.ProgramBuilder` DSL.  Each preserves the
memory behaviour the paper reports for its namesake (run-length shape,
grouping opportunity, cache friendliness) at a scaled-down problem size,
and each verifies its own result against a Python/numpy oracle — which is
what proves the compiler passes and machine models preserve semantics.
"""

from repro.apps.base import AppSpec, BuiltApp
from repro.apps.registry import ALL_APPS, get_app, app_names
from repro.apps.sieve import SieveApp
from repro.apps.blkmat import BlkmatApp
from repro.apps.sor import SorApp
from repro.apps.ugray import UgrayApp
from repro.apps.water import WaterApp
from repro.apps.locus import LocusApp
from repro.apps.mp3d import Mp3dApp

__all__ = [
    "AppSpec",
    "BuiltApp",
    "ALL_APPS",
    "get_app",
    "app_names",
    "SieveApp",
    "BlkmatApp",
    "SorApp",
    "UgrayApp",
    "WaterApp",
    "LocusApp",
    "Mp3dApp",
]
