"""``sor`` — successive over-relaxation solver for Laplace's equation.

This is the paper's flagship example (Figure 4): the inner loop loads
five shared values — the four neighbours and the centre — back to back,
so under switch-on-load 78% of its run lengths are one or two cycles and
efficiency saturates near 60%.  The grouping pass bundles the five loads
into one group followed by a single SWITCH, replacing four short runs and
one long one with a single long run (grouping factor ~5).

We use the Jacobi-style two-grid sweep (read ``old``, write ``new``, swap
pointers each iteration, barrier between iterations), with the SOR update
``new = c + omega * (avg4 - c)``.  Rows are statically split between
threads in contiguous bands.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.apps.base import AppSpec, BuiltApp
from repro.isa.builder import ProgramBuilder
from repro.isa.registers import TID_REG, NTHREADS_REG
from repro.runtime.layout import SharedLayout
from repro.runtime.sync import emit_barrier, BARRIER_WORDS

OMEGA = 0.9


class SorApp(AppSpec):
    name = "sor"
    description = "S.O.R. solver for Laplace's equation (paper: 192 x 192)"
    default_size = {"n": 24, "iterations": 4}

    def build(self, nthreads: int, n: int = 24, iterations: int = 4) -> BuiltApp:
        side = n + 2  # grid with boundary
        rng = np.random.default_rng(42)
        initial = rng.uniform(0.0, 100.0, size=(side, side))

        layout = SharedLayout()
        grid_a = layout.alloc("gridA", side * side, initial.reshape(-1).tolist())
        grid_b = layout.alloc("gridB", side * side, initial.reshape(-1).tolist())
        barrier = layout.alloc("barrier", BARRIER_WORDS)

        b = ProgramBuilder()
        old_base = b.int_reg("old")
        new_base = b.int_reg("new")
        bar = b.int_reg()
        b.li(old_base, grid_a)
        b.li(new_base, grid_b)
        b.li(bar, barrier)

        # Static cell-range split of the n*n interior: thread t sweeps
        # linear cells [t*n^2/nt, (t+1)*n^2/nt) — balanced to one cell.
        cell_lo = b.int_reg("cell_lo")
        cell_hi = b.int_reg("cell_hi")
        total = b.int_reg()
        b.li(total, n * n)
        b.mul(cell_lo, total, TID_REG)
        b.div(cell_lo, cell_lo, NTHREADS_REG)
        tplus = b.int_reg()
        b.addi(tplus, TID_REG, 1)
        b.mul(cell_hi, total, tplus)
        b.div(cell_hi, cell_hi, NTHREADS_REG)
        b.release(total, tplus)

        omega = b.fp_reg("omega")
        quarter = b.fp_reg()
        b.fli(omega, OMEGA)
        b.fli(quarter, 0.25)

        iteration = b.int_reg("iter")
        cell = b.int_reg("cell")
        col = b.int_reg("col")
        centre_addr = b.int_reg()
        out_addr = b.int_reg()
        up = b.fp_reg()
        down = b.fp_reg()
        left = b.fp_reg()
        right = b.fp_reg()
        centre = b.fp_reg()
        avg = b.fp_reg()
        swap_tmp = b.int_reg()
        ncols = b.int_reg()
        b.li(ncols, n)

        with b.for_range(iteration, 0, iterations):
            # Map the first linear cell to (row, col) and grid addresses.
            b.div(centre_addr, cell_lo, ncols)  # row - 1
            b.rem(col, cell_lo, ncols)  # col - 1
            b.addi(centre_addr, centre_addr, 1)
            b.muli(centre_addr, centre_addr, side)
            b.add(centre_addr, centre_addr, col)
            b.addi(centre_addr, centre_addr, 1)
            b.addi(col, col, 1)
            b.add(out_addr, centre_addr, new_base)
            b.add(centre_addr, centre_addr, old_base)
            with b.for_range(cell, cell_lo, cell_hi, start_is_reg=True, stop_is_reg=True):
                # The famous five back-to-back shared loads (Figure 4a).
                b.lws(up, centre_addr, -side)
                b.lws(down, centre_addr, side)
                b.lws(left, centre_addr, -1)
                b.lws(right, centre_addr, 1)
                b.lws(centre, centre_addr, 0)
                b.fadd(avg, up, down)
                b.fadd(avg, avg, left)
                b.fadd(avg, avg, right)
                b.fmul(avg, avg, quarter)
                b.fsub(avg, avg, centre)
                b.fmul(avg, avg, omega)
                b.fadd(avg, avg, centre)
                b.sws(avg, out_addr, 0)
                b.addi(centre_addr, centre_addr, 1)
                b.addi(out_addr, out_addr, 1)
                b.addi(col, col, 1)
                with b.if_cmp("gt", col, ncols):
                    # cross the row boundary: skip the two halo words
                    b.li(col, 1)
                    b.addi(centre_addr, centre_addr, 2)
                    b.addi(out_addr, out_addr, 2)
            emit_barrier(b, bar, NTHREADS_REG)
            # Swap grids for the next sweep.
            b.mov(swap_tmp, old_base)
            b.mov(old_base, new_base)
            b.mov(new_base, swap_tmp)
        b.halt()

        # Numpy oracle with identical arithmetic and sweep structure.
        old = initial.copy()
        new = initial.copy()
        for _ in range(iterations):
            centre_v = old[1:-1, 1:-1]
            avg_v = (
                (old[:-2, 1:-1] + old[2:, 1:-1]) + old[1:-1, :-2]
            ) + old[1:-1, 2:]
            avg_v = avg_v * 0.25
            new[1:-1, 1:-1] = centre_v + OMEGA * (avg_v - centre_v)
            old, new = new, old
        expected = old
        final_base = grid_b if iterations % 2 else grid_a

        def check(memory: List) -> None:
            got = np.array(
                memory[final_base : final_base + side * side]
            ).reshape(side, side)
            if not np.allclose(got, expected, rtol=1e-9, atol=1e-12):
                worst = np.abs(got - expected).max()
                raise AssertionError(f"sor: grid off by up to {worst}")

        return BuiltApp(
            name=self.name,
            program=b.build("sor"),
            shared=layout.build_image(),
            nthreads=nthreads,
            check=check,
            meta={"n": n, "iterations": iterations},
        )
