"""``locus`` — standard-cell wire router (LocusRoute-style).

Paper behaviour to preserve: the *shortest* run lengths of the suite
(loads a cycle or two apart), little intra-block grouping (the two fields
of a routing cell are read in different basic blocks because a condition
test sits between them — Section 5.2's observation), and a large
inter-block opportunity (84% of its loads hit the one-line cache).

Each wire (dispensed by Fetch-and-Add) is routed greedily from its source
toward its target.  While both coordinates differ, the router scores the
two candidate next cells; a cell's score is its static terrain cost plus
its congestion count, but the congestion field is only read when the
terrain cost is below a blocking threshold — the conditional second-field
read that splits the accesses across basic blocks.  The chosen cell's
congestion count is bumped (read-modify-write; races between wires are
benign and the checks are invariant-based, as for the original racy
application).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.apps.base import AppSpec, BuiltApp
from repro.isa.builder import ProgramBuilder
from repro.runtime.layout import SharedLayout

BLOCK_COST = 1000  # terrain at or above this never has its congestion read


class LocusApp(AppSpec):
    name = "locus"
    description = "route wires in a cost grid (paper: Primary2, 1250 cells)"
    default_size = {"width": 32, "height": 20, "wires": 48}

    def build(
        self, nthreads: int, width: int = 32, height: int = 20, wires: int = 48
    ) -> BuiltApp:
        rng = np.random.default_rng(11)
        terrain = rng.integers(0, 8, size=(height, width))

        endpoints = []
        for _ in range(wires):
            x1 = int(rng.integers(0, width))
            y1 = int(rng.integers(0, height))
            x2 = int(rng.integers(0, width))
            y2 = int(rng.integers(0, height))
            endpoints.append((x1, y1, x2, y2))

        layout = SharedLayout()
        # Cell record: 2 words: terrain cost (static), congestion (dynamic).
        grid_base = layout.alloc("grid", 2 * width * height)
        wire_base = layout.alloc("wires", 4 * wires)
        result_base = layout.alloc("results", 2 * wires)
        work_ctr = layout.word("work", 0)
        for y in range(height):
            for x in range(width):
                layout.poke(grid_base + 2 * (y * width + x), int(terrain[y, x]))
        for w, (x1, y1, x2, y2) in enumerate(endpoints):
            for c, value in enumerate((x1, y1, x2, y2)):
                layout.poke(wire_base + 4 * w + c, value)

        b = ProgramBuilder()
        gbase = b.int_reg("grid")
        wbase = b.int_reg("wires")
        rbase = b.int_reg("results")
        ctr = b.int_reg()
        one = b.int_reg()
        b.li(gbase, grid_base)
        b.li(wbase, wire_base)
        b.li(rbase, result_base)
        b.li(ctr, work_ctr)
        b.li(one, 1)
        nwires = b.int_reg()
        b.li(nwires, wires)
        widthr = b.int_reg()
        b.li(widthr, width)
        blockc = b.int_reg()
        b.li(blockc, BLOCK_COST)

        wire = b.int_reg("wire")
        waddr = b.int_reg()
        x, y = b.int_pair()
        tx, ty = b.int_pair()
        dx = b.int_reg()
        dy = b.int_reg()
        path_len = b.int_reg()
        cell1 = b.int_reg()
        cell2 = b.int_reg()
        score1 = b.int_reg()
        score2 = b.int_reg()
        field = b.int_reg()
        chosen = b.int_reg()

        def cell_addr(dest, xr, yr):
            """dest = grid_base + 2*(y*width + x)"""
            b.mul(dest, yr, widthr)
            b.add(dest, dest, xr)
            b.slli(dest, dest, 1)
            b.add(dest, dest, gbase)

        def score_candidate(dest_score, dest_cell, xr, yr):
            """Load terrain cost; congestion is read only when the cell is
            not blocked — the paper's split-across-blocks field access."""
            cell_addr(dest_cell, xr, yr)
            b.lws(dest_score, dest_cell, 0)  # terrain field
            with b.if_cmp("lt", dest_score, blockc):
                b.lws(field, dest_cell, 1)  # congestion field, other block
                b.add(dest_score, dest_score, field)

        next_wire = b.fresh("nextwire")
        done = b.fresh("alldone")
        b.label(next_wire)
        b.faa(wire, ctr, 0, one)
        b.bge(wire, nwires, done)
        b.slli(waddr, wire, 2)
        b.add(waddr, waddr, wbase)
        b.lds(x, waddr, 0)  # x1, y1
        b.lds(tx, waddr, 2)  # x2, y2
        b.li(path_len, 0)

        steploop = b.fresh("step")
        arrived = b.fresh("arrived")
        b.label(steploop)
        stepped = b.fresh("stepped")
        b.seq(dx, x, tx)
        b.seq(dy, y, ty)
        with b.if_cmp("eq", dx, "r0"):  # x != tx
            with b.if_cmp("eq", dy, "r0"):  # and y != ty: score both
                b.slt(dx, x, tx)
                b.slli(dx, dx, 1)
                b.addi(dx, dx, -1)  # dx = +-1 toward tx
                b.slt(dy, y, ty)
                b.slli(dy, dy, 1)
                b.addi(dy, dy, -1)  # dy = +-1 toward ty
                # candidate 1: (x+dx, y); candidate 2: (x, y+dy)
                cand_x = b.int_reg()
                cand_y = b.int_reg()
                b.add(cand_x, x, dx)
                score_candidate(score1, cell1, cand_x, y)
                b.add(cand_y, y, dy)
                score_candidate(score2, cell2, x, cand_y)
                with b.if_else("le", score1, score2) as arm:
                    b.mov(x, cand_x)
                    b.mov(chosen, cell1)
                    with arm.otherwise():
                        b.mov(y, cand_y)
                        b.mov(chosen, cell2)
                b.release(cand_x, cand_y)
                b.j(stepped)
        # Straight-line tail: step whichever coordinate still differs.
        with b.if_cmp("eq", dx, "r0"):  # x != tx, y == ty
            b.slt(dy, x, tx)
            b.slli(dy, dy, 1)
            b.addi(dy, dy, -1)
            b.add(x, x, dy)
            cell_addr(chosen, x, y)
            b.j(stepped)
        with b.if_cmp("eq", dy, "r0"):  # y != ty, x == tx
            b.slt(dx, y, ty)
            b.slli(dx, dx, 1)
            b.addi(dx, dx, -1)
            b.add(y, y, dx)
            cell_addr(chosen, x, y)
            b.j(stepped)
        b.j(arrived)  # both equal: wire complete

        b.label(stepped)
        # Enter the chosen cell: bump its congestion count (benign race).
        b.lws(field, chosen, 1)
        b.addi(field, field, 1)
        b.sws(field, chosen, 1)
        b.addi(path_len, path_len, 1)
        b.j(steploop)

        b.label(arrived)
        raddr = b.int_reg()
        b.slli(raddr, wire, 1)
        b.add(raddr, raddr, rbase)
        b.sws(path_len, raddr, 0)
        b.sws(one, raddr, 1)
        b.release(raddr)
        b.j(next_wire)
        b.label(done)
        b.halt()

        def check(memory: List) -> None:
            total_cells = 0
            for w, (x1, y1, x2, y2) in enumerate(endpoints):
                length = memory[result_base + 2 * w]
                routed = memory[result_base + 2 * w + 1]
                manhattan = abs(x2 - x1) + abs(y2 - y1)
                assert routed == 1, f"locus: wire {w} not routed"
                assert length == manhattan, (
                    f"locus: wire {w} path length {length}, "
                    f"expected {manhattan}"
                )
                total_cells += manhattan
            # Congestion counts are racy (lost updates possible) but can
            # never exceed the number of path cells laid down in total.
            congestion = sum(
                memory[grid_base + 2 * c + 1] for c in range(width * height)
            )
            assert 0 < congestion <= total_cells or total_cells == 0, (
                f"locus: congestion sum {congestion} outside (0, {total_cells}]"
            )

        return BuiltApp(
            name=self.name,
            program=b.build("locus"),
            shared=layout.build_image(),
            nthreads=nthreads,
            check=check,
            meta={"width": width, "height": height, "wires": wires},
        )
