"""Application framework: what a benchmark application provides.

Each of the paper's seven applications (Table 1) is re-implemented as an
:class:`AppSpec` that *builds* — for a given thread count and problem
size — a :class:`BuiltApp`: the SPMD program (original, ungrouped code),
the initial shared-memory image, and a functional-correctness check run
against the final memory.  The check is what guarantees that the
compiler's grouping pass and every machine model preserve the program's
semantics.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from repro.isa.program import Program


@dataclasses.dataclass
class BuiltApp:
    """One application instance, ready for the loader."""

    name: str
    program: Program  # original (ungrouped) code
    shared: List  # initial shared-memory image
    nthreads: int  # thread count the instance was built for
    local_size: int = 0  # words of private memory per thread
    args_base: Optional[int] = None  # initial value of r6
    #: Raises AssertionError when the final shared memory is wrong.
    check: Optional[Callable[[List], None]] = None
    #: Human-readable problem-size description (Table 1's last column).
    meta: Dict = dataclasses.field(default_factory=dict)


class AppSpec:
    """Factory for one benchmark application.

    Subclasses define ``name``, ``description``, ``default_size`` and
    ``build``.  ``size`` keyword arguments scale the problem; every app
    accepts at least its defaults.
    """

    name: str = "app"
    description: str = ""
    #: Keyword defaults understood by :meth:`build`.
    default_size: Dict = {}

    def build(self, nthreads: int, **size) -> BuiltApp:
        raise NotImplementedError

    def build_default(self, nthreads: int, scale: float = 1.0) -> BuiltApp:
        """Build with default sizes (integers scaled by *scale*)."""
        sized = {}
        for key, value in self.default_size.items():
            if isinstance(value, int) and key not in ("iterations",):
                sized[key] = max(1, int(value * scale))
            else:
                sized[key] = value
        return self.build(nthreads, **sized)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<AppSpec {self.name}>"
