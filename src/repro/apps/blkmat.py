"""``blkmat`` — blocked matrix multiply, C = A x B.

Paper behaviour to preserve (Table 2): an *exceptionally high* mean
run length, because each thread copies its operand blocks into private
(local) memory and then multiplies them with no shared traffic at all —
thousands of cycles between context switches.

Structure: the (n/bk)^2 output blocks are handed out dynamically with a
Fetch-and-Add counter.  For each output block, the thread iterates over
the k blocks: it copies an A block and a B block into local memory with
Load-Double (two words per round trip), multiplies them into a local
accumulator block, and finally writes the accumulated C block back with
fire-and-forget Store-Doubles.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.apps.base import AppSpec, BuiltApp
from repro.isa.builder import ProgramBuilder
from repro.isa.registers import NTHREADS_REG
from repro.runtime.layout import SharedLayout


class BlkmatApp(AppSpec):
    name = "blkmat"
    description = "blocked matrix multiply (paper: 200 x 200)"
    default_size = {"n": 24, "block": 8}

    def build(self, nthreads: int, n: int = 24, block: int = 8) -> BuiltApp:
        if n % block:
            raise ValueError("matrix size must be a multiple of the block size")
        if block % 2:
            raise ValueError("block size must be even (Load-Double copies)")
        blocks_per_dim = n // block

        rng = np.random.default_rng(1992)
        a = rng.uniform(-1.0, 1.0, size=(n, n))
        bmat = rng.uniform(-1.0, 1.0, size=(n, n))

        layout = SharedLayout()
        a_base = layout.alloc("A", n * n, a.reshape(-1).tolist())
        b_base = layout.alloc("B", n * n, bmat.reshape(-1).tolist())
        c_base = layout.alloc("C", n * n, [0.0] * (n * n))
        work_ctr = layout.word("work", 0)

        b = ProgramBuilder()
        # Local memory layout: A block, B block, C accumulator block.
        la = 0
        lb = block * block
        lc = 2 * block * block
        local_size = 3 * block * block

        a_reg = b.int_reg("A")
        b_reg = b.int_reg("B")
        c_reg = b.int_reg("C")
        ctr = b.int_reg()
        one = b.int_reg()
        b.li(a_reg, a_base)
        b.li(b_reg, b_base)
        b.li(c_reg, c_base)
        b.li(ctr, work_ctr)
        b.li(one, 1)

        blk = b.int_reg("blk")  # linear block index
        bi = b.int_reg("bi")
        bj = b.int_reg("bj")
        nblocks = b.int_reg()
        b.li(nblocks, blocks_per_dim)
        total_blocks = b.int_reg()
        b.li(total_blocks, blocks_per_dim * blocks_per_dim)

        next_block = b.fresh("nextblk")
        done = b.fresh("done")
        b.label(next_block)
        b.faa(blk, ctr, 0, one)
        b.bge(blk, total_blocks, done)
        b.div(bi, blk, nblocks)
        b.rem(bj, blk, nblocks)

        # zero the local C accumulator
        zero_f = b.fp_reg()
        b.fli(zero_f, 0.0)
        idx = b.int_reg()
        with b.for_range(idx, 0, block * block):
            b.swl(zero_f, idx, lc)

        # loop over k blocks
        bk = b.int_reg("bk")
        with b.for_range(bk, 0, blocks_per_dim, stop_is_reg=False) as _:
            # --- copy A[bi, bk] and B[bk, bj] into local memory ---
            # A block row r lives at a_base + (bi*block + r)*n + bk*block
            src = b.int_reg()
            dst = b.int_reg()
            row = b.int_reg()
            pair0, pair1 = b.fp_pair()
            col = b.int_reg()
            for which, (base_reg, rblk, cblk, ldst) in enumerate(
                ((a_reg, bi, bk, la), (b_reg, bk, bj, lb))
            ):
                with b.for_range(row, 0, block):
                    # src = base + (rblk*block + row)*n + cblk*block
                    b.muli(src, rblk, block)
                    b.add(src, src, row)
                    b.muli(src, src, n)
                    b.add(src, src, base_reg)
                    tmp = b.int_reg()
                    b.muli(tmp, cblk, block)
                    b.add(src, src, tmp)
                    b.release(tmp)
                    b.muli(dst, row, block)
                    b.addi(dst, dst, ldst)
                    with b.for_range(col, 0, block, step=2):
                        b.lds(pair0, src, 0)  # two matrix words / round trip
                        b.swl(pair0, dst, 0)
                        b.swl(pair1, dst, 1)
                        b.addi(src, src, 2)
                        b.addi(dst, dst, 2)
            b.release(src, dst, row, col, pair0, pair1)

            # --- multiply local blocks: Cl += Al x Bl ---
            i = b.int_reg()
            jj = b.int_reg()
            kk = b.int_reg()
            acc = b.fp_reg()
            av = b.fp_reg()
            bv = b.fp_reg()
            ai_addr = b.int_reg()
            bj_addr = b.int_reg()
            ci_addr = b.int_reg()
            with b.for_range(i, 0, block):
                with b.for_range(jj, 0, block):
                    b.muli(ci_addr, i, block)
                    b.add(ci_addr, ci_addr, jj)
                    b.lwl(acc, ci_addr, lc)
                    b.muli(ai_addr, i, block)
                    b.mov(bj_addr, jj)
                    with b.for_range(kk, 0, block):
                        b.lwl(av, ai_addr, la)
                        b.lwl(bv, bj_addr, lb)
                        b.fmul(av, av, bv)
                        b.fadd(acc, acc, av)
                        b.addi(ai_addr, ai_addr, 1)
                        b.addi(bj_addr, bj_addr, block)
                    b.swl(acc, ci_addr, lc)
            b.release(i, jj, kk, acc, av, bv, ai_addr, bj_addr, ci_addr)

        # --- write back the C block with Store-Doubles ---
        srow = b.int_reg()
        sdst = b.int_reg()
        ssrc = b.int_reg()
        spair0, spair1 = b.fp_pair()
        scol = b.int_reg()
        with b.for_range(srow, 0, block):
            b.muli(sdst, bi, block)
            b.add(sdst, sdst, srow)
            b.muli(sdst, sdst, n)
            b.add(sdst, sdst, c_reg)
            stmp = b.int_reg()
            b.muli(stmp, bj, block)
            b.add(sdst, sdst, stmp)
            b.release(stmp)
            b.muli(ssrc, srow, block)
            b.addi(ssrc, ssrc, lc)
            with b.for_range(scol, 0, block, step=2):
                b.lwl(spair0, ssrc, 0)
                b.lwl(spair1, ssrc, 1)
                b.sds(spair0, sdst, 0)
                b.addi(ssrc, ssrc, 2)
                b.addi(sdst, sdst, 2)
        b.release(srow, sdst, ssrc, spair0, spair1, scol)
        b.j(next_block)
        b.label(done)
        b.halt()

        expected = a @ bmat

        def check(memory: List) -> None:
            got = np.array(memory[c_base : c_base + n * n]).reshape(n, n)
            if not np.allclose(got, expected, rtol=1e-9, atol=1e-12):
                worst = np.abs(got - expected).max()
                raise AssertionError(f"blkmat: result off by up to {worst}")

        return BuiltApp(
            name=self.name,
            program=b.build("blkmat"),
            shared=layout.build_image(),
            nthreads=nthreads,
            local_size=local_size,
            check=check,
            meta={"n": n, "block": block},
        )
