"""``mp3d`` — rarefied-flow particle simulation (SPLASH-style).

Paper behaviour to preserve: very short run lengths and *poor reference
locality* — the particle records a thread touches are scattered through
shared memory, and every record is rewritten each step, so caching helps
far less than for the other applications (Section 6.1: "mp3d has very
poor reference locality and thus benefits little from caching").

Each time step, each thread walks its strided share of particles.
Particle *i* lives at a scattered slot (``(i * 17) mod NP``), so
consecutive particles hit different cache lines.  The thread loads the
record (three back-to-back Load-Doubles — a natural group), advances the
position, reflects off the walls of the box, stores the record back
(fire-and-forget), and bumps the particle's space-cell population counter
with Fetch-and-Add.  A barrier separates time steps.

Particles do not interact, so final positions/velocities and the final
cell histogram are exactly reproducible by a Python oracle.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.apps.base import AppSpec, BuiltApp
from repro.isa.builder import ProgramBuilder
from repro.isa.registers import TID_REG, NTHREADS_REG
from repro.runtime.layout import SharedLayout
from repro.runtime.sync import emit_barrier, BARRIER_WORDS

DT = 0.25


def _scatter_stride(count: int) -> int:
    """A stride coprime to *count* used to scatter particle records."""
    return 17 if math.gcd(17, count) == 1 else 1


def _reference(pos0, vel0, steps, cells):
    """Exact Python oracle: same operations, same order per particle."""
    box = float(cells)
    count = len(pos0)
    pos = [list(p) for p in pos0]
    vel = [list(v) for v in vel0]
    hist = [0] * (cells * cells * cells)
    for _ in range(steps):
        for i in range(count):
            p, v = pos[i], vel[i]
            for c in range(3):
                p[c] = p[c] + v[c] * DT
                if p[c] < 0.0:
                    p[c] = -p[c]
                    v[c] = -v[c]
                if p[c] > box:
                    p[c] = 2.0 * box - p[c]
                    v[c] = -v[c]
            cx, cy, cz = (min(int(p[c]), cells - 1) for c in range(3))
            hist[(cz * cells + cy) * cells + cx] += 1
    return pos, vel, hist


class Mp3dApp(AppSpec):
    name = "mp3d"
    description = "rarefied hypersonic flow (paper: 100,000 particles)"
    default_size = {"particles": 256, "steps": 3, "cells": 4}

    def build(
        self, nthreads: int, particles: int = 256, steps: int = 3, cells: int = 4
    ) -> BuiltApp:
        np_count = particles
        box = float(cells)
        stride = _scatter_stride(np_count)
        rng = np.random.default_rng(3)
        pos0 = rng.uniform(0.05, box - 0.05, size=(np_count, 3)).tolist()
        vel0 = rng.uniform(-0.2, 0.2, size=(np_count, 3)).tolist()

        layout = SharedLayout()
        # Particle record: 8 words: x y z vx vy vz pad pad.
        p_base = layout.alloc("particles", 8 * np_count)
        cell_base = layout.alloc("cells", cells * cells * cells)
        barrier = layout.alloc("barrier", BARRIER_WORDS)
        for i in range(np_count):
            slot = (i * stride) % np_count
            for c in range(3):
                layout.poke(p_base + 8 * slot + c, pos0[i][c])
                layout.poke(p_base + 8 * slot + 3 + c, vel0[i][c])

        b = ProgramBuilder()
        pbase = b.int_reg("p")
        cbase = b.int_reg("cells")
        bar = b.int_reg()
        b.li(pbase, p_base)
        b.li(cbase, cell_base)
        b.li(bar, barrier)
        nparts = b.int_reg()
        b.li(nparts, np_count)
        one = b.int_reg()
        b.li(one, 1)
        ncells = b.int_reg()
        b.li(ncells, cells)
        cmax = b.int_reg()
        b.li(cmax, cells - 1)

        dt = b.fp_reg()
        zero_f = b.fp_reg()
        boxf = b.fp_reg()
        two_box = b.fp_reg()
        b.fli(dt, DT)
        b.fli(zero_f, 0.0)
        b.fli(boxf, box)
        b.fli(two_box, 2.0 * box)

        step = b.int_reg("step")
        i = b.int_reg("i")
        slot = b.int_reg()
        addr = b.int_reg()
        x, y = b.fp_pair()
        z, vx = b.fp_pair()
        vy, vz = b.fp_pair()
        tmpf = b.fp_reg()
        cell = b.int_reg()
        coord = b.int_reg()
        faddr = b.int_reg()
        old = b.int_reg()

        with b.for_range(step, 0, steps):
            b.mov(i, TID_REG)
            ploop = b.fresh("ploop")
            pend = b.fresh("pend")
            b.label(ploop)
            b.bge(i, nparts, pend)
            # scattered record address: ((i*stride) mod NP) * 8
            b.muli(slot, i, stride)
            b.rem(slot, slot, nparts)
            b.slli(slot, slot, 3)
            b.add(addr, slot, pbase)
            # load the whole record: three back-to-back Load-Doubles
            b.lds(x, addr, 0)
            b.lds(z, addr, 2)
            b.lds(vy, addr, 4)
            # advance and reflect off the walls, component by component
            for p, v in ((x, vx), (y, vy), (z, vz)):
                b.fmul(tmpf, v, dt)
                b.fadd(p, p, tmpf)
                with b.if_cmp("lt", p, zero_f):
                    b.fneg(p, p)
                    b.fneg(v, v)
                with b.if_cmp("gt", p, boxf):
                    b.fsub(p, two_box, p)
                    b.fneg(v, v)
            # store the record back (fire-and-forget)
            b.sds(x, addr, 0)
            b.sds(z, addr, 2)
            b.sds(vy, addr, 4)
            # cell histogram: cell = (cz*cells + cy)*cells + cx
            b.li(cell, 0)
            for p in (z, y, x):
                b.cvtfi(coord, p)
                with b.if_cmp("gt", coord, cmax):
                    b.mov(coord, cmax)
                b.mul(cell, cell, ncells)
                b.add(cell, cell, coord)
            b.add(faddr, cbase, cell)
            b.faa(old, faddr, 0, one)
            b.add(i, i, NTHREADS_REG)
            b.j(ploop)
            b.label(pend)
            emit_barrier(b, bar, NTHREADS_REG)
        b.halt()

        exp_pos, exp_vel, exp_hist = _reference(pos0, vel0, steps, cells)

        def check(memory: List) -> None:
            for i in range(np_count):
                slot = (i * stride) % np_count
                got_p = memory[p_base + 8 * slot : p_base + 8 * slot + 3]
                got_v = memory[p_base + 8 * slot + 3 : p_base + 8 * slot + 6]
                assert got_p == exp_pos[i], f"mp3d: particle {i} position"
                assert got_v == exp_vel[i], f"mp3d: particle {i} velocity"
            got_hist = memory[cell_base : cell_base + cells**3]
            assert got_hist == exp_hist, "mp3d: cell histogram mismatch"

        return BuiltApp(
            name=self.name,
            program=b.build("mp3d"),
            shared=layout.build_image(),
            nthreads=nthreads,
            check=check,
            meta={"particles": np_count, "steps": steps, "cells": cells},
        )
