"""``water`` — pairwise molecular dynamics (SPLASH-style).

Paper behaviour to preserve: coordinate triples loaded together (strong
intra-block grouping), static load balancing whose efficiency is erratic
when the molecule count does not divide evenly among the threads
(Figure 2's "water stands out ... 343 molecules" story), and heavy
floating-point work between accesses.

Owner-computes structure: molecules are assigned round-robin
(``i % nthreads``).  Each iteration a thread evaluates, for every owned
molecule *i*, the smooth pair potential against **all** other molecules
(loading each partner's coordinates with a Load-Double plus a load — the
natural group of two shared accesses) and accumulates the force in
registers/local memory.  After a barrier the owner integrates its
molecules (grouped loads, fire-and-forget stores).  No shared force
reduction is needed, so per-thread overhead scales with the work and the
final state is bit-exact against the Python oracle.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.apps.base import AppSpec, BuiltApp
from repro.isa.builder import ProgramBuilder
from repro.isa.registers import TID_REG, NTHREADS_REG
from repro.runtime.layout import SharedLayout
from repro.runtime.sync import emit_barrier, BARRIER_WORDS

DT = 0.01
SPRING = 0.35
CUTOFF2 = 2.25  # interact when squared distance < 2.25


def _reference(pos0, vel0, iterations):
    """Exact Python oracle: same operations, same order."""
    n = len(pos0) // 3
    pos = list(pos0)
    vel = list(vel0)
    for _ in range(iterations):
        force = [0.0] * (3 * n)
        for i in range(n):
            fx = fy = fz = 0.0
            for j in range(n):
                if j == i:
                    continue
                dx = pos[3 * i] - pos[3 * j]
                dy = pos[3 * i + 1] - pos[3 * j + 1]
                dz = pos[3 * i + 2] - pos[3 * j + 2]
                r2 = dx * dx
                r2 = r2 + dy * dy
                r2 = r2 + dz * dz
                if r2 < CUTOFF2:
                    coef = SPRING / (r2 + 0.5)
                    fx = fx + coef * dx
                    fy = fy + coef * dy
                    fz = fz + coef * dz
            force[3 * i] = fx
            force[3 * i + 1] = fy
            force[3 * i + 2] = fz
        for i in range(n):
            for c in range(3):
                vel[3 * i + c] = vel[3 * i + c] + force[3 * i + c] * DT
                pos[3 * i + c] = pos[3 * i + c] + vel[3 * i + c] * DT
    return pos, vel


class WaterApp(AppSpec):
    name = "water"
    description = "pairwise molecular dynamics (paper: 343 molecules)"
    default_size = {"molecules": 27, "iterations": 2}

    def build(
        self, nthreads: int, molecules: int = 27, iterations: int = 2
    ) -> BuiltApp:
        n = molecules
        rng = np.random.default_rng(7)
        pos0 = rng.uniform(0.0, 6.0, size=3 * n).tolist()
        vel0 = rng.uniform(-0.1, 0.1, size=3 * n).tolist()

        layout = SharedLayout()
        # One molecule = 4 words: x, y, z, pad (Load-Double pairs align).
        pos_base = layout.alloc("pos", 4 * n)
        vel_base = layout.alloc("vel", 4 * n)
        barrier = layout.alloc("barrier", BARRIER_WORDS)
        for m in range(n):
            for c in range(3):
                layout.poke(pos_base + 4 * m + c, pos0[3 * m + c])
                layout.poke(vel_base + 4 * m + c, vel0[3 * m + c])

        # Local memory: per-owned-molecule force accumulators (3 words per
        # molecule, indexed by molecule id for simplicity).
        local_size = 3 * n

        b = ProgramBuilder()
        posr = b.int_reg("pos")
        velr = b.int_reg("vel")
        bar = b.int_reg()
        b.li(posr, pos_base)
        b.li(velr, vel_base)
        b.li(bar, barrier)
        nmol = b.int_reg()
        b.li(nmol, n)

        dt = b.fp_reg("dt")
        spring = b.fp_reg()
        half = b.fp_reg()
        cutoff2 = b.fp_reg()
        b.fli(dt, DT)
        b.fli(spring, SPRING)
        b.fli(half, 0.5)
        b.fli(cutoff2, CUTOFF2)

        it = b.int_reg("it")
        i = b.int_reg("i")
        j = b.int_reg("j")
        iaddr = b.int_reg()
        jaddr = b.int_reg()
        il = b.int_reg()
        xi, yi = b.fp_pair()
        zi = b.fp_reg()
        xj, yj = b.fp_pair()
        zj = b.fp_reg()
        dx = b.fp_reg()
        dy = b.fp_reg()
        dz = b.fp_reg()
        r2 = b.fp_reg()
        coef = b.fp_reg()
        tmpf = b.fp_reg()
        fx = b.fp_reg()
        fy = b.fp_reg()
        fz = b.fp_reg()

        with b.for_range(it, 0, iterations):
            # ---- forces on owned molecules (owner computes everything) ----
            b.mov(i, TID_REG)
            iloop = b.fresh("iloop")
            iend = b.fresh("iend")
            b.label(iloop)
            b.bge(i, nmol, iend)
            b.slli(iaddr, i, 2)
            b.add(iaddr, iaddr, posr)
            b.lds(xi, iaddr, 0)  # xi, yi in one round trip
            b.lws(zi, iaddr, 2)
            b.fli(fx, 0.0)
            b.fli(fy, 0.0)
            b.fli(fz, 0.0)
            jloop = b.fresh("jloop")
            jnext = b.fresh("jnext")
            jend = b.fresh("jend")
            b.li(j, 0)
            b.label(jloop)
            b.bge(j, nmol, jend)
            b.beq(j, i, jnext)
            b.slli(jaddr, j, 2)
            b.add(jaddr, jaddr, posr)
            b.lds(xj, jaddr, 0)  # the natural group of two accesses
            b.lws(zj, jaddr, 2)
            b.fsub(dx, xi, xj)
            b.fsub(dy, yi, yj)
            b.fsub(dz, zi, zj)
            b.fmul(r2, dx, dx)
            b.fmul(tmpf, dy, dy)
            b.fadd(r2, r2, tmpf)
            b.fmul(tmpf, dz, dz)
            b.fadd(r2, r2, tmpf)
            with b.if_cmp("lt", r2, cutoff2):
                b.fadd(coef, r2, half)
                b.fdiv(coef, spring, coef)
                b.fmul(tmpf, coef, dx)
                b.fadd(fx, fx, tmpf)
                b.fmul(tmpf, coef, dy)
                b.fadd(fy, fy, tmpf)
                b.fmul(tmpf, coef, dz)
                b.fadd(fz, fz, tmpf)
            b.label(jnext)
            b.addi(j, j, 1)
            b.j(jloop)
            b.label(jend)
            # stash the force in private local memory until the barrier
            b.muli(il, i, 3)
            b.swl(fx, il, 0)
            b.swl(fy, il, 1)
            b.swl(fz, il, 2)
            b.add(i, i, NTHREADS_REG)
            b.j(iloop)
            b.label(iend)
            emit_barrier(b, bar, NTHREADS_REG)

            # ---- integrate owned molecules ----
            vx, vy = b.fp_pair()
            vz = b.fp_reg()
            b.mov(i, TID_REG)
            gloop = b.fresh("gloop")
            gend = b.fresh("gend")
            b.label(gloop)
            b.bge(i, nmol, gend)
            b.slli(iaddr, i, 2)
            b.add(jaddr, iaddr, velr)
            b.lds(vx, jaddr, 0)
            b.lws(vz, jaddr, 2)
            b.add(iaddr, iaddr, posr)
            b.lds(xi, iaddr, 0)
            b.lws(zi, iaddr, 2)
            b.muli(il, i, 3)
            b.lwl(fx, il, 0)
            b.lwl(fy, il, 1)
            b.lwl(fz, il, 2)
            for v, f, p in ((vx, fx, xi), (vy, fy, yi), (vz, fz, zi)):
                b.fmul(tmpf, f, dt)
                b.fadd(v, v, tmpf)
                b.fmul(tmpf, v, dt)
                b.fadd(p, p, tmpf)
            b.sds(vx, jaddr, 0)
            b.sws(vz, jaddr, 2)
            b.sds(xi, iaddr, 0)
            b.sws(zi, iaddr, 2)
            b.add(i, i, NTHREADS_REG)
            b.j(gloop)
            b.label(gend)
            b.release(vx, vy, vz)
            emit_barrier(b, bar, NTHREADS_REG)
        b.halt()

        exp_pos, exp_vel = _reference(pos0, vel0, iterations)

        def check(memory: List) -> None:
            got_pos = [memory[pos_base + 4 * m + c] for m in range(n) for c in range(3)]
            got_vel = [memory[vel_base + 4 * m + c] for m in range(n) for c in range(3)]
            if not np.allclose(got_pos, exp_pos, rtol=1e-12, atol=1e-14):
                worst = np.abs(np.array(got_pos) - np.array(exp_pos)).max()
                raise AssertionError(f"water: positions off by {worst}")
            if not np.allclose(got_vel, exp_vel, rtol=1e-12, atol=1e-14):
                worst = np.abs(np.array(got_vel) - np.array(exp_vel)).max()
                raise AssertionError(f"water: velocities off by {worst}")

        return BuiltApp(
            name=self.name,
            program=b.build("water"),
            shared=layout.build_image(),
            nthreads=nthreads,
            local_size=local_size,
            check=check,
            meta={"molecules": n, "iterations": iterations},
        )
