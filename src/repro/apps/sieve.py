"""``sieve`` — count (and sum) the primes below N.

Paper behaviour to preserve (Table 2, Figure 3): a *fairly constant*
run-length distribution — the program "runs through a large array marking
numbers as non-prime at a constant rate" — so a modest multithreading
level hides the full latency, and grouping does not help much further
(shared memory is touched one or two items at a time, never in big
independent bunches).

Structure (a classic segmented Sequent-style sieve):

* phase 0 — every thread sieves the tiny range up to sqrt(N) in its
  *private local* memory (duplicated read-only precompute, no shared
  traffic);
* phase 1 — the flag array is split into contiguous even-aligned
  segments; each thread streams through its own segment marking the
  multiples of every small prime (fire-and-forget stores at a constant
  rate — perfectly balanced, no straggler);
* barrier;
* phase 2 — each thread counts and sums the primes in its segment with
  Load-Double (two flags per network round trip), then folds its
  subtotals into global cells with Fetch-and-Add.
"""

from __future__ import annotations

from typing import List

from repro.apps.base import AppSpec, BuiltApp
from repro.isa.builder import ProgramBuilder
from repro.isa.registers import TID_REG, NTHREADS_REG
from repro.runtime.layout import SharedLayout
from repro.runtime.sync import emit_barrier, BARRIER_WORDS


def reference_sieve(limit: int) -> tuple:
    """(count, sum) of primes below *limit* — plain Python oracle."""
    if limit < 3:
        return 0, 0
    flags = bytearray(limit)
    for candidate in range(2, int(limit**0.5) + 1):
        if not flags[candidate]:
            marks = range(candidate * candidate, limit, candidate)
            flags[candidate * candidate :: candidate] = b"\x01" * len(marks)
    primes = [n for n in range(2, limit) if not flags[n]]
    return len(primes), sum(primes)


class SieveApp(AppSpec):
    name = "sieve"
    description = "counts primes < N (paper: N = 4,000,000)"
    default_size = {"limit": 4000}

    def build(self, nthreads: int, limit: int = 4000) -> BuiltApp:
        if limit < 16:
            raise ValueError("sieve needs limit >= 16")
        limit -= limit % 2  # even limit keeps the Load-Double scan tail-free
        layout = SharedLayout()
        flags = layout.alloc("flags", limit)
        count_total = layout.word("count")
        sum_total = layout.word("sum")
        barrier = layout.alloc("barrier", BARRIER_WORDS)
        root = int(limit**0.5)
        prime_list = layout.alloc("small_primes", root + 1)
        primes_ready = layout.word("primes_ready", 0)  # nprimes + 1 when set
        # Local memory: flags for [0, root], then the small-prime list.
        local_flags = 0
        local_primes = root + 1
        local_size = 2 * (root + 2)

        b = ProgramBuilder()
        flags_base = b.int_reg("flags")
        limit_reg = b.int_reg("limit")
        b.li(flags_base, flags)
        b.li(limit_reg, limit)
        one = b.int_reg()
        b.li(one, 1)

        # ---- phase 0: thread 0 sieves [2, root] privately and publishes
        # the small primes; everyone else copies them once they appear ----
        root_reg = b.int_reg()
        b.li(root_reg, root)
        candidate = b.int_reg("p")
        flag = b.int_reg()
        multiple = b.int_reg()
        nprimes = b.int_reg("nprimes")
        plist = b.int_reg()
        ready = b.int_reg()
        b.li(plist, prime_list)
        b.li(ready, primes_ready)
        b.li(nprimes, 0)
        fetch_primes = b.fresh("fetchprimes")
        phase0_done = b.fresh("phase0done")
        b.bne(TID_REG, "r0", fetch_primes)
        with b.for_range(candidate, 2, root + 1):
            b.lwl(flag, candidate, local_flags)
            with b.if_cmp("eq", flag, "r0"):
                # record the prime locally and publish it
                b.add(multiple, nprimes, "r0")
                b.swl(candidate, multiple, local_primes)
                b.add(multiple, multiple, plist)
                b.sws(candidate, multiple, 0)
                b.addi(nprimes, nprimes, 1)
                # mark local multiples up to root
                b.mul(multiple, candidate, candidate)
                mark0 = b.fresh("mark0")
                mark0_done = b.fresh("mark0done")
                b.label(mark0)
                b.bgt(multiple, root_reg, mark0_done)
                b.swl(one, multiple, local_flags)
                b.add(multiple, multiple, candidate)
                b.j(mark0)
                b.label(mark0_done)
        # publish the count (stores are delivered in order, so every
        # published prime is visible before the flag flips)
        b.addi(flag, nprimes, 1)
        b.sws(flag, ready, 0)
        b.j(phase0_done)
        # other threads: wait for the flag, then copy the primes locally
        b.label(fetch_primes)
        spin = b.fresh("primespin")
        b.label(spin)
        b.lws(flag, ready, 0, sync=True)
        b.beq(flag, "r0", spin)
        b.addi(nprimes, flag, -1)
        with b.for_range(candidate, 0, nprimes, stop_is_reg=True):
            b.add(multiple, candidate, plist)
            b.lws(flag, multiple, 0)
            b.swl(flag, candidate, local_primes)
        b.label(phase0_done)
        b.release(plist, ready)

        # ---- segment bounds: even-aligned contiguous chunks of [2, limit) ----
        lo = b.int_reg("lo")
        hi = b.int_reg("hi")
        chunk = b.int_reg()
        b.li(chunk, limit - 2)
        b.div(chunk, chunk, NTHREADS_REG)
        b.srli(chunk, chunk, 1)
        b.slli(chunk, chunk, 1)
        b.addi(chunk, chunk, 2)  # even chunk size, n*chunk >= limit-2
        b.mul(lo, chunk, TID_REG)
        b.addi(lo, lo, 2)
        b.add(hi, lo, chunk)
        b.release(chunk)
        with b.if_cmp("gt", hi, limit_reg):
            b.mov(hi, limit_reg)
        with b.if_cmp("gt", lo, limit_reg):
            b.mov(lo, limit_reg)

        # ---- phase 1: mark multiples of each small prime in [lo, hi) ----
        pidx = b.int_reg()
        addr = b.int_reg()
        start = b.int_reg()
        with b.for_range(pidx, 0, nprimes, stop_is_reg=True):
            b.lwl(candidate, pidx, local_primes)
            # start = max(candidate^2, first multiple >= lo)
            b.mul(start, candidate, candidate)
            with b.if_cmp("lt", start, lo):
                # start = ceil(lo / candidate) * candidate
                b.addi(start, lo, -1)
                b.div(start, start, candidate)
                b.addi(start, start, 1)
                b.mul(start, start, candidate)
            mark = b.fresh("mark")
            mark_done = b.fresh("markdone")
            b.label(mark)
            b.bge(start, hi, mark_done)
            b.add(addr, flags_base, start)
            b.sws(one, addr, 0)
            b.add(start, start, candidate)
            b.j(mark)
            b.label(mark_done)
        b.release(pidx, start, root_reg, multiple, flag)

        # ---- barrier between marking and counting ----
        bar = b.int_reg()
        b.li(bar, barrier)
        emit_barrier(b, bar, NTHREADS_REG)
        b.release(bar)

        # ---- phase 2: count/sum the primes of the same segment ----
        # Branchless: every flag pair costs the same cycles, giving the
        # near-constant run-length distribution the paper reports.
        # Segments are even-aligned (and limit is even), so there is no
        # odd tail item.
        count = b.int_reg("count")
        total = b.int_reg("sum")
        b.li(count, 0)
        b.li(total, 0)
        flag0, flag1 = b.int_pair()
        pos = b.int_reg()
        nxt = b.int_reg()
        notflag = b.int_reg()
        weighted = b.int_reg()
        scan = b.fresh("scan")
        scandone = b.fresh("scandone")
        b.mov(pos, lo)
        b.label(scan)
        b.bge(pos, hi, scandone)
        b.add(addr, flags_base, pos)
        b.lds(flag0, addr, 0)  # flags[pos], flags[pos+1]
        b.sub(notflag, one, flag0)
        b.add(count, count, notflag)
        b.mul(weighted, pos, notflag)
        b.add(total, total, weighted)
        b.addi(nxt, pos, 1)
        b.sub(notflag, one, flag1)
        b.add(count, count, notflag)
        b.mul(weighted, nxt, notflag)
        b.add(total, total, weighted)
        b.addi(pos, pos, 2)
        b.j(scan)
        b.label(scandone)

        cell = b.int_reg()
        scratch = b.int_reg()
        b.li(cell, count_total)
        b.faa(scratch, cell, 0, count)
        b.li(cell, sum_total)
        b.faa(scratch, cell, 0, total)
        b.halt()

        expected_count, expected_sum = reference_sieve(limit)

        def check(memory: List) -> None:
            assert memory[count_total] == expected_count, (
                f"sieve: counted {memory[count_total]} primes, "
                f"expected {expected_count}"
            )
            assert memory[sum_total] == expected_sum, (
                f"sieve: prime sum {memory[sum_total]}, expected {expected_sum}"
            )

        return BuiltApp(
            name=self.name,
            program=b.build("sieve"),
            shared=layout.build_image(pad=2),  # LDS may read one word past
            nthreads=nthreads,
            local_size=local_size,
            check=check,
            meta={"limit": limit, "primes": expected_count},
        )
