"""Synchronisation primitives built from Fetch-and-Add plus spinning.

Exactly as in the paper (Section 3): the machine's only atomic primitive
is Fetch-and-Add (combinable at memory), and locks and barriers are
spin-built on top of it.  All spin traffic is emitted with the ``sync``
mark, so the bandwidth accounting can exclude it the way the paper's
footnote 2 does.

Layout conventions (word offsets inside the shared region):

* lock (``LOCK_WORDS`` = 2): ``[next_ticket, now_serving]`` — a fair
  ticket lock;
* barrier (``BARRIER_WORDS`` = 2): ``[arrival_count, generation]`` — a
  generation-counting barrier that is immediately reusable.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder, RegLike

LOCK_WORDS = 2
BARRIER_WORDS = 2

_TICKET_OFF = 0
_SERVING_OFF = 1
_COUNT_OFF = 0
_GEN_OFF = 1


def emit_lock_acquire(
    b: ProgramBuilder, lock_base: RegLike, ticket_out: "RegLike | None" = None
) -> int:
    """Acquire the ticket lock whose two words start at register
    *lock_base*.  Returns the register holding the caller's ticket, which
    :func:`emit_lock_release` needs (pass it back via *ticket_out* to
    reuse a caller-allocated register)."""
    ticket = b.r(ticket_out) if ticket_out is not None else b.int_reg()
    one = b.int_reg()
    current = b.int_reg()
    b.li(one, 1)
    # Take a ticket (one combinable Fetch-and-Add).
    b.faa(ticket, lock_base, _TICKET_OFF, one, sync=True)
    # Spin until served.
    spin = b.fresh("lockspin")
    b.label(spin)
    b.lws(current, lock_base, _SERVING_OFF, sync=True)
    b.bne(current, ticket, spin)
    b.release(one, current)
    return ticket


def emit_lock_release(
    b: ProgramBuilder, lock_base: RegLike, ticket: RegLike, free_ticket: bool = True
) -> None:
    """Release the ticket lock: serve the next ticket.

    The holder knows ``now_serving == ticket``, so a plain (fire-and-
    forget) store of ``ticket + 1`` suffices — no atomic needed.
    """
    next_ticket = b.int_reg()
    b.addi(next_ticket, ticket, 1)
    b.sws(next_ticket, lock_base, _SERVING_OFF, sync=True)
    b.release(next_ticket)
    if free_ticket:
        b.release(b.r(ticket))


def emit_barrier(b: ProgramBuilder, barrier_base: RegLike, nthreads: RegLike) -> None:
    """All *nthreads* threads meet at the barrier starting at register
    *barrier_base*.  Reusable: a generation word flips once per episode.

    The last arrival resets the count *before* bumping the generation;
    both stores are issued in program order, and the network delivers in
    order, so a thread released into the next episode always sees the
    reset count.
    """
    generation = b.int_reg()
    one = b.int_reg()
    arrived = b.int_reg()
    b.lws(generation, barrier_base, _GEN_OFF, sync=True)
    b.li(one, 1)
    b.faa(arrived, barrier_base, _COUNT_OFF, one, sync=True)
    b.addi(arrived, arrived, 1)
    with b.if_else("eq", arrived, nthreads) as arm:
        # Last arrival: reset the count, open the next generation.
        b.sws("r0", barrier_base, _COUNT_OFF, sync=True)
        b.addi(generation, generation, 1)
        b.sws(generation, barrier_base, _GEN_OFF, sync=True)
        with arm.otherwise():
            current = b.int_reg()
            spin = b.fresh("barspin")
            b.label(spin)
            b.lws(current, barrier_base, _GEN_OFF, sync=True)
            b.beq(current, generation, spin)
            b.release(current)
    b.release(generation, one, arrived)


def emit_counter_next(
    b: ProgramBuilder, counter_base: RegLike, out: RegLike, chunk: int = 1
) -> None:
    """Dynamic work distribution: ``out = fetch_and_add(counter, chunk)``.

    This is real application traffic (not spinning), so it is *not*
    marked sync.
    """
    step = b.int_reg()
    b.li(step, chunk)
    b.faa(out, counter_base, 0, step)
    b.release(step)
