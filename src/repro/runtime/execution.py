"""Load a built application onto a configured machine.

The loader plays the role of the fork step in the paper's applications:
it materialises the shared-memory image, creates one thread context per
simulated process, and sets the convention registers — ``r4`` thread id,
``r5`` thread count, ``r6`` argument-block base — before the machine
starts at cycle zero.

(Current home of what ``repro.runtime.loader`` used to export — that
module is gone; prefer the :mod:`repro.api` facade for new code.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.isa.registers import TID_REG, NTHREADS_REG, ARGS_REG
from repro.machine.config import MachineConfig
from repro.machine.simulator import Simulator, SimulationResult
from repro.obs.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import BuiltApp
    from repro.isa.program import Program


def make_simulator(
    app: "BuiltApp",
    config: MachineConfig,
    program: "Program | None" = None,
    tracer: Optional[Tracer] = None,
    backend: Optional[str] = None,
) -> Simulator:
    """Build a ready-to-run simulator for *app* on *config*.

    *program* overrides the application's original code (pass the output
    of :func:`repro.compiler.prepare_for_model` to run transformed code).
    *tracer* attaches a :mod:`repro.obs` probe (see
    :class:`~repro.obs.tracer.RingTracer`).  *backend* picks the
    execution backend (see :mod:`repro.jit`); backends are bit-identical
    by contract, so the choice affects wall-clock speed only.  The
    application must have been built for ``config.total_threads``
    threads.
    """
    if app.nthreads != config.total_threads:
        raise ValueError(
            f"application {app.name!r} was built for {app.nthreads} threads "
            f"but the machine has {config.total_threads}"
        )
    thread_registers = []
    for tid in range(config.total_threads):
        regs = {TID_REG: tid, NTHREADS_REG: config.total_threads}
        if app.args_base is not None:
            regs[ARGS_REG] = app.args_base
        thread_registers.append(regs)
    return Simulator(
        program if program is not None else app.program,
        config,
        list(app.shared),
        thread_registers,
        local_size=app.local_size,
        tracer=tracer,
        backend=backend,
    )


def run_app(
    app: "BuiltApp",
    config: MachineConfig,
    program: "Program | None" = None,
    check: bool = True,
    tracer: Optional[Tracer] = None,
    backend: Optional[str] = None,
) -> SimulationResult:
    """Simulate *app* on *config* and (by default) verify its result."""
    result = make_simulator(app, config, program, tracer=tracer, backend=backend).run()
    if check and app.check is not None:
        app.check(result.shared)
    return result
