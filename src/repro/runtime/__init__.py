"""Runtime support: memory layout, thread spawning, and synchronisation.

The paper's applications are Sequent-style SPMD programs: a fixed set of
processes is forked once, shared storage is allocated statically or with
``malloc``, and locks and barriers are built from Fetch-and-Add plus
spinning (Section 3).  This package provides the equivalents:

* :class:`~repro.runtime.layout.SharedLayout` — a bump allocator for the
  shared address space that doubles as the initial memory image;
* :mod:`repro.runtime.sync` — code generators for ticket locks,
  sense-counting barriers and Fetch-and-Add work counters, emitted into a
  :class:`~repro.isa.builder.ProgramBuilder` (spin traffic carries the
  ``sync`` mark so the bandwidth table can exclude it, as the paper does);
* :func:`~repro.runtime.execution.make_simulator` — lay a built
  application onto a configured machine, setting each thread's
  id/thread-count/argument registers.
"""

from repro.runtime.layout import SharedLayout
from repro.runtime.execution import make_simulator, run_app
from repro.runtime.sync import (
    emit_lock_acquire,
    emit_lock_release,
    emit_barrier,
    emit_counter_next,
    LOCK_WORDS,
    BARRIER_WORDS,
)

__all__ = [
    "SharedLayout",
    "make_simulator",
    "run_app",
    "emit_lock_acquire",
    "emit_lock_release",
    "emit_barrier",
    "emit_counter_next",
    "LOCK_WORDS",
    "BARRIER_WORDS",
]
