"""Removed module — the loader lives in :mod:`repro.runtime.execution`.

``repro.runtime.loader`` spent one release as a ``DeprecationWarning``
shim; it now fails fast so stale imports surface at import time instead
of silently forwarding forever.
"""

from __future__ import annotations

raise ImportError(
    "repro.runtime.loader was removed; use repro.api.simulate for "
    "registered applications or repro.runtime.execution "
    "(make_simulator / run_app) for custom BuiltApp objects"
)
