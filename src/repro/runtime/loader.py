"""Deprecated module — the loader now lives in :mod:`repro.runtime.execution`.

Importing :func:`make_simulator`/:func:`run_app` from here still works
but emits a :class:`DeprecationWarning`; new code should call
:func:`repro.api.simulate` (registered applications) or
:mod:`repro.runtime.execution` (custom ``BuiltApp`` objects).
"""

from __future__ import annotations

import warnings

from repro.runtime import execution as _execution

_FORWARDED = ("make_simulator", "run_app")


def __getattr__(name):
    if name in _FORWARDED:
        warnings.warn(
            f"repro.runtime.loader.{name} is deprecated; use "
            f"repro.api.simulate or repro.runtime.execution.{name}",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_execution, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(list(globals()) + list(_FORWARDED))
