"""Shared-memory layout: a named bump allocator plus the initial image.

Applications allocate named regions (arrays, locks, barriers, scalar
cells), optionally with initial contents, and the loader materialises the
resulting word array as the machine's shared memory.  Addresses are word
addresses, as everywhere in the simulator.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional


class SharedLayout:
    """Bump allocator over the shared address space."""

    def __init__(self, align: int = 8):
        #: Default alignment (words).  Aligning regions to the cache-line
        #: size keeps unrelated regions from false-sharing a line.
        self.align = align
        self._size = 0
        self._regions: Dict[str, tuple] = {}  # name -> (base, size)
        self._image: Dict[int, object] = {}  # sparse initial values

    def alloc(
        self,
        name: str,
        size: int,
        init: "Optional[Iterable]" = None,
        align: Optional[int] = None,
    ) -> int:
        """Reserve *size* words under *name*; returns the base address."""
        if name in self._regions:
            raise ValueError(f"region {name!r} allocated twice")
        if size < 1:
            raise ValueError(f"region {name!r}: size must be positive")
        alignment = align or self.align
        base = -(-self._size // alignment) * alignment
        self._size = base + size
        self._regions[name] = (base, size)
        if init is not None:
            values = list(init)
            if len(values) > size:
                raise ValueError(
                    f"region {name!r}: {len(values)} initial values for "
                    f"{size} words"
                )
            for offset, value in enumerate(values):
                self._image[base + offset] = value
        return base

    def word(self, name: str, init=0) -> int:
        """Allocate a single named word."""
        return self.alloc(name, 1, [init])

    def poke(self, addr: int, value) -> None:
        """Set one word of the initial image (for structured records that
        a flat ``init`` list cannot express conveniently)."""
        if not 0 <= addr < self._size:
            raise ValueError(f"poke outside allocated space: {addr}")
        self._image[addr] = value

    def base(self, name: str) -> int:
        return self._regions[name][0]

    def size_of(self, name: str) -> int:
        return self._regions[name][1]

    @property
    def total_words(self) -> int:
        return self._size

    def build_image(self, pad: int = 0) -> List:
        """Materialise the initial shared-memory word array."""
        image: List = [0] * (self._size + pad)
        for addr, value in self._image.items():
            image[addr] = value
        return image

    def region_slice(self, memory: List, name: str) -> List:
        """Read region *name* back out of a (final) memory image."""
        base, size = self._regions[name]
        return memory[base : base + size]
