"""Generation parameters for synthetic SPMD kernels.

A :class:`SynthConfig` is the *shape* of a random kernel: how much of
the instruction stream touches shared memory, how large the independent
shared-load bunches are (the quantity the paper's grouped models exploit),
how much control flow surrounds them, and which synchronisation patterns
from :mod:`repro.runtime.sync` appear.  Together with a 64-bit seed it
fully determines one kernel — generation is a pure function of
``(seed, config)`` (see :mod:`repro.synth.generator`), so a config plus a
seed is a complete, replayable test case.

Named presets give the CLI and the ``synth:<seed>:<preset>`` app scheme a
stable vocabulary of kernel families.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict

_SYNC_PATTERNS = ("none", "lock", "barrier", "mixed")


@dataclass(frozen=True)
class SynthConfig:
    """Knobs of the kernel generator (all deterministic given a seed).

    :param segments: body segments per phase — the unit the shrinker
        bisects over.
    :param shared_load_density: probability that a work segment is a
        shared-load group rather than pure ALU arithmetic.
    :param max_group: largest independent shared-load bunch emitted
        (the grouping pass turns each bunch into one SWITCH-closed
        group on the explicit/conditional-switch models).
    :param branchiness: probability that a segment is wrapped in
        data-dependent (but model-independent) control flow.
    :param loop_depth: maximum loop nesting (0 = straight-line).
    :param faa_weight: probability of a Fetch-and-Add chunk-claiming
        segment (dynamic work distribution, paper Section 3).
    :param sync: synchronisation pattern — ``none`` (statically
        partitioned), ``lock`` (ticket-lock critical sections),
        ``barrier`` (multi-phase with neighbour reads), or ``mixed``.
    :param region_words: power-of-two words in the read-only input
        region and in each thread's output partition.
    """

    segments: int = 6
    shared_load_density: float = 0.5
    max_group: int = 4
    branchiness: float = 0.3
    loop_depth: int = 1
    faa_weight: float = 0.2
    sync: str = "none"
    region_words: int = 32

    def __post_init__(self) -> None:
        if self.segments < 1:
            raise ValueError("segments must be >= 1")
        if not 0.0 <= self.shared_load_density <= 1.0:
            raise ValueError("shared_load_density must be in [0, 1]")
        if not 1 <= self.max_group <= 8:
            raise ValueError("max_group must be in [1, 8]")
        if not 0.0 <= self.branchiness <= 1.0:
            raise ValueError("branchiness must be in [0, 1]")
        if not 0 <= self.loop_depth <= 2:
            raise ValueError("loop_depth must be in [0, 2]")
        if not 0.0 <= self.faa_weight <= 1.0:
            raise ValueError("faa_weight must be in [0, 1]")
        if self.sync not in _SYNC_PATTERNS:
            raise ValueError(
                f"sync must be one of {_SYNC_PATTERNS}, got {self.sync!r}"
            )
        if self.region_words < 8 or self.region_words & (self.region_words - 1):
            raise ValueError("region_words must be a power of two >= 8")

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "SynthConfig":
        return cls(**data)


#: Kernel families addressable as ``synth:<seed>:<preset>``.
PRESETS: Dict[str, SynthConfig] = {
    "default": SynthConfig(),
    # Big independent shared-load bunches — the workloads where the
    # paper's grouping (explicit/conditional switch) should shine.
    "dense": SynthConfig(
        segments=8, shared_load_density=0.85, max_group=6, branchiness=0.15,
    ),
    # Control-flow heavy with small groups — run lengths dominated by
    # branches, the regime where switch-on-load already does well.
    "branchy": SynthConfig(
        shared_load_density=0.35, max_group=2, branchiness=0.8, loop_depth=2,
    ),
    # Lock + barrier + Fetch-and-Add traffic on top of regular work.
    "sync": SynthConfig(
        segments=7, sync="mixed", faa_weight=0.45, branchiness=0.25,
    ),
    # Small and fast — CI smoke and unit tests.
    "quick": SynthConfig(
        segments=3, region_words=16, loop_depth=1, branchiness=0.25,
        faa_weight=0.15,
    ),
}


def get_preset(name: str) -> SynthConfig:
    """Preset lookup with a helpful error."""
    try:
        return PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise KeyError(f"unknown synth preset {name!r} (known: {known})") from None
