"""Differential fuzzing of the simulator with generated kernels.

One fuzz *seed* is one experiment: generate a kernel
(:mod:`repro.synth.generator`), lint it for every switch model, run it
across the full grid of switch models × execution backends, and judge
the grid against three layers of oracles —

1. the kernel's own reference result (the generator's evaluator knows
   the exact final memory image, checked per run);
2. the per-run conservation laws of :func:`repro.check.result_violations`;
3. the cross-model invariants of
   :func:`repro.check.cross_model_violations` (model-independent memory,
   traffic, instruction counts; bit-identical backends), including the
   per-thread retired-instruction law measured by an attached tracer.

A failing seed is *shrunk*: delta debugging over the plan's top-level
segments (:func:`repro.synth.generator.prune_plan`) finds a minimal
kernel that still violates the same invariant, and the result is written
as a JSON **repro bundle** — seed, config, pruned plan, machine shape
and the first violated invariant — which :func:`replay_bundle` (and
``repro-fuzz --replay``) re-executes exactly.

:func:`run_selftest` closes the loop on the harness itself, mirroring
:mod:`repro.lint.mutations`: it injects deliberate bugs (a store to the
wrong slot, a stale expected-result oracle, ungrouped code slipped under
the explicit-switch model) and proves each one is caught *and* shrunk.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.apps.base import BuiltApp
from repro.check import Violation, cross_model_violations, result_violations
from repro.compiler.passes import prepare_for_model
from repro.faults.config import FaultConfig, LifecycleConfig
from repro.isa.opcodes import Op
from repro.machine.config import MachineConfig
from repro.machine.models import SwitchModel
from repro.obs.tracer import Tracer
from repro.runtime.execution import run_app
from repro.synth.config import SynthConfig, get_preset
from repro.synth.generator import (
    build_synth_app,
    generate_plan,
    plan_segment_ids,
    program_fingerprint,
    prune_plan,
)
from repro.synth.registry import format_synth_name

BUNDLE_VERSION = 1

#: Every switch model's value string, grid order.
ALL_MODELS: Tuple[str, ...] = tuple(model.value for model in SwitchModel)

#: Both execution backends; the grid cross-checks them bit-for-bit.
ALL_BACKENDS: Tuple[str, ...] = ("interpreter", "compiled")


class SelfTestError(AssertionError):
    """The harness failed to catch (or shrink) an injected bug."""


@dataclasses.dataclass(frozen=True)
class FuzzOptions:
    """Machine shape and scope of one fuzzing campaign."""

    models: Tuple[str, ...] = ALL_MODELS
    backends: Tuple[str, ...] = ALL_BACKENDS
    processors: int = 2
    level: int = 2
    latency: int = 64
    faults: Optional[FaultConfig] = None
    lint: bool = True
    per_thread: bool = True
    shrink: bool = True
    use_engine: bool = True

    def __post_init__(self) -> None:
        models = tuple(SwitchModel.parse(m).value for m in self.models)
        object.__setattr__(self, "models", models)
        for backend in self.backends:
            if backend not in ALL_BACKENDS:
                raise ValueError(
                    f"unknown backend {backend!r} (known: "
                    f"{', '.join(ALL_BACKENDS)})"
                )
        if not self.models or not self.backends:
            raise ValueError("need at least one model and one backend")

    @property
    def nthreads(self) -> int:
        return self.processors * self.level

    @property
    def faulty(self) -> bool:
        faults = self.faults
        return faults is not None and (
            faults.injects_faults or faults.drives_lifecycles
        )

    def to_dict(self) -> Dict:
        payload = {
            "models": list(self.models),
            "backends": list(self.backends),
            "processors": self.processors,
            "level": self.level,
            "latency": self.latency,
            "faults": None,
        }
        if self.faults is not None:
            payload["faults"] = dataclasses.asdict(self.faults)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FuzzOptions":
        faults = payload.get("faults")
        if faults is not None:
            faults = dict(faults)
            lifecycle = faults.get("lifecycle")
            if lifecycle is not None:
                faults["lifecycle"] = LifecycleConfig(**lifecycle)
            faults = FaultConfig(**faults)
        return cls(
            models=tuple(payload["models"]),
            backends=tuple(payload["backends"]),
            processors=payload["processors"],
            level=payload["level"],
            latency=payload["latency"],
            faults=faults,
        )


def fault_profile(name: str, seed: int = 0) -> Optional[FaultConfig]:
    """Canned :class:`FaultConfig` for the CLI's ``--faults`` flag.

    ``none`` disables injection; ``loss`` drops/delays replies through
    the NACK/retry machinery; ``lifecycle`` walks two memory components
    through short degrade/fail/repair cycles.  Both active profiles are
    seeded per fuzz seed so campaigns stay reproducible.
    """
    if name == "none":
        return None
    if name == "loss":
        return FaultConfig(
            loss_rate=0.02, delay_rate=0.05, delay_cycles=32, seed=seed
        )
    if name == "lifecycle":
        return FaultConfig(
            seed=seed,
            lifecycle=LifecycleConfig(
                components=2,
                seed=seed,
                mean_healthy=600,
                mean_degraded=150,
                mean_failed=80,
                mean_repair=120,
            ),
        )
    raise ValueError(
        f"unknown fault profile {name!r} (known: none, loss, lifecycle)"
    )


@dataclasses.dataclass
class SeedOutcome:
    """Everything the harness learned from one fuzz seed."""

    seed: int
    preset: str
    name: str
    fingerprint: str
    runs: int
    violations: List[Violation] = dataclasses.field(default_factory=list)
    bundle: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "preset": self.preset,
            "name": self.name,
            "fingerprint": self.fingerprint,
            "runs": self.runs,
            "ok": self.ok,
            "violations": [
                {"invariant": v.invariant, "message": v.message}
                for v in self.violations
            ],
        }


class _InstrCountTracer(Tracer):
    """Counts retired non-SWITCH instructions per thread — the probe
    behind the ``per-thread-instructions`` law."""

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}

    def instr(self, time: int, pid: int, tid: int, pc: int, op: int) -> None:
        if op != Op.SWITCH:
            self.counts[tid] = self.counts.get(tid, 0) + 1


# ---------------------------------------------------------------------------
# grid execution
# ---------------------------------------------------------------------------


def _machine_config(model: str, options: FuzzOptions) -> MachineConfig:
    resolved = SwitchModel(model)
    return MachineConfig(
        model=resolved,
        num_processors=options.processors,
        threads_per_processor=options.level,
        latency=0 if resolved is SwitchModel.IDEAL else options.latency,
        faults=options.faults,
    )


def _run_grid_direct(
    app: BuiltApp,
    options: FuzzOptions,
    program_overrides: Optional[Mapping[str, object]] = None,
) -> Tuple[Dict[str, Dict[str, object]], List[Violation]]:
    """Run *app* across the model × backend grid in-process.

    *program_overrides* maps a model value to a program to run instead
    of the properly prepared one — the self-test's way of slipping a
    deliberate bug under one model.
    """
    grid: Dict[str, Dict[str, object]] = {}
    violations: List[Violation] = []
    overrides = program_overrides or {}
    for model in options.models:
        program = overrides.get(model)
        if program is None:
            program = prepare_for_model(app.program, SwitchModel(model))
        config = _machine_config(model, options)
        cells: Dict[str, object] = {}
        for backend in options.backends:
            where = f"{model}/{backend}"
            try:
                result = run_app(
                    app, config, program=program, check=False, backend=backend
                )
            except Exception as error:  # noqa: BLE001 - recorded, not raised
                violations.append(
                    Violation(
                        "run-error", f"{where}: {type(error).__name__}: {error}"
                    )
                )
                continue
            cells[backend] = result
            if app.check is not None:
                try:
                    app.check(result.shared)
                except AssertionError as error:
                    violations.append(
                        Violation("functional-check", f"{where}: {error}")
                    )
            for violation in result_violations(result):
                violations.append(
                    Violation(
                        violation.invariant, f"{where}: {violation.message}"
                    )
                )
        if cells:
            grid[model] = cells
    return grid, violations


def _run_grid_engine(
    name: str, options: FuzzOptions
) -> Tuple[Dict[str, Dict[str, object]], List[Violation]]:
    """Run a registry-addressable kernel across the grid through the
    :class:`~repro.engine.executor.Engine` — one engine per backend, so
    the fuzzer exercises exactly the execution funnel every CLI uses."""
    from repro.engine.executor import Engine, EngineRunError
    from repro.engine.spec import RunSpec

    grid: Dict[str, Dict[str, object]] = {}
    violations: List[Violation] = []
    spec_overrides: Dict[str, object] = {}
    if options.faults is not None:
        spec_overrides["faults"] = options.faults
    for backend in options.backends:
        with Engine(workers=1, cache=None, backend=backend) as engine:
            for model in options.models:
                where = f"{model}/{backend}"
                spec = RunSpec(
                    app=name,
                    model=model,
                    processors=options.processors,
                    level=options.level,
                    scale="tiny",
                    latency=0 if model == "ideal" else options.latency,
                    overrides=spec_overrides,
                )
                try:
                    result = engine.run(spec)
                except EngineRunError as error:
                    message = str(error)
                    invariant = (
                        "functional-check"
                        if "AssertionError" in message
                        else "run-error"
                    )
                    violations.append(
                        Violation(invariant, f"{where}: {message}")
                    )
                    continue
                grid.setdefault(model, {})[backend] = result
                for violation in result_violations(result):
                    violations.append(
                        Violation(
                            violation.invariant,
                            f"{where}: {violation.message}",
                        )
                    )
    return grid, violations


def _per_thread_counts(
    app: BuiltApp,
    options: FuzzOptions,
    program_overrides: Optional[Mapping[str, object]] = None,
) -> Dict[str, Dict[int, int]]:
    """One traced interpreter run per model → per-thread retired
    non-SWITCH instruction counts."""
    overrides = program_overrides or {}
    counts: Dict[str, Dict[int, int]] = {}
    for model in options.models:
        program = overrides.get(model)
        if program is None:
            program = prepare_for_model(app.program, SwitchModel(model))
        tracer = _InstrCountTracer()
        try:
            run_app(
                app,
                _machine_config(model, options),
                program=program,
                check=False,
                tracer=tracer,
                backend="interpreter",
            )
        except Exception:  # noqa: BLE001 - the grid pass reports run errors
            continue
        counts[model] = tracer.counts
    return counts


def _lint_violations(app: BuiltApp, options: FuzzOptions) -> List[Violation]:
    """Generated kernels must lint clean **by construction** — any
    diagnostic at all (error, warning or info) fails the seed."""
    from repro.lint import lint_pair

    violations: List[Violation] = []
    for model in options.models:
        prepared = prepare_for_model(app.program, SwitchModel(model))
        report = lint_pair(app.program, prepared, model)
        for diagnostic in report.diagnostics:
            violations.append(
                Violation(
                    "lint-clean", f"{model}: {diagnostic.render()}"
                )
            )
    return violations


def _grid_violations(
    plan: Dict,
    app: BuiltApp,
    options: FuzzOptions,
    program_overrides: Optional[Mapping[str, object]] = None,
    engine_name: Optional[str] = None,
    per_thread: Optional[bool] = None,
) -> Tuple[List[Violation], int]:
    """Run the full differential grid for one kernel and return every
    violation plus the number of simulations performed."""
    deterministic = plan["config"]["sync"] == "none"
    if engine_name is not None and program_overrides is None:
        grid, violations = _run_grid_engine(engine_name, options)
    else:
        grid, violations = _run_grid_direct(app, options, program_overrides)
    runs = sum(len(cells) for cells in grid.values())
    counts: Optional[Dict[str, Dict[int, int]]] = None
    want_counts = options.per_thread if per_thread is None else per_thread
    if want_counts and deterministic and not options.faulty:
        counts = _per_thread_counts(app, options, program_overrides)
        runs += len(counts)
    violations.extend(
        cross_model_violations(
            grid,
            deterministic=deterministic,
            faulty=options.faulty,
            per_thread=counts,
        )
    )
    return violations, runs


# ---------------------------------------------------------------------------
# shrinking + repro bundles
# ---------------------------------------------------------------------------

#: Builds the (app, program_overrides) pair to test for a given plan —
#: identity for real fuzzing, a bug-injecting recipe in the self-test.
BuildFn = Callable[[Dict, int], Tuple[BuiltApp, Optional[Dict[str, object]]]]


def _default_build(
    plan: Dict, nthreads: int
) -> Tuple[BuiltApp, Optional[Dict[str, object]]]:
    return build_synth_app(plan, nthreads), None


def shrink_plan(
    plan: Dict,
    invariant: str,
    options: FuzzOptions,
    build: BuildFn = _default_build,
) -> Dict:
    """Minimal plan (ddmin over top-level segments) still violating
    *invariant*.  Every candidate is re-run through the direct grid, so
    the shrunk kernel is guaranteed to reproduce."""

    def still_fails(candidate: Dict) -> bool:
        app, overrides = build(candidate, options.nthreads)
        violations, _ = _grid_violations(
            candidate,
            app,
            options,
            program_overrides=overrides,
            per_thread=(invariant == "per-thread-instructions"),
        )
        return any(v.invariant == invariant for v in violations)

    kept = plan_segment_ids(plan)
    chunk = max(1, len(kept) // 2)
    while True:
        removed_any = False
        index = 0
        while index < len(kept):
            candidate_ids = kept[:index] + kept[index + chunk:]
            if still_fails(prune_plan(plan, set(candidate_ids))):
                kept = candidate_ids
                removed_any = True
            else:
                index += chunk
        if chunk == 1:
            if not removed_any:
                break
        else:
            chunk = max(1, chunk // 2)
    return prune_plan(plan, set(kept))


def make_bundle(
    outcome: SeedOutcome,
    plan: Dict,
    options: FuzzOptions,
    shrunk: Optional[Dict] = None,
) -> Dict:
    """JSON-native repro bundle: everything ``replay_bundle`` needs to
    re-execute the failure, keyed by the first violated invariant."""
    first = outcome.violations[0]
    final_plan = shrunk if shrunk is not None else plan
    return {
        "version": BUNDLE_VERSION,
        "kind": "repro-bundle",
        "seed": outcome.seed,
        "preset": outcome.preset,
        "name": outcome.name,
        "config": plan["config"],
        "options": options.to_dict(),
        "invariant": first.invariant,
        "message": first.message,
        "violations": [
            {"invariant": v.invariant, "message": v.message}
            for v in outcome.violations
        ],
        "plan": final_plan,
        "original_segments": len(plan_segment_ids(plan)),
        "shrunk_segments": len(plan_segment_ids(final_plan)),
        "fingerprint": program_fingerprint(
            build_synth_app(final_plan, options.nthreads).program
        ),
    }


def write_bundle(bundle: Dict, directory: Union[str, Path]) -> Path:
    """Persist *bundle* under *directory*; returns the file path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / (
        f"repro-seed{bundle['seed']}-{bundle['invariant']}.json"
    )
    path.write_text(json.dumps(bundle, indent=2) + "\n", encoding="utf-8")
    return path


def replay_bundle(bundle: Union[Dict, str, Path]) -> SeedOutcome:
    """Re-execute a repro bundle's (possibly pruned) plan on its exact
    machine shape; the outcome lists whatever still fails."""
    if not isinstance(bundle, dict):
        bundle = json.loads(Path(bundle).read_text(encoding="utf-8"))
    options = dataclasses.replace(
        FuzzOptions.from_dict(bundle["options"]), shrink=False
    )
    plan = bundle["plan"]
    app = build_synth_app(plan, options.nthreads, name=bundle["name"])
    violations, runs = _grid_violations(plan, app, options)
    return SeedOutcome(
        seed=bundle["seed"],
        preset=bundle["preset"],
        name=bundle["name"],
        fingerprint=program_fingerprint(app.program),
        runs=runs,
        violations=violations,
    )


# ---------------------------------------------------------------------------
# the fuzz loop
# ---------------------------------------------------------------------------


def fuzz_seed(
    seed: int,
    preset: str = "default",
    options: Optional[FuzzOptions] = None,
    config: Optional[SynthConfig] = None,
) -> SeedOutcome:
    """One full differential experiment for one seed (lint gate, grid
    run, cross-model invariants; shrink + bundle on failure)."""
    options = options or FuzzOptions()
    cfg = config if config is not None else get_preset(preset)
    plan = generate_plan(seed, cfg)
    app = build_synth_app(plan, options.nthreads)
    name = format_synth_name(seed, preset)
    violations: List[Violation] = []
    if options.lint:
        violations.extend(_lint_violations(app, options))
    engine_name = name if (options.use_engine and config is None) else None
    grid_violations, runs = _grid_violations(
        plan, app, options, engine_name=engine_name
    )
    violations.extend(grid_violations)
    outcome = SeedOutcome(
        seed=seed,
        preset=preset,
        name=name,
        fingerprint=program_fingerprint(app.program),
        runs=runs,
        violations=violations,
    )
    if violations and options.shrink:
        shrunk = shrink_plan(plan, violations[0].invariant, options)
        outcome.bundle = make_bundle(outcome, plan, options, shrunk)
    elif violations:
        outcome.bundle = make_bundle(outcome, plan, options)
    return outcome


def fuzz_many(
    seeds,
    preset: str = "default",
    options: Optional[FuzzOptions] = None,
    bundle_dir: Union[str, Path, None] = None,
    corpus_dir: Union[str, Path, None] = None,
    progress: Optional[Callable[[SeedOutcome], None]] = None,
    stop_on_failure: bool = False,
) -> Dict:
    """Run a campaign over *seeds*; returns a JSON-native summary.

    Failing seeds are shrunk and their bundles written under
    *bundle_dir*; *corpus_dir* receives one corpus entry per seed
    (:func:`write_corpus_entry`) regardless of outcome.
    """
    options = options or FuzzOptions()
    outcomes: List[SeedOutcome] = []
    bundles: List[str] = []
    for seed in seeds:
        outcome = fuzz_seed(seed, preset=preset, options=options)
        outcomes.append(outcome)
        if corpus_dir is not None:
            write_corpus_entry(outcome, corpus_dir)
        if outcome.bundle is not None and bundle_dir is not None:
            bundles.append(str(write_bundle(outcome.bundle, bundle_dir)))
        if progress is not None:
            progress(outcome)
        if stop_on_failure and not outcome.ok:
            break
    failures = [outcome for outcome in outcomes if not outcome.ok]
    return {
        "preset": preset,
        "options": options.to_dict(),
        "seeds": len(outcomes),
        "runs": sum(outcome.runs for outcome in outcomes),
        "failures": len(failures),
        "bundles": bundles,
        "outcomes": [outcome.to_dict() for outcome in outcomes],
    }


# ---------------------------------------------------------------------------
# corpus
# ---------------------------------------------------------------------------


def write_corpus_entry(
    outcome: SeedOutcome, directory: Union[str, Path]
) -> Path:
    """One corpus file per fuzzed kernel: its registry-addressable name
    plus the program fingerprint (a replay oracle for other hosts)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    entry = {
        "app": outcome.name,
        "seed": outcome.seed,
        "preset": outcome.preset,
        "fingerprint": outcome.fingerprint,
        "ok": outcome.ok,
    }
    path = directory / f"seed{outcome.seed}-{outcome.preset}.json"
    path.write_text(json.dumps(entry, indent=2) + "\n", encoding="utf-8")
    return path


def read_corpus(directory: Union[str, Path]) -> List[Dict]:
    """Every corpus entry under *directory*, seed-sorted."""
    entries = []
    for path in sorted(Path(directory).glob("*.json")):
        payload = json.loads(path.read_text(encoding="utf-8"))
        if isinstance(payload, dict) and "app" in payload:
            entries.append(payload)
    return entries


def replay_corpus_serve(
    base_url: str,
    corpus: Union[str, Path, List[Dict]],
    options: Optional[FuzzOptions] = None,
    timeout: Optional[float] = 120.0,
) -> Dict:
    """Replay a corpus through a live ``repro-serve`` instance.

    Every kernel is submitted by its ``synth:`` registry name across the
    campaign's model grid, so the server builds the exact same programs
    from seeds alone — the corpus carries no code.  Returns a summary
    with per-spec serve statuses; ``ok`` is true when every spec
    completed.
    """
    from repro.serve.client import Client

    options = options or FuzzOptions()
    entries = read_corpus(corpus) if not isinstance(corpus, list) else corpus
    specs = [
        {
            "app": entry["app"],
            "model": model,
            "processors": options.processors,
            "level": options.level,
            "scale": "tiny",
            "latency": 0 if model == "ideal" else options.latency,
        }
        for entry in entries
        for model in options.models
    ]
    client = Client(base_url)
    accepted = client.submit(specs)
    status = client.wait(accepted["job"], timeout=timeout)
    results = client.result(accepted["job"], wait=False)
    failed = [
        payload for payload in results
        if not isinstance(payload, dict) or "error" in payload
    ]
    return {
        "job": accepted["job"],
        "state": status["state"],
        "kernels": len(entries),
        "specs": len(specs),
        "failed": len(failed),
        "ok": status["state"] == "done" and not failed,
    }


# ---------------------------------------------------------------------------
# mutation self-test — prove the harness catches injected bugs
# ---------------------------------------------------------------------------


def _replace_program(app: BuiltApp, program) -> BuiltApp:
    return dataclasses.replace(app, program=program)


def _mutate_final_store(
    plan: Dict, nthreads: int
) -> Tuple[BuiltApp, Optional[Dict[str, object]]]:
    """Generator-bug stand-in: the kernel's final accumulator store
    lands one slot away from where the evaluator expects it."""
    app = build_synth_app(plan, nthreads)
    program = app.program.copy()
    for instruction in reversed(program.instructions):
        if instruction.op == Op.SWS:
            instruction.imm += 1 if instruction.imm == 0 else -1
            break
    else:  # pragma: no cover - every synth kernel ends in a store
        raise SelfTestError("victim kernel has no store to corrupt")
    return _replace_program(app, program), None


def _mutate_stale_oracle(
    plan: Dict, nthreads: int
) -> Tuple[BuiltApp, Optional[Dict[str, object]]]:
    """Evaluator-bug stand-in: the expected-memory oracle disagrees with
    the machine on one word."""
    app = build_synth_app(plan, nthreads)
    reference = app.check

    def skewed_check(memory) -> None:
        doctored = list(memory)
        doctored[0] ^= 1
        reference(doctored)

    return dataclasses.replace(app, check=skewed_check), None


def _mutate_ungrouped_explicit(
    plan: Dict, nthreads: int
) -> Tuple[BuiltApp, Optional[Dict[str, object]]]:
    """Compiler-bug stand-in: the explicit-switch machine is handed the
    *original* ungrouped code (no SWITCHes), so its retired-instruction
    total diverges from conditional-switch's grouped code."""
    app = build_synth_app(plan, nthreads)
    return app, {"explicit-switch": app.program}


MUTATIONS: Dict[str, Callable] = {
    "final-store-skew": _mutate_final_store,
    "stale-oracle": _mutate_stale_oracle,
    "ungrouped-explicit-code": _mutate_ungrouped_explicit,
}


def run_selftest(
    seed: int = 3, preset: str = "quick", options: Optional[FuzzOptions] = None
) -> Dict:
    """Inject each deliberate bug, assert the harness catches it, and
    assert the shrinker reduces it to a no-larger reproducer.  Returns a
    per-mutation report; raises :class:`SelfTestError` on any miss."""
    base = options or FuzzOptions()
    options = dataclasses.replace(base, use_engine=False, per_thread=True)
    cfg = get_preset(preset)
    plan = generate_plan(seed, cfg)
    original_segments = len(plan_segment_ids(plan))
    report: Dict[str, Dict] = {}
    problems: List[str] = []
    for name, mutate in sorted(MUTATIONS.items()):
        app, overrides = mutate(plan, options.nthreads)
        violations, _ = _grid_violations(
            plan, app, options, program_overrides=overrides
        )
        if not violations:
            problems.append(f"{name}: injected bug produced no violation")
            report[name] = {"caught": False}
            continue
        invariant = violations[0].invariant
        shrunk = shrink_plan(
            plan,
            invariant,
            options,
            build=lambda p, n, _mutate=mutate: _mutate(p, n),
        )
        shrunk_segments = len(plan_segment_ids(shrunk))
        if shrunk_segments > original_segments:
            problems.append(
                f"{name}: shrink grew the plan "
                f"({original_segments} -> {shrunk_segments} segments)"
            )
        report[name] = {
            "caught": True,
            "invariant": invariant,
            "violations": len(violations),
            "original_segments": original_segments,
            "shrunk_segments": shrunk_segments,
        }
    if problems:
        raise SelfTestError(
            "fuzz self-test failed:\n  - " + "\n  - ".join(problems)
        )
    return report
