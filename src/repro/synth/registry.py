"""The ``synth:<seed>[:<preset>]`` application scheme.

Synthetic kernels are addressable everywhere a built-in application name
is accepted — ``repro-bench``, ``repro-trace run``, ``repro-serve
submit``, :func:`repro.api.simulate` — because
:func:`repro.apps.registry.get_app` delegates names with the ``synth:``
prefix here.  The seed accepts decimal or ``0x``-prefixed hex; the
optional preset is one of :data:`repro.synth.config.PRESETS`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.apps.base import AppSpec, BuiltApp
from repro.synth.config import PRESETS, SynthConfig, get_preset
from repro.synth.generator import build_synth_app, generate_plan

SCHEME = "synth:"


def format_synth_name(seed: int, preset: str = "default") -> str:
    """The canonical app name for ``(seed, preset)``."""
    name = f"synth:{seed}"
    return name if preset == "default" else f"{name}:{preset}"


def parse_synth_name(name: str) -> Tuple[int, str]:
    """``(seed, preset)`` from a ``synth:...`` app name (raises
    ``ValueError`` with the expected shape on malformed names)."""
    parts = name.split(":")
    if parts[0] != "synth" or len(parts) not in (2, 3) or not parts[1]:
        raise ValueError(
            f"malformed synthetic app name {name!r} "
            "(expected synth:<seed> or synth:<seed>:<preset>)"
        )
    try:
        seed = int(parts[1], 0)
    except ValueError:
        raise ValueError(
            f"synthetic app seed {parts[1]!r} is not an integer "
            "(decimal or 0x-prefixed hex)"
        ) from None
    if seed < 0:
        raise ValueError("synthetic app seed must be non-negative")
    preset = parts[2] if len(parts) == 3 else "default"
    if preset not in PRESETS:
        known = ", ".join(sorted(PRESETS))
        raise ValueError(
            f"unknown synth preset {preset!r} (known: {known})"
        )
    return seed, preset


class SynthApp(AppSpec):
    """An :class:`AppSpec` wrapping one generated kernel, so synthetic
    workloads flow through the engine/lint/serve stack unchanged."""

    def __init__(
        self,
        seed: int,
        preset: str = "default",
        config: Optional[SynthConfig] = None,
        name: Optional[str] = None,
    ):
        self.seed = seed
        self.preset = preset
        self.config = config if config is not None else get_preset(preset)
        self.name = name or format_synth_name(seed, preset)
        self.description = (
            f"synthetic SPMD kernel (seed={seed}, preset={preset})"
        )
        self.default_size = {}

    def build(self, nthreads: int, **size) -> BuiltApp:
        if size:
            raise TypeError(
                f"synthetic apps take no size parameters, got {sorted(size)}"
            )
        plan = generate_plan(self.seed, self.config)
        return build_synth_app(plan, nthreads, name=self.name)


def resolve_synth(name: str) -> SynthApp:
    """The :class:`SynthApp` for a ``synth:...`` name (registry hook)."""
    seed, preset = parse_synth_name(name)
    return SynthApp(seed, preset, name=name)
