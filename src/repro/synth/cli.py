"""``repro-fuzz`` — differential fuzzing of the simulator.

Examples::

    repro-fuzz --seeds 200                      # campaign, default preset
    repro-fuzz --seeds 25 --quick --models eswitch,cswitch
    repro-fuzz --seeds 50 --faults loss         # NACK/retry machinery on
    repro-fuzz --selftest                       # prove injected bugs are caught
    repro-fuzz --replay fuzz-bundles/repro-seed3-functional-check.json
    repro-fuzz --seeds 20 --quick --corpus corpus/   # export corpus
    repro-fuzz --serve http://127.0.0.1:8321 --corpus corpus/

Failing seeds are shrunk to a minimal kernel and written as JSON repro
bundles under ``--bundle-dir``.  Exit status: 0 when every seed is
clean, 1 when any invariant was violated, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys


def _parse_models(raw: str):
    from repro.machine.models import SwitchModel

    return tuple(
        SwitchModel.parse(token.strip()).value
        for token in raw.split(",")
        if token.strip()
    )


def _parse_backends(raw: str):
    return tuple(token.strip() for token in raw.split(",") if token.strip())


def _build_options(args) -> "FuzzOptions":
    from repro.synth.fuzz import FuzzOptions, fault_profile

    kwargs = {}
    if args.models:
        kwargs["models"] = _parse_models(args.models)
    if args.backends:
        kwargs["backends"] = _parse_backends(args.backends)
    return FuzzOptions(
        processors=args.processors,
        level=args.level,
        latency=args.latency,
        faults=fault_profile(args.faults, seed=args.start),
        lint=not args.no_lint,
        per_thread=not args.no_per_thread,
        shrink=not args.no_shrink,
        use_engine=not args.direct,
        **kwargs,
    )


def _emit_json(payload, destination) -> None:
    if destination == "-":
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"[fuzz] wrote {destination}", file=sys.stderr)


def _cmd_selftest(args) -> int:
    from repro.synth.fuzz import SelfTestError, run_selftest

    try:
        report = run_selftest(seed=args.start or 3)
    except SelfTestError as error:
        print(f"repro-fuzz: {error}", file=sys.stderr)
        return 1
    for name, entry in sorted(report.items()):
        print(
            f"[selftest] {name}: caught as {entry['invariant']!r}, "
            f"shrunk {entry['original_segments']} -> "
            f"{entry['shrunk_segments']} segment(s)"
        )
    if args.json:
        _emit_json(report, args.json)
    print(
        f"[selftest] {len(report)} injected bug(s) caught and shrunk",
        file=sys.stderr,
    )
    return 0


def _cmd_replay(args) -> int:
    from repro.synth.fuzz import replay_bundle

    outcome = replay_bundle(args.replay)
    status = "clean" if outcome.ok else "REPRODUCED"
    print(
        f"[replay] {outcome.name} ({outcome.runs} run(s)): {status}"
    )
    for violation in outcome.violations:
        print(f"  - [{violation.invariant}] {violation.message}")
    if args.json:
        _emit_json(outcome.to_dict(), args.json)
    return 1 if outcome.violations else 0


def _cmd_serve_replay(args) -> int:
    from repro.synth.fuzz import replay_corpus_serve

    if not args.corpus:
        print(
            "repro-fuzz: --serve needs --corpus pointing at exported "
            "corpus entries",
            file=sys.stderr,
        )
        return 2
    options = _build_options(args)
    summary = replay_corpus_serve(args.serve, args.corpus, options=options)
    print(
        f"[serve-replay] job {summary['job']}: {summary['kernels']} "
        f"kernel(s), {summary['specs']} spec(s), state {summary['state']}, "
        f"{summary['failed']} failed"
    )
    if args.json:
        _emit_json(summary, args.json)
    return 0 if summary["ok"] else 1


def _cmd_run(args) -> int:
    from repro.synth.fuzz import fuzz_many

    options = _build_options(args)
    seeds = range(args.start, args.start + args.seeds)

    def progress(outcome) -> None:
        status = "ok" if outcome.ok else "FAIL"
        line = (
            f"[fuzz] seed {outcome.seed} ({outcome.name}): {status}, "
            f"{outcome.runs} run(s)"
        )
        if not outcome.ok:
            line += f" -- first: [{outcome.violations[0].invariant}]"
        print(line, file=sys.stderr)

    summary = fuzz_many(
        seeds,
        preset=args.preset,
        options=options,
        bundle_dir=args.bundle_dir,
        corpus_dir=args.corpus,
        progress=progress if not args.no_progress else None,
        stop_on_failure=args.stop_on_failure,
    )
    print(
        f"[fuzz] {summary['seeds']} seed(s), {summary['runs']} run(s): "
        f"{summary['seeds'] - summary['failures']} clean, "
        f"{summary['failures']} failing"
    )
    for path in summary["bundles"]:
        print(f"[fuzz] repro bundle: {path}")
    if args.json:
        _emit_json(summary, args.json)
    return 1 if summary["failures"] else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description=(
            "Differential fuzzing: generated kernels across every switch "
            "model and backend, cross-checked against conservation and "
            "inter-model invariants."
        ),
    )
    parser.add_argument(
        "--seeds", type=int, default=50, help="number of seeds to fuzz"
    )
    parser.add_argument(
        "--start", type=int, default=0, help="first seed of the range"
    )
    parser.add_argument(
        "--preset",
        default="default",
        help="generator preset (default, dense, branchy, sync, quick)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorthand for --preset quick (small fast kernels)",
    )
    parser.add_argument(
        "--models",
        help="comma-separated switch models (aliases accepted); default all 8",
    )
    parser.add_argument(
        "--backends",
        help="comma-separated execution backends; default interpreter,compiled",
    )
    parser.add_argument("--processors", type=int, default=2)
    parser.add_argument(
        "--level", type=int, default=2, help="threads per processor"
    )
    parser.add_argument(
        "--latency", type=int, default=64, help="round-trip latency in cycles"
    )
    parser.add_argument(
        "--faults",
        choices=("none", "loss", "lifecycle"),
        default="none",
        help="fault-injection profile for every run of the grid",
    )
    parser.add_argument(
        "--bundle-dir",
        default="fuzz-bundles",
        help="where shrunk repro bundles for failing seeds go",
    )
    parser.add_argument(
        "--corpus",
        help="directory for corpus entries (one per seed; also the corpus "
        "source for --serve)",
    )
    parser.add_argument("--no-shrink", action="store_true")
    parser.add_argument(
        "--no-lint", action="store_true", help="skip the per-model lint gate"
    )
    parser.add_argument(
        "--no-per-thread",
        action="store_true",
        help="skip the traced per-thread instruction-count runs",
    )
    parser.add_argument(
        "--direct",
        action="store_true",
        help="run in-process instead of through the engine",
    )
    parser.add_argument("--stop-on-failure", action="store_true")
    parser.add_argument(
        "--no-progress", action="store_true", help="silence per-seed lines"
    )
    parser.add_argument(
        "--json", help="write the JSON summary here ('-' for stdout)"
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="inject deliberate bugs and prove they are caught and shrunk",
    )
    parser.add_argument(
        "--replay", metavar="BUNDLE", help="re-execute a repro bundle"
    )
    parser.add_argument(
        "--serve",
        metavar="URL",
        help="replay --corpus through a live repro-serve instance",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.preset = "quick"

    try:
        if args.selftest:
            return _cmd_selftest(args)
        if args.replay:
            return _cmd_replay(args)
        if args.serve:
            return _cmd_serve_replay(args)
        return _cmd_run(args)
    except (KeyError, ValueError) as error:
        print(f"repro-fuzz: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
