"""``python -m repro.synth`` — alias for the ``repro-fuzz`` CLI."""

import sys

from repro.synth.cli import main

if __name__ == "__main__":
    sys.exit(main())
