"""Seeded generator of random-but-valid SPMD kernels.

Generation is split into two pure stages so failures can be shrunk:

1. :func:`generate_plan` derives a *plan* — a JSON-serialisable tree of
   segment descriptors — from ``(seed, config)`` using the same
   splitmix64 draws as the fault machinery (:mod:`repro.faults.rng`).
   No mutable RNG state exists anywhere, so the same inputs always
   produce the same plan.
2. :func:`build_synth_app` turns a plan into a
   :class:`~repro.apps.base.BuiltApp`: it emits the program through the
   :class:`~repro.isa.builder.ProgramBuilder`, lays out shared memory,
   and — crucially — *evaluates the same plan in pure Python* to compute
   the expected final shared image, which becomes the app's functional
   check.  The fuzz harness's shrinker re-builds apps from pruned plans
   (:func:`prune_plan`), so a failing seed can be bisected down to the
   minimal set of segments that still fails.

Validity is by construction, not by filtering:

* the program ends in ``HALT``, uses only allocator-managed registers,
  and never emits ``SWITCH`` (the grouping pass inserts switches for
  the models that want them — exactly like the hand-written apps);
* every written register is later read (no dead writes — computed
  values fold into an accumulator that the kernel finally stores);
* every non-sync shared store lands in the thread's own output
  partition (address derived from the thread id), at a Fetch-and-Add
  claimed chunk (address derived from the FAA result), or inside a
  ticket-lock critical section — the three shapes
  ``paper-shared-store-race`` accepts;
* shared memory is *deterministic*: non-sync reads touch only the
  read-only input region or cells finalised before the previous
  barrier, lock critical sections perform commutative updates, and
  Fetch-and-Add results are used only as chunk indices whose work is a
  pure function of the index.  Every model and backend must therefore
  produce the identical final image — the differential harness's
  strongest oracle.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Set

from repro.apps.base import BuiltApp
from repro.faults.rng import hash_u64
from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.isa.registers import NTHREADS_REG, TID_REG
from repro.runtime.layout import SharedLayout
from repro.runtime.sync import (
    BARRIER_WORDS,
    LOCK_WORDS,
    emit_barrier,
    emit_lock_acquire,
    emit_lock_release,
)
from repro.synth.config import SynthConfig

#: Accumulator renormalisation mask — applied after every segment so
#: values stay bounded no matter how deeply loops multiply.
ACC_MASK = 0xFFFFF
#: Branch conditions test ``acc & BRANCH_MASK`` against a constant.
BRANCH_MASK = 0xF

_FOLDS = ("add", "xor", "or")
_CONDS = ("eq", "ne", "lt", "ge")
# addi twice: additive arithmetic should dominate the ALU mix.
_ALU_OPS = ("addi", "xori", "ori", "addi", "xori", "muli")

PLAN_VERSION = 1


class _Draws:
    """A deterministic draw sequence: the n-th draw of a seed is a pure
    function of ``(seed, n)`` — no mutable RNG state."""

    def __init__(self, seed: int):
        self.seed = seed & ((1 << 64) - 1)
        self.n = 0

    def bounded(self, bound: int) -> int:
        """Uniform draw in ``[0, bound]``."""
        self.n += 1
        if bound <= 0:
            return 0
        return hash_u64(self.seed, self.n) % (bound + 1)

    def unit(self) -> float:
        self.n += 1
        return hash_u64(self.seed, self.n) / float(1 << 64)

    def choice(self, items: Sequence):
        return items[self.bounded(len(items) - 1)]


# ---------------------------------------------------------------------------
# plan generation
# ---------------------------------------------------------------------------


def generate_plan(seed: int, config: Optional[SynthConfig] = None) -> Dict:
    """The full kernel plan for ``(seed, config)`` — a pure function."""
    cfg = config or SynthConfig()
    draws = _Draws(seed)
    region_words = cfg.region_words
    multi_phase = cfg.sync in ("barrier", "mixed")
    use_lock = cfg.sync in ("lock", "mixed")
    nphases = 2 + draws.bounded(1) if multi_phase else 1

    plan: Dict = {
        "version": PLAN_VERSION,
        "seed": seed,
        "config": cfg.to_dict(),
        "region_words": region_words,
        "acc_init": draws.bounded(4095),
        "faa_mul": 3 + 2 * draws.bounded(1),  # 3 or 5
        "faa_add": draws.bounded(15),
        "input": [draws.bounded(255) for _ in range(region_words)],
        "phases": [],
    }

    next_id = 0
    next_slot = 0  # own-partition output slots, assigned in program order
    next_cell = 0  # lock-protected accumulator cells
    for phase in range(nphases):
        # Slots stored before this phase's opening barrier are final and
        # safe for own/neighbour reads during the phase.
        avail = next_slot if phase > 0 else 0
        segments: List[Dict] = []
        for _ in range(cfg.segments):
            roll = draws.unit()
            lock_band = 0.25 if use_lock else 0.0
            if roll < cfg.faa_weight:
                seg = {"kind": "faa", "claims": 1 + draws.bounded(2)}
            elif roll < cfg.faa_weight + lock_band:
                seg = {"kind": "lock", "cell": next_cell,
                       "delta": 1 + draws.bounded(8)}
                next_cell += 1
            elif (
                roll < cfg.faa_weight + lock_band + 0.15
                and next_slot < region_words - 1
            ):
                seg = {"kind": "store", "slot": next_slot}
                next_slot += 1
            else:
                seg = _work_segment(draws, cfg, 0, phase, avail)
            seg["id"] = next_id
            next_id += 1
            segments.append(seg)
        plan["phases"].append(segments)
    plan["final_slot"] = next_slot
    return plan


def _work_segment(
    draws: _Draws, cfg: SynthConfig, depth: int, phase: int, avail: int
) -> Dict:
    """One computation segment: a load group or ALU run, optionally
    wrapped in a loop or a (model-independent) branch."""
    if depth < cfg.loop_depth and draws.unit() < 0.3:
        body = [
            _work_segment(draws, cfg, depth + 1, phase, avail)
            for _ in range(1 + draws.bounded(1))
        ]
        return {"kind": "loop", "trips": 2 + draws.bounded(2), "body": body}
    if draws.unit() < cfg.branchiness:
        then = [_leaf_segment(draws, cfg, phase, avail)]
        has_else = draws.unit() < 0.5
        other = [_leaf_segment(draws, cfg, phase, avail)] if has_else else []
        return {
            "kind": "branch",
            "cond": draws.choice(_CONDS),
            "value": draws.bounded(BRANCH_MASK),
            "then": then,
            "else": other,
        }
    return _leaf_segment(draws, cfg, phase, avail)


def _leaf_segment(
    draws: _Draws, cfg: SynthConfig, phase: int, avail: int
) -> Dict:
    if draws.unit() < cfg.shared_load_density:
        sources = ["input"]
        if phase > 0 and avail > 0:
            sources += ["own", "neighbor"]
        source = draws.choice(sources)
        limit = cfg.region_words if source == "input" else avail
        group = 1 + draws.bounded(cfg.max_group - 1)
        loads = []
        regs = 0
        for _ in range(group):
            if regs >= cfg.max_group:
                break
            pair = limit >= 2 and regs + 2 <= cfg.max_group and draws.unit() < 0.2
            span = 2 if pair else 1
            loads.append({
                "off": draws.bounded(limit - span),
                "pair": pair,
                "fold": draws.choice(_FOLDS),
            })
            regs += span
        return {"kind": "load", "src": source, "loads": loads}
    ops = []
    for _ in range(2 + draws.bounded(3)):
        op = draws.choice(_ALU_OPS)
        if op == "addi":
            imm = draws.bounded(30) - 15
        elif op == "xori":
            imm = 1 + draws.bounded(254)
        elif op == "ori":
            imm = 1 + draws.bounded(14)
        else:  # muli
            imm = 2 + draws.bounded(1)
        ops.append([op, imm])
    return {"kind": "alu", "ops": ops}


# ---------------------------------------------------------------------------
# plan surgery (shrinking support)
# ---------------------------------------------------------------------------


def plan_segment_ids(plan: Dict) -> List[int]:
    """Ids of every top-level segment — the shrinker's bisection units."""
    return [seg["id"] for segments in plan["phases"] for seg in segments]


def prune_plan(plan: Dict, keep: Set[int]) -> Dict:
    """A new plan containing only the top-level segments in *keep*.

    Pruning preserves validity: dropped stores leave their output slots
    at zero (the evaluator mirrors the same pruning), phase/barrier
    structure is retained, and layout regions are re-derived from the
    surviving segments.
    """
    pruned = {key: value for key, value in plan.items() if key != "phases"}
    pruned["phases"] = [
        [seg for seg in segments if seg["id"] in keep]
        for segments in plan["phases"]
    ]
    return pruned


def _plan_features(plan: Dict) -> Dict:
    """What the surviving segments actually use (drives layout/pointer
    emission, so pruned plans stay free of dead setup code)."""
    features = {
        "faa_claims": 0, "lock_cells": 0, "lock_count": 0,
        "input": False, "own_read": False, "neighbor": False,
    }

    def visit(seg: Dict) -> None:
        kind = seg["kind"]
        if kind == "faa":
            features["faa_claims"] += seg["claims"]
        elif kind == "lock":
            features["lock_count"] += 1
            features["lock_cells"] = max(features["lock_cells"], seg["cell"] + 1)
        elif kind == "load":
            if seg["src"] == "input":
                features["input"] = True
            elif seg["src"] == "own":
                features["own_read"] = True
            else:
                features["neighbor"] = True
        elif kind == "loop":
            for child in seg["body"]:
                visit(child)
        elif kind == "branch":
            for child in seg["then"] + seg["else"]:
                visit(child)

    for segments in plan["phases"]:
        for seg in segments:
            visit(seg)
    return features


# ---------------------------------------------------------------------------
# emission
# ---------------------------------------------------------------------------


def _build_layout(plan: Dict, nthreads: int, features: Dict):
    layout = SharedLayout()
    bases = {
        "input": layout.alloc(
            "input", plan["region_words"], init=plan["input"]
        ),
        "out": layout.alloc("out", nthreads * plan["region_words"]),
    }
    if features["faa_claims"]:
        bases["counter"] = layout.word("counter", 0)
        bases["chunk"] = layout.alloc(
            "chunk", max(1, features["faa_claims"] * nthreads)
        )
    if features["lock_count"]:
        bases["lock"] = layout.alloc("lock", LOCK_WORDS)
        bases["cells"] = layout.alloc("cells", features["lock_cells"])
    if len(plan["phases"]) > 1:
        bases["barrier"] = layout.alloc("barrier", BARRIER_WORDS)
    return layout, bases


def _emit_program(plan: Dict, nthreads: int, features: Dict, bases: Dict,
                  name: str) -> Program:
    region_words = plan["region_words"]
    shift = region_words.bit_length() - 1
    b = ProgramBuilder()

    acc = b.int_reg("acc")
    b.li(acc, plan["acc_init"])
    b.add(acc, acc, TID_REG)

    own = b.int_reg("own")  # base of this thread's output partition
    with b.scratch_int() as tmp:
        b.slli(tmp, TID_REG, shift)
        b.li(own, bases["out"])
        b.add(own, own, tmp)

    pointers: Dict[str, int] = {"own": own}
    if features["input"]:
        pointers["input"] = b.int_reg("in")
        b.li(pointers["input"], bases["input"])
    if features["neighbor"]:
        nb = b.int_reg("nb")
        with b.scratch_int() as tmp:
            b.addi(tmp, TID_REG, 1)
            with b.if_cmp("ge", tmp, NTHREADS_REG):
                b.li(tmp, 0)
            b.slli(tmp, tmp, shift)
            b.li(nb, bases["out"])
            b.add(nb, nb, tmp)
        pointers["neighbor"] = nb
    if features["faa_claims"]:
        pointers["one"] = b.int_reg("one")
        b.li(pointers["one"], 1)
        pointers["counter"] = b.int_reg("ctr")
        b.li(pointers["counter"], bases["counter"])
        pointers["chunk"] = b.int_reg("chk")
        b.li(pointers["chunk"], bases["chunk"])
    if features["lock_count"]:
        pointers["lock"] = b.int_reg("lck")
        b.li(pointers["lock"], bases["lock"])
        pointers["cells"] = b.int_reg("cel")
        b.li(pointers["cells"], bases["cells"])

    def emit_segment(seg: Dict) -> None:
        kind = seg["kind"]
        if kind == "alu":
            for op, imm in seg["ops"]:
                getattr(b, op)(acc, acc, imm)
            b.andi(acc, acc, ACC_MASK)
        elif kind == "load":
            base = pointers[seg["src"] if seg["src"] != "own" else "own"]
            temps: List[int] = []
            folds: List[tuple] = []
            for load in seg["loads"]:
                if load["pair"]:
                    lo, hi = b.int_pair()
                    b.lds(lo, base, load["off"])
                    temps += [lo, hi]
                    folds += [(load["fold"], lo), (load["fold"], hi)]
                else:
                    reg = b.int_reg()
                    b.lws(reg, base, load["off"])
                    temps.append(reg)
                    folds.append((load["fold"], reg))
            for fold, reg in folds:
                getattr(b, fold)(acc, acc, reg)
            b.release(*temps)
            b.andi(acc, acc, ACC_MASK)
        elif kind == "branch":
            low = b.int_reg()
            b.andi(low, acc, BRANCH_MASK)
            ref = b.int_reg()
            b.li(ref, seg["value"])
            if seg["else"]:
                with b.if_else(seg["cond"], low, ref) as arm:
                    for child in seg["then"]:
                        emit_segment(child)
                    with arm.otherwise():
                        for child in seg["else"]:
                            emit_segment(child)
            else:
                with b.if_cmp(seg["cond"], low, ref):
                    for child in seg["then"]:
                        emit_segment(child)
            b.release(low, ref)
        elif kind == "loop":
            counter = b.int_reg()
            with b.for_range(counter, 0, seg["trips"]):
                for child in seg["body"]:
                    emit_segment(child)
            b.release(counter)
        elif kind == "store":
            b.sws(acc, own, seg["slot"])
        elif kind == "faa":
            index = b.int_reg()
            claimed = b.int_reg()
            value = b.int_reg()
            addr = b.int_reg()
            with b.for_range(index, 0, seg["claims"]):
                b.faa(claimed, pointers["counter"], 0, pointers["one"])
                b.muli(value, claimed, plan["faa_mul"])
                b.addi(value, value, plan["faa_add"])
                b.andi(value, value, ACC_MASK)
                b.add(addr, pointers["chunk"], claimed)
                b.sws(value, addr, 0)
            b.release(index, claimed, value, addr)
        elif kind == "lock":
            ticket = emit_lock_acquire(b, pointers["lock"])
            with b.scratch_int() as tmp:
                b.lws(tmp, pointers["cells"], seg["cell"])
                b.addi(tmp, tmp, seg["delta"])
                b.sws(tmp, pointers["cells"], seg["cell"])
            emit_lock_release(b, pointers["lock"], ticket)
        else:  # pragma: no cover - plan dicts are generator-produced
            raise ValueError(f"unknown segment kind {kind!r}")

    last_phase = len(plan["phases"]) - 1
    for phase, segments in enumerate(plan["phases"]):
        for seg in segments:
            emit_segment(seg)
        if phase != last_phase:
            bar = b.int_reg()
            b.li(bar, bases["barrier"])
            emit_barrier(b, bar, NTHREADS_REG)
            b.release(bar)

    b.sws(acc, own, plan["final_slot"])
    b.halt()
    return b.build(name)


# ---------------------------------------------------------------------------
# reference evaluation (the functional oracle)
# ---------------------------------------------------------------------------


def _evaluate(plan: Dict, nthreads: int, features: Dict, bases: Dict,
              total_words: int) -> List[int]:
    """Expected final shared memory, computed by walking the plan in
    pure Python.  Model-dependent quantities (which thread claimed which
    chunk, lock acquisition order) only ever feed commutative or
    index-determined updates, so this single image is the answer for
    every switch model and backend."""
    region_words = plan["region_words"]
    expected = [0] * total_words
    for offset, value in enumerate(plan["input"]):
        expected[bases["input"] + offset] = value

    parts = [[0] * region_words for _ in range(nthreads)]
    accs = [(plan["acc_init"] + tid) for tid in range(nthreads)]

    def read(tid: int, source: str, off: int) -> int:
        if source == "input":
            return plan["input"][off]
        if source == "own":
            return parts[tid][off]
        return parts[(tid + 1) % nthreads][off]

    def walk(seg: Dict, tid: int, acc: int) -> int:
        kind = seg["kind"]
        if kind == "alu":
            for op, imm in seg["ops"]:
                if op == "addi":
                    acc += imm
                elif op == "xori":
                    acc ^= imm
                elif op == "ori":
                    acc |= imm
                else:  # muli
                    acc *= imm
            return acc & ACC_MASK
        if kind == "load":
            for load in seg["loads"]:
                spans = (0, 1) if load["pair"] else (0,)
                for span in spans:
                    word = read(tid, seg["src"], load["off"] + span)
                    if load["fold"] == "add":
                        acc += word
                    elif load["fold"] == "xor":
                        acc ^= word
                    else:
                        acc |= word
            return acc & ACC_MASK
        if kind == "branch":
            low = acc & BRANCH_MASK
            taken = {
                "eq": low == seg["value"],
                "ne": low != seg["value"],
                "lt": low < seg["value"],
                "ge": low >= seg["value"],
            }[seg["cond"]]
            for child in seg["then"] if taken else seg["else"]:
                acc = walk(child, tid, acc)
            return acc
        if kind == "loop":
            for _ in range(seg["trips"]):
                for child in seg["body"]:
                    acc = walk(child, tid, acc)
            return acc
        if kind == "store":
            parts[tid][seg["slot"]] = acc
            return acc
        # faa/lock: no accumulator effect; globally accounted below.
        return acc

    # Reads during a phase only touch slots finalised in earlier phases,
    # so walking threads sequentially within a phase is exact.
    for segments in plan["phases"]:
        for tid in range(nthreads):
            acc = accs[tid]
            for seg in segments:
                acc = walk(seg, tid, acc)
            accs[tid] = acc
    for tid in range(nthreads):
        parts[tid][plan["final_slot"]] = accs[tid]
        base = bases["out"] + tid * region_words
        for offset, value in enumerate(parts[tid]):
            expected[base + offset] = value

    if features["faa_claims"]:
        total = features["faa_claims"] * nthreads
        expected[bases["counter"]] = total
        for index in range(total):
            expected[bases["chunk"] + index] = (
                index * plan["faa_mul"] + plan["faa_add"]
            ) & ACC_MASK
    if features["lock_count"]:
        acquisitions = features["lock_count"] * nthreads
        expected[bases["lock"] + 0] = acquisitions  # next ticket
        expected[bases["lock"] + 1] = acquisitions  # now serving
        for segments in plan["phases"]:
            for seg in segments:
                if seg["kind"] == "lock":
                    expected[bases["cells"] + seg["cell"]] += (
                        seg["delta"] * nthreads
                    )
    if len(plan["phases"]) > 1:
        expected[bases["barrier"] + 0] = 0
        expected[bases["barrier"] + 1] = len(plan["phases"]) - 1
    return expected


# ---------------------------------------------------------------------------
# public build surface
# ---------------------------------------------------------------------------


def build_synth_app(
    plan: Dict, nthreads: int, name: Optional[str] = None
) -> BuiltApp:
    """A ready-to-run :class:`BuiltApp` for *plan* at *nthreads*."""
    features = _plan_features(plan)
    layout, bases = _build_layout(plan, nthreads, features)
    app_name = name or f"synth:{plan['seed']}"
    program = _emit_program(plan, nthreads, features, bases, app_name)
    expected = _evaluate(plan, nthreads, features, bases, layout.total_words)
    regions = [(rname, layout.base(rname), layout.size_of(rname))
               for rname in ("input", "out", "counter", "chunk", "lock",
                             "cells", "barrier")
               if rname in bases]

    def check(memory: List) -> None:
        for addr in range(len(expected)):
            if memory[addr] != expected[addr]:
                where = f"word {addr}"
                for rname, base, size in regions:
                    if base <= addr < base + size:
                        where = f"{rname}[{addr - base}]"
                        break
                raise AssertionError(
                    f"{app_name}: final shared memory diverges at {where}: "
                    f"got {memory[addr]}, expected {expected[addr]}"
                )

    return BuiltApp(
        name=app_name,
        program=program,
        shared=layout.build_image(),
        nthreads=nthreads,
        check=check,
        meta={
            "seed": plan["seed"],
            "segments": len(plan_segment_ids(plan)),
            "fingerprint": program_fingerprint(program),
        },
    )


def generate_app(seed: int, config: Optional[SynthConfig] = None,
                 nthreads: int = 4, name: Optional[str] = None) -> BuiltApp:
    """Generate-and-build in one step (the common entry point)."""
    return build_synth_app(generate_plan(seed, config), nthreads, name=name)


def program_fingerprint(program: Program) -> str:
    """A stable content hash of the instruction stream (determinism
    checks, corpus manifests)."""
    digest = hashlib.sha256()
    for ins in program.instructions:
        digest.update(
            repr((int(ins.op), ins.rd, ins.rs1, ins.rs2, ins.imm,
                  ins.label, bool(ins.sync))).encode()
        )
    return digest.hexdigest()
