"""Synthetic workload generation and differential fuzzing.

Two layers (DESIGN §5j):

* :mod:`repro.synth.generator` — a seeded, splitmix64-deterministic
  generator of random-but-valid SPMD kernels, parameterised by
  :class:`~repro.synth.config.SynthConfig` (shared-load density, group
  sizes, branchiness, loop nesting, Fetch-and-Add usage, lock/barrier
  patterns).  Generated kernels pass :mod:`repro.lint` by construction
  and carry a reference-evaluated functional check.  They are
  addressable like built-in apps via ``synth:<seed>[:<preset>]``.
* :mod:`repro.synth.fuzz` — a differential harness running each kernel
  under all 8 switch models × both execution backends, cross-checking
  the :mod:`repro.check` conservation oracles plus the cross-model
  invariants of :mod:`repro.check.crossmodel`, with a shrinking pass
  that reduces failures to minimal JSON repro bundles.

CLI: ``repro-fuzz`` (see :mod:`repro.synth.cli`).
"""

from repro.synth.config import PRESETS, SynthConfig, get_preset
from repro.synth.fuzz import (
    FuzzOptions,
    SeedOutcome,
    fault_profile,
    fuzz_many,
    fuzz_seed,
    replay_bundle,
    replay_corpus_serve,
    run_selftest,
    shrink_plan,
    write_bundle,
)
from repro.synth.generator import (
    build_synth_app,
    generate_app,
    generate_plan,
    plan_segment_ids,
    program_fingerprint,
    prune_plan,
)
from repro.synth.registry import (
    SynthApp,
    format_synth_name,
    parse_synth_name,
    resolve_synth,
)

__all__ = [
    "SynthConfig",
    "PRESETS",
    "get_preset",
    "generate_plan",
    "generate_app",
    "build_synth_app",
    "prune_plan",
    "plan_segment_ids",
    "program_fingerprint",
    "SynthApp",
    "parse_synth_name",
    "format_synth_name",
    "resolve_synth",
    "FuzzOptions",
    "SeedOutcome",
    "fault_profile",
    "fuzz_seed",
    "fuzz_many",
    "shrink_plan",
    "replay_bundle",
    "replay_corpus_serve",
    "write_bundle",
    "run_selftest",
]
