"""The :class:`Program` container: instructions plus resolved labels.

A program is the unit the compiler passes transform and the simulator
executes.  All threads of an application run the *same* program (SPMD), as
is typical for the Sequent-style C codes the paper benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.isa.instruction import Instruction, render_asm
from repro.isa.opcodes import Op, OP_SIG, Sig, SHARED_LOADS, SHARED_STORES


class ProgramError(Exception):
    """Raised for malformed programs (unknown labels, missing HALT...)."""


class Program:
    """An ordered instruction list with a label table.

    ``finalize`` resolves symbolic branch targets into instruction indices
    and validates the program; the simulator only accepts finalised
    programs.
    """

    def __init__(
        self,
        instructions: Iterable[Instruction],
        labels: Optional[Dict[str, int]] = None,
        name: str = "program",
    ):
        self.instructions: List[Instruction] = list(instructions)
        self.labels: Dict[str, int] = dict(labels or {})
        self.name = name
        self._finalized = False

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def __iter__(self):
        return iter(self.instructions)

    @property
    def finalized(self) -> bool:
        return self._finalized

    def finalize(self) -> "Program":
        """Resolve labels, validate, and freeze the program.

        Returns ``self`` for chaining.
        """
        for index, ins in enumerate(self.instructions):
            sig = OP_SIG[ins.op]
            if sig in (Sig.BR2, Sig.JMP):
                if ins.label is not None:
                    if ins.label not in self.labels:
                        raise ProgramError(
                            self._describe(index)
                            + f": undefined label {ins.label!r} "
                            f"(known labels: {', '.join(sorted(self.labels)) or 'none'})"
                        )
                    ins.target = self.labels[ins.label]
                if not 0 <= ins.target < len(self.instructions):
                    raise ProgramError(
                        self._describe(index)
                        + f": branch target {ins.target} outside the program "
                        f"(valid range 0..{len(self.instructions) - 1})"
                    )
        if not any(ins.op is Op.HALT for ins in self.instructions):
            raise ProgramError(
                f"program {self.name!r} "
                f"({len(self.instructions)} instructions): "
                "no HALT instruction anywhere — every thread must "
                "terminate explicitly"
            )
        self._finalized = True
        return self

    def _describe(self, index: int) -> str:
        """``program 'name': instruction 12 of 340 (`lws r1, 0(r3)`)`` —
        the error-message anchor that makes a diagnostic findable inside
        a multi-hundred-instruction app kernel (rendering never raises,
        even for corrupt operands)."""
        ins = self.instructions[index]
        return (
            f"program {self.name!r}: instruction {index} of "
            f"{len(self.instructions)} (`{render_asm(ins)}`)"
        )

    def copy(self, name: Optional[str] = None) -> "Program":
        """Deep copy (compiler passes transform copies, never originals)."""
        dup = Program(
            [ins.copy() for ins in self.instructions],
            dict(self.labels),
            name or self.name,
        )
        if self._finalized:
            dup.finalize()
        return dup

    # -- statistics helpers -------------------------------------------------

    def count(self, *ops: Op) -> int:
        """Static count of instructions whose opcode is in *ops*."""
        wanted = set(ops)
        return sum(1 for ins in self.instructions if ins.op in wanted)

    def shared_load_count(self) -> int:
        return sum(1 for ins in self.instructions if ins.op in SHARED_LOADS)

    def shared_store_count(self) -> int:
        return sum(1 for ins in self.instructions if ins.op in SHARED_STORES)

    def switch_count(self) -> int:
        return self.count(Op.SWITCH)

    # -- rendering ----------------------------------------------------------

    def to_asm(self) -> str:
        """Textual listing (round-trips through the assembler)."""
        label_at: Dict[int, List[str]] = {}
        for label, index in self.labels.items():
            label_at.setdefault(index, []).append(label)
        lines: List[str] = []
        for index, ins in enumerate(self.instructions):
            for label in sorted(label_at.get(index, [])):
                lines.append(f"{label}:")
            lines.append(f"    {ins.to_asm()}")
        # Labels that point one past the end (e.g. loop exits at EOF).
        for label in sorted(label_at.get(len(self.instructions), [])):
            lines.append(f"{label}:")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Program {self.name!r}, {len(self.instructions)} instructions>"
