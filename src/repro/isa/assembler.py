"""Two-pass textual assembler and disassembler.

Syntax example::

    ; spin on a lock word
    start:
        li      r8, 1
    spin:
        faa     r9, 0(r10), r8      ; fetch-and-add
        beq     r9, r0, got_it
        sub     r11, r0, r8
        faa     r9, 0(r10), r11     ; undo
        j       spin
    got_it:
        switch
        halt

Comments start with ``;`` or ``#``.  Labels end with ``:`` and may share a
line with an instruction.  Immediates may be decimal, hex (``0x..``) or,
for ``fli``, floating point.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op, OP_SIG, Sig
from repro.isa.program import Program
from repro.isa.registers import reg_index

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.$]*$")
_MEM_RE = re.compile(r"^(-?[0-9xXa-fA-F]+)?\(([A-Za-z0-9]+)\)$")


class AssemblerError(Exception):
    """Raised on any syntax or semantic error, with a line number."""


def _parse_int(token: str, line_no: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"line {line_no}: bad integer {token!r}") from None


def _parse_imm(token: str, line_no: int, allow_float: bool) -> "int | float":
    if allow_float:
        try:
            return int(token, 0)
        except ValueError:
            try:
                return float(token)
            except ValueError:
                raise AssemblerError(
                    f"line {line_no}: bad immediate {token!r}"
                ) from None
    return _parse_int(token, line_no)


def _parse_mem(token: str, line_no: int) -> Tuple[int, int]:
    """Parse ``imm(reg)`` into ``(imm, reg_slot)``."""
    match = _MEM_RE.match(token)
    if not match:
        raise AssemblerError(f"line {line_no}: bad memory operand {token!r}")
    displacement = int(match.group(1), 0) if match.group(1) else 0
    try:
        base = reg_index(match.group(2))
    except ValueError as exc:
        raise AssemblerError(f"line {line_no}: {exc}") from None
    return displacement, base


def _parse_reg(token: str, line_no: int) -> int:
    try:
        return reg_index(token)
    except ValueError as exc:
        raise AssemblerError(f"line {line_no}: {exc}") from None


def _split_operands(rest: str) -> List[str]:
    return [part.strip() for part in rest.split(",")] if rest.strip() else []


def assemble(text: str, name: str = "asm") -> Program:
    """Assemble *text* into a finalised :class:`Program`."""
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";")[0].split("#")[0].strip()
        sync = "sync" in raw.split(";", 1)[1] if ";" in raw else False
        while line:
            if ":" in line:
                head, _, tail = line.partition(":")
                if _LABEL_RE.match(head.strip()) and "," not in head:
                    label = head.strip()
                    if label in labels:
                        raise AssemblerError(
                            f"line {line_no}: duplicate label {label!r}"
                        )
                    labels[label] = len(instructions)
                    line = tail.strip()
                    continue
            break
        if not line:
            continue

        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        try:
            op = Op[mnemonic.upper()]
        except KeyError:
            raise AssemblerError(
                f"line {line_no}: unknown mnemonic {mnemonic!r}"
            ) from None

        operands = _split_operands(rest)
        ins = _decode_operands(op, operands, line_no)
        ins.sync = sync
        instructions.append(ins)

    return Program(instructions, labels, name=name).finalize()


def _decode_operands(op: Op, operands: List[str], line_no: int) -> Instruction:
    sig = OP_SIG[op]

    def need(count: int) -> None:
        if len(operands) != count:
            raise AssemblerError(
                f"line {line_no}: {op.name.lower()} expects {count} operands "
                f"({sig.value}), got {len(operands)}"
            )

    if sig is Sig.R3:
        need(3)
        return Instruction(
            op,
            rd=_parse_reg(operands[0], line_no),
            rs1=_parse_reg(operands[1], line_no),
            rs2=_parse_reg(operands[2], line_no),
        )
    if sig is Sig.R2I:
        need(3)
        return Instruction(
            op,
            rd=_parse_reg(operands[0], line_no),
            rs1=_parse_reg(operands[1], line_no),
            imm=_parse_int(operands[2], line_no),
        )
    if sig is Sig.R2:
        need(2)
        return Instruction(
            op,
            rd=_parse_reg(operands[0], line_no),
            rs1=_parse_reg(operands[1], line_no),
        )
    if sig is Sig.RI:
        need(2)
        return Instruction(
            op,
            rd=_parse_reg(operands[0], line_no),
            imm=_parse_imm(operands[1], line_no, allow_float=op is Op.FLI),
        )
    if sig is Sig.LOAD:
        need(2)
        displacement, base = _parse_mem(operands[1], line_no)
        return Instruction(
            op, rd=_parse_reg(operands[0], line_no), rs1=base, imm=displacement
        )
    if sig is Sig.STORE:
        need(2)
        displacement, base = _parse_mem(operands[1], line_no)
        return Instruction(
            op, rs2=_parse_reg(operands[0], line_no), rs1=base, imm=displacement
        )
    if sig is Sig.BR2:
        need(3)
        return Instruction(
            op,
            rs1=_parse_reg(operands[0], line_no),
            rs2=_parse_reg(operands[1], line_no),
            label=operands[2],
        )
    if sig is Sig.JMP:
        need(1)
        return Instruction(op, label=operands[0])
    if sig is Sig.JREG:
        need(1)
        return Instruction(op, rs1=_parse_reg(operands[0], line_no))
    if sig is Sig.FAA:
        need(3)
        displacement, base = _parse_mem(operands[1], line_no)
        return Instruction(
            op,
            rd=_parse_reg(operands[0], line_no),
            rs1=base,
            rs2=_parse_reg(operands[2], line_no),
            imm=displacement,
        )
    need(0)
    return Instruction(op)


def disassemble(program: Program) -> str:
    """Render *program* as text (inverse of :func:`assemble`)."""
    return program.to_asm()
