"""Instruction set architecture for the simulated multiprocessor.

The ISA follows the paper's machine model: a MIPS-R3000-like RISC core
extended with multiprocessor instructions — local and shared variants of
every load and store, Load-Double / Store-Double, Fetch-and-Add, and an
explicit SWITCH (context switch) instruction.

Public surface:

* :class:`~repro.isa.opcodes.Op` — opcode enumeration plus metadata tables
  (cycle costs, operand signatures, shared/local classification).
* :class:`~repro.isa.instruction.Instruction` — one decoded instruction.
* :class:`~repro.isa.program.Program` — an instruction sequence with
  resolved labels.
* :class:`~repro.isa.assembler.assemble` / ``disassemble`` — text format.
* :class:`~repro.isa.builder.ProgramBuilder` — a structured Python DSL used
  to author the benchmark applications.
"""

from repro.isa.opcodes import (
    Op,
    Sig,
    CYCLE_COST,
    OP_SIG,
    SHARED_LOADS,
    SHARED_STORES,
    LOCAL_LOADS,
    LOCAL_STORES,
    BRANCHES,
    is_shared_access,
    instruction_cost,
)
from repro.isa.registers import (
    NUM_INT_REGS,
    NUM_FP_REGS,
    NUM_REGS,
    ZERO_REG,
    reg_index,
    reg_name,
)
from repro.isa.instruction import Instruction, instr_reads, instr_writes
from repro.isa.program import Program
from repro.isa.assembler import assemble, disassemble, AssemblerError
from repro.isa.builder import ProgramBuilder, BuilderError

__all__ = [
    "Op",
    "Sig",
    "CYCLE_COST",
    "OP_SIG",
    "SHARED_LOADS",
    "SHARED_STORES",
    "LOCAL_LOADS",
    "LOCAL_STORES",
    "BRANCHES",
    "is_shared_access",
    "instruction_cost",
    "NUM_INT_REGS",
    "NUM_FP_REGS",
    "NUM_REGS",
    "ZERO_REG",
    "reg_index",
    "reg_name",
    "Instruction",
    "instr_reads",
    "instr_writes",
    "Program",
    "assemble",
    "disassemble",
    "AssemblerError",
    "ProgramBuilder",
    "BuilderError",
]
