"""A structured Python DSL for authoring programs in the simulator's ISA.

The paper's benchmarks are C programs compiled to MIPS object code; ours
are written against this builder, which plays the role of the compiler
front end.  Opcode emitters are generated from the operand-signature table,
so ``b.add(rd, a, c)``, ``b.lws(rd, base, off)``, ``b.beq(a, c, label)``
etc. all exist automatically.  On top of that the builder offers structured
control flow (``for_range``, ``if_cmp``/``if_else``, ``while_cmp``) and a
simple register allocator, which keeps the application kernels readable.

Example::

    b = ProgramBuilder()
    i = b.int_reg("i")
    with b.for_range(i, 0, 10):
        b.lws(b.r("r8"), base=i)     # shared load, switches under SOL
        b.add(total, total, b.r("r8"))
    b.halt()
    program = b.build("count")
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator, List, Optional, Union

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op, OP_SIG, Sig
from repro.isa.program import Program
from repro.isa.registers import reg_index, NUM_INT_REGS

RegLike = Union[int, str]

#: Integer registers handed out by the allocator; r0 (zero), r4/r5/r6
#: (thread id / thread count / argument base), r29 (sp) and r31 (link) are
#: reserved by convention.
_INT_POOL = [1, 2, 3, 7] + list(range(8, 29)) + [30]
_FP_POOL = list(range(NUM_INT_REGS, NUM_INT_REGS + 32))

_COMPARISONS = {
    "eq": (Op.BEQ, Op.BNE),
    "ne": (Op.BNE, Op.BEQ),
    "lt": (Op.BLT, Op.BGE),
    "le": (Op.BLE, Op.BGT),
    "gt": (Op.BGT, Op.BLE),
    "ge": (Op.BGE, Op.BLT),
}


class BuilderError(Exception):
    """Raised for misuse of the builder (bad operands, pool exhaustion)."""


class ProgramBuilder:
    """Incrementally builds a :class:`~repro.isa.program.Program`."""

    def __init__(self) -> None:
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._fresh_counter = 0
        self._int_free = list(reversed(_INT_POOL))
        self._fp_free = list(reversed(_FP_POOL))
        self._names: Dict[str, int] = {}

    # -- registers ----------------------------------------------------------

    @staticmethod
    def r(name: RegLike) -> int:
        """Resolve a register name to its slot index."""
        return reg_index(name)

    def int_reg(self, name: Optional[str] = None) -> int:
        """Allocate a free integer register (optionally named for listings)."""
        if not self._int_free:
            raise BuilderError("out of integer registers")
        slot = self._int_free.pop()
        if name:
            self._names[name] = slot
        return slot

    def fp_reg(self, name: Optional[str] = None) -> int:
        """Allocate a free floating-point register."""
        if not self._fp_free:
            raise BuilderError("out of floating-point registers")
        slot = self._fp_free.pop()
        if name:
            self._names[name] = slot
        return slot

    def int_pair(self, name: Optional[str] = None) -> "tuple[int, int]":
        """Allocate two *consecutive* integer registers (for LDS/SDS,
        which move a register pair)."""
        return self._alloc_pair(self._int_free, name, "integer")

    def fp_pair(self, name: Optional[str] = None) -> "tuple[int, int]":
        """Allocate two consecutive floating-point registers."""
        return self._alloc_pair(self._fp_free, name, "floating-point")

    def _alloc_pair(self, pool, name, kind) -> "tuple[int, int]":
        available = set(pool)
        for slot in sorted(available):
            if slot + 1 in available:
                pool.remove(slot)
                pool.remove(slot + 1)
                if name:
                    self._names[name] = slot
                return slot, slot + 1
        raise BuilderError(f"no consecutive {kind} register pair free")

    def release(self, *slots: int) -> None:
        """Return registers to the allocator."""
        for slot in slots:
            pool = self._int_free if slot < NUM_INT_REGS else self._fp_free
            if slot in pool:
                raise BuilderError(f"register {slot} released twice")
            pool.append(slot)

    @contextlib.contextmanager
    def scratch_int(self) -> Iterator[int]:
        """Context-managed temporary integer register."""
        slot = self.int_reg()
        try:
            yield slot
        finally:
            self.release(slot)

    # -- emission -----------------------------------------------------------

    def emit(self, ins: Instruction) -> Instruction:
        """Append a prebuilt instruction."""
        self._instructions.append(ins)
        return ins

    def __getattr__(self, mnemonic: str):
        """Generated opcode emitters: any lowercase opcode name works."""
        try:
            op = Op[mnemonic.upper()]
        except KeyError:
            raise AttributeError(mnemonic) from None

        def emitter(*args, sync: bool = False, **kwargs) -> Instruction:
            return self._emit_op(op, args, kwargs, sync)

        emitter.__name__ = mnemonic
        return emitter

    def _emit_op(self, op: Op, args: tuple, kwargs: dict, sync: bool) -> Instruction:
        sig = OP_SIG[op]
        r = self.r
        if sig is Sig.R3:
            rd, rs1, rs2 = args
            ins = Instruction(op, rd=r(rd), rs1=r(rs1), rs2=r(rs2))
        elif sig is Sig.R2I:
            rd, rs1, imm = args
            ins = Instruction(op, rd=r(rd), rs1=r(rs1), imm=imm)
        elif sig is Sig.R2:
            rd, rs1 = args
            ins = Instruction(op, rd=r(rd), rs1=r(rs1))
        elif sig is Sig.RI:
            rd, imm = args
            ins = Instruction(op, rd=r(rd), imm=imm)
        elif sig is Sig.LOAD:
            rd = args[0]
            base = kwargs.get("base", args[1] if len(args) > 1 else 0)
            off = kwargs.get("off", args[2] if len(args) > 2 else 0)
            ins = Instruction(op, rd=r(rd), rs1=r(base), imm=off)
        elif sig is Sig.STORE:
            val = args[0]
            base = kwargs.get("base", args[1] if len(args) > 1 else 0)
            off = kwargs.get("off", args[2] if len(args) > 2 else 0)
            ins = Instruction(op, rs2=r(val), rs1=r(base), imm=off)
        elif sig is Sig.BR2:
            rs1, rs2, label = args
            ins = Instruction(op, rs1=r(rs1), rs2=r(rs2), label=label)
        elif sig is Sig.JMP:
            (label,) = args
            ins = Instruction(op, label=label)
        elif sig is Sig.JREG:
            (rs1,) = args
            ins = Instruction(op, rs1=r(rs1))
        elif sig is Sig.FAA:
            rd, base, off, addend = args
            ins = Instruction(op, rd=r(rd), rs1=r(base), rs2=r(addend), imm=off)
        else:
            if args or kwargs:
                raise BuilderError(f"{op.name} takes no operands")
            ins = Instruction(op)
        ins.sync = sync
        return self.emit(ins)

    # -- labels -------------------------------------------------------------

    def label(self, name: str) -> str:
        """Bind *name* to the current position."""
        if name in self._labels:
            raise BuilderError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)
        return name

    def fresh(self, prefix: str = "L") -> str:
        """Generate a unique label name."""
        self._fresh_counter += 1
        return f".{prefix}{self._fresh_counter}"

    # -- immediates ---------------------------------------------------------

    def load_imm(self, reg: RegLike, value: int) -> None:
        """``li`` helper accepting arbitrary Python ints."""
        self.li(reg, int(value))

    # -- structured control flow ---------------------------------------------

    @contextlib.contextmanager
    def for_range(
        self,
        counter: RegLike,
        start: "int | RegLike",
        stop: "int | RegLike",
        step: int = 1,
        *,
        start_is_reg: bool = False,
        stop_is_reg: bool = False,
    ) -> Iterator[str]:
        """``for counter in range(start, stop, step)`` over registers.

        *start*/*stop* are integer immediates unless the corresponding
        ``*_is_reg`` flag says they are registers.  *step* must be a
        non-zero integer constant.  Yields the break label.
        """
        if step == 0:
            raise BuilderError("for_range step must be non-zero")
        counter_reg = self.r(counter)
        head = self.fresh("for")
        done = self.fresh("endfor")

        if start_is_reg:
            self.mov(counter_reg, self.r(start))
        else:
            self.li(counter_reg, int(start))

        limit_reg: int
        limit_temp = None
        if stop_is_reg:
            limit_reg = self.r(stop)
        else:
            limit_temp = self.int_reg()
            self.li(limit_temp, int(stop))
            limit_reg = limit_temp

        self.label(head)
        if step > 0:
            self.bge(counter_reg, limit_reg, done)
        else:
            self.ble(counter_reg, limit_reg, done)
        try:
            yield done
        finally:
            self.addi(counter_reg, counter_reg, step)
            self.j(head)
            self.label(done)
            if limit_temp is not None:
                self.release(limit_temp)

    @contextlib.contextmanager
    def if_cmp(self, cond: str, rs1: RegLike, rs2: RegLike) -> Iterator[None]:
        """Execute the body when ``rs1 <cond> rs2`` holds (no else branch)."""
        if cond not in _COMPARISONS:
            raise BuilderError(f"unknown condition {cond!r}")
        _, inverse = _COMPARISONS[cond]
        skip = self.fresh("endif")
        self.emit(Instruction(inverse, rs1=self.r(rs1), rs2=self.r(rs2), label=skip))
        yield
        self.label(skip)

    @contextlib.contextmanager
    def if_else(self, cond: str, rs1: RegLike, rs2: RegLike) -> Iterator["_ElseArm"]:
        """``if cond: ... else: ...``; the yielded object is used as
        ``with arm.otherwise(): ...`` inside the block."""
        if cond not in _COMPARISONS:
            raise BuilderError(f"unknown condition {cond!r}")
        _, inverse = _COMPARISONS[cond]
        else_label = self.fresh("else")
        end_label = self.fresh("endif")
        self.emit(
            Instruction(inverse, rs1=self.r(rs1), rs2=self.r(rs2), label=else_label)
        )
        arm = _ElseArm(self, else_label, end_label)
        yield arm
        if not arm.used:
            # No else arm: the else label simply lands at the end.
            self.label(else_label)
        else:
            self.label(end_label)

    @contextlib.contextmanager
    def while_cmp(self, cond: str, rs1: RegLike, rs2: RegLike) -> Iterator[str]:
        """``while rs1 <cond> rs2`` loop; yields the break label."""
        if cond not in _COMPARISONS:
            raise BuilderError(f"unknown condition {cond!r}")
        _, inverse = _COMPARISONS[cond]
        head = self.fresh("while")
        done = self.fresh("endwhile")
        self.label(head)
        self.emit(Instruction(inverse, rs1=self.r(rs1), rs2=self.r(rs2), label=done))
        yield done
        self.j(head)
        self.label(done)

    # -- finish ---------------------------------------------------------------

    def build(self, name: str = "program") -> Program:
        """Finalise into an executable :class:`Program`."""
        return Program(list(self._instructions), dict(self._labels), name).finalize()


class _ElseArm:
    """Helper yielded by :meth:`ProgramBuilder.if_else`."""

    def __init__(self, builder: ProgramBuilder, else_label: str, end_label: str):
        self._builder = builder
        self._else_label = else_label
        self._end_label = end_label
        self.used = False

    @contextlib.contextmanager
    def otherwise(self) -> Iterator[None]:
        if self.used:
            raise BuilderError("otherwise() used twice")
        self.used = True
        self._builder.j(self._end_label)
        self._builder.label(self._else_label)
        yield
