"""The :class:`Instruction` container and register-level def/use queries.

Instructions are mutable only until the owning :class:`~repro.isa.program.
Program` is finalised; the simulator treats them as read-only.  For
interpreter speed every operand is a plain attribute (``__slots__``) and the
opcode is stored as an :class:`~repro.isa.opcodes.Op` (an ``IntEnum``, so
comparisons against hoisted ints are cheap).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.isa.opcodes import Op, OP_SIG, Sig, DOUBLE_ACCESSES
from repro.isa.registers import reg_name, LINK_REG


class Instruction:
    """One decoded instruction.

    Operand meaning depends on the opcode's :class:`~repro.isa.opcodes.Sig`:

    * ``rd`` — destination register slot (loads, ALU, FAA).
    * ``rs1`` — first source; for memory ops the address base register.
    * ``rs2`` — second source; for stores the value register, for FAA the
      addend register.
    * ``imm`` — immediate / address displacement (int or float for ``FLI``).
    * ``label`` — symbolic branch target, resolved to ``target`` (an
      instruction index) by ``Program.finalize``.
    * ``sync`` — marks instructions generated for spin-synchronisation;
      their network messages are excluded from the bandwidth accounting,
      as in the paper (Section 6.1, footnote 2).
    """

    __slots__ = ("op", "rd", "rs1", "rs2", "imm", "label", "target", "sync", "cost")

    def __init__(
        self,
        op: Op,
        rd: int = 0,
        rs1: int = 0,
        rs2: int = 0,
        imm: "int | float" = 0,
        label: Optional[str] = None,
        sync: bool = False,
    ):
        from repro.isa.opcodes import instruction_cost

        self.op = op
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.label = label
        self.target: int = -1
        self.sync = sync
        self.cost = instruction_cost(op)

    def copy(self) -> "Instruction":
        """Deep-enough copy (used by compiler passes)."""
        dup = Instruction(
            self.op, self.rd, self.rs1, self.rs2, self.imm, self.label, self.sync
        )
        dup.target = self.target
        return dup

    def to_asm(self) -> str:
        """Render in the textual assembly syntax accepted by
        :func:`repro.isa.assembler.assemble`."""
        mnemonic = self.op.name.lower()
        sig = OP_SIG[self.op]
        if sig is Sig.R3:
            body = f"{reg_name(self.rd)}, {reg_name(self.rs1)}, {reg_name(self.rs2)}"
        elif sig is Sig.R2I:
            body = f"{reg_name(self.rd)}, {reg_name(self.rs1)}, {self.imm}"
        elif sig is Sig.R2:
            body = f"{reg_name(self.rd)}, {reg_name(self.rs1)}"
        elif sig is Sig.RI:
            body = f"{reg_name(self.rd)}, {self.imm}"
        elif sig is Sig.LOAD:
            body = f"{reg_name(self.rd)}, {self.imm}({reg_name(self.rs1)})"
        elif sig is Sig.STORE:
            body = f"{reg_name(self.rs2)}, {self.imm}({reg_name(self.rs1)})"
        elif sig is Sig.BR2:
            target = self.label if self.label is not None else f"@{self.target}"
            body = f"{reg_name(self.rs1)}, {reg_name(self.rs2)}, {target}"
        elif sig is Sig.JMP:
            body = self.label if self.label is not None else f"@{self.target}"
        elif sig is Sig.JREG:
            body = reg_name(self.rs1)
        elif sig is Sig.FAA:
            body = (
                f"{reg_name(self.rd)}, {self.imm}({reg_name(self.rs1)}), "
                f"{reg_name(self.rs2)}"
            )
        else:
            body = ""
        text = f"{mnemonic:<7s} {body}".rstrip()
        if self.sync:
            text += "  ; sync"
        return text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Instruction {self.to_asm()}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instruction):
            return NotImplemented
        return (
            self.op == other.op
            and self.rd == other.rd
            and self.rs1 == other.rs1
            and self.rs2 == other.rs2
            and self.imm == other.imm
            and self.label == other.label
            and self.sync == other.sync
        )

    def __hash__(self) -> int:
        return hash((self.op, self.rd, self.rs1, self.rs2, self.imm, self.label))


def render_asm(ins: Instruction) -> str:
    """Best-effort :meth:`Instruction.to_asm` for diagnostics.

    A corrupt instruction (register slot out of range, unknown operand
    shape) must still render *something* — error messages about broken
    programs cannot themselves crash on the breakage.
    """
    try:
        return ins.to_asm()
    except Exception:
        return (
            f"{ins.op.name.lower()} <rd={ins.rd} rs1={ins.rs1} "
            f"rs2={ins.rs2} imm={ins.imm!r} label={ins.label!r}>"
        )


def instr_reads(ins: Instruction) -> Tuple[int, ...]:
    """Register slots read by *ins* (for dependence analysis)."""
    sig = OP_SIG[ins.op]
    if sig is Sig.R3:
        return (ins.rs1, ins.rs2)
    if sig in (Sig.R2I, Sig.R2, Sig.LOAD, Sig.JREG):
        return (ins.rs1,)
    if sig is Sig.STORE:
        if ins.op in DOUBLE_ACCESSES:
            return (ins.rs1, ins.rs2, ins.rs2 + 1)
        return (ins.rs1, ins.rs2)
    if sig is Sig.BR2:
        return (ins.rs1, ins.rs2)
    if sig is Sig.FAA:
        return (ins.rs1, ins.rs2)
    return ()


def instr_writes(ins: Instruction) -> Tuple[int, ...]:
    """Register slots written by *ins*."""
    sig = OP_SIG[ins.op]
    if sig in (Sig.R3, Sig.R2I, Sig.R2, Sig.RI, Sig.FAA):
        return (ins.rd,)
    if sig is Sig.LOAD:
        if ins.op in DOUBLE_ACCESSES:
            return (ins.rd, ins.rd + 1)
        return (ins.rd,)
    if ins.op is Op.JAL:
        return (LINK_REG,)
    return ()
