"""Opcode definitions and per-opcode metadata.

Cycle costs follow the MIPS R3000 flavour used by the paper: almost every
instruction issues in a single cycle; integer multiply/divide and the
floating-point pipeline take longer.  The paper charges *zero* cycles for a
context switch in the switch-on-load and explicit-switch models because the
switch is identified in the decode stage (Section 3); the one cycle consumed
by the explicit ``SWITCH`` opcode itself is the "penalty" discussed in
Section 5.1 and is modelled simply by the instruction occupying an issue
slot.
"""

from __future__ import annotations

import enum


class Op(enum.IntEnum):
    """Every opcode understood by the simulator."""

    # Integer ALU, register-register.
    ADD = enum.auto()
    SUB = enum.auto()
    MUL = enum.auto()
    DIV = enum.auto()
    REM = enum.auto()
    AND = enum.auto()
    OR = enum.auto()
    XOR = enum.auto()
    SLL = enum.auto()
    SRL = enum.auto()
    SRA = enum.auto()
    SLT = enum.auto()
    SLE = enum.auto()
    SEQ = enum.auto()
    SNE = enum.auto()

    # Integer ALU, register-immediate.
    ADDI = enum.auto()
    MULI = enum.auto()
    ANDI = enum.auto()
    ORI = enum.auto()
    XORI = enum.auto()
    SLLI = enum.auto()
    SRLI = enum.auto()
    SLTI = enum.auto()

    # Register moves / immediates.
    LI = enum.auto()  # load integer immediate
    MOV = enum.auto()  # integer register move

    # Floating point (registers f0..f31 map to indices 32..63).
    FADD = enum.auto()
    FSUB = enum.auto()
    FMUL = enum.auto()
    FDIV = enum.auto()
    FNEG = enum.auto()
    FABS = enum.auto()
    FSQRT = enum.auto()
    FMOV = enum.auto()
    FLI = enum.auto()  # load float immediate
    FSLT = enum.auto()  # fp compare, integer 0/1 result
    FSLE = enum.auto()
    FSEQ = enum.auto()
    CVTIF = enum.auto()  # int -> float
    CVTFI = enum.auto()  # float -> int (truncate)

    # Control flow.
    BEQ = enum.auto()
    BNE = enum.auto()
    BLT = enum.auto()
    BLE = enum.auto()
    BGT = enum.auto()
    BGE = enum.auto()
    J = enum.auto()
    JAL = enum.auto()  # link register is r31
    JR = enum.auto()
    NOP = enum.auto()
    HALT = enum.auto()

    # Local memory (per-thread private; serviced locally, never switches).
    LWL = enum.auto()
    SWL = enum.auto()
    LDL = enum.auto()  # load double: rd, rd+1
    SDL = enum.auto()  # store double: rs2, rs2+1

    # Shared memory (remote; the subject of the paper).
    LWS = enum.auto()
    SWS = enum.auto()
    LDS = enum.auto()
    SDS = enum.auto()
    FAA = enum.auto()  # fetch-and-add, combining at memory

    # Multithreading.
    SWITCH = enum.auto()  # explicit / conditional context switch


class Sig(enum.Enum):
    """Operand signature classes shared by the assembler, the builder and
    the dependence analyser."""

    R3 = "rd, rs1, rs2"
    R2I = "rd, rs1, imm"
    R2 = "rd, rs1"
    RI = "rd, imm"
    LOAD = "rd, imm(rs1)"
    STORE = "rs2, imm(rs1)"
    BR2 = "rs1, rs2, label"
    JMP = "label"
    JREG = "rs1"
    FAA = "rd, imm(rs1), rs2"
    NONE = ""


OP_SIG: dict[Op, Sig] = {
    Op.ADD: Sig.R3,
    Op.SUB: Sig.R3,
    Op.MUL: Sig.R3,
    Op.DIV: Sig.R3,
    Op.REM: Sig.R3,
    Op.AND: Sig.R3,
    Op.OR: Sig.R3,
    Op.XOR: Sig.R3,
    Op.SLL: Sig.R3,
    Op.SRL: Sig.R3,
    Op.SRA: Sig.R3,
    Op.SLT: Sig.R3,
    Op.SLE: Sig.R3,
    Op.SEQ: Sig.R3,
    Op.SNE: Sig.R3,
    Op.ADDI: Sig.R2I,
    Op.MULI: Sig.R2I,
    Op.ANDI: Sig.R2I,
    Op.ORI: Sig.R2I,
    Op.XORI: Sig.R2I,
    Op.SLLI: Sig.R2I,
    Op.SRLI: Sig.R2I,
    Op.SLTI: Sig.R2I,
    Op.LI: Sig.RI,
    Op.MOV: Sig.R2,
    Op.FADD: Sig.R3,
    Op.FSUB: Sig.R3,
    Op.FMUL: Sig.R3,
    Op.FDIV: Sig.R3,
    Op.FNEG: Sig.R2,
    Op.FABS: Sig.R2,
    Op.FSQRT: Sig.R2,
    Op.FMOV: Sig.R2,
    Op.FLI: Sig.RI,
    Op.FSLT: Sig.R3,
    Op.FSLE: Sig.R3,
    Op.FSEQ: Sig.R3,
    Op.CVTIF: Sig.R2,
    Op.CVTFI: Sig.R2,
    Op.BEQ: Sig.BR2,
    Op.BNE: Sig.BR2,
    Op.BLT: Sig.BR2,
    Op.BLE: Sig.BR2,
    Op.BGT: Sig.BR2,
    Op.BGE: Sig.BR2,
    Op.J: Sig.JMP,
    Op.JAL: Sig.JMP,
    Op.JR: Sig.JREG,
    Op.NOP: Sig.NONE,
    Op.HALT: Sig.NONE,
    Op.LWL: Sig.LOAD,
    Op.SWL: Sig.STORE,
    Op.LDL: Sig.LOAD,
    Op.SDL: Sig.STORE,
    Op.LWS: Sig.LOAD,
    Op.SWS: Sig.STORE,
    Op.LDS: Sig.LOAD,
    Op.SDS: Sig.STORE,
    Op.FAA: Sig.FAA,
    Op.SWITCH: Sig.NONE,
}

#: Issue cost in cycles.  Unlisted opcodes cost one cycle.
CYCLE_COST: dict[Op, int] = {
    Op.MUL: 12,
    Op.MULI: 12,
    Op.DIV: 35,
    Op.REM: 35,
    Op.FADD: 2,
    Op.FSUB: 2,
    Op.FMUL: 5,
    Op.FDIV: 19,
    Op.FSQRT: 30,
    Op.CVTIF: 2,
    Op.CVTFI: 2,
}

SHARED_LOADS = frozenset({Op.LWS, Op.LDS, Op.FAA})
SHARED_STORES = frozenset({Op.SWS, Op.SDS})
LOCAL_LOADS = frozenset({Op.LWL, Op.LDL})
LOCAL_STORES = frozenset({Op.SWL, Op.SDL})
BRANCHES = frozenset(
    {Op.BEQ, Op.BNE, Op.BLT, Op.BLE, Op.BGT, Op.BGE, Op.J, Op.JAL, Op.JR}
)
#: Opcodes that end a basic block.
BLOCK_TERMINATORS = BRANCHES | {Op.HALT}
#: Double-word accesses move two consecutive words in one network message.
DOUBLE_ACCESSES = frozenset({Op.LDS, Op.SDS, Op.LDL, Op.SDL})


def is_shared_access(op: Op) -> bool:
    """True when *op* touches shared memory (and thus the network)."""
    return op in SHARED_LOADS or op in SHARED_STORES


def instruction_cost(op: Op) -> int:
    """Issue cost in cycles for *op* (R3000-flavoured timing)."""
    return CYCLE_COST.get(op, 1)
