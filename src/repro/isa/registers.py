"""Register file layout and naming.

Each thread owns 32 integer registers (``r0``..``r31``) and 32
floating-point registers (``f0``..``f31``), exactly as in the paper's
machine model.  Internally both files live in one 64-slot array: integer
register *n* is slot *n*, floating-point register *n* is slot ``32 + n``.

Software conventions used by the runtime and the applications:

========  ==================================================
register  role
========  ==================================================
``r0``    hard-wired zero
``r4``    thread id (set by the loader before the thread runs)
``r5``    total number of threads
``r6``    base address of the shared argument block
``r29``   local stack/scratch base (``sp``)
``r31``   link register (written by ``JAL``)
========  ==================================================
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_REGS = NUM_INT_REGS + NUM_FP_REGS

ZERO_REG = 0
TID_REG = 4
NTHREADS_REG = 5
ARGS_REG = 6
SP_REG = 29
LINK_REG = 31

_ALIASES = {
    "zero": 0,
    "tid": TID_REG,
    "ntid": NTHREADS_REG,
    "args": ARGS_REG,
    "sp": SP_REG,
    "ra": LINK_REG,
}


def reg_index(name: "str | int") -> int:
    """Map a register name (``'r7'``, ``'f3'``, ``'sp'`` or a raw index)
    to its slot in the 64-entry register array.

    >>> reg_index('r7')
    7
    >>> reg_index('f3')
    35
    """
    if isinstance(name, int):
        if not 0 <= name < NUM_REGS:
            raise ValueError(f"register index out of range: {name}")
        return name
    lowered = name.lower()
    if lowered in _ALIASES:
        return _ALIASES[lowered]
    if len(lowered) >= 2 and lowered[0] in "rf" and lowered[1:].isdigit():
        number = int(lowered[1:])
        if lowered[0] == "r" and 0 <= number < NUM_INT_REGS:
            return number
        if lowered[0] == "f" and 0 <= number < NUM_FP_REGS:
            return NUM_INT_REGS + number
    raise ValueError(f"unknown register: {name!r}")


def reg_name(index: int) -> str:
    """Inverse of :func:`reg_index` (always the canonical ``rN``/``fN``)."""
    if not 0 <= index < NUM_REGS:
        raise ValueError(f"register index out of range: {index}")
    if index < NUM_INT_REGS:
        return f"r{index}"
    return f"f{index - NUM_INT_REGS}"


def is_fp_reg(index: int) -> bool:
    """True for slots belonging to the floating-point file."""
    return index >= NUM_INT_REGS
