"""Basic-block discovery and program reassembly.

A *leader* is the first instruction, any branch target, or the
instruction following a block terminator (branch, jump, or HALT).  Blocks
never span leaders, and every label in a finalised program binds to a
leader — which is what lets passes rearrange the instructions *inside* a
block and then rebuild the label table from block boundaries alone.
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa.instruction import Instruction
from repro.isa.opcodes import BLOCK_TERMINATORS, OP_SIG, Sig
from repro.isa.program import Program


class BasicBlock:
    """A straight-line run of instructions."""

    def __init__(self, index: int, start: int, instructions: List[Instruction]):
        self.index = index
        #: Original start offset in the source program (for diagnostics).
        self.start = start
        self.instructions = instructions
        #: Labels bound to this block's first instruction.
        self.labels: List[str] = []

    @property
    def terminator(self) -> "Instruction | None":
        """The block's final control-transfer instruction, if any."""
        if self.instructions and self.instructions[-1].op in BLOCK_TERMINATORS:
            return self.instructions[-1]
        return None

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock #{self.index} @{self.start} len={len(self)}>"


def build_blocks(program: Program) -> List[BasicBlock]:
    """Partition *program* into basic blocks (copying the instructions)."""
    if not program.finalized:
        raise ValueError("build_blocks requires a finalized program")
    instructions = program.instructions
    count = len(instructions)

    leaders = {0}
    for index, ins in enumerate(instructions):
        if ins.op in BLOCK_TERMINATORS:
            if index + 1 < count:
                leaders.add(index + 1)
            if OP_SIG[ins.op] in (Sig.BR2, Sig.JMP):
                leaders.add(ins.target)
    for target in program.labels.values():
        if target < count:
            leaders.add(target)

    ordered = sorted(leaders)
    blocks: List[BasicBlock] = []
    for block_index, start in enumerate(ordered):
        end = ordered[block_index + 1] if block_index + 1 < len(ordered) else count
        body = [ins.copy() for ins in instructions[start:end]]
        blocks.append(BasicBlock(block_index, start, body))

    start_to_block: Dict[int, BasicBlock] = {block.start: block for block in blocks}
    for label, target in program.labels.items():
        if target >= count:
            continue  # unused trailing label — dropped on reassembly
        start_to_block[target].labels.append(label)
    return blocks


def reassemble(blocks: List[BasicBlock], name: str) -> Program:
    """Rebuild a finalised :class:`Program` from (possibly transformed)
    blocks, recomputing the label table from block boundaries."""
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    for block in blocks:
        for label in block.labels:
            labels[label] = len(instructions)
        instructions.extend(block.instructions)
    for ins in instructions:
        if OP_SIG[ins.op] in (Sig.BR2, Sig.JMP) and ins.label is None:
            raise ValueError(
                "reassemble requires symbolic branch targets; "
                f"{ins.to_asm()} has none"
            )
    return Program(instructions, labels, name).finalize()
