"""Intra-block dependence analysis.

Register dependences are exact (RAW, WAR, WAW via the def/use sets of
:mod:`repro.isa.instruction`).  Memory dependences use the paper's
pessimistic assumption (Section 5.1, footnote 1): *every shared store
might conflict with every shared load* because addresses cannot be
disambiguated at the object-code level.  Concretely:

* shared accesses: load/load pairs are independent; every other pairing
  (load/store, store/store, anything involving Fetch-and-Add) is ordered;
* local accesses: the same rule within the local address space;
* local and shared accesses never conflict — the ISA separates the two
  address spaces by opcode, exactly the paper's static classification;
* a SWITCH instruction already present in the input is a full fence for
  shared accesses and other SWITCHes.
"""

from __future__ import annotations

import enum
from typing import List, Sequence, Tuple

from repro.isa.instruction import Instruction, instr_reads, instr_writes
from repro.isa.opcodes import (
    Op,
    SHARED_LOADS,
    SHARED_STORES,
    LOCAL_LOADS,
    LOCAL_STORES,
)


class MemClass(enum.Enum):
    """Memory behaviour class of an instruction."""

    NONE = "none"
    SHARED_READ = "shared-read"
    SHARED_WRITE = "shared-write"  # includes FAA (read-modify-write)
    LOCAL_READ = "local-read"
    LOCAL_WRITE = "local-write"
    FENCE = "fence"  # pre-existing SWITCH instructions


def mem_class(ins: Instruction) -> MemClass:
    op = ins.op
    if op is Op.FAA or op in SHARED_STORES:
        return MemClass.SHARED_WRITE
    if op in SHARED_LOADS:
        return MemClass.SHARED_READ
    if op in LOCAL_STORES:
        return MemClass.LOCAL_WRITE
    if op in LOCAL_LOADS:
        return MemClass.LOCAL_READ
    if op is Op.SWITCH:
        return MemClass.FENCE
    return MemClass.NONE


def _mem_conflict(earlier: MemClass, later: MemClass) -> bool:
    if earlier is MemClass.NONE or later is MemClass.NONE:
        return False
    if earlier is MemClass.FENCE or later is MemClass.FENCE:
        # A fence orders all shared accesses and other fences, but not
        # purely local traffic.
        other = later if earlier is MemClass.FENCE else earlier
        return other in (
            MemClass.SHARED_READ,
            MemClass.SHARED_WRITE,
            MemClass.FENCE,
        )
    shared = (MemClass.SHARED_READ, MemClass.SHARED_WRITE)
    if earlier in shared and later in shared:
        return not (
            earlier is MemClass.SHARED_READ and later is MemClass.SHARED_READ
        )
    local = (MemClass.LOCAL_READ, MemClass.LOCAL_WRITE)
    if earlier in local and later in local:
        return not (earlier is MemClass.LOCAL_READ and later is MemClass.LOCAL_READ)
    return False


def block_dependences(
    instructions: Sequence[Instruction],
) -> Tuple[List[List[int]], List[List[int]]]:
    """Compute the dependence DAG of a straight-line instruction sequence.

    Returns ``(preds, succs)``: for each position, the list of positions
    it depends on / that depend on it.  Edges always point forward in the
    original order (``i -> j`` implies ``i < j``).
    """
    count = len(instructions)
    preds: List[List[int]] = [[] for _ in range(count)]
    succs: List[List[int]] = [[] for _ in range(count)]
    classes = [mem_class(ins) for ins in instructions]
    reads = [set(instr_reads(ins)) - {0} for ins in instructions]
    writes = [set(instr_writes(ins)) - {0} for ins in instructions]

    for later in range(count):
        for earlier in range(later):
            raw = writes[earlier] & reads[later]
            war = reads[earlier] & writes[later]
            waw = writes[earlier] & writes[later]
            if raw or war or waw or _mem_conflict(classes[earlier], classes[later]):
                preds[later].append(earlier)
                succs[earlier].append(later)
    return preds, succs
