"""The shared-load grouping scheduler (Section 5.1).

Within one basic block the scheduler reorders instructions, subject to
the dependence DAG, so that independent shared loads sit next to each
other, and inserts exactly one SWITCH instruction after each group.  On
the explicit-switch machine the group's loads are all in flight when the
SWITCH is reached, so the thread waits for the whole group at once
instead of once per load — the paper's central idea.

Grouping rules:

* a load may join the current group only if no *value* (register RAW)
  dependence connects it — even transitively through address arithmetic —
  to a load already in the group: such a value is still in flight when
  the group issues, so the dependent load could not compute its address;
* memory-order edges (the pessimistic store/load aliasing of footnote 1)
  gate *emission order* but not group membership: ordered delivery makes
  a load issued before a same-group store's arrival read the older value,
  which is exactly program order;
* Fetch-and-Add is a synchronisation primitive: it always forms its own
  group (grouping a data load behind an F&A would let the load issue
  before the F&A completes — an acquire-semantics violation);
* non-load instructions on a dependence path to a later load (address
  arithmetic) are hoisted into the group region when legal, so a group
  can keep growing — the behaviour the paper's Figure 4 shows;
* the block terminator stays last, and ties always break in original
  program order, keeping the schedule deterministic.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from repro.isa.instruction import Instruction, instr_reads, instr_writes
from repro.isa.opcodes import Op, SHARED_LOADS, BLOCK_TERMINATORS
from repro.compiler.dependence import block_dependences


@dataclasses.dataclass
class GroupingReport:
    """Static summary of what the pass did to one block or program."""

    shared_loads: int = 0
    groups: int = 0  # SWITCH instructions inserted
    moved: int = 0  # instructions emitted out of original relative order

    @property
    def grouping_factor(self) -> float:
        """Static shared loads per switch (>= 1.0 once loads exist)."""
        if not self.groups:
            return float(self.shared_loads) if self.shared_loads else 0.0
        return self.shared_loads / self.groups

    def merge(self, other: "GroupingReport") -> None:
        self.shared_loads += other.shared_loads
        self.groups += other.groups
        self.moved += other.moved


def group_block(
    instructions: Sequence[Instruction], report: "GroupingReport | None" = None
) -> List[Instruction]:
    """Return a re-scheduled copy of one basic block's instructions."""
    if report is None:
        report = GroupingReport()

    body = [ins.copy() for ins in instructions]
    terminator = None
    if body and body[-1].op in BLOCK_TERMINATORS:
        terminator = body.pop()

    count = len(body)
    is_load = [ins.op in SHARED_LOADS for ins in body]
    report.shared_loads += sum(is_load)
    if not any(is_load):
        if terminator is not None:
            body.append(terminator)
        return body

    preds, succs = block_dependences(body)
    remaining = [len(entry) for entry in preds]

    # Register (value) RAW predecessors — what "in flight" taints follow.
    reads = [set(instr_reads(ins)) - {0} for ins in body]
    writes = [set(instr_writes(ins)) - {0} for ins in body]
    raw_preds: List[List[int]] = [[] for _ in range(count)]
    for later in range(count):
        for earlier in range(later):
            if writes[earlier] & reads[later]:
                raw_preds[later].append(earlier)

    # feeds_load[i]: i lies on a dependence path into some shared load.
    feeds_load = [False] * count
    stack = [i for i in range(count) if is_load[i]]
    while stack:
        position = stack.pop()
        for pred in preds[position]:
            if not feeds_load[pred]:
                feeds_load[pred] = True
                stack.append(pred)

    emitted: List[Instruction] = []
    done = [False] * count
    # tainted[i]: i's value is (transitively) produced by a load of the
    # group currently being formed, hence unavailable until the SWITCH.
    tainted = [False] * count
    pending = count

    def ready() -> List[int]:
        return [i for i in range(count) if not done[i] and remaining[i] == 0]

    def emit(index: int, in_group: bool) -> None:
        nonlocal pending
        emitted.append(body[index])
        done[index] = True
        pending -= 1
        for succ in succs[index]:
            remaining[succ] -= 1
        if in_group:
            tainted[index] = is_load[index] or any(
                tainted[p] for p in raw_preds[index]
            )

    def untainted(index: int) -> bool:
        return not any(tainted[p] and done[p] for p in raw_preds[index])

    while pending:
        candidates = ready()
        start_loads = [
            i for i in candidates if is_load[i] and body[i].op is not Op.FAA
        ]
        start_faa = [i for i in candidates if body[i].op is Op.FAA]
        if not start_loads and not start_faa:
            # No load can start a group: emit one ready non-load,
            # preferring load-enabling (address arithmetic) instructions.
            enabling = [i for i in candidates if feeds_load[i]]
            emit(min(enabling) if enabling else min(candidates), in_group=False)
            continue

        if start_faa and (not start_loads or min(start_faa) < min(start_loads)):
            # Fetch-and-Add: a group of exactly one.
            emit(min(start_faa), in_group=True)
        else:
            # Grow a load group as far as value dependences allow.
            grew = True
            while grew:
                grew = False
                for index in ready():
                    if (
                        is_load[index]
                        and body[index].op is not Op.FAA
                        and untainted(index)
                    ):
                        emit(index, in_group=True)
                        grew = True
                # Hoist ready enablers whose inputs are available now —
                # they may ready further loads for this same group.
                for index in ready():
                    if (
                        not is_load[index]
                        and feeds_load[index]
                        and untainted(index)
                    ):
                        emit(index, in_group=True)
                        grew = True
        switch = Instruction(Op.SWITCH)
        switch.sync = emitted[-1].sync  # spin loads keep their spin marking
        emitted.append(switch)
        report.groups += 1
        tainted = [False] * count  # the SWITCH waits for everything

    if terminator is not None:
        emitted.append(terminator)

    # Count how many instructions were emitted out of their original
    # relative order (reorganisation metric for Table 5's penalty).
    original_rank = {id(ins): index for index, ins in enumerate(body)}
    old_order = [original_rank[id(ins)] for ins in emitted if id(ins) in original_rank]
    report.moved += sum(1 for a, b in zip(old_order, old_order[1:]) if b < a)
    return emitted
