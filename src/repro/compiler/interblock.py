"""The inter-block grouping estimator of Section 5.2.

The paper's authors had no compiler that groups shared loads *across*
basic blocks (e.g. structure fields accessed on both sides of a condition
test), so they estimated the opportunity: give each thread a one-line,
32-word cache over its dynamic shared-load address stream.  A load that
hits touched the same structure or array as the thread's preceding
reference and could therefore have been issued with the earlier group.

This module packages that experiment:

* :func:`oracle_config` — derive a machine configuration that runs the
  explicit-switch model with the estimator enabled
  (``MachineConfig.interblock_oracle``): oracle-hit loads cost nothing
  and SWITCHes with nothing outstanding are skipped, which yields the
  *revised* run lengths, grouping factors and multithreading levels of
  Table 6;
* :func:`estimate` — extract the estimator's summary from a finished run.
"""

from __future__ import annotations

import dataclasses

from repro.machine.config import MachineConfig
from repro.machine.models import SwitchModel
from repro.machine.stats import SimStats


@dataclasses.dataclass(frozen=True)
class InterblockEstimate:
    """Summary of one estimator run."""

    hit_rate: float  # fraction of loads groupable across blocks
    grouping_factor: float  # loads per taken switch, revised
    mean_run_length: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"one-line-cache hit rate {self.hit_rate:.0%}, "
            f"grouping factor {self.grouping_factor:.2f}, "
            f"mean run length {self.mean_run_length:.1f}"
        )


def oracle_config(base: MachineConfig, line_words: int = 32) -> MachineConfig:
    """An explicit-switch configuration with the estimator enabled."""
    return base.replace(
        model=SwitchModel.EXPLICIT_SWITCH,
        interblock_oracle=True,
        oracle_line_words=line_words,
    )


def estimate(stats: SimStats) -> InterblockEstimate:
    """Extract the Section 5.2 summary from a finished oracle run."""
    return InterblockEstimate(
        hit_rate=stats.oracle_hit_rate,
        grouping_factor=stats.grouping_factor(),
        mean_run_length=stats.mean_run_length,
    )
