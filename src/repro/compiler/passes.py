"""Whole-program compiler passes and per-model code preparation."""

from __future__ import annotations

from typing import Tuple

from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.machine.models import SwitchModel
from repro.compiler.cfg import build_blocks, reassemble
from repro.compiler.grouping import group_block, GroupingReport


def group_program(program: Program, name_suffix: str = "+grouped") -> Program:
    """Run the Section 5.1 post-processor over every basic block."""
    grouped, _report = _group_with_report(program, name_suffix)
    return grouped


def grouping_report(program: Program) -> GroupingReport:
    """Static grouping statistics without keeping the transformed code."""
    _grouped, report = _group_with_report(program, "+grouped")
    return report


def _group_with_report(
    program: Program, name_suffix: str
) -> Tuple[Program, GroupingReport]:
    report = GroupingReport()
    blocks = build_blocks(program)
    for block in blocks:
        block.instructions = group_block(block.instructions, report)
    return reassemble(blocks, program.name + name_suffix), report


#: Suffix appended by :func:`strip_switches`.  Historically this was
#: ``"-switch"`` (which read as "plus switch" — the opposite of what the
#: pass does); program names are cosmetic and feed no cache key, so the
#: rename is free (``tests/test_compiler_grouping.py`` pins the spec and
#: config keys to prove it).
STRIPPED_SUFFIX = "-noswitch"

#: The pre-rename suffix, kept so callers that matched on the old
#: spelling can keep doing so explicitly.
LEGACY_STRIPPED_SUFFIX = "-switch"


def strip_switches(program: Program, name_suffix: str = STRIPPED_SUFFIX) -> Program:
    """Remove every SWITCH instruction (for the split-phase use models,
    which wait at the first *use* instead of at an explicit switch)."""
    blocks = build_blocks(program)
    for block in blocks:
        block.instructions = [
            ins for ins in block.instructions if ins.op is not Op.SWITCH
        ]
    return reassemble(blocks, program.name + name_suffix)


def prepare_for_model(
    program: Program, model: SwitchModel, lint: bool = False
) -> Program:
    """Produce the code a given machine model would run.

    * switch-on-load / switch-on-miss / ideal / switch-every-cycle run
      the original code;
    * explicit-switch and conditional-switch run grouped code;
    * the use models run grouped code with the SWITCH opcodes stripped
      (grouping still clusters the loads ahead of their uses).

    With ``lint=True`` the result is statically verified against the
    paper's invariants (:mod:`repro.lint`) before it is returned;
    error-severity diagnostics raise :class:`repro.lint.LintError`.
    """
    if not model.wants_grouped_code:
        prepared = program
    else:
        grouped = group_program(program)
        if not model.wants_switch_instructions:
            prepared = strip_switches(grouped)
        else:
            prepared = grouped
    if lint:
        from repro.lint import lint_pair  # local import: lint imports us

        lint_pair(program, prepared, model).raise_on_error()
    return prepared
