"""The object-code post-processor of Section 5.1.

The paper's authors could not change their C compiler, so they wrote a
post-processor that finds basic blocks in the object file, performs
dependence analysis within each block, reorganises instructions to group
shared loads together, and inserts a single explicit SWITCH instruction
after each group.  This package is that post-processor, operating on
:class:`~repro.isa.program.Program` objects:

* :mod:`repro.compiler.cfg` — basic-block discovery and reassembly;
* :mod:`repro.compiler.dependence` — intra-block dependence DAGs with the
  paper's pessimistic memory aliasing (every shared store may conflict
  with every shared load);
* :mod:`repro.compiler.grouping` — the load-grouping list scheduler;
* :mod:`repro.compiler.passes` — whole-program passes and per-model code
  preparation;
* :mod:`repro.compiler.interblock` — the one-line-cache estimator of
  Section 5.2 for grouping opportunities beyond basic blocks.
"""

from repro.compiler.cfg import BasicBlock, build_blocks, reassemble
from repro.compiler.dependence import block_dependences, MemClass
from repro.compiler.grouping import group_block, GroupingReport
from repro.compiler.passes import (
    group_program,
    strip_switches,
    prepare_for_model,
    grouping_report,
    STRIPPED_SUFFIX,
    LEGACY_STRIPPED_SUFFIX,
)
from repro.compiler.interblock import (
    InterblockEstimate,
    oracle_config,
    estimate,
)

__all__ = [
    "BasicBlock",
    "build_blocks",
    "reassemble",
    "block_dependences",
    "MemClass",
    "group_block",
    "GroupingReport",
    "group_program",
    "strip_switches",
    "prepare_for_model",
    "grouping_report",
    "STRIPPED_SUFFIX",
    "LEGACY_STRIPPED_SUFFIX",
    "InterblockEstimate",
    "oracle_config",
    "estimate",
]
