"""Full-map invalidation directory at the memory side.

For every cache line the directory remembers which processors hold a
copy.  When a shared store or Fetch-and-Add reaches memory, every *other*
holder is sent an invalidation message (counted in the bandwidth table);
when a line-fill request arrives, the requester is added to the sharer
set.  Because the cache is write-through there is never a dirty remote
copy to recall, which keeps every transaction two-hop.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set


class Directory:
    """Sharer bookkeeping for all cache lines."""

    def __init__(self, num_processors: int):
        self.num_processors = num_processors
        self._sharers: Dict[int, Set[int]] = {}

    def sharers_of(self, line: int) -> Set[int]:
        return set(self._sharers.get(line, ()))

    def add_sharer(self, line: int, proc: int) -> None:
        self._sharers.setdefault(line, set()).add(proc)

    def drop_sharer(self, line: int, proc: int) -> None:
        """A cache silently evicted *line* (write-through lines are clean,
        so no data moves — the directory just forgets the copy)."""
        holders = self._sharers.get(line)
        if holders is not None:
            holders.discard(proc)
            if not holders:
                del self._sharers[line]

    def invalidate_others(self, line: int, writer: int) -> List[int]:
        """A write by *writer* reached memory: return the processors whose
        copies must be invalidated and forget them."""
        holders = self._sharers.get(line)
        if not holders:
            return []
        victims = [proc for proc in holders if proc != writer]
        if writer in holders:
            self._sharers[line] = {writer}
        else:
            del self._sharers[line]
        return victims

    def is_shared(self, line: int) -> bool:
        return bool(self._sharers.get(line))

    def check_invariants(self) -> None:
        """Every sharer id is a valid processor (used by property tests)."""
        for line, holders in self._sharers.items():
            for proc in holders:
                if not 0 <= proc < self.num_processors:
                    raise AssertionError(
                        f"directory line {line}: bad sharer {proc}"
                    )
            if not holders:
                raise AssertionError(f"directory line {line}: empty sharer set")
